"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table, figure-level claim or ablation from
the paper's evaluation (see DESIGN.md's experiment index) and prints the
reproduced rows next to the paper's reported values, so the textual output
of ``pytest benchmarks/ --benchmark-only`` doubles as the reproduction
report recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, Iterable, Sequence

import pytest


def print_table(title: str, headers: Sequence[str], rows: Iterable[Sequence[object]]) -> None:
    """Print an aligned table to stdout (captured by pytest -s / benchmark logs)."""
    rows = [tuple(str(cell) for cell in row) for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    line = " | ".join(header.ljust(widths[i]) for i, header in enumerate(headers))
    separator = "-+-".join("-" * widths[i] for i in range(len(headers)))
    print()
    print(f"=== {title} ===")
    print(line)
    print(separator)
    for row in rows:
        print(" | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))


def relative_error(measured: float, reported: float) -> float:
    """Relative error of a measured value against the paper's reported value."""
    if reported == 0:
        return abs(measured)
    return abs(measured - reported) / abs(reported)


@pytest.fixture
def table_printer():
    """Fixture exposing :func:`print_table` to benchmarks."""
    return print_table

"""Front-end impairment grid through the batched sweep engine.

The paper's headline is a *fixed-point* baseband that survives real
front-end conditions; PR 4 made those conditions (CFO, timing, IQ
imbalance, word lengths) first-class grid axes of ``repro.sim``.  This
benchmark drives the acceptance grid — CFO x word length x SNR, i.e.
``ImpairmentSpec`` entries Cartesian with the SNR axis — through a real
worker pool and checks the engine's contracts on the new axes:

* the pooled run and every (n_workers, batch_size) variant report
  bit-identical statistics (physics is a pure function of the spec);
* an identical re-run is served from the JSON cache without simulating a
  single burst;
* the cache key includes ``ENGINE_VERSION`` (bumped to 2 with the axis),
  so an entry written by an older engine is demonstrably never reused.
"""

import pytest

from repro.sim import ENGINE_VERSION, ImpairmentSpec, SweepRunner, SweepSpec
from repro.sim.cache import JsonCache, content_key

CFO_VALUES = (5e-4, 2e-3)
WORD_LENGTHS = (8, 16)
SNR_POINTS_DB = (10.0, 18.0, 26.0)
N_INFO_BITS = 96
N_BURSTS = 2
BASE_SEED = 77


def _impairment_grid():
    return tuple(
        ImpairmentSpec.quantized(word_length, cfo_normalized=cfo)
        for word_length in WORD_LENGTHS
        for cfo in CFO_VALUES
    )


def _grid_spec() -> SweepSpec:
    return SweepSpec(
        snr_db=SNR_POINTS_DB,
        modulations=("qpsk",),
        channels=("flat_rayleigh",),
        impairments=_impairment_grid(),
        n_info_bits=N_INFO_BITS,
        n_bursts=N_BURSTS,
        target_errors=None,
        base_seed=BASE_SEED,
    )


def _stats(result):
    return [
        (p.bit_errors, p.total_bits, p.frame_errors, p.n_bursts)
        for p in result.points
    ]


@pytest.mark.benchmark(group="impairment-sweep")
def test_impairment_grid_runs_pooled_and_caches(benchmark, table_printer, tmp_path):
    spec = _grid_spec()
    assert spec.n_points == len(CFO_VALUES) * len(WORD_LENGTHS) * len(SNR_POINTS_DB)

    result = benchmark.pedantic(
        lambda: SweepRunner(spec, n_workers=2, batch_size=1, cache=tmp_path).run(),
        rounds=1,
        iterations=1,
    )
    assert not result.from_cache
    assert result.n_bursts_simulated == spec.n_points * N_BURSTS

    table_printer(
        "Front-end impairment grid (QPSK, rate 1/2, flat Rayleigh; pool of 2)",
        ["word bits", "CFO (cyc/sa)", *(f"BER @ {snr:.0f} dB" for snr in SNR_POINTS_DB)],
        [
            (
                word_length,
                cfo,
                *(
                    f"{result.ber_curve(impairment=ImpairmentSpec.quantized(word_length, cfo_normalized=cfo))[snr]:.4f}"
                    for snr in SNR_POINTS_DB
                ),
            )
            for word_length in WORD_LENGTHS
            for cfo in CFO_VALUES
        ],
    )

    # Identical spec -> cache hit, zero bursts simulated.
    again = SweepRunner(spec, n_workers=2, batch_size=1, cache=tmp_path).run()
    assert again.from_cache
    assert again.n_bursts_simulated == 0
    assert _stats(again) == _stats(result)


@pytest.mark.benchmark(group="impairment-sweep")
def test_impairment_statistics_independent_of_runner_knobs(benchmark, tmp_path):
    spec = _grid_spec()
    reference = benchmark.pedantic(
        lambda: SweepRunner(spec, n_workers=2, batch_size=1, cache=False).run(),
        rounds=1,
        iterations=1,
    )
    for n_workers, batch_size in ((1, 1), (1, 2), (3, 2)):
        variant = SweepRunner(
            spec, n_workers=n_workers, batch_size=batch_size, cache=False
        ).run()
        assert _stats(variant) == _stats(reference), (n_workers, batch_size)


@pytest.mark.benchmark(group="impairment-sweep")
def test_old_engine_version_cache_entry_is_not_reused(benchmark, tmp_path):
    spec = _grid_spec().subset(
        snr_db=(26.0,), impairments=(ImpairmentSpec.quantized(16),)
    )
    cache = JsonCache(tmp_path)

    # The impairment axes shipped with ENGINE_VERSION 2; plant an entry
    # under the key an engine-version-1 cache would have used.
    assert ENGINE_VERSION >= 2
    stale_key = content_key({"engine_version": ENGINE_VERSION - 1, **spec.to_dict()})
    fresh = benchmark.pedantic(
        lambda: SweepRunner(spec, n_workers=1, cache=cache).run(),
        rounds=1,
        iterations=1,
    )
    poisoned = dict(fresh.to_dict())
    poisoned["points"] = [
        {**p, "bit_errors": 10**9} for p in poisoned["points"]
    ]
    cache.put(stale_key, poisoned)

    assert spec.spec_hash() != stale_key
    result = SweepRunner(spec, n_workers=1, cache=cache).run()
    # Served from the *current* version's entry, never the stale one.
    assert result.from_cache
    assert all(p.bit_errors < 10**9 for p in result.points)

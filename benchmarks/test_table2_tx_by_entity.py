"""Table 2 — transmitter resource utilisation by entity.

Paper rows (4 channels combined): convolutional encoder 32/136/0/0,
block interleaver 28,016/1,730/0/0, IFFT 3,854/9,152/8,896/32,
cyclic prefix 40/128/0/0 (ALUTs / registers / memory bits / DSP).
"""

import pytest

from repro.hardware.estimator import TransmitterResourceModel

PAPER_TABLE2 = {
    "conv_encoder": (32, 136, 0, 0),
    "block_interleaver": (28_016, 1_730, 0, 0),
    "ifft": (3_854, 9_152, 8_896, 32),
    "cyclic_prefix": (40, 128, 0, 0),
}


def _generate_table2():
    model = TransmitterResourceModel()
    return {entity: model.entity_usage(entity) for entity in PAPER_TABLE2}


@pytest.mark.benchmark(group="table2")
def test_table2_tx_by_entity(benchmark, table_printer):
    usages = benchmark(_generate_table2)

    rows = []
    for entity, paper in PAPER_TABLE2.items():
        measured = usages[entity]
        rows.append(
            (
                entity,
                measured.aluts,
                paper[0],
                measured.registers,
                paper[1],
                measured.memory_bits,
                paper[2],
                measured.dsp_blocks,
                paper[3],
            )
        )
    table_printer(
        "Table 2: TX Resource Utilization By Entity (measured vs paper)",
        [
            "entity",
            "ALUTs",
            "paper",
            "regs",
            "paper",
            "mem bits",
            "paper",
            "DSP",
            "paper",
        ],
        rows,
    )

    for entity, (aluts, registers, memory_bits, dsp) in PAPER_TABLE2.items():
        measured = usages[entity]
        assert measured.aluts == aluts
        assert measured.registers == registers
        assert measured.memory_bits == memory_bits
        assert measured.dsp_blocks == dsp

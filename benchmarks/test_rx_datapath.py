"""Whole-burst receiver datapath — batched chain vs the per-symbol loop.

The paper's Fig. 5 receive chain (per-antenna FFT, per-subcarrier MIMO
detection, pilot phase/timing correction) used to run one OFDM symbol at a
time.  The batched path gathers every data window of the burst into one
``(n_rx, n_symbols, fft_size)`` block, runs a single planned FFT
(:class:`repro.dsp.fft.FftPlan` caches the bit-reverse permutation and
per-stage twiddles per size), detects with one einsum and pilot-corrects
with one block pass — bit-identically (see
``tests/test_hot_path_agreement.py``).

This benchmark measures the burst-level speedup of that chain on the
paper's synthesised 4x4, 64-point configuration and asserts the acceptance
threshold (>= 3x).  A second table reports the end-to-end effect through
the sweep engine's serial backbone, where Viterbi decoding bounds the
total — the chain's share of burst time is what shrinks.
"""

import time

import numpy as np
import pytest

from repro.core.config import TransceiverConfig
from repro.core.receiver import MimoReceiver
from repro.core.transceiver import MimoTransceiver
from repro.core.transmitter import MimoTransmitter
from repro.sim.engine import simulate_point

N_INFO_BITS = 4800  # ~51 data OFDM symbols per stream at 16-QAM rate 1/2
MIN_SPEEDUP = 3.0


def _best_of(callable_, repeats=5):
    """Best (minimum) wall-clock of several runs — robust on loaded hosts."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.fixture(scope="module")
def synced_burst():
    """One transmitted burst plus the receiver-side sync/estimation prologue."""
    config = TransceiverConfig.paper_default()
    transmitter = MimoTransmitter(config)
    burst = transmitter.transmit_random(N_INFO_BITS, rng=np.random.default_rng(42))
    receiver = MimoReceiver(config)
    lts_start = 160
    estimate = receiver.estimate_channel(burst.samples, lts_start)
    layout = receiver.preamble.layout(config.n_antennas)
    data_start = lts_start + config.n_antennas * layout.lts_slot_length
    coded = receiver._encoder.coded_length(N_INFO_BITS, terminate=True)
    n_symbols = -(-coded // config.coded_bits_per_symbol)
    return config, burst, estimate, data_start, n_symbols


@pytest.mark.benchmark(group="rx-datapath")
def test_batched_chain_speedup_over_per_symbol_loop(
    benchmark, table_printer, synced_burst
):
    config, burst, estimate, data_start, n_symbols = synced_burst
    batched = MimoReceiver(config, vectorized=True)
    scalar = MimoReceiver(config, vectorized=False)

    def run(receiver):
        return receiver.equalize_burst(
            burst.samples, estimate, data_start, n_symbols
        )

    eq_batched, phases_batched = run(batched)
    eq_scalar, phases_scalar = run(scalar)
    np.testing.assert_array_equal(eq_batched, eq_scalar)
    np.testing.assert_array_equal(phases_batched, phases_scalar)

    batched_s = benchmark.pedantic(
        lambda: _best_of(lambda: run(batched)), rounds=1, iterations=1
    )
    scalar_s = _best_of(lambda: run(scalar))
    speedup = scalar_s / batched_s

    table_printer(
        f"Receive chain (FFT -> detect -> pilots), 4x4 64-pt, "
        f"{n_symbols} OFDM symbols/burst",
        ["path", "per burst", "speedup"],
        [
            ("per-symbol loop", f"{scalar_s * 1e3:.2f} ms", "1.0x"),
            ("batched", f"{batched_s * 1e3:.2f} ms", f"{speedup:.1f}x"),
        ],
    )
    assert speedup >= MIN_SPEEDUP, (
        f"batched receive chain only {speedup:.1f}x faster than the "
        f"per-symbol loop (required {MIN_SPEEDUP}x)"
    )


@pytest.mark.benchmark(group="rx-datapath")
def test_burst_simulation_through_the_engine_backbone(benchmark, table_printer):
    """End-to-end effect: identical physics, receiver path as the only knob."""
    config = TransceiverConfig.paper_default()
    rows = []
    results = {}
    elapsed = {}
    for vectorized in (False, True):
        transceiver = MimoTransceiver(config, vectorized_rx=vectorized)

        def run(t=transceiver):
            return simulate_point(
                t, n_info_bits=1200, n_bursts=3, rng=7, known_timing=True
            )

        if vectorized:
            results[vectorized] = benchmark.pedantic(run, rounds=1, iterations=1)
            elapsed[vectorized] = _best_of(run, repeats=2)
        else:
            results[vectorized] = run()
            elapsed[vectorized] = _best_of(run, repeats=2)
        label = "batched" if vectorized else "per-symbol"
        rows.append(
            (
                label,
                f"{elapsed[vectorized] * 1e3:.1f} ms",
                results[vectorized]["bit_errors"],
            )
        )
    table_printer(
        "simulate_point, 3 bursts x 1200 info bits (Viterbi-bound end to end)",
        ["receiver path", "3 bursts", "bit errors"],
        rows,
    )
    # Same physics bit for bit, whichever path the receiver takes.
    assert results[True] == results[False]

"""Table 4 — receiver resource utilisation by entity, plus the paper's
observation that channel estimation and equalisation (R matrix inverse,
MIMO decoder, QR decomposition, QR multiplier) account for 86 % of the
ALUTs and 77 % of the DSP multipliers.
"""

import pytest

from repro.hardware.estimator import ReceiverResourceModel

PAPER_TABLE4 = {
    "block_deinterleaver": (13_772, 1_772, 0, 0),
    "fft": (3_196, 9_650, 10_736, 64),
    "time_synchroniser": (3_557, 8_983, 0, 128),
    "viterbi_decoder": (5_028, 2_848, 18_460, 0),
    "r_matrix_inverse": (55_431, 31_711, 6_226, 56),
    "mimo_decoder": (1_036, 768, 0, 128),
    "qr_decomposition": (101_697, 109_447, 322, 248),
    "qr_multiplier": (1_368, 1_169, 0, 256),
}

PAPER_CHANNEL_ESTIMATION_ALUT_SHARE = 0.86
PAPER_CHANNEL_ESTIMATION_DSP_SHARE = 0.77


def _generate_table4():
    model = ReceiverResourceModel()
    usages = {entity: model.entity_usage(entity) for entity in PAPER_TABLE4}
    return usages, model.channel_estimation_share()


@pytest.mark.benchmark(group="table4")
def test_table4_rx_by_entity(benchmark, table_printer):
    usages, share = benchmark(_generate_table4)

    rows = []
    for entity, paper in PAPER_TABLE4.items():
        measured = usages[entity]
        rows.append(
            (
                entity,
                measured.aluts,
                paper[0],
                measured.registers,
                paper[1],
                measured.memory_bits,
                paper[2],
                measured.dsp_blocks,
                paper[3],
            )
        )
    table_printer(
        "Table 4: RX Resource Utilization By Entity (measured vs paper)",
        [
            "entity",
            "ALUTs",
            "paper",
            "regs",
            "paper",
            "mem bits",
            "paper",
            "DSP",
            "paper",
        ],
        rows,
    )
    table_printer(
        "Channel estimation / equalisation share of the receiver",
        ["resource", "measured share", "paper share"],
        [
            ("aluts", f"{share['aluts']:.3f}", PAPER_CHANNEL_ESTIMATION_ALUT_SHARE),
            ("dsp_blocks", f"{share['dsp_blocks']:.3f}", PAPER_CHANNEL_ESTIMATION_DSP_SHARE),
        ],
    )

    for entity, (aluts, registers, memory_bits, dsp) in PAPER_TABLE4.items():
        measured = usages[entity]
        assert measured.aluts == aluts
        assert measured.registers == registers
        assert measured.memory_bits == memory_bits
        assert measured.dsp_blocks == dsp

    assert share["aluts"] == pytest.approx(PAPER_CHANNEL_ESTIMATION_ALUT_SHARE, abs=0.01)
    assert share["dsp_blocks"] == pytest.approx(PAPER_CHANNEL_ESTIMATION_DSP_SHARE, abs=0.01)

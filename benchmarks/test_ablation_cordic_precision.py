"""Ablation A2 — CORDIC iteration count / word length vs accuracy.

The hardware fixes each CORDIC at 20 pipeline cycles; the number of
micro-rotations and the datapath word length determine the accuracy of the
QR decomposition and therefore of the zero-forcing equalisation.  This
ablation sweeps both and reports the reconstruction error, justifying the
~16-iteration / 18-bit operating point the resource model assumes.
"""

import numpy as np
import pytest

from repro.dsp.cordic import Cordic
from repro.dsp.fixedpoint import FixedPointFormat
from repro.mimo.matrix import frobenius_error
from repro.mimo.qr import CordicQrDecomposer

ITERATION_SWEEP = [6, 8, 10, 12, 16, 20, 24]
WORD_LENGTH_SWEEP = [10, 12, 14, 16, 18, 22]


def _test_matrices(count=6, seed=600):
    rng = np.random.default_rng(seed)
    return [
        (rng.normal(size=(4, 4)) + 1j * rng.normal(size=(4, 4))) / np.sqrt(2)
        for _ in range(count)
    ]


def _iteration_errors():
    matrices = _test_matrices()
    errors = {}
    for iterations in ITERATION_SWEEP:
        decomposer = CordicQrDecomposer(iterations=iterations)
        errs = []
        for h in matrices:
            q, r, _ = decomposer.decompose(h)
            errs.append(frobenius_error(q @ r, h))
        errors[iterations] = float(np.mean(errs))
    return errors


@pytest.mark.benchmark(group="ablation-cordic")
def test_ablation_cordic_iterations(benchmark, table_printer):
    errors = benchmark(_iteration_errors)
    table_printer(
        "Ablation A2: CORDIC micro-rotations vs QR reconstruction error",
        ["iterations", "mean relative error"],
        [(k, f"{v:.2e}") for k, v in errors.items()],
    )
    values = list(errors.values())
    # Accuracy improves monotonically (within noise) and reaches <1e-4 by 16
    # iterations — the accuracy the 20-cycle hardware CORDIC targets.
    assert values[0] > values[-1]
    assert errors[16] < 1e-4
    assert errors[6] > errors[16]


def _word_length_errors():
    matrices = _test_matrices(count=4, seed=601)
    errors = {}
    for word_length in WORD_LENGTH_SWEEP:
        fmt = FixedPointFormat(word_length=word_length, frac_bits=word_length - 4)
        decomposer = CordicQrDecomposer(cordic=Cordic(iterations=16, fixed_format=fmt))
        errs = []
        for h in matrices:
            q, r, _ = decomposer.decompose(h)
            errs.append(frobenius_error(q @ r, h))
        errors[word_length] = float(np.mean(errs))
    return errors


@pytest.mark.benchmark(group="ablation-cordic")
def test_ablation_cordic_word_length(benchmark, table_printer):
    errors = benchmark(_word_length_errors)
    table_printer(
        "Ablation A2: CORDIC datapath word length vs QR reconstruction error",
        ["word length (bits)", "mean relative error"],
        [(k, f"{v:.2e}") for k, v in errors.items()],
    )
    # The paper's 18-bit multipliers sit comfortably below 0.5 % error, while
    # 10-bit datapaths are an order of magnitude worse.
    assert errors[18] < 5e-3
    assert errors[10] > errors[18]
    assert errors[22] <= errors[12]

"""Figure 2 — the MIMO preamble transmission pattern.

The paper's Fig. 2 shows the staggered preamble: STS from antenna 0 only,
then each antenna transmits the LTS in its own slot before the data starts
on all antennas simultaneously.  The benchmark regenerates the schedule,
verifies the occupancy pattern sample by sample, and confirms that the
staggering is what makes per-column channel estimation possible (estimating
a full 4x4 matrix from the received LTS slots).
"""

import numpy as np
import pytest

from repro.channel.fading import FlatRayleighChannel
from repro.channel.model import MimoChannel
from repro.core.config import TransceiverConfig
from repro.core.receiver import MimoReceiver
from repro.core.transmitter import MimoTransmitter


def _generate_burst():
    transmitter = MimoTransmitter(TransceiverConfig())
    return transmitter.transmit_random(96, rng=np.random.default_rng(7))


@pytest.mark.benchmark(group="fig2-preamble")
def test_fig2_preamble_schedule(benchmark, table_printer):
    burst = benchmark(_generate_burst)
    transmitter = MimoTransmitter(TransceiverConfig())
    schedule = transmitter.preamble.transmission_schedule(4)

    table_printer(
        "Fig. 2: MIMO preamble schedule (section, antenna, start sample, length)",
        ["section", "antenna", "start", "length"],
        schedule,
    )

    layout = burst.layout
    samples = burst.samples
    # STS section: antenna 0 active, antennas 1-3 silent.
    assert np.any(np.abs(samples[0, : layout.sts_length]) > 0)
    assert np.allclose(samples[1:, : layout.sts_length], 0)
    # Each LTS slot: exactly one antenna active.
    for antenna in range(4):
        start = layout.lts_slot_start(antenna)
        stop = start + layout.lts_slot_length
        active = [a for a in range(4) if np.any(np.abs(samples[a, start:stop]) > 0)]
        assert active == [antenna]
    # Data section: every antenna active.
    data = samples[:, layout.data_start : layout.data_start + 80]
    assert all(np.any(np.abs(data[a]) > 0) for a in range(4))

    # The staggering enables full channel estimation: a 4x4 flat channel is
    # recovered column by column from the received preamble.
    fading = FlatRayleighChannel(rng=8)
    channel = MimoChannel(fading)
    received = channel.transmit(burst.samples).samples
    receiver = MimoReceiver(TransceiverConfig(), timing_advance=0)
    estimate = receiver.estimate_channel(received, lts_start=layout.sts_length)
    active_subcarriers = np.nonzero(estimate.active_mask)[0]
    for k in active_subcarriers[::13]:
        np.testing.assert_allclose(estimate.matrices[k], fading.matrix, atol=1e-6)

"""Claim C3 — 512-point OFDM scaling (Section V text).

Paper claims, for a 512-point OFDM system relative to the evaluated 64-point
build:

* the transmitter's IFFT and interleaver require ~8x the resources and the
  transmitter needs ~8x the memory bits;
* the receiver's channel-estimation and equalisation blocks stay constant;
* the receiver's memory bits grow by a factor of approximately eight;
* the FPGA still has ample memory to accommodate the 512-point system.
"""

import pytest

from repro.hardware.estimator import (
    ReceiverResourceModel,
    ResourceModelConfig,
    STRATIX_IV_DEVICE,
    TransmitterResourceModel,
)

CONFIG_512 = ResourceModelConfig(fft_size=512, n_data_subcarriers=384, bits_per_subcarrier=4)


def _generate_scaling():
    tx64, tx512 = TransmitterResourceModel(), TransmitterResourceModel(CONFIG_512)
    rx64, rx512 = ReceiverResourceModel(), ReceiverResourceModel(CONFIG_512)
    return {
        "tx_ifft_ratio": tx512.entity_usage("ifft").aluts / tx64.entity_usage("ifft").aluts,
        "tx_interleaver_ratio": (
            tx512.entity_usage("block_interleaver").aluts
            / tx64.entity_usage("block_interleaver").aluts
        ),
        "tx_memory_ratio": tx512.system_totals().memory_bits / tx64.system_totals().memory_bits,
        "rx_memory_ratio": rx512.system_totals().memory_bits / rx64.system_totals().memory_bits,
        "rx_estimation_aluts_64": sum(
            rx64.entity_usage(e).aluts for e in ReceiverResourceModel.CHANNEL_ESTIMATION_ENTITIES
        ),
        "rx_estimation_aluts_512": sum(
            rx512.entity_usage(e).aluts for e in ReceiverResourceModel.CHANNEL_ESTIMATION_ENTITIES
        ),
        "rx512_memory_utilization": rx512.utilization(STRATIX_IV_DEVICE)["memory_bits"],
    }


@pytest.mark.benchmark(group="claim-512pt")
def test_claim_512pt_scaling(benchmark, table_printer):
    results = benchmark(_generate_scaling)

    rows = [
        ("TX IFFT resource ratio (512/64)", f"{results['tx_ifft_ratio']:.2f}", "~8x"),
        ("TX interleaver resource ratio", f"{results['tx_interleaver_ratio']:.2f}", "~8x"),
        ("TX memory-bit ratio", f"{results['tx_memory_ratio']:.2f}", "~8x"),
        ("RX memory-bit ratio", f"{results['rx_memory_ratio']:.2f}", "~8x"),
        (
            "RX channel-estimation ALUTs (64 -> 512)",
            f"{results['rx_estimation_aluts_64']} -> {results['rx_estimation_aluts_512']}",
            "constant",
        ),
        (
            "RX memory utilisation at 512-pt (%)",
            f"{results['rx512_memory_utilization']:.1f}",
            "plenty available (<100)",
        ),
    ]
    table_printer("Claim C3: 512-point OFDM scaling", ["quantity", "measured", "paper"], rows)

    assert results["tx_ifft_ratio"] == pytest.approx(8.0, rel=0.01)
    assert results["tx_interleaver_ratio"] == pytest.approx(8.0, rel=0.01)
    assert results["tx_memory_ratio"] == pytest.approx(8.0, rel=0.05)
    assert 7.0 <= results["rx_memory_ratio"] <= 8.5
    assert results["rx_estimation_aluts_512"] == results["rx_estimation_aluts_64"]
    assert results["rx512_memory_utilization"] < 100.0

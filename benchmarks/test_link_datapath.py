"""Whole-burst transmit + channel datapath — batched/fused vs the references.

The receive half of the link went whole-burst first (see
``test_rx_datapath.py``); this benchmark covers the other half.  The
batched transmit chain interleaves and LUT-maps every stream's coded bits
in one pass, scatters them into one ``(n_streams, n_symbols, fft_size)``
block, pilot-inserts with one block pass, runs a single planned IFFT
through the :mod:`repro.dsp.backend` seam and cyclic-prefixes with one
strided gather; the fused channel applies fading, delay, CFO, noise, IQ
imbalance and quantisation to a single observation-window buffer in place.
Both are bit-identical to their per-symbol/stage-at-a-time references (see
``tests/test_hot_path_agreement.py``), so speed is the only degree of
freedom — measured here on the paper's synthesised 4x4, 64-point
configuration and gated at the acceptance threshold (>= 3x).

The gate covers the stages the batching touches: interleave/map -> pilots
-> IFFT -> cyclic prefix -> channel.  The convolutional encoder in front
is the same bit-serial loop on both paths (as Viterbi is on the receive
side), so it appears only in the second, engine-backbone table where it —
like Viterbi — bounds the end-to-end total.
"""

import time

import numpy as np
import pytest

from repro.channel.fading import FlatRayleighChannel
from repro.channel.model import MimoChannel
from repro.core.config import TransceiverConfig
from repro.core.transceiver import MimoTransceiver
from repro.core.transmitter import MimoTransmitter
from repro.sim.engine import simulate_point

N_INFO_BITS = 4800  # ~51 data OFDM symbols per stream at 16-QAM rate 1/2
MIN_SPEEDUP = 3.0


def _best_of(callable_, repeats=5):
    """Best (minimum) wall-clock of several runs — robust on loaded hosts."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.fixture(scope="module")
def encoded_burst():
    """One encoded payload (per-stream padded coded bits) plus its burst."""
    config = TransceiverConfig.paper_default()
    transmitter = MimoTransmitter(config)
    rng = np.random.default_rng(42)
    bits = [
        rng.integers(0, 2, size=N_INFO_BITS, dtype=np.uint8)
        for _ in range(config.n_streams)
    ]
    encoded = [transmitter._encode_stream(b) for b in bits]
    n_symbols = max(count for _, count in encoded)
    n_cbps = config.coded_bits_per_symbol
    padded = []
    for coded, _ in encoded:
        full = np.zeros(n_symbols * n_cbps, dtype=np.uint8)
        full[: coded.size] = coded
        padded.append(full)
    burst = transmitter.transmit(bits)
    return config, padded, np.stack(padded), n_symbols, burst


def _impaired_channel(vectorized):
    """A fully-loaded channel, freshly seeded so both paths draw identically."""
    return MimoChannel(
        FlatRayleighChannel(4, 4, rng=np.random.default_rng(7)),
        snr_db=18.0,
        cfo_normalized=1e-4,
        sample_delay=25,
        iq_amplitude_db=0.5,
        iq_phase_deg=2.0,
        rng=np.random.default_rng(8),
        vectorized=vectorized,
    )


@pytest.mark.benchmark(group="link-datapath")
def test_batched_tx_and_channel_speedup(benchmark, table_printer, encoded_burst):
    config, padded, stacked, n_symbols, burst = encoded_burst
    batched_tx = MimoTransmitter(config, vectorized=True)
    scalar_tx = MimoTransmitter(config, vectorized=False)

    def run_batched():
        frequency = batched_tx._map_block(stacked, n_symbols)
        samples = batched_tx._modulate_block(frequency)
        return frequency, samples, _impaired_channel(True).transmit(burst.samples)

    def run_scalar():
        frequency = np.stack(
            [scalar_tx._map_stream(bits, n_symbols) for bits in padded]
        )
        samples = np.stack(
            [scalar_tx._modulate_stream(symbols) for symbols in frequency]
        )
        return frequency, samples, _impaired_channel(False).transmit(burst.samples)

    freq_b, samples_b, out_b = run_batched()
    freq_s, samples_s, out_s = run_scalar()
    np.testing.assert_array_equal(freq_b, freq_s)
    np.testing.assert_array_equal(samples_b, samples_s)
    np.testing.assert_array_equal(out_b.samples, out_s.samples)
    assert out_b.noise_variance == out_s.noise_variance

    batched_s = benchmark.pedantic(
        lambda: _best_of(run_batched), rounds=1, iterations=1
    )
    scalar_s = _best_of(run_scalar)
    speedup = scalar_s / batched_s

    table_printer(
        f"Transmit stages + channel (map -> pilots -> IFFT -> CP -> "
        f"fading/CFO/noise/IQ), 4x4 64-pt, {n_symbols} OFDM symbols/burst",
        ["path", "per burst", "speedup"],
        [
            ("per-symbol + staged", f"{scalar_s * 1e3:.2f} ms", "1.0x"),
            ("batched + fused", f"{batched_s * 1e3:.2f} ms", f"{speedup:.1f}x"),
        ],
    )
    assert speedup >= MIN_SPEEDUP, (
        f"batched transmit + fused channel only {speedup:.1f}x faster than "
        f"the per-symbol references (required {MIN_SPEEDUP}x)"
    )


@pytest.mark.benchmark(group="link-datapath")
def test_burst_simulation_through_the_engine_backbone(benchmark, table_printer):
    """End-to-end effect: identical physics, transmit path as the only knob."""
    config = TransceiverConfig.paper_default()
    rows = []
    results = {}
    for vectorized in (False, True):
        transceiver = MimoTransceiver(
            config,
            channel=MimoChannel(snr_db=22.0, rng=9, vectorized=vectorized),
            vectorized_tx=vectorized,
        )

        def run(t=transceiver):
            t.channel.rng = np.random.default_rng(10)
            return simulate_point(
                t, n_info_bits=1200, n_bursts=3, rng=7, known_timing=True
            )

        if vectorized:
            results[vectorized] = benchmark.pedantic(run, rounds=1, iterations=1)
        else:
            results[vectorized] = run()
        elapsed = _best_of(run, repeats=2)
        label = "batched + fused" if vectorized else "per-symbol + staged"
        rows.append(
            (label, f"{elapsed * 1e3:.1f} ms", results[vectorized]["bit_errors"])
        )
    table_printer(
        "simulate_point, 3 bursts x 1200 info bits (encoder/Viterbi-bound "
        "end to end)",
        ["transmit/channel path", "3 bursts", "bit errors"],
        rows,
    )
    # Same physics bit for bit, whichever paths the link takes.
    assert results[True] == results[False]

"""Table 3 — MIMO receiver synthesis results.

Paper (4x4, 16-QAM, 64-point OFDM): ALUTs 183,957 (43.2 %), registers
173,335 (40.7 %), memory bits 367,060 (1.72 %), DSP blocks 896 (87.5 %).
"""

import pytest

from repro.hardware.estimator import ReceiverResourceModel, STRATIX_IV_DEVICE

PAPER_TABLE3 = {
    "aluts": (183_957, 43.2),
    "registers": (173_335, 40.7),
    "memory_bits": (367_060, 1.72),
    "dsp_blocks": (896, 87.5),
}


def _generate_table3():
    model = ReceiverResourceModel()
    return model.system_totals(), model.utilization(STRATIX_IV_DEVICE)


@pytest.mark.benchmark(group="table3")
def test_table3_rx_synthesis(benchmark, table_printer):
    totals, utilization = benchmark(_generate_table3)

    available = {
        "aluts": STRATIX_IV_DEVICE.aluts,
        "registers": STRATIX_IV_DEVICE.registers,
        "memory_bits": STRATIX_IV_DEVICE.memory_bits,
        "dsp_blocks": STRATIX_IV_DEVICE.dsp_blocks,
    }
    rows = []
    for resource, (paper_used, paper_pct) in PAPER_TABLE3.items():
        rows.append(
            (
                resource,
                getattr(totals, resource),
                paper_used,
                available[resource],
                f"{utilization[resource]:.2f}",
                f"{paper_pct:.2f}",
            )
        )
    table_printer(
        "Table 3: MIMO Receiver Synthesis Results",
        ["resource", "measured", "paper", "available", "measured %", "paper %"],
        rows,
    )

    for resource, (paper_used, paper_pct) in PAPER_TABLE3.items():
        assert getattr(totals, resource) == paper_used
        assert utilization[resource] == pytest.approx(paper_pct, abs=0.15)

"""Extension E1 — carrier-frequency-offset tolerance with and without the
preamble-based CFO estimator.

The paper's receiver corrects residual phase with the pilot tones only; a
real deployment also needs a CFO estimator, and the periodic STS/LTS
preamble the architecture already transmits supports the classic
repetition-correlation estimator implemented in :mod:`repro.sync.cfo`.  This
benchmark sweeps the normalised CFO and shows where pilot-only correction
collapses and the extension keeps the link closed.
"""

import pytest

from repro.channel.fading import FlatRayleighChannel
from repro.channel.model import MimoChannel
from repro.core.config import TransceiverConfig
from repro.core.transceiver import simulate_link

CFO_POINTS = [0.0, 1e-3, 3e-3, 6e-3]
N_INFO_BITS = 200


def _ber(correct_cfo: bool, cfo: float) -> float:
    config = TransceiverConfig(correct_cfo=correct_cfo)
    channel = MimoChannel(
        FlatRayleighChannel(rng=26), snr_db=35.0, rng=27, cfo_normalized=cfo
    )
    stats = simulate_link(config, channel, n_info_bits=N_INFO_BITS, n_bursts=1, rng=1)
    return stats["bit_error_rate"]


def _sweep():
    return {
        cfo: {"pilot_only": _ber(False, cfo), "with_cfo_estimator": _ber(True, cfo)}
        for cfo in CFO_POINTS
    }


@pytest.mark.benchmark(group="extension-cfo")
def test_ablation_cfo_correction(benchmark, table_printer):
    results = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    table_printer(
        "Extension E1: CFO tolerance (16-QAM rate 1/2, flat Rayleigh, 35 dB)",
        ["normalised CFO", "pilot-only BER", "with CFO estimator BER"],
        [
            (f"{cfo:.0e}", f"{row['pilot_only']:.4f}", f"{row['with_cfo_estimator']:.4f}")
            for cfo, row in results.items()
        ],
    )
    # Without an estimator the link survives small offsets (pilot phase
    # correction) but collapses at larger ones; with the estimator every
    # point decodes cleanly.
    assert results[0.0]["pilot_only"] == 0.0
    assert results[CFO_POINTS[-1]]["pilot_only"] > 0.1
    for row in results.values():
        assert row["with_cfo_estimator"] == 0.0

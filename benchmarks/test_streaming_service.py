"""Streaming multi-user downlink service — sustained rate and latency.

The paper's headline is a rate ("1 Gbps baseband"), but its motivating
scenario is a *service* ("high speed internet access anywhere and
anytime").  This benchmark runs that service end to end on the synthesised
4x4, 64-point build: N concurrent user streams multiplexed by the
round-robin downlink scheduler, every served frame crossing a fresh flat
Rayleigh realisation into the rolling-buffer streaming receiver, and
asserts the two service-level acceptance thresholds — a sustained
frames/sec floor through the software pipeline and a p99 enqueue→decode
latency ceiling on the simulated air interface.

The population size is env-scaled: tier-1 runs a few hundred users, while
``make bench-stream`` sets ``REPRO_STREAM_USERS=1000`` to demonstrate one
process serving >= 1000 concurrent user streams and to print the per-user
latency-percentile table.
"""

import os

import pytest

from repro.stream import DownlinkScheduler, PoissonTraffic

#: Concurrent user streams (``make bench-stream`` raises this to 1000).
N_USERS = int(os.environ.get("REPRO_STREAM_USERS", "200"))
FRAMES_PER_USER = 1
PER_USER_RATE_FPS = 100.0
SNR_DB = 30.0

#: Software pipeline must sustain at least this many frames/sec end to end
#: (transmit + channel + detection + full burst decode; measured ~15-25 on
#: a laptop-class core, floored conservatively for loaded CI hosts).
MIN_SUSTAINED_FPS = 3.0

#: p99 enqueue→decode latency ceiling in *simulated* time.  At ~21% offered
#: load the queueing delay is a few frame durations (10.56 us each); 1 ms
#: leaves two orders of magnitude of headroom before the service degrades.
MAX_P99_LATENCY_S = 1e-3


@pytest.fixture(scope="module")
def service_report():
    scheduler = DownlinkScheduler(
        n_users=N_USERS,
        frames_per_user=FRAMES_PER_USER,
        traffic=PoissonTraffic(PER_USER_RATE_FPS),
        mode="round_robin",
        snr_db=SNR_DB,
        base_seed=0,
    )
    return scheduler, scheduler.run()


@pytest.mark.benchmark(group="streaming-service")
def test_streaming_service_levels(service_report, table_printer):
    scheduler, report = service_report

    frame_us = 1e6 * scheduler.frame_length / scheduler.sample_rate_hz
    table_printer(
        f"streaming downlink service — {report.n_users} concurrent user streams "
        "(4x4, 64-pt, 16-QAM r1/2, flat Rayleigh @ 30 dB)",
        ["metric", "value"],
        [
            ["frames served", report.frames_served],
            ["frames delivered error-free", report.frames_delivered],
            ["loss rate", f"{100 * report.loss_rate:.2f} %"],
            ["spurious detections", report.spurious_detections],
            ["frame air time", f"{frame_us:.2f} us"],
            ["simulated air occupancy", f"{report.air_time_s * 1e3:.2f} ms"],
            ["goodput over the air", f"{report.goodput_bps / 1e6:.0f} Mbit/s"],
            ["sustained software rate", f"{report.sustained_fps:.1f} frames/s"],
            ["wall-clock", f"{report.wall_time_s:.1f} s"],
        ],
    )

    aggregate = report.latency
    rows = [
        [
            "all frames",
            f"{aggregate.p50 * 1e6:.2f}",
            f"{aggregate.p95 * 1e6:.2f}",
            f"{aggregate.p99 * 1e6:.2f}",
            f"{aggregate.worst * 1e6:.2f}",
        ]
    ]
    for quantile in (50.0, 95.0, 99.0):
        spread = report.user_latency_percentiles(quantile)
        rows.append(
            [
                f"per-user p{quantile:.0f} across users",
                f"{spread.p50 * 1e6:.2f}",
                f"{spread.p95 * 1e6:.2f}",
                f"{spread.p99 * 1e6:.2f}",
                f"{spread.worst * 1e6:.2f}",
            ]
        )
    table_printer(
        "enqueue->decode latency (simulated time, us)",
        ["distribution", "p50", "p95", "p99", "worst"],
        rows,
    )

    assert report.frames_served == N_USERS * FRAMES_PER_USER
    assert report.frames_delivered + report.frames_lost == report.frames_served
    # The service-level acceptance thresholds.
    assert report.sustained_fps >= MIN_SUSTAINED_FPS
    assert aggregate.p99 <= MAX_P99_LATENCY_S
    # The lock is genuinely selective: no detections that match nothing.
    assert report.spurious_detections == 0

"""Per-point result store — warm re-runs and cross-sweep sharing gates.

The sharded :class:`~repro.sim.store.ResultStore` replaced the per-spec
JSON cache so that *points*, not whole sweeps, are the unit of reuse.  Two
gates keep that property honest:

* a repeated sweep must be a pure store read — zero bursts simulated,
  sub-second wall clock;
* two overlapping grids sharing one store must simulate their
  intersection exactly once, cutting the second sweep's burst count by at
  least 30% versus the old per-spec behaviour (where any spec change —
  even adding one SNR point — re-simulated everything).
"""

import time

import pytest

from repro.sim import ResultStore, SweepRunner, SweepSpec
from repro.sim.engine import simulate_batch

N_INFO_BITS = 120
N_BURSTS = 10
TARGET_ERRORS = 60
BASE_SEED = 4321

#: Grid A covers the waterfall mid-band; grid B extends it down into the
#: error floor while keeping the three 18-22 dB points — the costliest
#: cells of grid B, which a per-spec cache would force it to re-simulate
#: from scratch (any spec difference used to mean a cache miss for the
#: whole grid).
GRID_A_DB = (12.0, 14.0, 16.0, 18.0, 20.0, 22.0)
GRID_B_DB = (6.0, 8.0, 10.0, 18.0, 20.0, 22.0)
SHARED_DB = sorted(set(GRID_A_DB) & set(GRID_B_DB))


def _spec(snr_grid) -> SweepSpec:
    return SweepSpec(
        snr_db=snr_grid,
        modulations=("16qam",),
        channels=("flat_rayleigh",),
        n_info_bits=N_INFO_BITS,
        n_bursts=N_BURSTS,
        target_errors=TARGET_ERRORS,
        base_seed=BASE_SEED,
    )


def _run(snr_grid, cache) -> "SweepResult":
    return SweepRunner(_spec(snr_grid), n_workers=1, batch_size=2, cache=cache).run()


@pytest.mark.benchmark(group="sweep-store")
def test_warm_rerun_is_a_pure_store_read(benchmark, table_printer, tmp_path):
    store = ResultStore(tmp_path / "points")
    first = _run(GRID_A_DB, store)
    assert not first.from_cache

    warm = benchmark.pedantic(_run, args=(GRID_A_DB, store), rounds=1, iterations=1)
    start = time.perf_counter()
    again = _run(GRID_A_DB, store)
    warm_elapsed = time.perf_counter() - start

    table_printer(
        "Warm sweep re-run from the per-point store",
        ["run", "from store", "bursts simulated", "wall clock"],
        [
            ("first", first.from_cache, first.n_bursts_simulated, f"{first.elapsed_s:.2f} s"),
            ("warm", warm.from_cache, warm.n_bursts_simulated, f"{warm_elapsed * 1e3:.1f} ms"),
        ],
    )
    # Gate: the warm re-run simulates zero bursts and completes in under a
    # second — every point is one record read.
    assert warm.from_cache and again.from_cache
    assert warm.n_bursts_simulated == 0
    assert warm_elapsed < 1.0
    assert [p.bit_errors for p in warm.points] == [p.bit_errors for p in first.points]


@pytest.mark.benchmark(group="sweep-store")
def test_overlapping_grids_share_their_intersection(
    benchmark, table_printer, tmp_path, monkeypatch
):
    store = ResultStore(tmp_path / "points")
    run_a = _run(GRID_A_DB, store)

    # Old per-spec behaviour: grid B is a different spec, so nothing is
    # reused and the full grid simulates.
    fresh_b = _run(GRID_B_DB, None)

    simulated_snrs = set()

    def counting(task):
        simulated_snrs.add(task["point"]["snr_db"])
        return simulate_batch(task)

    monkeypatch.setattr("repro.sim.runner.simulate_batch", counting)
    shared_b = benchmark.pedantic(_run, args=(GRID_B_DB, store), rounds=1, iterations=1)
    monkeypatch.undo()

    reduction = 1.0 - shared_b.n_bursts_simulated / fresh_b.n_bursts_simulated
    table_printer(
        f"Overlapping grids sharing one store — {len(SHARED_DB)} of "
        f"{len(GRID_B_DB)} points shared (burst reduction {reduction:.0%})",
        ["sweep", "bursts simulated", "points simulated"],
        [
            ("grid A (cold)", run_a.n_bursts_simulated, len(GRID_A_DB)),
            ("grid B, per-spec cache (old)", fresh_b.n_bursts_simulated, len(GRID_B_DB)),
            ("grid B, shared store", shared_b.n_bursts_simulated, len(simulated_snrs)),
        ],
    )

    # Gate: the intersection is simulated exactly once — grid B touches
    # only its non-overlapping points.
    assert simulated_snrs == set(GRID_B_DB) - set(GRID_A_DB)
    # Gate: >= 30% fewer bursts than the old per-spec cache behaviour.
    assert reduction >= 0.30
    # Shared points carry identical statistics in both sweeps.
    curve_a = run_a.ber_curve(modulation="16qam")
    curve_b = shared_b.ber_curve(modulation="16qam")
    for snr in SHARED_DB:
        assert curve_a[snr] == curve_b[snr]
    assert [p.bit_errors for p in shared_b.points] == [
        p.bit_errors for p in fresh_b.points
    ]

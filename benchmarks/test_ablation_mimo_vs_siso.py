"""Ablation A4 — MIMO vs SISO: what the four-channel replication buys & costs.

The paper positions the 4x4 transmitter as "very similar to that of the SISO
system — the greater resources required are simply due to replication for
the four channels", and the receiver's dominant extra cost is the channel
estimation/equalisation needed to separate the streams.  This benchmark
quantifies both statements with the reproduction's models: throughput and
transmitter resources scale ~linearly with the channel count, while the
receiver's QRD/inversion cost appears only in the MIMO builds.
"""

import pytest

from repro.core.config import TransceiverConfig
from repro.core.throughput import throughput_for_config
from repro.hardware.estimator import (
    ReceiverResourceModel,
    ResourceModelConfig,
    TransmitterResourceModel,
)

CHANNEL_COUNTS = [1, 2, 4]


def _generate_comparison():
    rows = []
    for n in CHANNEL_COUNTS:
        throughput = throughput_for_config(TransceiverConfig(n_antennas=n))
        tx = TransmitterResourceModel(ResourceModelConfig(n_channels=n, n_rx=n, n_tx=n))
        rx = ReceiverResourceModel(ResourceModelConfig(n_channels=n, n_rx=n, n_tx=n))
        estimation_aluts = sum(
            rx.entity_usage(entity).aluts
            for entity in ReceiverResourceModel.CHANNEL_ESTIMATION_ENTITIES
        )
        rows.append(
            {
                "channels": n,
                "info_rate_mbps": throughput.info_bit_rate_bps / 1e6,
                "tx_aluts": tx.system_totals().aluts,
                "rx_estimation_aluts": estimation_aluts,
            }
        )
    return rows


@pytest.mark.benchmark(group="ablation-mimo-siso")
def test_ablation_mimo_vs_siso(benchmark, table_printer):
    rows = benchmark(_generate_comparison)
    table_printer(
        "Ablation A4: antenna-count scaling (16-QAM, rate 1/2, 64-pt OFDM)",
        ["channels", "info rate (Mbps)", "TX ALUTs", "RX estimation ALUTs"],
        [
            (
                row["channels"],
                f"{row['info_rate_mbps']:.0f}",
                row["tx_aluts"],
                row["rx_estimation_aluts"],
            )
            for row in rows
        ],
    )
    siso, two_by_two, mimo = rows
    # Throughput is proportional to the number of spatial streams.
    assert mimo["info_rate_mbps"] == pytest.approx(4 * siso["info_rate_mbps"])
    assert two_by_two["info_rate_mbps"] == pytest.approx(2 * siso["info_rate_mbps"])
    # Transmitter cost is dominated by per-channel replication (~4x SISO).
    assert mimo["tx_aluts"] == pytest.approx(4 * siso["tx_aluts"], rel=0.02)
    # The channel estimation / equalisation burden grows super-linearly with
    # the antenna count (QRD cell count ~ n^2), which is why it dominates the
    # 4x4 receiver (Table 4).
    assert mimo["rx_estimation_aluts"] > 4 * siso["rx_estimation_aluts"]

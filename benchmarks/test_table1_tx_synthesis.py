"""Table 1 — MIMO transmitter synthesis results.

Paper (4x4, 16-QAM, 64-point OFDM): ALUTs 33,423 (7.8 %), registers 12,320
(2.9 %), memory bits 265,408 (1.2 %), 18-bit DSP blocks 32 (3.1 %).
The benchmark regenerates the table from the calibrated resource model and
times the model evaluation.
"""

import pytest

from repro.hardware.estimator import STRATIX_IV_DEVICE, TransmitterResourceModel

PAPER_TABLE1 = {
    "aluts": (33_423, 7.8),
    "registers": (12_320, 2.9),
    "memory_bits": (265_408, 1.2),
    "dsp_blocks": (32, 3.1),
}


def _generate_table1():
    model = TransmitterResourceModel()
    totals = model.system_totals()
    utilization = model.utilization(STRATIX_IV_DEVICE)
    return totals, utilization


@pytest.mark.benchmark(group="table1")
def test_table1_tx_synthesis(benchmark, table_printer):
    totals, utilization = benchmark(_generate_table1)

    available = {
        "aluts": STRATIX_IV_DEVICE.aluts,
        "registers": STRATIX_IV_DEVICE.registers,
        "memory_bits": STRATIX_IV_DEVICE.memory_bits,
        "dsp_blocks": STRATIX_IV_DEVICE.dsp_blocks,
    }
    rows = []
    for resource, (paper_used, paper_pct) in PAPER_TABLE1.items():
        measured = getattr(totals, resource)
        rows.append(
            (
                resource,
                measured,
                paper_used,
                available[resource],
                f"{utilization[resource]:.1f}",
                f"{paper_pct:.1f}",
            )
        )
    table_printer(
        "Table 1: MIMO Transmitter Synthesis Results",
        ["resource", "measured", "paper", "available", "measured %", "paper %"],
        rows,
    )

    for resource, (paper_used, paper_pct) in PAPER_TABLE1.items():
        assert getattr(totals, resource) == paper_used
        assert utilization[resource] == pytest.approx(paper_pct, abs=0.15)

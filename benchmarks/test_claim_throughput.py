"""Claim C1 — the 1 Gbps headline (title/abstract) at a 100 MHz clock.

The paper's synthesised configuration (16-QAM, rate 1/2) carries 480 Mbps;
the 1 Gbps figure requires 64-QAM with rate-3/4 coding (1.08 Gbps), and the
512-point OFDM variant sustains it as well.  This benchmark regenerates the
throughput sweep across every modulation/code-rate pair — enumerated through
the :class:`repro.sim.SweepSpec` grid layer, the same typed description the
link-level sweeps use — and checks who crosses the 1 Gbps line.
"""

import pytest

from repro.coding.convolutional import CodeRate
from repro.core.config import TransceiverConfig
from repro.core.throughput import throughput_for_config, throughput_report
from repro.modulation.constellations import Modulation
from repro.sim import SweepSpec
from repro.sim.engine import build_config

#: (modulation, code rate) -> expected information rate in Gbps at 100 MHz.
EXPECTED_RATES_GBPS = {
    ("bpsk", "1/2"): 0.12,
    ("bpsk", "2/3"): 0.16,
    ("bpsk", "3/4"): 0.18,
    ("qpsk", "1/2"): 0.24,
    ("qpsk", "2/3"): 0.32,
    ("qpsk", "3/4"): 0.36,
    ("16qam", "1/2"): 0.48,
    ("16qam", "2/3"): 0.64,
    ("16qam", "3/4"): 0.72,
    ("64qam", "1/2"): 0.72,
    ("64qam", "2/3"): 0.96,
    ("64qam", "3/4"): 1.08,
}


@pytest.mark.benchmark(group="claim-throughput")
def test_claim_1gbps_throughput(benchmark, table_printer):
    rows = benchmark(throughput_report)

    table_printer(
        "Claim C1: information bit rate at 100 MHz (4 spatial streams, 64-pt OFDM)",
        ["modulation", "rate", "Gbps", "expected", ">= 1 Gbps"],
        [
            (
                row["modulation"],
                row["code_rate"],
                f"{row['info_rate_gbps']:.3f}",
                EXPECTED_RATES_GBPS[(row["modulation"], row["code_rate"])],
                row["meets_1gbps"],
            )
            for row in rows
        ],
    )

    for row in rows:
        expected = EXPECTED_RATES_GBPS[(row["modulation"], row["code_rate"])]
        assert row["info_rate_gbps"] == pytest.approx(expected, rel=1e-9)

    gigabit = [row for row in rows if row["meets_1gbps"]]
    assert len(gigabit) == 1
    assert (gigabit[0]["modulation"], gigabit[0]["code_rate"]) == ("64qam", "3/4")

    # The synthesised configuration of Tables 1-4 runs at 480 Mbps.
    synthesised = throughput_for_config(TransceiverConfig.paper_default())
    assert synthesised.info_bit_rate_bps == pytest.approx(480e6)

    # The 512-point variant discussed in Section V also sustains > 1 Gbps.
    large = throughput_for_config(
        TransceiverConfig(fft_size=512, modulation=Modulation.QAM64, code_rate=CodeRate.RATE_3_4)
    )
    assert large.info_bit_rate_bps >= 1e9


@pytest.mark.benchmark(group="claim-throughput")
def test_claim_throughput_via_sweep_grid(benchmark, table_printer):
    """The same table, enumerated through the sweep engine's grid layer."""
    spec = SweepSpec(
        snr_db=(30.0,),
        modulations=("bpsk", "qpsk", "16qam", "64qam"),
        code_rates=("1/2", "2/3", "3/4"),
    )

    def _grid_rates():
        return {
            (point.modulation, point.code_rate): throughput_for_config(
                build_config(point, spec)
            ).info_bit_rate_bps
            for point in spec.points()
        }

    rates = benchmark(_grid_rates)
    assert len(rates) == len(EXPECTED_RATES_GBPS)
    table_printer(
        "Claim C1 via SweepSpec grid: every (modulation, rate) cell",
        ["modulation", "rate", "Gbps", "expected"],
        [
            (m, r, f"{bps / 1e9:.3f}", EXPECTED_RATES_GBPS[(m, r)])
            for (m, r), bps in sorted(rates.items())
        ],
    )
    for cell, bps in rates.items():
        assert bps / 1e9 == pytest.approx(EXPECTED_RATES_GBPS[cell], rel=1e-9)

"""Link-level validation — BER vs SNR of the complete 4x4 MIMO-OFDM chain.

The paper validates the datapath functionally (test benches feeding the
hardware) rather than publishing BER curves; this benchmark provides the
implicit link-level evidence behind the design: the end-to-end chain
(coding, interleaving, preamble, channel estimation, ZF detection, Viterbi)
closes the link, BER falls monotonically with SNR, and denser constellations
need more SNR — the qualitative shape any correct implementation must show.
"""

import pytest

from repro.channel.fading import FlatRayleighChannel
from repro.channel.model import MimoChannel
from repro.core.config import TransceiverConfig
from repro.core.transceiver import simulate_link

SNR_POINTS_DB = [6.0, 14.0, 22.0, 30.0]
N_INFO_BITS = 300
N_BURSTS = 2


def _ber_curve(modulation: str) -> dict:
    config = TransceiverConfig(modulation=modulation)
    curve = {}
    for snr_db in SNR_POINTS_DB:
        channel = MimoChannel(FlatRayleighChannel(rng=400), snr_db=snr_db, rng=401)
        stats = simulate_link(
            config, channel, n_info_bits=N_INFO_BITS, n_bursts=N_BURSTS, rng=402
        )
        curve[snr_db] = stats["bit_error_rate"]
    return curve


@pytest.mark.benchmark(group="link-ber")
def test_link_ber_16qam(benchmark, table_printer):
    curve = benchmark.pedantic(_ber_curve, args=("16qam",), rounds=1, iterations=1)
    table_printer(
        "Link BER vs SNR — 16-QAM rate 1/2 (paper's synthesised configuration)",
        ["SNR (dB)", "BER"],
        [(snr, f"{ber:.4f}") for snr, ber in curve.items()],
    )
    bers = list(curve.values())
    # Monotone (non-increasing) BER with SNR and an error-free top point.
    assert all(bers[i] >= bers[i + 1] for i in range(len(bers) - 1))
    assert bers[-1] == 0.0
    assert bers[0] > 0.0


@pytest.mark.benchmark(group="link-ber")
def test_link_ber_qpsk_vs_64qam(benchmark, table_printer):
    def _both():
        return _ber_curve("qpsk"), _ber_curve("64qam")

    qpsk, qam64 = benchmark.pedantic(_both, rounds=1, iterations=1)
    table_printer(
        "Link BER vs SNR — QPSK vs 64-QAM (rate 1/2, flat Rayleigh)",
        ["SNR (dB)", "QPSK BER", "64-QAM BER"],
        [
            (snr, f"{qpsk[snr]:.4f}", f"{qam64[snr]:.4f}")
            for snr in SNR_POINTS_DB
        ],
    )
    # Denser constellations need more SNR: at every point 64-QAM is no
    # better than QPSK, and QPSK closes the link at a lower SNR.
    for snr in SNR_POINTS_DB:
        assert qam64[snr] >= qpsk[snr]
    assert qpsk[SNR_POINTS_DB[-2]] == 0.0
    assert qam64[SNR_POINTS_DB[-1]] <= 0.01

"""Link-level validation — BER vs SNR of the complete 4x4 MIMO-OFDM chain.

The paper validates the datapath functionally (test benches feeding the
hardware) rather than publishing BER curves; this benchmark provides the
implicit link-level evidence behind the design: the end-to-end chain
(coding, interleaving, preamble, channel estimation, ZF detection, Viterbi)
closes the link, BER falls monotonically with SNR, and denser constellations
need more SNR — the qualitative shape any correct implementation must show.

Both curves are produced by one :class:`repro.sim.SweepSpec` grid each,
executed through :class:`repro.sim.SweepRunner` with the shared-fading mode
(every SNR point and modulation sees the same channel realisation, the
classic waterfall setup) and caching disabled so the benchmark always
measures real simulation time.
"""

import pytest

from repro.sim import SweepRunner, SweepSpec

SNR_POINTS_DB = (6.0, 14.0, 22.0, 30.0)
N_INFO_BITS = 300
N_BURSTS = 2
BASE_SEED = 404


def _sweep(modulations):
    spec = SweepSpec(
        snr_db=SNR_POINTS_DB,
        modulations=modulations,
        channels=("flat_rayleigh",),
        n_info_bits=N_INFO_BITS,
        n_bursts=N_BURSTS,
        target_errors=None,
        fresh_fading_per_burst=False,
        base_seed=BASE_SEED,
    )
    return SweepRunner(spec, n_workers=1, cache=False).run()


@pytest.mark.benchmark(group="link-ber")
def test_link_ber_16qam(benchmark, table_printer):
    result = benchmark.pedantic(_sweep, args=(("16qam",),), rounds=1, iterations=1)
    curve = result.ber_curve(modulation="16qam")
    table_printer(
        "Link BER vs SNR — 16-QAM rate 1/2 (paper's synthesised configuration)",
        ["SNR (dB)", "BER"],
        [(snr, f"{ber:.4f}") for snr, ber in curve.items()],
    )
    bers = list(curve.values())
    # Monotone (non-increasing) BER with SNR and an error-free top point.
    assert all(bers[i] >= bers[i + 1] for i in range(len(bers) - 1))
    assert bers[-1] == 0.0
    assert bers[0] > 0.0


@pytest.mark.benchmark(group="link-ber")
def test_link_ber_qpsk_vs_64qam(benchmark, table_printer):
    result = benchmark.pedantic(
        _sweep, args=(("qpsk", "64qam"),), rounds=1, iterations=1
    )
    qpsk = result.ber_curve(modulation="qpsk")
    qam64 = result.ber_curve(modulation="64qam")
    table_printer(
        "Link BER vs SNR — QPSK vs 64-QAM (rate 1/2, flat Rayleigh)",
        ["SNR (dB)", "QPSK BER", "64-QAM BER"],
        [
            (snr, f"{qpsk[snr]:.4f}", f"{qam64[snr]:.4f}")
            for snr in SNR_POINTS_DB
        ],
    )
    # Denser constellations need more SNR: at every point 64-QAM is no
    # better than QPSK, and QPSK closes the link at a lower SNR.
    for snr in SNR_POINTS_DB:
        assert qam64[snr] >= qpsk[snr]
    assert qpsk[SNR_POINTS_DB[-2]] == 0.0
    assert qam64[SNR_POINTS_DB[-1]] <= 0.01

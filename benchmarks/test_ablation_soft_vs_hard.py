"""Ablation A3 — hard vs soft symbol demapping into the Viterbi decoder.

The paper's demapper "can be set up to perform hard or soft symbol
demapping" and the de-interleaver is sized to carry soft values.  This
ablation measures what the soft option buys: coded BER of the full 4x4 link
with hard-decision and soft-decision (LLR) demapping at the same SNR points.
"""

import pytest

from repro.channel.fading import FlatRayleighChannel
from repro.channel.model import MimoChannel
from repro.core.config import TransceiverConfig
from repro.core.transceiver import simulate_link

SNR_POINTS_DB = [16.0, 20.0, 24.0]
N_INFO_BITS = 300
N_BURSTS = 2


def _ber(soft: bool, snr_db: float) -> float:
    config = TransceiverConfig(soft_decision=soft)
    channel = MimoChannel(FlatRayleighChannel(rng=25), snr_db=snr_db, rng=701)
    stats = simulate_link(config, channel, n_info_bits=N_INFO_BITS, n_bursts=N_BURSTS, rng=702)
    return stats["bit_error_rate"]


def _sweep():
    return {
        snr: {"hard": _ber(False, snr), "soft": _ber(True, snr)} for snr in SNR_POINTS_DB
    }


@pytest.mark.benchmark(group="ablation-soft-hard")
def test_ablation_soft_vs_hard(benchmark, table_printer):
    results = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    table_printer(
        "Ablation A3: hard vs soft demapping (16-QAM rate 1/2, flat Rayleigh)",
        ["SNR (dB)", "hard BER", "soft BER"],
        [
            (snr, f"{row['hard']:.4f}", f"{row['soft']:.4f}")
            for snr, row in results.items()
        ],
    )
    # In the waterfall region soft-decision decoding never does worse than
    # hard-decision, and it closes the link at the top of the sweep.
    for row in results.values():
        assert row["soft"] <= row["hard"] + 1e-9
    assert results[SNR_POINTS_DB[-1]]["soft"] == 0.0
    assert results[SNR_POINTS_DB[0]]["hard"] > 0.0

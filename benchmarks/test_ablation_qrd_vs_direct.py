"""Ablation A1 — the paper's QRD/back-substitution inversion pipeline vs a
direct floating-point inversion.

The paper inverts every subcarrier's channel matrix via QR decomposition
("Matrix inversion is a computationally intensive calculation and in order
to implement this efficiently, QR decomposition is performed").  This
ablation quantifies what that pipeline costs and buys in the reproduction:
accuracy of the Givens/CORDIC path against numpy's inverse, and the cycle
cost the hardware pays (440-cycle pipeline, one matrix accepted every 4
cycles) versus an idealised direct inversion with no such structure.
"""

import numpy as np
import pytest

from repro.mimo.channel_estimation import invert_channel_matrices
from repro.mimo.matrix import frobenius_error
from repro.rtl.systolic_qrd import SystolicQrdArray

N_SUBCARRIERS = 52


def _random_channels(seed=500):
    rng = np.random.default_rng(seed)
    return rng.normal(size=(N_SUBCARRIERS, 4, 4)) + 1j * rng.normal(size=(N_SUBCARRIERS, 4, 4))


@pytest.mark.benchmark(group="ablation-qrd")
def test_ablation_qrd_vs_direct_accuracy(benchmark, table_printer):
    channels = _random_channels()
    qrd_inverses = benchmark(invert_channel_matrices, channels)
    direct_inverses = np.array([np.linalg.inv(channels[k]) for k in range(N_SUBCARRIERS)])

    errors = [
        frobenius_error(qrd_inverses[k], direct_inverses[k]) for k in range(N_SUBCARRIERS)
    ]
    identity_errors = [
        frobenius_error(qrd_inverses[k] @ channels[k], np.eye(4)) for k in range(N_SUBCARRIERS)
    ]
    cordic_inverses = invert_channel_matrices(channels[:8], use_cordic=True, cordic_iterations=16)
    cordic_errors = [
        frobenius_error(cordic_inverses[k] @ channels[k], np.eye(4)) for k in range(8)
    ]

    table_printer(
        "Ablation A1: QRD-based inversion accuracy (52 subcarriers, 4x4)",
        ["metric", "value"],
        [
            ("max |QRD - direct| (relative)", f"{max(errors):.2e}"),
            ("max |QRD_inv @ H - I|", f"{max(identity_errors):.2e}"),
            ("max |CORDIC_inv @ H - I| (16 iterations)", f"{max(cordic_errors):.2e}"),
        ],
    )
    assert max(errors) < 1e-10
    assert max(identity_errors) < 1e-10
    assert max(cordic_errors) < 1e-3


@pytest.mark.benchmark(group="ablation-qrd")
def test_ablation_qrd_cycle_cost(benchmark, table_printer):
    array = SystolicQrdArray(n=4)
    channels = _random_channels(seed=501)

    def _hardware_cost():
        # Pipeline: one matrix enters every n cycles, plus one pipeline flush.
        fill = array.datapath_latency_cycles
        streaming = N_SUBCARRIERS * array.n
        return fill + streaming

    cycles = benchmark(_hardware_cost)
    per_matrix_direct = 16  # an idealised fully-parallel direct inverter
    table_printer(
        "Ablation A1: cycle cost of the QRD pipeline (52 subcarriers)",
        ["approach", "cycles", "us @ 100 MHz"],
        [
            ("QRD systolic pipeline", cycles, f"{cycles * 0.01:.2f}"),
            (
                "idealised direct inversion (no pipeline reuse)",
                N_SUBCARRIERS * per_matrix_direct,
                f"{N_SUBCARRIERS * per_matrix_direct * 0.01:.2f}",
            ),
        ],
    )
    # The pipelined QRD amortises its 440-cycle latency across subcarriers:
    # the marginal cost per additional subcarrier is only n cycles.
    assert cycles == 440 + N_SUBCARRIERS * 4
    # Sanity: numerical QRD on all subcarriers matches direct inversion
    # (already asserted above); here we only check the structural claim that
    # throughput is one matrix per n cycles.
    assert array.throughput_matrices_per_cycle() == pytest.approx(1 / 4)
    assert channels.shape[0] == N_SUBCARRIERS

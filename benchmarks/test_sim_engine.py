"""Sweep-engine speedup — batched ``repro.sim`` vs the serial burst loop.

The ROADMAP's scale goal needs BER grids to be cheap.  This benchmark runs
the same SNR grid twice over identical physics:

* the *serial baseline* — a plain per-point ``simulate_link`` loop running
  every burst, the pattern the benchmarks used before the engine existed;
* the *engine* — :class:`repro.sim.SweepRunner` with early stopping, which
  abandons each grid point as soon as its bit-error target is met.

On the error-rich half of a waterfall the target is hit within a few
bursts, so the engine simulates a fraction of the bursts for a BER estimate
of the same statistical quality (accuracy follows the error *count*).  A
second identical sweep must be served from the JSON cache without
simulating a single burst.

This is a scaled-down tier-1-friendly version of the acceptance sweep
(10 SNR points x 200 bursts/point), which on this grid shape reaches far
larger ratios; ``docs/simulation.md`` shows the full-scale command.
"""

import time

import pytest

from repro.channel.fading import FlatRayleighChannel
from repro.channel.model import MimoChannel
from repro.core.config import TransceiverConfig
from repro.core.transceiver import simulate_link
from repro.sim import SweepRunner, SweepSpec

SNR_POINTS_DB = (4.0, 6.0, 8.0, 10.0, 12.0, 14.0, 16.0, 18.0, 20.0, 22.0)
N_INFO_BITS = 120
N_BURSTS = 12
TARGET_ERRORS = 60
BASE_SEED = 1234


def _engine_sweep(cache) -> "SweepRunner":
    spec = SweepSpec(
        snr_db=SNR_POINTS_DB,
        modulations=("16qam",),
        channels=("flat_rayleigh",),
        n_info_bits=N_INFO_BITS,
        n_bursts=N_BURSTS,
        target_errors=TARGET_ERRORS,
        base_seed=BASE_SEED,
    )
    return SweepRunner(spec, n_workers=1, batch_size=2, cache=cache).run()


def _serial_baseline() -> dict:
    curve = {}
    for index, snr_db in enumerate(SNR_POINTS_DB):
        channel = MimoChannel(
            FlatRayleighChannel(rng=BASE_SEED + index), snr_db=snr_db, rng=BASE_SEED
        )
        stats = simulate_link(
            TransceiverConfig(),
            channel,
            n_info_bits=N_INFO_BITS,
            n_bursts=N_BURSTS,
            rng=BASE_SEED,
        )
        curve[snr_db] = stats["bit_error_rate"]
    return curve


@pytest.mark.benchmark(group="sim-engine")
def test_engine_early_stopping_beats_serial_loop(benchmark, table_printer, tmp_path):
    serial_start = time.perf_counter()
    serial_curve = _serial_baseline()
    serial_elapsed = time.perf_counter() - serial_start

    result = benchmark.pedantic(
        _engine_sweep, args=(tmp_path,), rounds=1, iterations=1
    )
    engine_curve = result.ber_curve(modulation="16qam")

    speedup = serial_elapsed / result.elapsed_s
    table_printer(
        f"Sweep engine vs serial loop — {len(SNR_POINTS_DB)} SNR points, "
        f"{N_BURSTS} bursts/point budget (speedup {speedup:.1f}x)",
        ["SNR (dB)", "serial BER", "engine BER", "engine bursts"],
        [
            (
                snr,
                f"{serial_curve[snr]:.4f}",
                f"{engine_curve[snr]:.4f}",
                next(p.n_bursts for p in result.points if p.point.snr_db == snr),
            )
            for snr in SNR_POINTS_DB
        ],
    )

    # The serial loop always runs the full budget; early stopping must cut
    # the simulated burst count substantially.  The wall-clock ratio is
    # printed above but deliberately not asserted: single-run timings on a
    # loaded CI host are too noisy, and the burst-count check is the
    # deterministic form of the same claim.
    assert result.n_bursts_simulated < len(SNR_POINTS_DB) * N_BURSTS / 2
    # Same qualitative physics: error-rich at the bottom of the grid.
    assert engine_curve[SNR_POINTS_DB[0]] > 0.1
    assert serial_curve[SNR_POINTS_DB[0]] > 0.1


@pytest.mark.benchmark(group="sim-engine")
def test_repeated_sweep_is_served_from_cache(benchmark, table_printer, tmp_path):
    first = _engine_sweep(tmp_path)
    assert not first.from_cache

    cached = benchmark.pedantic(
        _engine_sweep, args=(tmp_path,), rounds=1, iterations=1
    )
    start = time.perf_counter()
    again = _engine_sweep(tmp_path)
    cached_elapsed = time.perf_counter() - start
    table_printer(
        "Cached sweep re-run",
        ["run", "from cache", "bursts simulated", "wall clock"],
        [
            ("first", first.from_cache, first.n_bursts_simulated, f"{first.elapsed_s:.2f} s"),
            ("second", cached.from_cache, cached.n_bursts_simulated, f"{cached_elapsed * 1e3:.1f} ms"),
        ],
    )
    assert cached.from_cache
    assert again.from_cache
    assert cached.n_bursts_simulated == 0
    # The acceptance criterion: an identical re-run completes in under a
    # second without simulating a burst.
    assert cached_elapsed < 1.0
    assert [p.bit_errors for p in cached.points] == [p.bit_errors for p in first.points]

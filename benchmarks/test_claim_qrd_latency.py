"""Claim C2 — CORDIC and QRD pipeline latency (Section IV / Fig. 8 text).

Paper: "Each CORDIC element has a latency of 20 clock cycles ... The QRD
circuit therefore has a data-path latency of 440 clock cycles."  The
benchmark regenerates those figures from the structural systolic-array model
and times one matrix decomposition through the cell-level model.
"""

import numpy as np
import pytest

from repro.dsp.cordic import CORDIC_PIPELINE_LATENCY
from repro.hardware.latency import LatencyModel, PAPER_QRD_LATENCY_CYCLES
from repro.rtl.systolic_qrd import SystolicQrdArray

PAPER_CORDIC_LATENCY = 20
PAPER_BOUNDARY_CELLS = 4
PAPER_R_INTERNAL_CELLS = 6


@pytest.mark.benchmark(group="claim-qrd-latency")
def test_claim_qrd_latency(benchmark, table_printer):
    array = SystolicQrdArray(n=4, cordic_iterations=16)
    rng = np.random.default_rng(0)
    matrix = (rng.normal(size=(4, 4)) + 1j * rng.normal(size=(4, 4))) / np.sqrt(2)

    benchmark(array.process, matrix)

    latency_model = LatencyModel()
    rows = [
        ("CORDIC pipeline latency (cycles)", CORDIC_PIPELINE_LATENCY, PAPER_CORDIC_LATENCY),
        ("QRD boundary cells", array.boundary_cell_count, PAPER_BOUNDARY_CELLS),
        ("QRD internal cells (R array)", array.r_array_internal_cell_count, PAPER_R_INTERNAL_CELLS),
        ("QRD datapath latency (cycles)", array.datapath_latency_cycles, PAPER_QRD_LATENCY_CYCLES),
        (
            "QRD datapath latency (us @ 100 MHz)",
            f"{array.datapath_latency_cycles * 10e-3:.2f}",
            f"{PAPER_QRD_LATENCY_CYCLES * 10e-3:.2f}",
        ),
        (
            "Channel-estimation latency (cycles, 64 subcarriers)",
            latency_model.channel_estimation_cycles,
            "(not reported; 'massive latency')",
        ),
    ]
    table_printer("Claim C2: CORDIC / QRD latency", ["quantity", "measured", "paper"], rows)

    assert CORDIC_PIPELINE_LATENCY == PAPER_CORDIC_LATENCY
    assert array.boundary_cell_count == PAPER_BOUNDARY_CELLS
    assert array.r_array_internal_cell_count == PAPER_R_INTERNAL_CELLS
    assert array.datapath_latency_cycles == PAPER_QRD_LATENCY_CYCLES
    assert latency_model.qrd_cycles == PAPER_QRD_LATENCY_CYCLES
    # The data FIFOs must cover the channel-estimation latency, which is why
    # the paper buffers OFDM frames while estimation completes.
    assert latency_model.required_data_fifo_depth() > PAPER_QRD_LATENCY_CYCLES

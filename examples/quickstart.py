#!/usr/bin/env python
"""Quickstart: run one 4x4 MIMO-OFDM burst end to end.

Reproduces: the paper's synthesised operating point — the 4x4, 16-QAM,
64-point OFDM, rate-1/2, 100 MHz configuration of Tables 1-4 running the
Fig. 4 transmit and Fig. 5 receive datapaths — on one burst, printing what
every stage recovered.

Run from a clean checkout with::

    PYTHONPATH=src python examples/quickstart.py

(The PYTHONPATH prefix is optional; the script falls back to the in-tree
``src`` directory when ``repro`` is not installed.)
"""

from __future__ import annotations

import numpy as np

import _bootstrap  # noqa: F401 -- makes the in-tree repro package importable

from repro import MimoChannel, MimoTransceiver, TransceiverConfig
from repro.channel import FlatRayleighChannel
from repro.core.throughput import throughput_for_config


def main() -> None:
    config = TransceiverConfig.paper_default()
    print("Configuration:")
    print(f"  antennas            : {config.n_antennas}x{config.n_antennas}")
    print(f"  FFT size            : {config.fft_size}")
    print(f"  modulation          : {config.modulation.value}")
    print(f"  code rate           : {config.code_rate.value}")
    print(f"  coded bits / symbol : {config.coded_bits_per_symbol} per stream")
    print(f"  clock               : {config.clock_hz / 1e6:.0f} MHz")

    throughput = throughput_for_config(config)
    print(f"  information rate    : {throughput.info_bit_rate_bps / 1e6:.0f} Mbit/s")

    channel = MimoChannel(
        fading=FlatRayleighChannel(rng=26),
        snr_db=30.0,
        sample_delay=25,
        rng=2,
    )
    transceiver = MimoTransceiver(config, channel=channel)

    print("\nRunning one burst of 512 information bits per stream ...")
    result = transceiver.run_burst(n_info_bits=512, rng=3)

    burst = result.burst
    print(f"  burst length        : {burst.n_samples} samples "
          f"({burst.duration_s * 1e6:.1f} us)")
    print(f"  OFDM data symbols   : {burst.n_ofdm_symbols}")
    print(f"  LTS located at      : sample {result.receive_result.lts_start} "
          f"(transmitted at {burst.layout.sts_length + channel.sample_delay})")
    print(f"  total payload       : {result.total_bits} bits")
    print(f"  bit errors          : {result.bit_errors}")
    print(f"  bit error rate      : {result.bit_error_rate:.2e}")
    for stream in result.receive_result.streams:
        mean_error = np.mean(np.abs(stream.equalized_symbols)) if stream.equalized_symbols.size else 0
        print(
            f"    stream {stream.stream}: BER {stream.bit_error_rate:.2e}, "
            f"mean equalised magnitude {mean_error:.2f}"
        )

    if result.bit_errors == 0:
        print("\nAll four spatial streams decoded without error.")
    else:
        print("\nResidual errors remain — try a higher SNR or a lower-order modulation.")


if __name__ == "__main__":
    main()

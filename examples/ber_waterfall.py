#!/usr/bin/env python
"""BER waterfall: one batched sweep over every modulation the paper supports.

Reproduces: the implicit link-level behaviour behind the paper's modulation
options (Section III's BPSK-64QAM symbol mapper and Table 1/3 datapaths) and
the 1 Gbps headline operating point of the title/abstract — denser
constellations carry more bits per OFDM symbol (64-QAM with rate-3/4 coding
is what reaches 1 Gbps) but need more SNR to close the link over a fading
channel.

The whole modulation x SNR grid is described by one
:class:`repro.sim.SweepSpec` and executed by :class:`repro.sim.SweepRunner`,
which early-stops error-rich points and serves repeated runs from the JSON
result cache — rerun the script to see the cache hit.

Run from a clean checkout with::

    PYTHONPATH=src python examples/ber_waterfall.py [--bursts N] [--bits N]

(The PYTHONPATH prefix is optional; the script falls back to the in-tree
``src`` directory when ``repro`` is not installed.)
"""

from __future__ import annotations

import argparse
import _bootstrap  # noqa: F401 -- makes the in-tree repro package importable

from repro import TransceiverConfig
from repro.core.throughput import throughput_for_config
from repro.sim import SweepRunner, SweepSpec

MODULATIONS = ("bpsk", "qpsk", "16qam", "64qam")
SNR_POINTS_DB = (5.0, 10.0, 15.0, 20.0, 25.0, 30.0, 35.0)


def run_sweep(n_bursts: int, n_info_bits: int) -> None:
    spec = SweepSpec(
        snr_db=SNR_POINTS_DB,
        modulations=MODULATIONS,
        channels=("flat_rayleigh",),
        n_info_bits=n_info_bits,
        n_bursts=n_bursts,
        target_errors=200,
        fresh_fading_per_burst=False,
        base_seed=11,
    )
    result = SweepRunner(spec, n_workers=1).run()
    source = "cache" if result.from_cache else "simulation"
    print(
        f"BER vs SNR over a flat Rayleigh 4x4 channel (rate-1/2 coding) "
        f"[{source}, {result.n_bursts_simulated} bursts simulated, "
        f"{result.elapsed_s:.1f} s]"
    )

    curves = {m: result.ber_curve(modulation=m) for m in MODULATIONS}
    header = "SNR (dB) | " + " | ".join(f"{m:>8s}" for m in MODULATIONS)
    print(header)
    print("-" * len(header))
    for snr_db in SNR_POINTS_DB:
        row = [f"{snr_db:8.1f}"]
        row.extend(f"{curves[m][snr_db]:8.4f}" for m in MODULATIONS)
        print(" | ".join(row))

    print("\nPeak information rate of each modulation (rate 3/4, 100 MHz clock):")
    for modulation in MODULATIONS:
        config = TransceiverConfig(modulation=modulation, code_rate="3/4")
        rate = throughput_for_config(config).info_bit_rate_bps
        marker = "  <-- 1 Gbps headline" if rate >= 1e9 else ""
        print(f"  {modulation:>6s}: {rate / 1e9:5.2f} Gbit/s{marker}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bursts", type=int, default=2, help="bursts per SNR point")
    parser.add_argument("--bits", type=int, default=300, help="information bits per stream")
    args = parser.parse_args()
    run_sweep(args.bursts, args.bits)


if __name__ == "__main__":
    main()

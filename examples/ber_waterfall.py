#!/usr/bin/env python
"""BER waterfall: sweep SNR for every modulation the transceiver supports.

Reproduces the implicit link-level behaviour behind the paper's modulation
options (BPSK to 64-QAM): denser constellations carry more bits per OFDM
symbol — 64-QAM with rate-3/4 coding is what reaches 1 Gbps — but need more
SNR to close the link over a fading channel with zero-forcing detection.

Run with::

    python examples/ber_waterfall.py [--bursts N] [--bits N]
"""

from __future__ import annotations

import argparse

from repro import TransceiverConfig, simulate_link
from repro.channel import FlatRayleighChannel, MimoChannel
from repro.core.throughput import throughput_for_config


def run_sweep(n_bursts: int, n_info_bits: int) -> None:
    modulations = ["bpsk", "qpsk", "16qam", "64qam"]
    snr_points = [5.0, 10.0, 15.0, 20.0, 25.0, 30.0, 35.0]

    print("BER vs SNR over a flat Rayleigh 4x4 channel (rate-1/2 coding)")
    header = "SNR (dB) | " + " | ".join(f"{m:>8s}" for m in modulations)
    print(header)
    print("-" * len(header))

    curves = {m: [] for m in modulations}
    for snr_db in snr_points:
        row = [f"{snr_db:8.1f}"]
        for modulation in modulations:
            config = TransceiverConfig(modulation=modulation)
            channel = MimoChannel(FlatRayleighChannel(rng=11), snr_db=snr_db, rng=12)
            stats = simulate_link(
                config, channel, n_info_bits=n_info_bits, n_bursts=n_bursts, rng=13
            )
            curves[modulation].append(stats["bit_error_rate"])
            row.append(f"{stats['bit_error_rate']:8.4f}")
        print(" | ".join(row))

    print("\nPeak information rate of each modulation (rate 3/4, 100 MHz clock):")
    for modulation in modulations:
        config = TransceiverConfig(modulation=modulation, code_rate="3/4")
        rate = throughput_for_config(config).info_bit_rate_bps
        marker = "  <-- 1 Gbps headline" if rate >= 1e9 else ""
        print(f"  {modulation:>6s}: {rate / 1e9:5.2f} Gbit/s{marker}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bursts", type=int, default=2, help="bursts per SNR point")
    parser.add_argument("--bits", type=int, default=300, help="information bits per stream")
    args = parser.parse_args()
    run_sweep(args.bursts, args.bits)


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Domain scenario: bulk data delivery to a smart-phone class device.

Reproduces: the motivating scenario of the paper's introduction ("next
generation wireless networks are expected to provide high speed internet
access anywhere and anytime") against the synthesised 480 Mbps build of
Tables 1-4 and the 1 Gbps headline build of the title/abstract.

A payload (e.g. a video segment) is segmented into bursts, each burst is
carried over the 4x4 MIMO-OFDM air interface across a fresh fading
realisation, erroneous bursts are retransmitted (simple ARQ), and the
resulting goodput is compared with the configuration's nominal PHY rate.
Before the ARQ replay, the expected burst error rate at the chosen SNR is
looked up through a small cached :mod:`repro.sim` sweep, so repeated runs
skip straight to the delivery simulation.

Run from a clean checkout with::

    PYTHONPATH=src python examples/streaming_downlink.py [--kilobytes N] [--snr DB]

(The PYTHONPATH prefix is optional; the script falls back to the in-tree
``src`` directory when ``repro`` is not installed.)
"""

from __future__ import annotations

import argparse
import numpy as np

import _bootstrap  # noqa: F401 -- makes the in-tree repro package importable

from repro import MimoTransceiver, TransceiverConfig
from repro.channel import FlatRayleighChannel, MimoChannel
from repro.core.throughput import throughput_for_config
from repro.exceptions import DecodingError
from repro.sim import SweepRunner, SweepSpec


def expected_per(config: TransceiverConfig, snr_db: float, n_info_bits: int) -> float:
    """Cached engine estimate of the per-burst error probability."""
    spec = SweepSpec(
        snr_db=(snr_db,),
        modulations=(config.modulation.value,),
        code_rates=(config.code_rate.value,),
        stream_counts=(config.n_antennas,),
        channels=("flat_rayleigh",),
        fft_size=config.fft_size,
        soft_decision=config.soft_decision,
        n_info_bits=n_info_bits,
        n_bursts=16,
        # PER needs every burst's verdict: early stopping would weight the
        # sample toward error bursts, so run the full budget.
        target_errors=None,
        base_seed=21,
    )
    result = SweepRunner(spec, n_workers=1).run()
    return result.points[0].packet_error_rate


def deliver_payload(
    payload_bits: int,
    snr_db: float,
    config: TransceiverConfig,
    max_retries: int = 4,
    seed: int = 1,
) -> dict:
    """Deliver ``payload_bits`` over the link with per-burst ARQ.

    The transceiver (trellis, constellation and preamble tables) is built
    once; every (re)transmission swaps in a fresh fading realisation — the
    block-fading assumption the per-burst preamble is designed for — the
    same way the sweep engine's burst loop does.
    """
    transmitter_rng = np.random.default_rng(seed)
    bits_per_burst_per_stream = 1000
    bits_per_burst = bits_per_burst_per_stream * config.n_streams
    n_segments = -(-payload_bits // bits_per_burst)
    transceiver = MimoTransceiver(config)
    # All bursts carry the same payload size, so they all occupy the air
    # for the same time — including bursts the receiver fails to find.
    burst_duration_s = transceiver.transmitter.transmit_random(
        bits_per_burst_per_stream, rng=np.random.default_rng(0)
    ).duration_s

    delivered = 0
    lost_segments = 0
    bursts_sent = 0
    retransmissions = 0
    air_time_s = 0.0

    for _segment in range(n_segments):
        attempts = 0
        while True:
            transceiver.set_channel(
                MimoChannel(
                    FlatRayleighChannel(
                        config.n_antennas,
                        config.n_antennas,
                        rng=transmitter_rng.integers(0, 2**31),
                    ),
                    snr_db=snr_db,
                    rng=transmitter_rng.integers(0, 2**31),
                )
            )
            attempts += 1
            bursts_sent += 1
            air_time_s += burst_duration_s
            try:
                result = transceiver.run_burst(
                    bits_per_burst_per_stream, rng=transmitter_rng
                )
                delivered_ok = result.bit_errors == 0
            except DecodingError:
                # The receiver never found the burst (sync miss deep in the
                # noise) — from the link's point of view, a lost frame.
                delivered_ok = False
            if delivered_ok or attempts > max_retries:
                break
            retransmissions += 1
        if delivered_ok:
            delivered += bits_per_burst
        else:
            # Retries exhausted: only actually decoded bits count toward
            # goodput, otherwise low-SNR runs would fabricate throughput.
            lost_segments += 1

    return {
        "delivered_bits": delivered,
        "lost_segments": lost_segments,
        "bursts_sent": bursts_sent,
        "retransmissions": retransmissions,
        "air_time_s": air_time_s,
        "goodput_bps": delivered / air_time_s if air_time_s else 0.0,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--kilobytes", type=int, default=8, help="payload size in KiB")
    parser.add_argument("--snr", type=float, default=32.0, help="channel SNR in dB")
    args = parser.parse_args()

    payload_bits = args.kilobytes * 1024 * 8

    for label, config in [
        ("paper build (16-QAM, rate 1/2)", TransceiverConfig.paper_default()),
        ("gigabit build (64-QAM, rate 3/4)", TransceiverConfig.gigabit()),
    ]:
        nominal = throughput_for_config(config).info_bit_rate_bps
        per = expected_per(config, args.snr, n_info_bits=1000)
        print(f"\n=== {label} ===")
        print(f"payload               : {args.kilobytes} KiB ({payload_bits} bits)")
        print(f"channel SNR           : {args.snr:.1f} dB, flat Rayleigh per burst")
        print(f"expected burst errors : {per * 100:.0f} % (cached engine estimate)")
        stats = deliver_payload(payload_bits, args.snr, config)
        print(f"bursts sent           : {stats['bursts_sent']}")
        print(f"retransmissions       : {stats['retransmissions']}")
        if stats["lost_segments"]:
            print(f"segments lost         : {stats['lost_segments']} (retries exhausted)")
        print(f"air time              : {stats['air_time_s'] * 1e3:.2f} ms")
        print(f"goodput               : {stats['goodput_bps'] / 1e6:.0f} Mbit/s")
        print(f"nominal PHY rate      : {nominal / 1e6:.0f} Mbit/s")
        print(f"efficiency            : {100 * stats['goodput_bps'] / nominal:.0f} %")
        if nominal >= 1e9:
            print("this is the configuration behind the paper's 1 Gbps headline")


if __name__ == "__main__":
    main()

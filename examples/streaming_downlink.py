#!/usr/bin/env python
"""Domain scenario: bulk data delivery to a smart-phone class device.

Reproduces: the motivating scenario of the paper's introduction ("next
generation wireless networks are expected to provide high speed internet
access anywhere and anytime") against the synthesised 480 Mbps build of
Tables 1-4 and the 1 Gbps headline build of the title/abstract.

A payload (e.g. a video segment) is segmented into frames and delivered
over the *streaming* receive pipeline (:mod:`repro.stream`): every
(re)transmission goes on air over a fresh fading realisation, the receiver
consumes the resulting continuous sample stream through the rolling-buffer
:class:`~repro.stream.detector.StreamFrameDetector`, and erroneous or
undetected frames are retransmitted (simple ARQ).  The resulting goodput
is compared with the configuration's nominal PHY rate.  Before the ARQ
replay, the expected frame error rate at the chosen SNR is looked up
through a small cached :mod:`repro.sim` sweep, so repeated runs with the
same knobs skip straight to the delivery simulation.

Run from a clean checkout with::

    PYTHONPATH=src python examples/streaming_downlink.py [--kilobytes N] [--snr DB]

(The PYTHONPATH prefix is optional; the script falls back to the in-tree
``src`` directory when ``repro`` is not installed.)
"""

from __future__ import annotations

import argparse
import numpy as np

import _bootstrap  # noqa: F401 -- makes the in-tree repro package importable

from repro import TransceiverConfig
from repro.channel import FlatRayleighChannel, MimoChannel
from repro.core.receiver import MimoReceiver
from repro.core.throughput import throughput_for_config
from repro.core.transmitter import MimoTransmitter
from repro.sim import SweepRunner, SweepSpec
from repro.stream import StreamingReceiver

# The delivery knobs, hoisted so the cached PER estimate and the ARQ replay
# can never silently diverge: both the SweepSpec below and the streaming
# delivery loop read the *same* constants, which is what keeps repeated runs
# with identical knobs hitting the engine's JsonCache instead of
# re-simulating.
BITS_PER_FRAME_PER_STREAM = 1000
PER_ESTIMATE_BURSTS = 16
PER_ESTIMATE_SEED = 21


def expected_per(config: TransceiverConfig, snr_db: float) -> float:
    """Cached engine estimate of the per-frame error probability."""
    spec = SweepSpec(
        snr_db=(snr_db,),
        modulations=(config.modulation.value,),
        code_rates=(config.code_rate.value,),
        stream_counts=(config.n_antennas,),
        channels=("flat_rayleigh",),
        fft_size=config.fft_size,
        soft_decision=config.soft_decision,
        n_info_bits=BITS_PER_FRAME_PER_STREAM,
        n_bursts=PER_ESTIMATE_BURSTS,
        # PER needs every burst's verdict: early stopping would weight the
        # sample toward error bursts, so run the full budget.
        target_errors=None,
        base_seed=PER_ESTIMATE_SEED,
    )
    result = SweepRunner(spec, n_workers=1).run()
    return result.points[0].packet_error_rate


def deliver_payload(
    payload_bits: int,
    snr_db: float,
    config: TransceiverConfig,
    max_retries: int = 4,
    seed: int = 1,
) -> dict:
    """Deliver ``payload_bits`` over the streaming pipeline with per-frame ARQ.

    The transmitter and the streaming receiver (trellis, constellation and
    preamble tables, rolling detection buffer) are built once; every
    (re)transmission swaps in a fresh fading realisation — the block-fading
    assumption the per-burst preamble is designed for — and its received
    samples are pushed into the *continuous* stream the frame detector
    watches.  A frame the detector never finds, a decode give-up, or a
    decode with residual bit errors all trigger the same retransmission.
    """
    transmitter_rng = np.random.default_rng(seed)
    bits_per_frame = BITS_PER_FRAME_PER_STREAM * config.n_streams
    n_segments = -(-payload_bits // bits_per_frame)
    transmitter = MimoTransmitter(config)
    pipeline = StreamingReceiver(
        receiver=MimoReceiver(config), n_info_bits=BITS_PER_FRAME_PER_STREAM
    )

    delivered = 0
    lost_segments = 0
    frames_sent = 0
    retransmissions = 0
    air_time_s = 0.0

    for _segment in range(n_segments):
        attempts = 0
        while True:
            burst = transmitter.transmit_random(
                BITS_PER_FRAME_PER_STREAM, rng=transmitter_rng
            )
            channel = MimoChannel(
                FlatRayleighChannel(
                    config.n_antennas,
                    config.n_antennas,
                    rng=transmitter_rng.integers(0, 2**31),
                ),
                snr_db=snr_db,
                rng=transmitter_rng.integers(0, 2**31),
            )
            attempts += 1
            frames_sent += 1
            # Every frame occupies the air for its full duration — including
            # frames the receiver fails to find.
            air_time_s += burst.duration_s
            decoded = pipeline.push(channel.transmit(burst.samples).samples)
            delivered_ok = any(
                frame.ok
                and all(
                    np.array_equal(reference, bits)
                    for reference, bits in zip(
                        burst.info_bits, frame.decoded_bits()
                    )
                )
                for frame in decoded
            )
            if delivered_ok or attempts > max_retries:
                break
            retransmissions += 1
        if delivered_ok:
            delivered += bits_per_frame
        else:
            # Retries exhausted: only actually decoded bits count toward
            # goodput, otherwise low-SNR runs would fabricate throughput.
            lost_segments += 1
    pipeline.flush()

    return {
        "delivered_bits": delivered,
        "lost_segments": lost_segments,
        "bursts_sent": frames_sent,
        "retransmissions": retransmissions,
        "air_time_s": air_time_s,
        "goodput_bps": delivered / air_time_s if air_time_s else 0.0,
        "frames_detected": pipeline.frames_detected,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--kilobytes", type=int, default=8, help="payload size in KiB")
    parser.add_argument("--snr", type=float, default=32.0, help="channel SNR in dB")
    args = parser.parse_args()

    payload_bits = args.kilobytes * 1024 * 8

    for label, config in [
        ("paper build (16-QAM, rate 1/2)", TransceiverConfig.paper_default()),
        ("gigabit build (64-QAM, rate 3/4)", TransceiverConfig.gigabit()),
    ]:
        nominal = throughput_for_config(config).info_bit_rate_bps
        per = expected_per(config, args.snr)
        print(f"\n=== {label} ===")
        print(f"payload               : {args.kilobytes} KiB ({payload_bits} bits)")
        print(f"channel SNR           : {args.snr:.1f} dB, flat Rayleigh per burst")
        print(f"expected burst errors : {per * 100:.0f} % (cached engine estimate)")
        stats = deliver_payload(payload_bits, args.snr, config)
        print(f"bursts sent           : {stats['bursts_sent']}")
        print(f"frames detected       : {stats['frames_detected']} (streaming detector)")
        print(f"retransmissions       : {stats['retransmissions']}")
        if stats["lost_segments"]:
            print(f"segments lost         : {stats['lost_segments']} (retries exhausted)")
        print(f"air time              : {stats['air_time_s'] * 1e3:.2f} ms")
        print(f"goodput               : {stats['goodput_bps'] / 1e6:.0f} Mbit/s")
        print(f"nominal PHY rate      : {nominal / 1e6:.0f} Mbit/s")
        print(f"efficiency            : {100 * stats['goodput_bps'] / nominal:.0f} %")
        if nominal >= 1e9:
            print("this is the configuration behind the paper's 1 Gbps headline")


if __name__ == "__main__":
    main()

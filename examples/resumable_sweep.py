#!/usr/bin/env python
"""Resumable sweeps and adaptive refinement over the per-point result store.

Demonstrates: the scale-out workflow behind every BER figure in the
reproduction.  Grid points are content-addressed records in a sharded
result store (:class:`repro.sim.ResultStore`), so

1. an *interrupted* sweep resumes where it stopped — only the missing
   points simulate (simulated here by running a partial grid first);
2. an *overlapping* grid reuses every point it shares with earlier sweeps
   (the classic "extend the waterfall by two SNR points" edit costs two
   points, not a full re-run);
3. *adaptive refinement* (:meth:`repro.sim.SweepRunner.run_adaptive`)
   spends an extra burst budget where the BER confidence intervals are
   widest, extending each point's deterministic burst stream.

Run from a clean checkout with::

    PYTHONPATH=src python examples/resumable_sweep.py [--bursts N] [--bits N]

(The PYTHONPATH prefix is optional; the script falls back to the in-tree
``src`` directory when ``repro`` is not installed.)
"""

from __future__ import annotations

import argparse
import tempfile
from pathlib import Path

import _bootstrap  # noqa: F401 -- makes the in-tree repro package importable

from repro.sim import ResultStore, SweepRunner, SweepSpec

SNR_POINTS_DB = (6.0, 10.0, 14.0, 18.0, 22.0, 26.0)


def make_spec(snr_db, n_bursts: int, n_info_bits: int) -> SweepSpec:
    return SweepSpec(
        snr_db=snr_db,
        modulations=("qpsk",),
        channels=("flat_rayleigh",),
        stream_counts=(4,),
        n_info_bits=n_info_bits,
        n_bursts=n_bursts,
        target_errors=None,
        base_seed=23,
    )


def describe(title: str, result) -> None:
    source = "store" if result.from_cache else "simulation"
    print(
        f"{title}: {result.n_bursts_simulated} bursts simulated "
        f"[{source}, {result.elapsed_s:.2f} s]"
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--bursts", type=int, default=6, help="bursts per point")
    parser.add_argument("--bits", type=int, default=96, help="info bits per stream")
    args = parser.parse_args()

    with tempfile.TemporaryDirectory() as tmp:
        store = ResultStore(Path(tmp) / "points")

        # --- 1. an "interrupted" sweep: only half the grid finished -------
        partial = make_spec(SNR_POINTS_DB[:3], args.bursts, args.bits)
        SweepRunner(partial, n_workers=1, cache=store).run()
        print(f"interrupted sweep committed {len(store)} of "
              f"{len(SNR_POINTS_DB)} points to the store")

        full = make_spec(SNR_POINTS_DB, args.bursts, args.bits)
        resumed = SweepRunner(full, n_workers=1, cache=store).run()
        describe("resume of the full grid", resumed)

        # --- 2. a warm re-run is a pure store read ------------------------
        warm = SweepRunner(full, n_workers=1, cache=store).run()
        describe("warm re-run", warm)

        # --- 3. adaptive refinement: spend bursts where CIs are widest ----
        refined = SweepRunner(full, n_workers=1, cache=store).run_adaptive(
            extra_bursts=4 * len(SNR_POINTS_DB), rounds=4
        )
        describe("adaptive refinement", refined)

        print()
        print("SNR (dB) |      BER | bursts | 95% Wilson interval")
        print("---------+----------+--------+--------------------")
        for point in refined.points:
            low, high = point.ber_interval()
            print(
                f"{point.point.snr_db:8.1f} | {point.bit_error_rate:8.5f} "
                f"| {point.n_bursts:6d} | [{low:.5f}, {high:.5f}]"
            )


if __name__ == "__main__":
    main()

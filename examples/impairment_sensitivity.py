#!/usr/bin/env python
"""Front-end sensitivity: BER vs carrier offset and vs fixed-point word length.

Reproduces: the paper's implicit robustness claims — a *fixed-point* 1 Gbps
baseband (Section IV's 16-bit sample / 18-bit multiplier datapaths) that
survives real front-end conditions.  Two sensitivity curves quantify that:

* **BER vs CFO** — the burst is hit with a normalised carrier-frequency
  offset (the paper's 100 MHz clock makes 1e-3 cycles/sample a 100 kHz
  offset); the receiver's preamble-based estimator corrects it, and the
  residual error grows with the offset.
* **BER vs word length** — the paper's 16-bit sample interface is shrunk
  bit by bit (keeping its ±2.0 full-scale range); somewhere below ~8 bits
  quantisation noise overtakes channel noise and the waterfall collapses.

Both grids run through the batched :class:`repro.sim.SweepRunner` — the
impairment axis is a first-class :class:`repro.sim.ImpairmentSpec` axis of
the spec, Cartesian with SNR — so the whole figure is two specs, early
stopping and all, and re-running the script is served from the JSON cache.

Run from a clean checkout with::

    PYTHONPATH=src python examples/impairment_sensitivity.py [--bursts N] [--bits N]

(The PYTHONPATH prefix is optional; the script falls back to the in-tree
``src`` directory when ``repro`` is not installed.)
"""

from __future__ import annotations

import argparse
import _bootstrap  # noqa: F401 -- makes the in-tree repro package importable

from repro.sim import ImpairmentSpec, SweepRunner, SweepSpec

SNR_POINTS_DB = (15.0, 25.0, 35.0)
CFO_VALUES = (0.0, 1e-4, 5e-4, 1e-3, 2e-3, 5e-3)
WORD_LENGTHS = (5, 6, 8, 10, 12, 16)


def _print_curves(title: str, row_header: str, rows, result, impairment_for) -> None:
    source = "cache" if result.from_cache else "simulation"
    print(
        f"\n{title} [{source}, {result.n_bursts_simulated} bursts simulated, "
        f"{result.elapsed_s:.1f} s]"
    )
    header = f"{row_header:>12s} | " + " | ".join(
        f"{snr:7.1f} dB" for snr in SNR_POINTS_DB
    )
    print(header)
    print("-" * len(header))
    for row in rows:
        curve = result.ber_curve(impairment=impairment_for(row))
        cells = " | ".join(f"{curve[snr]:10.5f}" for snr in SNR_POINTS_DB)
        print(f"{row!s:>12s} | {cells}")


def run_cfo_sweep(n_bursts: int, n_info_bits: int) -> None:
    def impairment_for(cfo: float):
        return ImpairmentSpec(cfo_normalized=cfo) if cfo else None

    spec = SweepSpec(
        snr_db=SNR_POINTS_DB,
        modulations=("16qam",),
        channels=("flat_rayleigh",),
        impairments=[impairment_for(cfo) for cfo in CFO_VALUES],
        n_info_bits=n_info_bits,
        n_bursts=n_bursts,
        target_errors=200,
        fresh_fading_per_burst=False,
        base_seed=17,
    )
    result = SweepRunner(spec, n_workers=1).run()
    _print_curves(
        "BER vs normalised CFO (16-QAM, rate 1/2, flat Rayleigh; "
        "preamble-based correction on)",
        "CFO (cyc/sa)",
        CFO_VALUES,
        result,
        impairment_for,
    )


def run_wordlength_sweep(n_bursts: int, n_info_bits: int) -> None:
    def impairment_for(word_length: int):
        return ImpairmentSpec.quantized(word_length)

    spec = SweepSpec(
        snr_db=SNR_POINTS_DB,
        modulations=("16qam",),
        channels=("flat_rayleigh",),
        impairments=[impairment_for(w) for w in WORD_LENGTHS],
        n_info_bits=n_info_bits,
        n_bursts=n_bursts,
        target_errors=200,
        fresh_fading_per_burst=False,
        base_seed=17,
    )
    result = SweepRunner(spec, n_workers=1).run()
    _print_curves(
        "BER vs TX/RX sample word length (16-QAM, rate 1/2, flat Rayleigh; "
        "paper interface: 16 bits)",
        "word bits",
        WORD_LENGTHS,
        result,
        impairment_for,
    )
    print("\nThe paper's 16-bit interface row matches the ideal front end;")
    print("the collapse below ~8 bits is pure quantisation noise.")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bursts", type=int, default=2, help="bursts per grid point")
    parser.add_argument("--bits", type=int, default=300, help="information bits per stream")
    args = parser.parse_args()
    run_cfo_sweep(args.bursts, args.bits)
    run_wordlength_sweep(args.bursts, args.bits)


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Domain scenario: one base station, thousands of subscriber streams.

Reproduces: the paper's system-level pitch — a baseband able to serve
"high speed internet access anywhere and anytime" — as an actual
multi-user downlink experiment: N per-user traffic streams are multiplexed
by the :class:`~repro.stream.scheduler.DownlinkScheduler` over one
simulated 4x4 MIMO-OFDM air interface, every served frame crosses a fresh
fading realisation, and the receive side runs the rolling-buffer streaming
pipeline.  The run prints the numbers the paper's headline implies but
never measures: sustained frames/sec through the software receiver,
goodput over the air, and the per-user enqueue→decode latency-percentile
table.

Run from a clean checkout with::

    PYTHONPATH=src python examples/multiuser_load.py [--users N] [--frames K]
        [--rate FPS] [--snr DB] [--mode round_robin|weighted]

The default 1000 users complete in a couple of minutes; use ``--users 40``
for a quick look.  (The PYTHONPATH prefix is optional; the script falls
back to the in-tree ``src`` directory when ``repro`` is not installed.)
"""

from __future__ import annotations

import argparse

import _bootstrap  # noqa: F401 -- makes the in-tree repro package importable

from repro.stream import DownlinkScheduler, PoissonTraffic


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--users", type=int, default=1000, help="concurrent user streams")
    parser.add_argument("--frames", type=int, default=1, help="frames per user")
    parser.add_argument("--rate", type=float, default=200.0, help="per-user offered frames/sec")
    parser.add_argument("--snr", type=float, default=30.0, help="channel SNR in dB")
    parser.add_argument(
        "--mode",
        choices=("round_robin", "weighted"),
        default="round_robin",
        help="scheduling discipline",
    )
    parser.add_argument("--seed", type=int, default=0, help="base seed of the run")
    args = parser.parse_args()

    scheduler = DownlinkScheduler(
        n_users=args.users,
        frames_per_user=args.frames,
        traffic=PoissonTraffic(args.rate),
        mode=args.mode,
        snr_db=args.snr,
        base_seed=args.seed,
    )
    frame_duration_s = scheduler.frame_length / scheduler.sample_rate_hz
    capacity_fps = 1.0 / frame_duration_s
    offered_fps = args.users * args.rate
    print(f"users                 : {args.users} ({args.mode} scheduling)")
    print(f"frames per user       : {args.frames} (Poisson @ {args.rate:.0f} fps each)")
    print(f"frame                 : {scheduler.frame_length} samples, "
          f"{frame_duration_s * 1e6:.2f} us on air")
    print(f"air capacity          : {capacity_fps / 1e3:.1f} kframes/s; offered "
          f"{offered_fps / 1e3:.1f} kframes/s "
          f"({100 * offered_fps / capacity_fps:.0f}% load)")

    report = scheduler.run()

    print(f"\nframes served         : {report.frames_served} "
          f"(of {report.frames_offered} offered)")
    print(f"frames delivered      : {report.frames_delivered} error-free; "
          f"lost {report.frames_lost} "
          f"({100 * report.loss_rate:.1f}%), "
          f"{report.spurious_detections} spurious detections")
    print(f"air time              : {report.air_time_s * 1e3:.2f} ms simulated")
    print(f"goodput               : {report.goodput_bps / 1e6:.0f} Mbit/s over the air")
    print(f"sustained rate        : {report.sustained_fps:.1f} frames/s through the "
          f"software receiver ({report.wall_time_s:.1f} s wall clock)")

    aggregate = report.latency
    print("\nenqueue->decode latency, all delivered frames (simulated time):")
    print("  p50        p95        p99        worst")
    print(f"  {aggregate.p50 * 1e6:8.2f} us {aggregate.p95 * 1e6:8.2f} us "
          f"{aggregate.p99 * 1e6:8.2f} us {aggregate.worst * 1e6:8.2f} us")

    print("\nper-user latency percentiles across the population (us):")
    print("  quantile   typical user (p50)   p95 of users   worst user")
    for quantile in (50.0, 95.0, 99.0):
        spread = report.user_latency_percentiles(quantile)
        print(f"  p{quantile:<8.0f} {spread.p50 * 1e6:16.2f}   "
              f"{spread.p95 * 1e6:12.2f}   {spread.worst * 1e6:10.2f}")


if __name__ == "__main__":
    main()

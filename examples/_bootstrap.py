"""Make the in-tree ``repro`` package importable when it is not installed.

Every example script imports this module for its side effect, so
``python examples/<script>.py`` works from a clean checkout without
setting ``PYTHONPATH=src`` (and keeps working unchanged when the package
*is* installed).
"""

import sys
from pathlib import Path

try:
    import repro  # noqa: F401 -- probe whether the package is importable
except ImportError:  # clean checkout: fall back to the in-tree sources
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

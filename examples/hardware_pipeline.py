#!/usr/bin/env python
"""Hardware-structure walkthrough: the blocks of Figs. 1, 4, 5, 6-8.

Reproduces: the paper's block-level hardware story — Fig. 4's transmit
pipeline, Fig. 5's receive front end, Figs. 6-8's CORDIC systolic QRD array
with its 440-cycle latency, and the channel-matrix memory schedule.

Runs the structural (RTL-level) models instead of the functional ones:

* streams coded bits through the ping-pong interleaver / mapper-ROM /
  cyclic-prefix double buffer transmit pipeline and reports its cycle count;
* drives the receiver front end (circular buffers + 32-tap correlator) and
  shows where the burst was found;
* pushes one channel matrix through the CORDIC systolic QRD array cell by
  cell and reports the array composition and the 440-cycle latency;
* prints the channel-matrix memory read schedule the scheduler issues;
* prints the receive-pipeline latency breakdown and the FIFO depth needed
  to buffer data while channel estimation completes.

Run from a clean checkout with::

    PYTHONPATH=src python examples/hardware_pipeline.py

(The PYTHONPATH prefix is optional; the script falls back to the in-tree
``src`` directory when ``repro`` is not installed.)
"""

from __future__ import annotations

import numpy as np

import _bootstrap  # noqa: F401 -- makes the in-tree repro package importable

from repro import TransceiverConfig
from repro.core.transmitter import MimoTransmitter
from repro.hardware.latency import LatencyModel
from repro.mimo.matrix import frobenius_error, hermitian
from repro.mimo.rinv import invert_upper_triangular
from repro.rtl.scheduler import ChannelMatrixScheduler
from repro.rtl.systolic_qrd import SystolicQrdArray
from repro.rtl.rx_datapath import RxFrontEnd
from repro.rtl.tx_datapath import TxStreamDatapath


def main() -> None:
    config = TransceiverConfig.paper_default()
    transmitter = MimoTransmitter(config)
    burst = transmitter.transmit_random(400, rng=np.random.default_rng(7))

    print("=== Transmit datapath (Fig. 1, one spatial stream) ===")
    datapath = TxStreamDatapath(config)
    samples, report = datapath.stream(burst.coded_bits[0])
    functional = burst.samples[0, burst.layout.total_length:]
    match = np.allclose(samples, functional[: samples.size])
    print(f"coded bits streamed      : {report.input_bits}")
    print(f"OFDM symbols emitted     : {report.ofdm_symbols}")
    print(f"output samples           : {report.output_samples}")
    print(f"cycles consumed          : {report.cycles_consumed}")
    print(f"matches functional model : {match}")

    print("\n=== Receiver front end (Fig. 4 / Fig. 5 input stage) ===")
    front_end = RxFrontEnd(config)
    sync_report = front_end.ingest(burst.samples)
    print(f"circular buffer depth    : {front_end.buffers[0].depth} samples per antenna")
    print(f"correlator window        : {front_end.synchronizer.window_length} samples "
          f"(128 real multipliers in hardware)")
    print(f"LTS located at sample    : {sync_report.lts_start} "
          f"(preamble transmitted at {burst.layout.sts_length})")

    print("\n=== QR decomposition systolic array (Figs. 6-8) ===")
    array = SystolicQrdArray(n=4, cordic_iterations=16)
    rng = np.random.default_rng(11)
    channel_matrix = (rng.normal(size=(4, 4)) + 1j * rng.normal(size=(4, 4))) / np.sqrt(2)
    r, q_hermitian = array.process(channel_matrix)
    h_inverse = invert_upper_triangular(r) @ q_hermitian
    print(f"boundary cells           : {array.boundary_cell_count} (2 vectoring CORDICs each)")
    print(f"internal cells (R array) : {array.r_array_internal_cell_count} (3 rotation CORDICs each)")
    print(f"internal cells (Q array) : {array.internal_cell_count - array.r_array_internal_cell_count}")
    print(f"total CORDIC elements    : {array.total_cordic_count}")
    print(f"datapath latency         : {array.datapath_latency_cycles} cycles "
          f"({array.datapath_latency_cycles / 100e6 * 1e6:.1f} us at 100 MHz)")
    print(f"reconstruction error     : "
          f"{frobenius_error(hermitian(q_hermitian) @ r, channel_matrix):.2e}")
    print(f"|H^-1 H - I|             : {frobenius_error(h_inverse @ channel_matrix, np.eye(4)):.2e}")

    print("\n=== Channel-matrix memory scheduler (Fig. 8 dataflow) ===")
    scheduler = ChannelMatrixScheduler(n_antennas=4, n_subcarriers=52, burst_length=20)
    scheduler.validate()
    first_reads = list(scheduler.column_schedule(0))[:3]
    print(f"memories multiplexed     : {scheduler.n_memories} (H00..H33)")
    print(f"burst length per memory  : {scheduler.burst_length} addresses (CORDIC latency)")
    print("first column-0 reads     : "
          + ", ".join(f"H{r.memory_row}{r.memory_col}[sc {r.subcarrier}]" for r in first_reads))
    print(f"full schedule length     : {scheduler.total_schedule_cycles()} cycles")

    print("\n=== Receive pipeline latency (why OFDM data is buffered in FIFOs) ===")
    latency = LatencyModel()
    for name, value in latency.breakdown().as_dict().items():
        print(f"{name:<28s}: {value} cycles")
    print(f"{'required data FIFO depth':<28s}: {latency.required_data_fifo_depth()} samples")
    print(f"{'total latency':<28s}: {latency.latency_seconds() * 1e6:.1f} us at 100 MHz")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""FPGA resource report: regenerate Tables 1-4 and the 512-point projection.

Reproduces: Table 1 (transmitter synthesis), Table 2 (transmitter by
entity), Table 3 (receiver synthesis), Table 4 (receiver by entity), the
"channel estimation dominates" observation of Section IV, and Section V's
512-point OFDM scaling projection — printed in the same shape as the
paper's synthesis tables.

Run from a clean checkout with::

    PYTHONPATH=src python examples/resource_report.py

(The PYTHONPATH prefix is optional; the script falls back to the in-tree
``src`` directory when ``repro`` is not installed.)
"""

from __future__ import annotations

import _bootstrap  # noqa: F401 -- makes the in-tree repro package importable

from repro.hardware.estimator import (
    ReceiverResourceModel,
    ResourceModelConfig,
    STRATIX_IV_DEVICE,
    TransmitterResourceModel,
)


def _print_totals(title: str, totals, utilization) -> None:
    print(f"\n{title}")
    print(f"{'Resource':<16s}{'Used':>12s}{'Available':>14s}{'% Used':>9s}")
    device = {
        "aluts": STRATIX_IV_DEVICE.aluts,
        "registers": STRATIX_IV_DEVICE.registers,
        "memory_bits": STRATIX_IV_DEVICE.memory_bits,
        "dsp_blocks": STRATIX_IV_DEVICE.dsp_blocks,
    }
    for key, label in [
        ("aluts", "ALUTs"),
        ("registers", "Registers"),
        ("memory_bits", "Memory bits"),
        ("dsp_blocks", "18-bit DSP"),
    ]:
        print(
            f"{label:<16s}{getattr(totals, key):>12,d}{device[key]:>14,d}"
            f"{utilization[key]:>8.1f}%"
        )


def _print_entities(title: str, report) -> None:
    print(f"\n{title}")
    print(f"{'Entity':<22s}{'ALUTs':>10s}{'Registers':>12s}{'Mem bits':>10s}{'DSP':>6s}")
    for name, usage in report.items():
        print(
            f"{name:<22s}{usage.aluts:>10,d}{usage.registers:>12,d}"
            f"{usage.memory_bits:>10,d}{usage.dsp_blocks:>6d}"
        )


def main() -> None:
    tx = TransmitterResourceModel()
    rx = ReceiverResourceModel()

    print("=" * 70)
    print("Resource model at the paper's configuration (4x4, 16-QAM, 64-pt OFDM)")
    print("=" * 70)
    _print_totals("Table 1: MIMO transmitter synthesis results",
                  tx.system_totals(), tx.utilization())
    _print_entities(
        "Table 2: transmitter resource utilisation by entity",
        {name: tx.entity_usage(name) for name in TransmitterResourceModel.REFERENCE_ENTITIES},
    )
    _print_totals("Table 3: MIMO receiver synthesis results",
                  rx.system_totals(), rx.utilization())
    _print_entities(
        "Table 4: receiver resource utilisation by entity",
        {name: rx.entity_usage(name) for name in ReceiverResourceModel.REFERENCE_ENTITIES},
    )

    share = rx.channel_estimation_share()
    print(
        "\nChannel estimation + equalisation blocks account for "
        f"{share['aluts'] * 100:.0f}% of ALUTs and {share['dsp_blocks'] * 100:.0f}% "
        "of DSP multipliers (paper: 86% and 77%)."
    )

    print("\n" + "=" * 70)
    print("Projection for the 512-point OFDM variant discussed in Section V")
    print("=" * 70)
    config512 = ResourceModelConfig(fft_size=512, n_data_subcarriers=384, bits_per_subcarrier=4)
    tx512 = TransmitterResourceModel(config512)
    rx512 = ReceiverResourceModel(config512)
    print(
        f"Transmitter memory bits : {tx.system_totals().memory_bits:>12,d} -> "
        f"{tx512.system_totals().memory_bits:>12,d} "
        f"({tx512.system_totals().memory_bits / tx.system_totals().memory_bits:.1f}x)"
    )
    print(
        f"Receiver memory bits    : {rx.system_totals().memory_bits:>12,d} -> "
        f"{rx512.system_totals().memory_bits:>12,d} "
        f"({rx512.system_totals().memory_bits / rx.system_totals().memory_bits:.1f}x)"
    )
    print(
        f"Receiver memory usage   : {rx512.utilization()['memory_bits']:.1f}% of the device "
        "(plenty of headroom, as the paper argues)"
    )
    estimation_aluts = sum(
        rx512.entity_usage(entity).aluts
        for entity in ReceiverResourceModel.CHANNEL_ESTIMATION_ENTITIES
    )
    print(
        f"Channel-estimation ALUTs: {estimation_aluts:,d} "
        "(unchanged from the 64-point build)"
    )


if __name__ == "__main__":
    main()

"""CORDIC (COordinate Rotation DIgital Computer) models.

The paper's receiver uses CORDIC blocks in two places:

* the **time synchroniser** uses a CORDIC to compute the magnitude of the
  sliding-window correlation (Fig. 4) because it is cheaper than a square
  root;
* the **QR decomposition** systolic array is built from CORDIC cells working
  in *vectoring* mode (boundary cells) and *rotation* mode (internal cells),
  implementing the three-angle complex rotation algorithm (Figs. 6-7).

This module provides an iteration-accurate CORDIC model.  The default of 16
iterations with a 20-cycle pipeline latency matches the paper ("Each CORDIC
element has a latency of 20 clock cycles"): 16 micro-rotations plus input
staging, gain compensation and output registering.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.dsp.fixedpoint import FixedPointFormat

#: Pipeline latency (clock cycles) of one hardware CORDIC element in the paper.
CORDIC_PIPELINE_LATENCY = 20

#: Default number of micro-rotations; 16 gives ~16-bit angular accuracy.
DEFAULT_ITERATIONS = 16


def cordic_gain(iterations: int = DEFAULT_ITERATIONS) -> float:
    """Aggregate CORDIC gain ``K = prod(sqrt(1 + 2^-2i))`` for ``iterations``."""
    if iterations <= 0:
        raise ValueError("iterations must be positive")
    gain = 1.0
    for i in range(iterations):
        gain *= math.sqrt(1.0 + 2.0 ** (-2 * i))
    return gain


@dataclass(frozen=True)
class CordicResult:
    """Result of one CORDIC operation.

    Attributes
    ----------
    x, y:
        Output coordinates after the micro-rotation sequence (gain
        compensated unless the caller disabled it).
    angle:
        For vectoring mode: the angle (radians) through which the input was
        rotated to reach the x-axis, i.e. ``atan2(y_in, x_in)``.  For
        rotation mode: the residual angle error.
    iterations:
        Number of micro-rotations performed.
    latency_cycles:
        Clock cycles a pipelined hardware implementation needs for this
        operation (constant, equal to the pipeline depth).
    """

    x: float
    y: float
    angle: float
    iterations: int
    latency_cycles: int = CORDIC_PIPELINE_LATENCY

    @property
    def magnitude(self) -> float:
        """Magnitude output (meaningful in vectoring mode, where y -> 0)."""
        return self.x


class Cordic:
    """Iteration-accurate CORDIC engine in circular coordinates.

    Parameters
    ----------
    iterations:
        Number of micro-rotations (angular accuracy ~ ``2**-iterations``).
    compensate_gain:
        When True (default) the intrinsic CORDIC gain is divided out of the
        outputs, matching a hardware implementation that applies the constant
        scale factor at the end of the pipeline.
    fixed_format:
        Optional fixed-point format applied to the x/y datapath after every
        micro-rotation, modelling finite word-length hardware.
    latency_cycles:
        Pipeline latency reported per operation (paper: 20 cycles).
    """

    def __init__(
        self,
        iterations: int = DEFAULT_ITERATIONS,
        compensate_gain: bool = True,
        fixed_format: Optional[FixedPointFormat] = None,
        latency_cycles: int = CORDIC_PIPELINE_LATENCY,
    ) -> None:
        if iterations <= 0:
            raise ValueError("iterations must be positive")
        if latency_cycles <= 0:
            raise ValueError("latency_cycles must be positive")
        self.iterations = iterations
        self.compensate_gain = compensate_gain
        self.fixed_format = fixed_format
        self.latency_cycles = latency_cycles
        self._gain = cordic_gain(iterations)
        self._angles = [math.atan(2.0 ** (-i)) for i in range(iterations)]

    # ------------------------------------------------------------------
    # internal helpers
    # ------------------------------------------------------------------
    def _quantize(self, value: float) -> float:
        if self.fixed_format is None:
            return value
        return float(self.fixed_format.quantize(value))

    def _prerotate(self, x: float, y: float) -> Tuple[float, float, float]:
        """Rotate the input into the CORDIC convergence region (|angle|<~99.9°)."""
        if x >= 0:
            return x, y, 0.0
        # Rotate by ±pi/2 to bring the vector into the right half plane.
        if y >= 0:
            return y, -x, math.pi / 2.0
        return -y, x, -math.pi / 2.0

    # ------------------------------------------------------------------
    # public operations
    # ------------------------------------------------------------------
    def vector(self, x: float, y: float) -> CordicResult:
        """Vectoring mode: rotate ``(x, y)`` onto the x-axis.

        Returns the magnitude in ``x`` and the accumulated rotation angle,
        i.e. ``(|v|, atan2(y, x))``.  This is what the boundary cells of the
        QRD array and the magnitude calculator of the time synchroniser do.
        """
        x0, y0, pre_angle = self._prerotate(float(x), float(y))
        xi, yi, z = x0, y0, pre_angle
        for i in range(self.iterations):
            d = 1.0 if yi >= 0 else -1.0
            xi, yi = (
                self._quantize(xi + d * yi * 2.0 ** (-i)),
                self._quantize(yi - d * xi * 2.0 ** (-i)),
            )
            z += d * self._angles[i]
        if self.compensate_gain:
            xi /= self._gain
            yi /= self._gain
        return CordicResult(
            x=self._quantize(xi),
            y=self._quantize(yi),
            angle=z,
            iterations=self.iterations,
            latency_cycles=self.latency_cycles,
        )

    def rotate(self, x: float, y: float, angle: float) -> CordicResult:
        """Rotation mode: rotate ``(x, y)`` by ``angle`` radians.

        This is what the internal cells of the QRD systolic array do with the
        angles passed along from the boundary cells.
        """
        xi, yi = float(x), float(y)
        z = float(angle)
        # Bring the target angle into the convergence region.
        pre = 0.0
        if z > math.pi / 2.0:
            xi, yi = -xi, -yi
            pre = math.pi
        elif z < -math.pi / 2.0:
            xi, yi = -xi, -yi
            pre = -math.pi
        z -= pre
        for i in range(self.iterations):
            d = 1.0 if z >= 0 else -1.0
            xi, yi = (
                self._quantize(xi - d * yi * 2.0 ** (-i)),
                self._quantize(yi + d * xi * 2.0 ** (-i)),
            )
            z -= d * self._angles[i]
        if self.compensate_gain:
            xi /= self._gain
            yi /= self._gain
        return CordicResult(
            x=self._quantize(xi),
            y=self._quantize(yi),
            angle=z,
            iterations=self.iterations,
            latency_cycles=self.latency_cycles,
        )

    def magnitude(self, value: complex) -> float:
        """Magnitude of a complex number via vectoring mode."""
        return self.vector(value.real, value.imag).magnitude

    def rotate_complex(self, value: complex, angle: float) -> complex:
        """Rotate a complex number by ``angle`` radians via rotation mode."""
        result = self.rotate(value.real, value.imag, angle)
        return complex(result.x, result.y)


# ----------------------------------------------------------------------
# convenience functional wrappers (reference CORDIC with default settings)
# ----------------------------------------------------------------------
_DEFAULT_CORDIC = Cordic()


def cordic_vector(x: float, y: float, iterations: int = DEFAULT_ITERATIONS) -> CordicResult:
    """Vectoring-mode CORDIC with ``iterations`` micro-rotations."""
    engine = _DEFAULT_CORDIC if iterations == DEFAULT_ITERATIONS else Cordic(iterations)
    return engine.vector(x, y)


def cordic_rotate(
    x: float, y: float, angle: float, iterations: int = DEFAULT_ITERATIONS
) -> CordicResult:
    """Rotation-mode CORDIC with ``iterations`` micro-rotations."""
    engine = _DEFAULT_CORDIC if iterations == DEFAULT_ITERATIONS else Cordic(iterations)
    return engine.rotate(x, y, angle)


def cordic_magnitude(values: np.ndarray, iterations: int = DEFAULT_ITERATIONS) -> np.ndarray:
    """Vectorised complex magnitude computed element-wise with CORDIC.

    The time synchroniser uses this instead of a square root; for arrays this
    helper loops in Python (array sizes there are one value per clock cycle in
    hardware, and modest in simulation).
    """
    engine = _DEFAULT_CORDIC if iterations == DEFAULT_ITERATIONS else Cordic(iterations)
    arr = np.asarray(values, dtype=np.complex128)
    flat = arr.ravel()
    out = np.empty(flat.shape, dtype=np.float64)
    for i, v in enumerate(flat):
        out[i] = engine.vector(v.real, v.imag).magnitude
    return out.reshape(arr.shape)

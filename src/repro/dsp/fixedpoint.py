"""Fixed-point (Q-format) arithmetic model.

The paper's datapaths carry 16-bit I/Q samples and use 18-bit hardware
multipliers.  This module models those word lengths: a
:class:`FixedPointFormat` describes a signed two's-complement format with a
given total word length and number of fractional bits, and provides
quantisation with configurable rounding and overflow behaviour.

The quantised values are represented as ordinary floats/complexes whose
values are exactly representable in the format; this keeps the rest of the
code NumPy-friendly while remaining bit-faithful (every quantised value is an
integer multiple of the format's resolution, clipped to the representable
range).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Optional, Union

import numpy as np

ArrayLike = Union[float, complex, np.ndarray]


@dataclass(frozen=True)
class FixedPointFormat:
    """Signed two's-complement fixed-point format ``Q(word_length, frac_bits)``.

    Parameters
    ----------
    word_length:
        Total number of bits including the sign bit.  The paper uses 16-bit
        sample words and 18-bit multiplier operands.
    frac_bits:
        Number of fractional bits.  ``word_length - frac_bits - 1`` integer
        bits remain for magnitude.
    rounding:
        ``"round"`` (round half away from zero, the common DSP behaviour) or
        ``"truncate"`` (floor towards negative infinity, the cheapest
        hardware option).
    overflow:
        ``"saturate"`` clips to the representable range (what well-designed
        datapaths do); ``"wrap"`` emulates silent two's-complement wrap-around.
    """

    word_length: int
    frac_bits: int
    rounding: str = "round"
    overflow: str = "saturate"

    def __post_init__(self) -> None:
        if self.word_length < 2:
            raise ValueError("word_length must be at least 2 (sign bit + 1)")
        if self.frac_bits < 0:
            raise ValueError("frac_bits must be non-negative")
        if self.frac_bits > self.word_length - 1:
            raise ValueError("frac_bits cannot exceed word_length - 1")
        if self.rounding not in ("round", "truncate"):
            raise ValueError(f"unknown rounding mode: {self.rounding!r}")
        if self.overflow not in ("saturate", "wrap"):
            raise ValueError(f"unknown overflow mode: {self.overflow!r}")

    @property
    def resolution(self) -> float:
        """Smallest representable step (one LSB)."""
        return 2.0 ** (-self.frac_bits)

    @property
    def max_value(self) -> float:
        """Largest representable value."""
        return (2 ** (self.word_length - 1) - 1) * self.resolution

    @property
    def min_value(self) -> float:
        """Smallest (most negative) representable value."""
        return -(2 ** (self.word_length - 1)) * self.resolution

    @property
    def integer_range(self) -> tuple[int, int]:
        """Representable range expressed in raw integer (LSB) units."""
        return -(2 ** (self.word_length - 1)), 2 ** (self.word_length - 1) - 1

    def quantize(self, values: ArrayLike) -> np.ndarray:
        """Quantise real values to this format.

        Complex inputs are rejected here; use :meth:`quantize_complex` (or the
        module-level :func:`quantize_complex`) so the intent is explicit.
        """
        arr = np.asarray(values, dtype=np.float64)
        if np.iscomplexobj(values):
            raise TypeError("use quantize_complex for complex inputs")
        scaled = arr / self.resolution
        if self.rounding == "round":
            ints = np.sign(scaled) * np.floor(np.abs(scaled) + 0.5)
        else:
            ints = np.floor(scaled)
        lo, hi = self.integer_range
        if self.overflow == "saturate":
            ints = np.clip(ints, lo, hi)
        else:
            span = float(hi - lo + 1)
            ints = ((ints - lo) % span) + lo
        return ints * self.resolution

    def quantize_complex(self, values: ArrayLike) -> np.ndarray:
        """Quantise the real and imaginary parts independently."""
        arr = np.asarray(values, dtype=np.complex128)
        return self.quantize(arr.real) + 1j * self.quantize(arr.imag)

    def to_integers(self, values: ArrayLike) -> np.ndarray:
        """Return the raw integer (LSB-unit) representation of real values."""
        quantised = self.quantize(values)
        return np.round(quantised / self.resolution).astype(np.int64)

    def from_integers(self, raw: ArrayLike) -> np.ndarray:
        """Convert raw integer (LSB-unit) words back to real values."""
        ints = np.asarray(raw, dtype=np.int64)
        lo, hi = self.integer_range
        if ints.size and (ints.min() < lo or ints.max() > hi):
            raise ValueError("raw integers outside representable range")
        return ints.astype(np.float64) * self.resolution

    def quantization_noise_power(self) -> float:
        """Theoretical quantisation-noise power (uniform model, LSB²/12)."""
        return self.resolution ** 2 / 12.0

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-JSON representation (used by the sweep-spec cache hash)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "FixedPointFormat":
        """Rebuild a format from :meth:`to_dict` output."""
        return cls(**payload)

    @classmethod
    def coerce(
        cls, value: "Union[None, dict, FixedPointFormat]", field_name: str = "format"
    ) -> "Optional[FixedPointFormat]":
        """Normalise a format given as an instance, a ``to_dict`` payload or None.

        The single coercion rule shared by every config/spec field that
        round-trips formats through JSON (``TransceiverConfig``,
        ``repro.sim.ImpairmentSpec``).  Raises :class:`TypeError` for
        anything else, naming ``field_name``.
        """
        if value is None or isinstance(value, cls):
            return value
        if isinstance(value, dict):
            return cls.from_dict(value)
        raise TypeError(
            f"{field_name} must be a FixedPointFormat, a dict or None, got {value!r}"
        )


# Formats used throughout the paper's datapath.
SAMPLE_FORMAT_16BIT = FixedPointFormat(word_length=16, frac_bits=14)
"""16-bit I/Q sample format used on the transmitter/receiver interfaces."""

MULTIPLIER_FORMAT_18BIT = FixedPointFormat(word_length=18, frac_bits=16)
"""18-bit operand format matching the FPGA's embedded DSP multipliers."""


def quantize(values: ArrayLike, fmt: FixedPointFormat) -> np.ndarray:
    """Functional form of :meth:`FixedPointFormat.quantize`."""
    return fmt.quantize(values)


def quantize_complex(values: ArrayLike, fmt: FixedPointFormat) -> np.ndarray:
    """Functional form of :meth:`FixedPointFormat.quantize_complex`."""
    return fmt.quantize_complex(values)

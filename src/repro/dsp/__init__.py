"""DSP primitives: fixed-point arithmetic, CORDIC, FFT/IFFT and correlators.

These are the arithmetic substrates that the paper's FPGA datapaths are built
from.  Each primitive exists in a floating-point "reference" form and, where
the hardware word length matters, a quantised form driven by
:mod:`repro.dsp.fixedpoint`.
"""

from repro.dsp.backend import (
    DspBackend,
    NumpyBackend,
    SinglePrecisionBackend,
    available_backends,
    default_backend,
    get_backend,
    register_backend,
)
from repro.dsp.cordic import (
    Cordic,
    CordicResult,
    cordic_gain,
    cordic_magnitude,
    cordic_rotate,
    cordic_vector,
)
from repro.dsp.correlation import SlidingWindowCorrelator, cross_correlate
from repro.dsp.fft import (
    Fft,
    FftPlan,
    bit_reverse_indices,
    fft,
    fixed_point_fft,
    get_plan,
    ifft,
    ofdm_modulate,
    ofdm_demodulate,
)
from repro.dsp.fixedpoint import FixedPointFormat, quantize, quantize_complex

__all__ = [
    "DspBackend",
    "NumpyBackend",
    "SinglePrecisionBackend",
    "available_backends",
    "default_backend",
    "get_backend",
    "register_backend",
    "Cordic",
    "CordicResult",
    "cordic_gain",
    "cordic_magnitude",
    "cordic_rotate",
    "cordic_vector",
    "SlidingWindowCorrelator",
    "cross_correlate",
    "Fft",
    "FftPlan",
    "bit_reverse_indices",
    "fft",
    "get_plan",
    "ifft",
    "fixed_point_fft",
    "ofdm_modulate",
    "ofdm_demodulate",
    "FixedPointFormat",
    "quantize",
    "quantize_complex",
]

"""Radix-2 FFT/IFFT and OFDM (de)modulation.

The paper's transmitter converts mapped symbols to the time domain with an
IFFT per antenna and the receiver converts back with an FFT per antenna
(64-point in the evaluated configuration, with a 512-point variant discussed
in Section V).  This module provides:

* :class:`FftPlan` / :func:`get_plan` — a cached transform *plan* per size
  (bit-reverse permutation and per-stage twiddle tables computed once), so
  hot loops never rebuild them per call;
* :func:`fft` / :func:`ifft` — an in-house iterative radix-2
  decimation-in-time implementation (mirroring a streaming hardware core) so
  the reproduction does not silently depend on ``numpy.fft`` for its core
  datapath; both batch over arbitrary leading axes;
* :func:`fixed_point_fft` — the same butterflies with per-stage quantisation
  and per-stage scaling, modelling the finite word length of an FPGA FFT
  core; batches over leading axes exactly like the float path;
* :class:`Fft` — an object wrapper that also reports the pipeline latency and
  feeds the hardware resource model;
* :func:`ofdm_modulate` / :func:`ofdm_demodulate` — the IFFT + cyclic prefix
  and FFT + prefix-removal steps used by the transmitter and receiver.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Optional

import numpy as np
import numpy.typing as npt

from repro.types import ComplexArray, IntArray

from repro.dsp.fixedpoint import FixedPointFormat


def _validate_power_of_two(n: int) -> None:
    if n < 2 or (n & (n - 1)) != 0:
        raise ValueError(f"FFT size must be a power of two >= 2, got {n}")


def bit_reverse_indices(n: int) -> IntArray:
    """Bit-reversed index permutation used by the radix-2 FFT input stage."""
    _validate_power_of_two(n)
    bits = n.bit_length() - 1
    indices = np.arange(n)
    reversed_indices = np.zeros(n, dtype=np.int64)
    for bit in range(bits):
        reversed_indices |= ((indices >> bit) & 1) << (bits - 1 - bit)
    return reversed_indices


class FftPlan:
    """Precomputed radix-2 transform data for one FFT size.

    A plan owns everything about the transform that depends only on its
    size — the bit-reverse input permutation and one twiddle table per
    butterfly stage, for both transform directions.  The batched receive
    chain runs thousands of transforms per burst; computing these tables
    once per size (see :func:`get_plan`) instead of once per call is what
    makes the FFT itself disappear from the profile.

    The tables hold exactly the values the original per-call code computed
    (same ``np.exp`` expressions), so planned transforms are bit-identical
    to the historical unplanned ones.
    """

    def __init__(self, size: int) -> None:
        _validate_power_of_two(size)
        self.size = size
        self.stages = size.bit_length() - 1
        self.bit_reverse = bit_reverse_indices(size)
        self.forward_twiddles: List[np.ndarray] = []
        self.inverse_twiddles: List[np.ndarray] = []
        for stage in range(1, self.stages + 1):
            m = 1 << stage
            half = m // 2
            self.forward_twiddles.append(np.exp(-2j * np.pi * np.arange(half) / m))
            self.inverse_twiddles.append(np.exp(2j * np.pi * np.arange(half) / m))

    def _twiddles(self, inverse: bool) -> List[np.ndarray]:
        return self.inverse_twiddles if inverse else self.forward_twiddles

    # ------------------------------------------------------------------
    def forward(self, x: npt.ArrayLike) -> ComplexArray:
        """Forward FFT over the last axis (any leading batch axes)."""
        n = self.size
        data = np.asarray(x, dtype=np.complex128)
        if data.shape[-1] != n:
            raise ValueError(f"expected last axis of {n} samples, got {data.shape[-1]}")
        work = data[..., self.bit_reverse].copy()
        for stage, twiddles in enumerate(self.forward_twiddles, start=1):
            m = 1 << stage
            half = m // 2
            work = work.reshape(*work.shape[:-1], n // m, m)
            upper = work[..., :half]
            lower = work[..., half:] * twiddles
            work = np.concatenate([upper + lower, upper - lower], axis=-1)
            work = work.reshape(*work.shape[:-2], n)
        return work

    def inverse(self, x: npt.ArrayLike) -> ComplexArray:
        """Inverse FFT over the last axis (``1/N`` normalisation)."""
        data = np.asarray(x, dtype=np.complex128)
        return np.conj(self.forward(np.conj(data))) / self.size

    def fixed_point(
        self,
        x: npt.ArrayLike,
        fmt: FixedPointFormat,
        inverse: bool = False,
        scale_per_stage: bool = True,
    ) -> ComplexArray:
        """Quantised transform over the last axis (any leading batch axes).

        Shares the plan's tables with the float path; see
        :func:`fixed_point_fft` for the scaling semantics.
        """
        n = self.size
        data = np.asarray(x, dtype=np.complex128)
        if data.shape[-1] != n:
            raise ValueError(f"expected last axis of {n} samples, got {data.shape[-1]}")
        work = fmt.quantize_complex(data[..., self.bit_reverse])
        for stage, twiddles in enumerate(self._twiddles(inverse), start=1):
            m = 1 << stage
            half = m // 2
            work = work.reshape(*work.shape[:-1], n // m, m)
            upper = work[..., :half]
            lower = work[..., half:] * twiddles
            combined = np.concatenate([upper + lower, upper - lower], axis=-1)
            if scale_per_stage:
                combined = combined / 2.0
            work = fmt.quantize_complex(combined).reshape(*combined.shape[:-2], n)
        return work


@lru_cache(maxsize=32)
def get_plan(size: int) -> FftPlan:
    """The shared :class:`FftPlan` for ``size`` (built once per process)."""
    return FftPlan(size)


def fft(x: npt.ArrayLike) -> ComplexArray:
    """Iterative radix-2 decimation-in-time FFT.

    Matches ``numpy.fft.fft`` to floating-point precision; implemented
    explicitly so the butterfly structure mirrors the streaming hardware core
    and so the fixed-point variant can share the same code path.  Batches
    over arbitrary leading axes, transforming the last axis; the permutation
    and twiddles come from the cached per-size :class:`FftPlan`.
    """
    data = np.asarray(x, dtype=np.complex128)
    return get_plan(data.shape[-1]).forward(data)


def ifft(x: npt.ArrayLike) -> ComplexArray:
    """Inverse FFT matching ``numpy.fft.ifft`` (1/N normalisation)."""
    data = np.asarray(x, dtype=np.complex128)
    return get_plan(data.shape[-1]).inverse(data)


def fixed_point_fft(
    x: npt.ArrayLike,
    fmt: FixedPointFormat,
    inverse: bool = False,
    scale_per_stage: bool = True,
) -> ComplexArray:
    """Radix-2 FFT with per-stage quantisation, modelling a hardware core.

    Parameters
    ----------
    x:
        Input samples; the last axis is transformed and any leading axes are
        batched over, exactly like the float :func:`fft` path.
    fmt:
        Fixed-point format applied to the datapath after every butterfly
        stage.
    inverse:
        Compute the IFFT instead of the FFT.
    scale_per_stage:
        Divide by two after every stage (the standard block-floating
        alternative used in FPGA cores to avoid overflow).  The overall
        scaling then equals ``1/N`` — the natural IFFT normalisation — for
        both directions; callers that need an unscaled FFT can multiply by
        ``N`` afterwards.
    """
    data = np.asarray(x, dtype=np.complex128)
    return get_plan(data.shape[-1]).fixed_point(
        data, fmt, inverse=inverse, scale_per_stage=scale_per_stage
    )


class Fft:
    """FFT/IFFT engine with optional fixed-point datapath and latency model.

    The latency model reflects a streaming pipelined radix-2 core: the core
    must ingest all ``n`` samples and then flushes its ``log2(n)`` butterfly
    stages, each of which is itself pipelined a few registers deep.
    """

    #: Pipeline registers per butterfly stage assumed by the latency model.
    PIPELINE_DEPTH_PER_STAGE = 4

    def __init__(
        self,
        size: int,
        fixed_format: Optional[FixedPointFormat] = None,
    ) -> None:
        _validate_power_of_two(size)
        self.size = size
        self.fixed_format = fixed_format
        self.plan = get_plan(size)

    @property
    def stages(self) -> int:
        """Number of radix-2 butterfly stages (``log2(size)``)."""
        return self.size.bit_length() - 1

    @property
    def latency_cycles(self) -> int:
        """Clock cycles from first sample in to first sample out."""
        return self.size + self.stages * self.PIPELINE_DEPTH_PER_STAGE

    def forward(self, x: npt.ArrayLike) -> ComplexArray:
        """Forward FFT of length-``size`` blocks (leading axes batched)."""
        data = np.asarray(x, dtype=np.complex128)
        if data.shape[-1] != self.size:
            raise ValueError(f"expected block of {self.size} samples, got {data.shape[-1]}")
        if self.fixed_format is None:
            return self.plan.forward(data)
        return self.plan.fixed_point(data, self.fixed_format, inverse=False) * self.size

    def inverse(self, x: npt.ArrayLike) -> ComplexArray:
        """Inverse FFT of length-``size`` blocks (leading axes batched)."""
        data = np.asarray(x, dtype=np.complex128)
        if data.shape[-1] != self.size:
            raise ValueError(f"expected block of {self.size} samples, got {data.shape[-1]}")
        if self.fixed_format is None:
            return self.plan.inverse(data)
        return self.plan.fixed_point(data, self.fixed_format, inverse=True)


def ofdm_modulate(
    frequency_domain: npt.ArrayLike,
    cyclic_prefix_length: int,
) -> ComplexArray:
    """IFFT + cyclic-prefix insertion for one OFDM symbol.

    The paper's cyclic-prefix block copies the last 25 % of the time-domain
    symbol in front of it; ``cyclic_prefix_length`` expresses that length in
    samples so other ratios can be explored.
    """
    freq = np.asarray(frequency_domain, dtype=np.complex128)
    n = freq.shape[-1]
    _validate_power_of_two(n)
    if not 0 <= cyclic_prefix_length <= n:
        raise ValueError("cyclic prefix length must be between 0 and the FFT size")
    time_domain = ifft(freq)
    if cyclic_prefix_length == 0:
        return time_domain
    prefix = time_domain[..., n - cyclic_prefix_length:]
    return np.concatenate([prefix, time_domain], axis=-1)


def ofdm_demodulate(
    time_domain: npt.ArrayLike,
    fft_size: int,
    cyclic_prefix_length: int,
) -> ComplexArray:
    """Cyclic-prefix removal + FFT for one OFDM symbol."""
    samples = np.asarray(time_domain, dtype=np.complex128)
    expected = fft_size + cyclic_prefix_length
    if samples.shape[-1] != expected:
        raise ValueError(
            f"expected {expected} samples (fft {fft_size} + CP {cyclic_prefix_length}), "
            f"got {samples.shape[-1]}"
        )
    useful = samples[..., cyclic_prefix_length:]
    return fft(useful)

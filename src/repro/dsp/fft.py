"""Radix-2 FFT/IFFT and OFDM (de)modulation.

The paper's transmitter converts mapped symbols to the time domain with an
IFFT per antenna and the receiver converts back with an FFT per antenna
(64-point in the evaluated configuration, with a 512-point variant discussed
in Section V).  This module provides:

* :func:`fft` / :func:`ifft` — an in-house iterative radix-2
  decimation-in-time implementation (mirroring a streaming hardware core) so
  the reproduction does not silently depend on ``numpy.fft`` for its core
  datapath;
* :func:`fixed_point_fft` — the same butterflies with per-stage quantisation
  and per-stage scaling, modelling the finite word length of an FPGA FFT core;
* :class:`Fft` — an object wrapper that also reports the pipeline latency and
  feeds the hardware resource model;
* :func:`ofdm_modulate` / :func:`ofdm_demodulate` — the IFFT + cyclic prefix
  and FFT + prefix-removal steps used by the transmitter and receiver.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.dsp.fixedpoint import FixedPointFormat


def _validate_power_of_two(n: int) -> None:
    if n < 2 or (n & (n - 1)) != 0:
        raise ValueError(f"FFT size must be a power of two >= 2, got {n}")


def bit_reverse_indices(n: int) -> np.ndarray:
    """Bit-reversed index permutation used by the radix-2 FFT input stage."""
    _validate_power_of_two(n)
    bits = n.bit_length() - 1
    indices = np.arange(n)
    reversed_indices = np.zeros(n, dtype=np.int64)
    for bit in range(bits):
        reversed_indices |= ((indices >> bit) & 1) << (bits - 1 - bit)
    return reversed_indices


def fft(x: np.ndarray) -> np.ndarray:
    """Iterative radix-2 decimation-in-time FFT.

    Matches ``numpy.fft.fft`` to floating-point precision; implemented
    explicitly so the butterfly structure mirrors the streaming hardware core
    and so the fixed-point variant can share the same code path.
    """
    data = np.asarray(x, dtype=np.complex128)
    n = data.shape[-1]
    _validate_power_of_two(n)
    work = data[..., bit_reverse_indices(n)].copy()
    stages = n.bit_length() - 1
    for stage in range(1, stages + 1):
        m = 1 << stage
        half = m // 2
        twiddles = np.exp(-2j * np.pi * np.arange(half) / m)
        work = work.reshape(*work.shape[:-1], n // m, m)
        upper = work[..., :half]
        lower = work[..., half:] * twiddles
        work = np.concatenate([upper + lower, upper - lower], axis=-1)
        work = work.reshape(*work.shape[:-2], n)
    return work


def ifft(x: np.ndarray) -> np.ndarray:
    """Inverse FFT matching ``numpy.fft.ifft`` (1/N normalisation)."""
    data = np.asarray(x, dtype=np.complex128)
    n = data.shape[-1]
    _validate_power_of_two(n)
    return np.conj(fft(np.conj(data))) / n


def fixed_point_fft(
    x: np.ndarray,
    fmt: FixedPointFormat,
    inverse: bool = False,
    scale_per_stage: bool = True,
) -> np.ndarray:
    """Radix-2 FFT with per-stage quantisation, modelling a hardware core.

    Parameters
    ----------
    x:
        Input samples (1-D).
    fmt:
        Fixed-point format applied to the datapath after every butterfly
        stage.
    inverse:
        Compute the IFFT instead of the FFT.
    scale_per_stage:
        Divide by two after every stage (the standard block-floating
        alternative used in FPGA cores to avoid overflow).  The overall
        scaling then equals ``1/N`` — the natural IFFT normalisation — for
        both directions; callers that need an unscaled FFT can multiply by
        ``N`` afterwards.
    """
    data = np.asarray(x, dtype=np.complex128)
    if data.ndim != 1:
        raise ValueError("fixed_point_fft operates on 1-D inputs")
    n = data.size
    _validate_power_of_two(n)
    sign = 1.0 if inverse else -1.0
    work = fmt.quantize_complex(data[bit_reverse_indices(n)])
    stages = n.bit_length() - 1
    for stage in range(1, stages + 1):
        m = 1 << stage
        half = m // 2
        twiddles = np.exp(sign * 2j * np.pi * np.arange(half) / m)
        work = work.reshape(n // m, m)
        upper = work[:, :half]
        lower = work[:, half:] * twiddles
        combined = np.concatenate([upper + lower, upper - lower], axis=1)
        if scale_per_stage:
            combined = combined / 2.0
        work = fmt.quantize_complex(combined).reshape(-1)
    return work


class Fft:
    """FFT/IFFT engine with optional fixed-point datapath and latency model.

    The latency model reflects a streaming pipelined radix-2 core: the core
    must ingest all ``n`` samples and then flushes its ``log2(n)`` butterfly
    stages, each of which is itself pipelined a few registers deep.
    """

    #: Pipeline registers per butterfly stage assumed by the latency model.
    PIPELINE_DEPTH_PER_STAGE = 4

    def __init__(
        self,
        size: int,
        fixed_format: Optional[FixedPointFormat] = None,
    ) -> None:
        _validate_power_of_two(size)
        self.size = size
        self.fixed_format = fixed_format

    @property
    def stages(self) -> int:
        """Number of radix-2 butterfly stages (``log2(size)``)."""
        return self.size.bit_length() - 1

    @property
    def latency_cycles(self) -> int:
        """Clock cycles from first sample in to first sample out."""
        return self.size + self.stages * self.PIPELINE_DEPTH_PER_STAGE

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Forward FFT of a length-``size`` block."""
        data = np.asarray(x, dtype=np.complex128)
        if data.shape[-1] != self.size:
            raise ValueError(f"expected block of {self.size} samples, got {data.shape[-1]}")
        if self.fixed_format is None:
            return fft(data)
        return fixed_point_fft(data, self.fixed_format, inverse=False) * self.size

    def inverse(self, x: np.ndarray) -> np.ndarray:
        """Inverse FFT of a length-``size`` block."""
        data = np.asarray(x, dtype=np.complex128)
        if data.shape[-1] != self.size:
            raise ValueError(f"expected block of {self.size} samples, got {data.shape[-1]}")
        if self.fixed_format is None:
            return ifft(data)
        return fixed_point_fft(data, self.fixed_format, inverse=True)


def ofdm_modulate(
    frequency_domain: np.ndarray,
    cyclic_prefix_length: int,
) -> np.ndarray:
    """IFFT + cyclic-prefix insertion for one OFDM symbol.

    The paper's cyclic-prefix block copies the last 25 % of the time-domain
    symbol in front of it; ``cyclic_prefix_length`` expresses that length in
    samples so other ratios can be explored.
    """
    freq = np.asarray(frequency_domain, dtype=np.complex128)
    n = freq.shape[-1]
    _validate_power_of_two(n)
    if not 0 <= cyclic_prefix_length <= n:
        raise ValueError("cyclic prefix length must be between 0 and the FFT size")
    time_domain = ifft(freq)
    if cyclic_prefix_length == 0:
        return time_domain
    prefix = time_domain[..., n - cyclic_prefix_length:]
    return np.concatenate([prefix, time_domain], axis=-1)


def ofdm_demodulate(
    time_domain: np.ndarray,
    fft_size: int,
    cyclic_prefix_length: int,
) -> np.ndarray:
    """Cyclic-prefix removal + FFT for one OFDM symbol."""
    samples = np.asarray(time_domain, dtype=np.complex128)
    expected = fft_size + cyclic_prefix_length
    if samples.shape[-1] != expected:
        raise ValueError(
            f"expected {expected} samples (fft {fft_size} + CP {cyclic_prefix_length}), "
            f"got {samples.shape[-1]}"
        )
    useful = samples[..., cyclic_prefix_length:]
    return fft(useful)

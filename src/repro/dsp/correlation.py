"""Sliding-window correlators.

The time synchroniser (Fig. 4) correlates the incoming sample stream against
32 pre-stored complex-conjugate preamble samples: every clock cycle a sliding
window of 32 consecutive samples is multiplied with the stored values and
summed, requiring 32 parallel complex multipliers (128 real 18-bit
multipliers) in hardware.  :class:`SlidingWindowCorrelator` is the software
model of that structure; :func:`cross_correlate` is the batch equivalent.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterable, List

import numpy as np


def cross_correlate(samples: np.ndarray, reference: np.ndarray) -> np.ndarray:
    """Correlate ``samples`` against ``reference`` with a sliding window.

    Output index ``k`` is ``sum_i samples[k + i] * reference[i]`` — the same
    sum the hardware produces when the window is aligned so its *oldest*
    sample is ``samples[k]``.  The output has
    ``len(samples) - len(reference) + 1`` entries.
    """
    x = np.asarray(samples, dtype=np.complex128).ravel()
    ref = np.asarray(reference, dtype=np.complex128).ravel()
    if ref.size == 0:
        raise ValueError("reference must not be empty")
    if x.size < ref.size:
        raise ValueError("sample stream shorter than the reference window")
    # np.correlate with mode="valid" computes sum x[k+i] * conj(ref[i]); the
    # hardware stores the conjugates explicitly, so we pass conj(ref) to undo
    # numpy's implicit conjugation and keep the same convention as the RTL.
    return np.correlate(x, np.conj(ref), mode="valid")


class SlidingWindowCorrelator:
    """Streaming correlator with a shift-register window.

    Mirrors the hardware structure: a 32-stage shift register, one complex
    multiplier per tap and a pipelined adder tree.  ``push`` accepts one
    sample per "clock cycle" and returns the correlation value once the
    window is full (``None`` before that, modelling pipeline fill).
    """

    def __init__(self, reference: np.ndarray) -> None:
        ref = np.asarray(reference, dtype=np.complex128).ravel()
        if ref.size == 0:
            raise ValueError("reference must not be empty")
        self.reference = ref
        self.window_length = ref.size
        self._window: Deque[complex] = deque(maxlen=ref.size)
        self.multiplier_count = ref.size
        #: Real multipliers needed in hardware (4 per complex multiply).
        self.real_multiplier_count = 4 * ref.size

    def reset(self) -> None:
        """Clear the shift register."""
        self._window.clear()

    def push(self, sample: complex) -> complex | None:
        """Shift one sample in; return the correlation once the window is full."""
        self._window.append(complex(sample))
        if len(self._window) < self.window_length:
            return None
        window = np.array(self._window, dtype=np.complex128)
        return complex(np.dot(window, self.reference))

    def process(self, samples: Iterable[complex]) -> List[complex]:
        """Push a whole sample stream and collect the valid correlator outputs."""
        outputs: List[complex] = []
        for sample in samples:
            value = self.push(sample)
            if value is not None:
                outputs.append(value)
        return outputs

"""Pluggable DSP backend seam for the transform-heavy datapaths.

The whole-burst transmit and receive chains reduce to a handful of dense
array primitives — batched FFT/IFFT over a ``(..., fft_size)`` block plus
array creation in the backend's working dtype.  A :class:`DspBackend`
captures exactly that surface, so future speedups (single precision,
threaded/numba kernels, a GPU array library) are a backend choice rather
than a rewrite of the transmitter or receiver.

Two backends ship today:

* :class:`NumpyBackend` (``"numpy"``, the default) — double-precision
  complex128 arithmetic through the cached per-size
  :class:`~repro.dsp.fft.FftPlan` tables.  This is the bit-exact reference
  every agreement test pins down.
* :class:`SinglePrecisionBackend` (``"numpy32"``) — the same planned
  radix-2 butterflies run in complex64 with single-precision twiddle
  tables.  Results agree with the double path to float32 round-off; it
  exists to prove the seam carries a genuinely different arithmetic, and
  halves the memory traffic of the transform stages.

``REPRO_DSP_BACKEND`` selects the process-wide default consumed by the
sweep engine (:func:`default_backend`); because a non-default backend
changes the simulated arithmetic, the backend name participates in
:meth:`repro.sim.SweepSpec.spec_hash` so cached results can never alias
across backends.
"""

from __future__ import annotations

import os
from functools import lru_cache
from typing import Dict, Tuple, Union

import numpy as np
import numpy.typing as npt

from repro.dsp.fft import get_plan

#: Any complex array a backend may produce (complex128 or complex64,
#: depending on the backend's working dtype).
ComplexArrayAny = npt.NDArray[np.complexfloating]

#: Environment variable naming the process-wide default backend.
_ENV_VAR = "REPRO_DSP_BACKEND"


class DspBackend:
    """Interface every DSP backend implements.

    A backend owns a complex working dtype and the batched transform
    primitives of the burst datapaths.  All methods operate on the last
    axis and batch over arbitrary leading axes, mirroring
    :mod:`repro.dsp.fft`.
    """

    #: Registry name (also what ``REPRO_DSP_BACKEND`` selects).
    name: str = "abstract"
    #: Complex dtype of every array this backend produces.
    complex_dtype: np.dtype = np.dtype(np.complex128)

    def asarray(self, values: npt.ArrayLike) -> ComplexArrayAny:
        """Coerce ``values`` into this backend's working dtype."""
        return np.asarray(values, dtype=self.complex_dtype)

    def zeros(self, shape: Union[int, Tuple[int, ...]]) -> ComplexArrayAny:
        """Zero-filled array in the backend dtype."""
        return np.zeros(shape, dtype=self.complex_dtype)

    def fft(self, x: npt.ArrayLike) -> ComplexArrayAny:
        """Forward FFT over the last axis (leading axes batched)."""
        raise NotImplementedError

    def ifft(self, x: npt.ArrayLike) -> ComplexArrayAny:
        """Inverse FFT over the last axis (``1/N`` normalisation)."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} name={self.name!r} dtype={self.complex_dtype}>"


class NumpyBackend(DspBackend):
    """Plan-cached complex128 numpy backend (the bit-exact default).

    Routes through the shared :class:`~repro.dsp.fft.FftPlan` tables, so a
    transform issued here is bit-identical to the module-level
    :func:`repro.dsp.fft.fft`/:func:`repro.dsp.fft.ifft` calls the scalar
    reference paths make.
    """

    name = "numpy"
    complex_dtype = np.dtype(np.complex128)

    def fft(self, x: npt.ArrayLike) -> ComplexArrayAny:
        data = self.asarray(x)
        return get_plan(data.shape[-1]).forward(data)

    def ifft(self, x: npt.ArrayLike) -> ComplexArrayAny:
        data = self.asarray(x)
        return get_plan(data.shape[-1]).inverse(data)


@lru_cache(maxsize=32)
def _single_precision_tables(size: int) -> Tuple[np.ndarray, Tuple[np.ndarray, ...]]:
    """Per-size bit-reverse permutation and complex64 twiddle tables.

    Derived from the shared double-precision plan (so the two backends
    always describe the same transform), then rounded once to float32.
    """
    plan = get_plan(size)
    return (
        plan.bit_reverse,
        tuple(t.astype(np.complex64) for t in plan.forward_twiddles),
    )


class SinglePrecisionBackend(DspBackend):
    """complex64 radix-2 backend behind the same API.

    Runs the exact butterfly schedule of :class:`~repro.dsp.fft.FftPlan`
    but keeps the datapath (and the twiddle tables) in single precision
    throughout, so nothing is silently widened to double.
    """

    name = "numpy32"
    complex_dtype = np.dtype(np.complex64)

    def fft(self, x: npt.ArrayLike) -> ComplexArrayAny:
        data = self.asarray(x)
        n = data.shape[-1]
        bit_reverse, twiddles = _single_precision_tables(n)
        work = data[..., bit_reverse].copy()
        for stage, stage_twiddles in enumerate(twiddles, start=1):
            m = 1 << stage
            half = m // 2
            work = work.reshape(*work.shape[:-1], n // m, m)
            upper = work[..., :half]
            lower = work[..., half:] * stage_twiddles
            work = np.concatenate([upper + lower, upper - lower], axis=-1)
            work = work.reshape(*work.shape[:-2], n)
        return work

    def ifft(self, x: npt.ArrayLike) -> ComplexArrayAny:
        data = self.asarray(x)
        scale = np.float32(1.0 / data.shape[-1])
        return np.conj(self.fft(np.conj(data))) * scale


_BACKENDS: Dict[str, DspBackend] = {
    backend.name: backend for backend in (NumpyBackend(), SinglePrecisionBackend())
}

BackendLike = Union[None, str, DspBackend]


def available_backends() -> Tuple[str, ...]:
    """Registered backend names, sorted."""
    return tuple(sorted(_BACKENDS))


def register_backend(backend: DspBackend) -> DspBackend:
    """Add (or replace) a backend in the registry; returns it for chaining."""
    if not isinstance(backend, DspBackend):
        raise TypeError(f"expected a DspBackend, got {backend!r}")
    _BACKENDS[backend.name] = backend
    return backend


def get_backend(spec: BackendLike = None) -> DspBackend:
    """Resolve ``spec`` (None, a name, or an instance) into a backend.

    ``None`` returns the default complex128 numpy backend — callers that
    want the environment override use :func:`default_backend` instead.
    """
    if spec is None:
        return _BACKENDS["numpy"]
    if isinstance(spec, DspBackend):
        return spec
    if isinstance(spec, str):
        try:
            return _BACKENDS[spec]
        except KeyError:
            raise ValueError(
                f"unknown DSP backend {spec!r}; available: {available_backends()}"
            ) from None
    raise TypeError(f"backend must be None, a name or a DspBackend, got {spec!r}")


def default_backend() -> DspBackend:
    """The process-wide default backend (``REPRO_DSP_BACKEND`` or numpy)."""
    return get_backend(os.environ.get(_ENV_VAR) or "numpy")

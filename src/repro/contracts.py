"""Declarative shape contracts for datapath stages.

The transceiver is a chain of fixed-shape tensor stages, and the
costliest historical bugs were shape mistakes no unit test saw until a
sweep ran.  :func:`shaped` turns a stage's shape expectations into a
declaration that is enforced twice:

* **at runtime** — the decorator checks every call (cheap tuple
  comparisons; disable with ``REPRO_SHAPE_CHECKS=0`` for hot sweeps);
* **statically** — the ``SHAPE001`` lint rule reads the same contract
  strings off the AST and checks call sites where the dataflow pass can
  prove what is passed.

Contract grammar (shared verbatim with ``repro_lint.dataflow`` — the
cross-parser agreement test keeps the two in lock-step)::

    @shaped(streams="(n_rx, n_samples)")            # one parameter
    @shaped("(n_streams, n_bits)", bits="(n_bits,)")  # positional = return
    @shaped(x="(_, 64) | (_, n_sym, 64)")           # alternatives

Dimensions are comma-separated inside parentheses: an identifier binds a
name (all uses of one name must agree within a single call, across
parameters *and* the return value), an integer literal must match
exactly, ``_`` matches any single dimension, and ``...`` (at most one
per alternative) matches any number of dimensions.  ``|`` separates
alternatives; the first that matches wins.

Violations raise :class:`ShapeContractError` naming the function, the
offending argument and the reason.
"""

from __future__ import annotations

import functools
import inspect
import os
from typing import Any, Callable, Dict, Optional, Tuple, TypeVar, Union

import numpy as np

from repro.exceptions import ReproError

__all__ = [
    "ShapeContractError",
    "parse_contract",
    "shaped",
    "shape_checks_enabled",
]

#: One dimension spec: literal int, bound name, ``None`` (= ``_``) or
#: ``Ellipsis`` (= ``...``).
DimSpec = Union[int, str, None, type(Ellipsis)]
ContractAlternative = Tuple[DimSpec, ...]

_F = TypeVar("_F", bound=Callable[..., Any])


class ShapeContractError(ReproError, ValueError):
    """An array violated the shape contract its stage declared.

    Also a ``ValueError``: contracts formalise checks stages used to
    hand-roll (and some still do), and callers that guarded those with
    ``except ValueError`` must keep working when the decorator fires
    first.
    """


def shape_checks_enabled() -> bool:
    """Runtime contract checks are on unless ``REPRO_SHAPE_CHECKS=0``."""
    return os.environ.get("REPRO_SHAPE_CHECKS", "1") != "0"


def parse_contract(text: str) -> Tuple[ContractAlternative, ...]:
    """Parse a shape-contract string into its alternatives.

    ``"(n_rx, fft_size)"`` -> one alternative; ``"(a,) | (a, b)"`` ->
    two.  Raises ``ValueError`` on malformed contracts.  This parser is
    deliberately a twin of ``repro_lint.dataflow.parse_contract`` (the
    linter must not import the engine it lints); the agreement test in
    ``tests/test_shape_contracts.py`` holds them bit-identical.
    """
    alternatives = []
    for part in text.split("|"):
        part = part.strip()
        if not (part.startswith("(") and part.endswith(")")):
            raise ValueError(f"shape contract {text!r}: alternative {part!r} "
                             "must be parenthesised, e.g. '(n_rx, n_samples)'")
        inner = part[1:-1].strip()
        dims: list = []
        if inner:
            for token in inner.split(","):
                token = token.strip()
                if not token:
                    continue
                if token == "...":
                    dims.append(Ellipsis)
                elif token == "_":
                    dims.append(None)
                elif token.lstrip("+-").isdigit():
                    dims.append(int(token))
                elif token.isidentifier():
                    dims.append(token)
                else:
                    raise ValueError(
                        f"shape contract {text!r}: bad dimension {token!r}"
                    )
        if dims.count(Ellipsis) > 1:
            raise ValueError(f"shape contract {text!r}: at most one '...'")
        alternatives.append(tuple(dims))
    if not alternatives:
        raise ValueError(f"shape contract {text!r} declares no alternative")
    return tuple(alternatives)


def _match_alternative(
    alternative: ContractAlternative,
    shape: Tuple[int, ...],
    bindings: Dict[str, int],
) -> Optional[str]:
    """None on success (updating ``bindings``), else a reason string."""
    if Ellipsis in alternative:
        cut = alternative.index(Ellipsis)
        head, tail = alternative[:cut], alternative[cut + 1:]
        if len(shape) < len(head) + len(tail):
            return (
                f"rank {len(shape)} is smaller than the contract's "
                f"{len(head) + len(tail)} fixed dimensions"
            )
        pairs = list(zip(head, shape[: len(head)]))
        if tail:
            pairs += list(zip(tail, shape[-len(tail):]))
    else:
        if len(shape) != len(alternative):
            return f"rank {len(shape)} != contract rank {len(alternative)}"
        pairs = list(zip(alternative, shape))
    for spec, dim in pairs:
        if spec is None:
            continue
        if isinstance(spec, int):
            if dim != spec:
                return f"dimension {dim} != contract literal {spec}"
            continue
        bound = bindings.get(spec)
        if bound is None:
            bindings[spec] = dim
        elif bound != dim:
            return f"'{spec}' already bound to {bound}, got {dim}"
    return None


def _match_contract(
    alternatives: Tuple[ContractAlternative, ...],
    shape: Tuple[int, ...],
    bindings: Dict[str, int],
) -> Optional[str]:
    reasons = []
    for alternative in alternatives:
        trial = dict(bindings)
        reason = _match_alternative(alternative, shape, trial)
        if reason is None:
            bindings.update(trial)
            return None
        reasons.append(reason)
    return "; ".join(reasons)


def format_alternatives(
    alternatives: Tuple[ContractAlternative, ...],
) -> str:
    def one(alt: ContractAlternative) -> str:
        parts = []
        for dim in alt:
            if dim is Ellipsis:
                parts.append("...")
            elif dim is None:
                parts.append("_")
            else:
                parts.append(str(dim))
        return "(" + ", ".join(parts) + ")"

    return " | ".join(one(alt) for alt in alternatives)


def shaped(*args: str, **param_contracts: str) -> Callable[[_F], _F]:
    """Declare (and enforce) per-parameter and return shape contracts.

    A single positional string is the *return* contract; keyword
    arguments name parameters (``returns=`` is an alias for the return
    contract).  The parsed contracts are exposed on the wrapper as
    ``__shape_contract__`` (``{param_or_"return": alternatives}``) so
    tests and tooling can introspect them.
    """
    if len(args) > 1:
        raise TypeError(
            "shaped() takes at most one positional (return) contract"
        )
    contracts: Dict[str, Tuple[ContractAlternative, ...]] = {}
    if args:
        contracts["return"] = parse_contract(args[0])
    for name, text in param_contracts.items():
        key = "return" if name == "returns" else name
        if key in contracts:
            raise TypeError(f"shaped(): duplicate contract for {key!r}")
        contracts[key] = parse_contract(text)

    def decorate(func: _F) -> _F:
        signature = inspect.signature(func)
        for param in contracts:
            if param != "return" and param not in signature.parameters:
                raise TypeError(
                    f"shaped(): {func.__qualname__} has no parameter "
                    f"{param!r}"
                )

        @functools.wraps(func)
        def wrapper(*call_args: Any, **call_kwargs: Any) -> Any:
            if not shape_checks_enabled():
                return func(*call_args, **call_kwargs)
            bound = signature.bind(*call_args, **call_kwargs)
            bindings: Dict[str, int] = {}
            for param, alternatives in contracts.items():
                if param == "return" or param not in bound.arguments:
                    continue
                value = bound.arguments[param]
                shape = _shape_of(value)
                if shape is None:
                    continue
                reason = _match_contract(alternatives, shape, bindings)
                if reason is not None:
                    raise ShapeContractError(
                        f"{func.__qualname__}: argument {param!r} with "
                        f"shape {shape} violates its contract "
                        f"{format_alternatives(alternatives)}: {reason}"
                    )
            result = func(*call_args, **call_kwargs)
            returns = contracts.get("return")
            if returns is not None:
                shape = _shape_of(result)
                if shape is not None:
                    reason = _match_contract(returns, shape, bindings)
                    if reason is not None:
                        raise ShapeContractError(
                            f"{func.__qualname__}: return value with "
                            f"shape {shape} violates its contract "
                            f"{format_alternatives(returns)}: {reason}"
                        )
            return result

        wrapper.__shape_contract__ = contracts
        return wrapper  # type: ignore[return-value]

    return decorate


def _shape_of(value: Any) -> Optional[Tuple[int, ...]]:
    """The shape to check, or None for non-array values (skipped)."""
    shape = getattr(value, "shape", None)
    if isinstance(shape, tuple) and all(isinstance(d, int) for d in shape):
        return shape
    if isinstance(value, np.generic):
        return ()
    return None

"""Wireless channel substrate.

The paper evaluates its transceiver on an FPGA connected to real converters;
this package provides the synthetic stand-in: composable 4x4 MIMO channel
models (ideal, AWGN, flat and frequency-selective Rayleigh fading) plus
front-end impairments (carrier-frequency offset, sample timing offset,
IQ imbalance) so the complete receive datapath — synchronisation, channel
estimation, detection, decoding — is exercised end to end.
"""

from repro.channel.awgn import (
    add_awgn,
    awgn_noise,
    noise_variance_for_snr,
    occupied_power,
)
from repro.channel.fading import (
    FlatRayleighChannel,
    FrequencySelectiveChannel,
    exponential_power_delay_profile,
    rayleigh_matrix,
)
from repro.channel.impairments import (
    apply_carrier_frequency_offset,
    apply_iq_imbalance,
    apply_sample_delay,
)
from repro.channel.model import ChannelOutput, IdealChannel, MimoChannel

__all__ = [
    "add_awgn",
    "awgn_noise",
    "noise_variance_for_snr",
    "occupied_power",
    "FlatRayleighChannel",
    "FrequencySelectiveChannel",
    "exponential_power_delay_profile",
    "rayleigh_matrix",
    "apply_carrier_frequency_offset",
    "apply_iq_imbalance",
    "apply_sample_delay",
    "ChannelOutput",
    "IdealChannel",
    "MimoChannel",
]

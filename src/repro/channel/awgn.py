"""Additive white Gaussian noise helpers."""

from __future__ import annotations

import numpy as np
import numpy.typing as npt

from repro.types import ComplexArray
from repro.utils.rng import SeedLike, make_rng
from repro.utils.units import db_to_linear


def noise_variance_for_snr(snr_db: float, signal_power: float = 1.0) -> float:
    """Complex noise variance achieving ``snr_db`` for the given signal power."""
    if signal_power <= 0:
        raise ValueError("signal_power must be positive")
    return signal_power / db_to_linear(snr_db)


def awgn_noise(
    shape: tuple[int, ...] | int,
    variance: float,
    rng: SeedLike = None,
) -> ComplexArray:
    """Circularly-symmetric complex Gaussian noise with total variance ``variance``."""
    if variance < 0:
        raise ValueError("variance must be non-negative")
    generator = make_rng(rng)
    scale = np.sqrt(variance / 2.0)
    real = generator.normal(0.0, 1.0, size=shape)
    imag = generator.normal(0.0, 1.0, size=shape)
    return scale * (real + 1j * imag)


def occupied_power(signal: npt.ArrayLike) -> float:
    """Mean signal power over the *occupied* sample instants.

    A burst observation window can contain sample instants where nothing is
    on the air at all — the zero padding a timing delay prepends, or the
    idle tail after the last OFDM symbol.  Averaging ``|x|**2`` over the
    whole window dilutes the measured power by those silent samples, so an
    SNR calibrated against it silently depends on the delay and
    burst-length axes.  This helper measures power only over instants where
    at least one antenna carries energy: for a 1-D stream, the nonzero
    samples; for an ``(..., n_samples)`` multi-antenna array, the columns
    whose total power across antennas is nonzero (a staggered-preamble slot
    where *some* antennas idle is still occupied air time).

    Returns ``0.0`` when the signal is empty or entirely silent.
    """
    samples = np.asarray(signal, dtype=np.complex128)
    if samples.size == 0:
        return 0.0
    power = np.abs(samples) ** 2
    if samples.ndim == 1:
        occupied = power > 0
    else:
        occupied = power.sum(axis=tuple(range(samples.ndim - 1))) > 0
    if not occupied.any():
        return 0.0
    return float(np.mean(power[..., occupied]))


def add_awgn(
    signal: npt.ArrayLike,
    snr_db: float,
    rng: SeedLike = None,
    measure_power: bool = True,
    signal_power: float | None = None,
) -> ComplexArray:
    """Add AWGN to ``signal`` at the requested SNR.

    Parameters
    ----------
    signal:
        Complex baseband samples (any shape).
    snr_db:
        Desired signal-to-noise ratio in dB.
    rng:
        Seed or generator for reproducibility.
    measure_power:
        When True the signal power is measured from ``signal`` over the
        occupied sample instants (see :func:`occupied_power` — zero padding
        and idle tails must not dilute the measurement); when False unit
        signal power is assumed.
    signal_power:
        Explicit signal power overriding the measurement entirely — the
        hook :class:`~repro.channel.model.MimoChannel` uses to calibrate
        noise against the power it measured before later stages.
    """
    samples = np.asarray(signal, dtype=np.complex128)
    if samples.size == 0:
        return samples.copy()
    if signal_power is not None:
        power = float(signal_power)
    elif measure_power:
        power = occupied_power(samples)
    else:
        power = 1.0
    if power == 0.0:
        return samples.copy()
    variance = noise_variance_for_snr(snr_db, power)
    return samples + awgn_noise(samples.shape, variance, rng)

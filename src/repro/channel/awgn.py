"""Additive white Gaussian noise helpers."""

from __future__ import annotations

import numpy as np

from repro.utils.rng import SeedLike, make_rng


def noise_variance_for_snr(snr_db: float, signal_power: float = 1.0) -> float:
    """Complex noise variance achieving ``snr_db`` for the given signal power."""
    if signal_power <= 0:
        raise ValueError("signal_power must be positive")
    return signal_power / (10.0 ** (snr_db / 10.0))


def awgn_noise(
    shape: tuple[int, ...] | int,
    variance: float,
    rng: SeedLike = None,
) -> np.ndarray:
    """Circularly-symmetric complex Gaussian noise with total variance ``variance``."""
    if variance < 0:
        raise ValueError("variance must be non-negative")
    generator = make_rng(rng)
    scale = np.sqrt(variance / 2.0)
    real = generator.normal(0.0, 1.0, size=shape)
    imag = generator.normal(0.0, 1.0, size=shape)
    return scale * (real + 1j * imag)


def add_awgn(
    signal: np.ndarray,
    snr_db: float,
    rng: SeedLike = None,
    measure_power: bool = True,
) -> np.ndarray:
    """Add AWGN to ``signal`` at the requested SNR.

    Parameters
    ----------
    signal:
        Complex baseband samples (any shape).
    snr_db:
        Desired signal-to-noise ratio in dB.
    rng:
        Seed or generator for reproducibility.
    measure_power:
        When True the signal power is measured from ``signal`` (appropriate
        for OFDM waveforms whose power varies with loading); when False unit
        signal power is assumed.
    """
    samples = np.asarray(signal, dtype=np.complex128)
    if samples.size == 0:
        return samples.copy()
    power = float(np.mean(np.abs(samples) ** 2)) if measure_power else 1.0
    if power == 0.0:
        return samples.copy()
    variance = noise_variance_for_snr(snr_db, power)
    return samples + awgn_noise(samples.shape, variance, rng)

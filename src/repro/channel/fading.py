"""MIMO fading channel models.

Two models are provided:

* :class:`FlatRayleighChannel` — a single complex 4x4 (or NxM) matrix applied
  to every sample; the per-subcarrier channel matrices seen by the receiver
  are then all equal, which makes it the easiest model for validating the
  channel-estimation/QRD/inversion pipeline.
* :class:`FrequencySelectiveChannel` — independent Rayleigh taps per
  transmit/receive antenna pair with an exponential power-delay profile,
  which produces genuinely different channel matrices per subcarrier (the
  situation the per-subcarrier estimator in the paper is built for).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

import numpy.typing as npt

from repro.types import ComplexArray, FloatArray
from repro.dsp.fft import get_plan
from repro.utils.rng import SeedLike, make_rng


def rayleigh_matrix(
    n_rx: int, n_tx: int, rng: SeedLike = None, normalize: bool = True
) -> np.ndarray:
    """Draw an ``n_rx x n_tx`` i.i.d. Rayleigh (complex Gaussian) channel matrix.

    With ``normalize`` the entries have unit average power, so the average
    received power per antenna equals the transmitted power per antenna times
    ``n_tx``.
    """
    if n_rx <= 0 or n_tx <= 0:
        raise ValueError("antenna counts must be positive")
    generator = make_rng(rng)
    h = generator.normal(size=(n_rx, n_tx)) + 1j * generator.normal(size=(n_rx, n_tx))
    if normalize:
        h /= np.sqrt(2.0)
    return h


def exponential_power_delay_profile(n_taps: int, decay: float = 1.0) -> FloatArray:
    """Exponentially decaying tap powers, normalised to sum to one."""
    if n_taps <= 0:
        raise ValueError("n_taps must be positive")
    if decay <= 0:
        raise ValueError("decay must be positive")
    powers = np.exp(-np.arange(n_taps) / decay)
    return powers / powers.sum()


class FlatRayleighChannel:
    """Frequency-flat Rayleigh MIMO channel.

    Applies a single channel matrix ``H`` to the per-antenna sample streams:
    ``y = H @ x`` sample by sample.
    """

    def __init__(
        self,
        n_rx: int = 4,
        n_tx: int = 4,
        rng: SeedLike = None,
        matrix: Optional[np.ndarray] = None,
    ) -> None:
        self.n_rx = n_rx
        self.n_tx = n_tx
        if matrix is not None:
            h = np.asarray(matrix, dtype=np.complex128)
            if h.shape != (n_rx, n_tx):
                raise ValueError(f"matrix must have shape ({n_rx}, {n_tx})")
            self.matrix = h
        else:
            self.matrix = rayleigh_matrix(n_rx, n_tx, rng)

    def apply(self, tx_samples: npt.ArrayLike) -> ComplexArray:
        """Apply the channel to ``tx_samples`` of shape ``(n_tx, n_samples)``."""
        x = np.asarray(tx_samples, dtype=np.complex128)
        if x.ndim != 2 or x.shape[0] != self.n_tx:
            raise ValueError(f"expected shape ({self.n_tx}, n_samples), got {x.shape}")
        return self.matrix @ x

    def frequency_response(self, fft_size: int) -> ComplexArray:
        """Channel matrix per subcarrier, shape ``(fft_size, n_rx, n_tx)``."""
        return np.broadcast_to(
            self.matrix, (fft_size, self.n_rx, self.n_tx)
        ).copy()


class FrequencySelectiveChannel:
    """Frequency-selective Rayleigh MIMO channel (tapped delay line).

    Each transmit/receive antenna pair has ``n_taps`` independent complex
    Gaussian taps drawn from an exponential power-delay profile.  The taps
    are fixed at construction (block fading), matching the paper's assumption
    that the channel is static across one burst so a single preamble-based
    estimate serves the whole burst.
    """

    def __init__(
        self,
        n_rx: int = 4,
        n_tx: int = 4,
        n_taps: int = 4,
        decay: float = 2.0,
        rng: SeedLike = None,
        taps: Optional[np.ndarray] = None,
    ) -> None:
        if n_taps <= 0:
            raise ValueError("n_taps must be positive")
        self.n_rx = n_rx
        self.n_tx = n_tx
        self.n_taps = n_taps
        if taps is not None:
            t = np.asarray(taps, dtype=np.complex128)
            if t.shape != (n_rx, n_tx, n_taps):
                raise ValueError(f"taps must have shape ({n_rx}, {n_tx}, {n_taps})")
            self.taps = t
        else:
            generator = make_rng(rng)
            profile = exponential_power_delay_profile(n_taps, decay)
            gains = generator.normal(size=(n_rx, n_tx, n_taps)) + 1j * generator.normal(
                size=(n_rx, n_tx, n_taps)
            )
            gains /= np.sqrt(2.0)
            self.taps = gains * np.sqrt(profile)[None, None, :]

    def apply(self, tx_samples: npt.ArrayLike) -> ComplexArray:
        """Convolve ``tx_samples`` of shape ``(n_tx, n_samples)`` with the taps."""
        x = np.asarray(tx_samples, dtype=np.complex128)
        if x.ndim != 2 or x.shape[0] != self.n_tx:
            raise ValueError(f"expected shape ({self.n_tx}, n_samples), got {x.shape}")
        n_samples = x.shape[1]
        y = np.zeros((self.n_rx, n_samples), dtype=np.complex128)
        for rx in range(self.n_rx):
            for tx in range(self.n_tx):
                full = np.convolve(x[tx], self.taps[rx, tx])
                y[rx] += full[:n_samples]
        return y

    def frequency_response(self, fft_size: int) -> ComplexArray:
        """Exact channel matrix per subcarrier, shape ``(fft_size, n_rx, n_tx)``.

        Useful as the ground truth the receiver's estimate is compared with.
        Routed through the shared :class:`~repro.dsp.fft.FftPlan` tables —
        the same transform the burst datapaths run — so ``fft_size`` must be
        a power of two, like everywhere else in the chain.
        """
        if fft_size < self.n_taps:
            raise ValueError("fft_size must be at least the number of taps")
        padded = np.zeros((self.n_rx, self.n_tx, fft_size), dtype=np.complex128)
        padded[:, :, : self.n_taps] = self.taps
        response = get_plan(fft_size).forward(padded)
        return np.transpose(response, (2, 0, 1))

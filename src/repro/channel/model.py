"""Composable end-to-end MIMO channel model.

:class:`MimoChannel` chains transmit-side DAC quantisation, a fading model
(ideal / flat Rayleigh / frequency selective), front-end impairments (CFO,
sample delay), AWGN, the receive-mixer IQ imbalance and receive-side ADC
quantisation into a single object with one :meth:`MimoChannel.transmit`
call, and exposes the ground-truth per-subcarrier channel matrices so
experiments can compare the receiver's estimates against the real channel.

Stage order is physical: the IQ imbalance models the *receive* mixer, so it
distorts signal and antenna noise alike — it runs after the AWGN stage, and
only the ADC quantisation follows it.  Noise is calibrated against the
signal power over *occupied* sample instants (see
:func:`repro.channel.awgn.occupied_power`), so the delivered SNR does not
depend on how much zero padding a timing delay prepends or how long the
idle tail runs; the exact variance used is reported on the output.

The default datapath is fused: one observation-window buffer is allocated
and fading/CFO/noise/IQ/quantisation update it in place, whole-burst,
without intermediate per-stage copies.  ``vectorized=False`` keeps the
original stage-at-a-time pipeline as the bit-exact agreement-test
reference.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.channel.awgn import awgn_noise, noise_variance_for_snr, occupied_power
from repro.channel.fading import FlatRayleighChannel, FrequencySelectiveChannel
from repro.channel.impairments import (
    apply_carrier_frequency_offset,
    apply_iq_imbalance,
)
from repro.dsp.fixedpoint import FixedPointFormat
from repro.utils.rng import SeedLike, make_rng
from repro.utils.units import amplitude_db_to_gain


class IdealChannel:
    """Identity channel: each receive antenna hears exactly one transmit antenna."""

    def __init__(self, n_rx: int = 4, n_tx: int = 4) -> None:
        if n_rx != n_tx:
            raise ValueError("the ideal channel requires n_rx == n_tx")
        self.n_rx = n_rx
        self.n_tx = n_tx
        self.matrix = np.eye(n_rx, dtype=np.complex128)

    def apply(self, tx_samples: np.ndarray) -> np.ndarray:
        """Pass the transmit streams straight through."""
        x = np.asarray(tx_samples, dtype=np.complex128)
        if x.ndim != 2 or x.shape[0] != self.n_tx:
            raise ValueError(f"expected shape ({self.n_tx}, n_samples), got {x.shape}")
        return x.copy()

    def frequency_response(self, fft_size: int) -> np.ndarray:
        """Identity channel matrix on every subcarrier."""
        return np.broadcast_to(
            np.eye(self.n_rx, dtype=np.complex128), (fft_size, self.n_rx, self.n_tx)
        ).copy()


@dataclass
class ChannelOutput:
    """Result of pushing a burst through the channel.

    Attributes
    ----------
    samples:
        Received samples per antenna, shape ``(n_rx, n_samples)``.
    snr_db:
        The SNR at which noise was added (``None`` for a noiseless run).
    noise_variance:
        The complex noise variance actually injected — calibrated against
        the occupied-sample signal power, so receivers (MMSE weights, soft
        LLR scaling) can use the true value instead of re-measuring it from
        the noisy output.  ``None`` for a noiseless run.
    true_frequency_response:
        Ground-truth channel matrix per subcarrier (``None`` until requested
        via :meth:`MimoChannel.transmit` with ``fft_size``).
    """

    samples: np.ndarray
    snr_db: Optional[float] = None
    noise_variance: Optional[float] = None
    true_frequency_response: Optional[np.ndarray] = None


class MimoChannel:
    """Fading + impairments + noise applied to a multi-antenna burst.

    Parameters
    ----------
    fading:
        One of :class:`IdealChannel`, :class:`FlatRayleighChannel`,
        :class:`FrequencySelectiveChannel` or any object with ``apply`` and
        ``frequency_response`` methods and ``n_rx``/``n_tx`` attributes.
    snr_db:
        SNR of the added AWGN; ``None`` disables noise.
    cfo_normalized:
        Carrier-frequency offset in cycles per sample (``0`` disables).
    sample_delay:
        Integer sample delay prepended to the burst, exercising time sync.
        The observation window is extended by the delay so the burst tail
        is never lost (the receiver keeps listening while the burst arrives
        late).
    iq_amplitude_db / iq_phase_deg:
        Receive-mixer IQ amplitude (dB) and phase (degrees) imbalance
        (``0`` disables).  As a receive-side impairment it runs *after*
        noise injection — the mixer distorts antenna noise too.
    tx_quantization:
        Optional :class:`~repro.dsp.fixedpoint.FixedPointFormat` applied to
        the transmit samples before the channel — the DAC word length on
        the paper's 16-bit sample interface.
    rx_quantization:
        Optional format applied to the received samples after the noise —
        the ADC word length.  (The receiver-side insertion point used by the
        sweep engine is ``TransceiverConfig.rx_sample_format``; this hook
        exists for standalone channel experiments.)
    rng:
        Seed or generator used for the noise (fading randomness is owned by
        the fading object itself).
    vectorized:
        Run the fused whole-burst datapath (default): one observation
        buffer, every stage applied in place.  ``False`` selects the
        stage-at-a-time pipeline kept as the bit-exact agreement-test
        reference.
    """

    def __init__(
        self,
        fading=None,
        snr_db: Optional[float] = None,
        cfo_normalized: float = 0.0,
        sample_delay: int = 0,
        iq_amplitude_db: float = 0.0,
        iq_phase_deg: float = 0.0,
        tx_quantization: Optional[FixedPointFormat] = None,
        rx_quantization: Optional[FixedPointFormat] = None,
        rng: SeedLike = None,
        vectorized: bool = True,
    ) -> None:
        self.fading = fading if fading is not None else IdealChannel()
        self.snr_db = snr_db
        self.cfo_normalized = cfo_normalized
        self.sample_delay = sample_delay
        self.iq_amplitude_db = iq_amplitude_db
        self.iq_phase_deg = iq_phase_deg
        self.tx_quantization = tx_quantization
        self.rx_quantization = rx_quantization
        self.rng = make_rng(rng)
        self.vectorized = vectorized

    @property
    def n_rx(self) -> int:
        """Number of receive antennas."""
        return self.fading.n_rx

    @property
    def n_tx(self) -> int:
        """Number of transmit antennas."""
        return self.fading.n_tx

    def transmit(
        self, tx_samples: np.ndarray, fft_size: Optional[int] = None
    ) -> ChannelOutput:
        """Push a transmit burst through fading, impairments and noise.

        Parameters
        ----------
        tx_samples:
            Transmit samples per antenna, shape ``(n_tx, n_samples)``.
        fft_size:
            When given, the ground-truth per-subcarrier frequency response is
            attached to the output for estimator-accuracy experiments.
        """
        x = np.asarray(tx_samples, dtype=np.complex128)
        if x.ndim != 2 or x.shape[0] != self.n_tx:
            raise ValueError(f"expected shape ({self.n_tx}, n_samples), got {x.shape}")

        if self.tx_quantization is not None:
            x = self.tx_quantization.quantize_complex(x)
        if self.vectorized:
            y, noise_variance = self._transmit_fused(x)
        else:
            y, noise_variance = self._transmit_stages(x)

        response = None
        if fft_size is not None:
            response = self.fading.frequency_response(fft_size)
        return ChannelOutput(
            samples=y,
            snr_db=self.snr_db,
            noise_variance=noise_variance,
            true_frequency_response=response,
        )

    def _noise_variance_for(self, y: np.ndarray) -> Optional[float]:
        """Noise variance delivering ``snr_db`` over the occupied samples.

        Measured on the pre-noise signal, so zero padding (timing delay)
        and the idle burst tail cannot dilute the signal-power estimate —
        the delivered SNR is invariant to the ``sample_delay`` and
        burst-length axes.  Returns ``None`` for a noiseless channel and
        ``0.0`` when the window carries no signal at all.
        """
        if self.snr_db is None:
            return None
        power = occupied_power(y)
        if power == 0.0:
            return 0.0
        return noise_variance_for_snr(self.snr_db, power)

    def _transmit_stages(
        self, x: np.ndarray
    ) -> tuple[np.ndarray, Optional[float]]:
        """Stage-at-a-time reference pipeline (bit-exact vs the fused path)."""
        y = self.fading.apply(x)
        if self.sample_delay:
            # The receiver keeps listening while the burst arrives late:
            # the observation window grows by the delay and every
            # transmitted sample survives the shift.  (The length-preserving
            # apply_sample_delay alone would truncate the burst tail.)
            pad = np.zeros(y.shape[:-1] + (self.sample_delay,), dtype=np.complex128)
            y = np.concatenate([pad, y], axis=-1)
        if self.cfo_normalized:
            y = apply_carrier_frequency_offset(y, self.cfo_normalized)
        noise_variance = self._noise_variance_for(y)
        if noise_variance:
            y = y + awgn_noise(y.shape, noise_variance, self.rng)
        if self.iq_amplitude_db or self.iq_phase_deg:
            y = apply_iq_imbalance(y, self.iq_amplitude_db, self.iq_phase_deg)
        if self.rx_quantization is not None:
            y = self.rx_quantization.quantize_complex(y)
        return y, noise_variance

    def _transmit_fused(
        self, x: np.ndarray
    ) -> tuple[np.ndarray, Optional[float]]:
        """Fused whole-burst pipeline: one buffer, every stage in place.

        Applies exactly the stages of :meth:`_transmit_stages` in the same
        order with the same arithmetic (agreement-tested bit-exact), but
        allocates the observation window once — the delay padding is a
        slice assignment instead of a concatenate, and the CFO rotation,
        noise addition and IQ mixing are in-place updates.
        """
        faded = self.fading.apply(x)
        if self.sample_delay:
            y = np.zeros(
                faded.shape[:-1] + (faded.shape[-1] + self.sample_delay,),
                dtype=np.complex128,
            )
            y[..., self.sample_delay :] = faded
        else:
            # Every fading model returns a fresh array, safe to mutate.
            y = faded
        if self.cfo_normalized:
            indices = np.arange(y.shape[-1])
            y *= np.exp(2j * np.pi * self.cfo_normalized * indices)
        noise_variance = self._noise_variance_for(y)
        if noise_variance:
            y += awgn_noise(y.shape, noise_variance, self.rng)
        if self.iq_amplitude_db or self.iq_phase_deg:
            g = amplitude_db_to_gain(self.iq_amplitude_db)
            phi = np.deg2rad(self.iq_phase_deg)
            alpha = 0.5 * (1.0 + g * np.exp(1j * phi))
            beta = 0.5 * (1.0 - g * np.exp(1j * phi))
            # Operand order matters for bit-exactness: numpy's complex
            # multiply fuses one product (FMA), so scalar*array and
            # array*scalar differ in the last ULP.  Keep the reference's
            # scalar-first order while still writing in place.
            image = np.conj(y)
            np.multiply(beta, image, out=image)
            np.multiply(alpha, y, out=y)
            y += image
        if self.rx_quantization is not None:
            y = self.rx_quantization.quantize_complex(y)
        return y, noise_variance

"""Analogue/front-end impairments applied to baseband sample streams.

These exercise the correction loops on the receiver datapath: pilot-based
phase correction handles residual carrier offset, and the feed-forward timing
(tau) correction handles fractional sample-timing error.
"""

from __future__ import annotations

import numpy as np

from repro.utils.units import amplitude_db_to_gain


def apply_carrier_frequency_offset(
    samples: np.ndarray, cfo_normalized: float, start_index: int = 0
) -> np.ndarray:
    """Apply a carrier-frequency offset of ``cfo_normalized`` cycles/sample.

    ``samples`` may be a 1-D stream or ``(n_antennas, n_samples)``; the same
    rotation is applied to every antenna (a shared local oscillator, as in
    the paper's single-board implementation).
    """
    x = np.asarray(samples, dtype=np.complex128)
    n = x.shape[-1]
    indices = np.arange(start_index, start_index + n)
    rotation = np.exp(2j * np.pi * cfo_normalized * indices)
    return x * rotation


def apply_sample_delay(samples: np.ndarray, delay: int) -> np.ndarray:
    """Delay a sample stream by an integer number of samples (zero padded).

    A positive delay prepends zeros (the burst arrives later), exercising the
    time synchroniser's search; the stream length is preserved, so the last
    ``delay`` samples fall off the end of the observation window.  Callers
    that must not lose the burst tail grow the window instead — e.g.
    :meth:`repro.channel.model.MimoChannel.transmit` prepends ``delay``
    idle samples directly.
    """
    x = np.asarray(samples, dtype=np.complex128)
    if delay == 0:
        return x.copy()
    if delay < 0:
        raise ValueError("delay must be non-negative")
    n = x.shape[-1]
    pad_shape = x.shape[:-1] + (delay,)
    padded = np.concatenate([np.zeros(pad_shape, dtype=np.complex128), x], axis=-1)
    return padded[..., :n]


def apply_iq_imbalance(
    samples: np.ndarray, amplitude_imbalance_db: float = 0.0, phase_imbalance_deg: float = 0.0
) -> np.ndarray:
    """Apply transmit/receive IQ gain and phase imbalance.

    Modelled as ``y = alpha * x + beta * conj(x)`` with the standard
    amplitude/phase parameterisation.
    """
    x = np.asarray(samples, dtype=np.complex128)
    g = amplitude_db_to_gain(amplitude_imbalance_db)
    phi = np.deg2rad(phase_imbalance_deg)
    alpha = 0.5 * (1.0 + g * np.exp(1j * phi))
    beta = 0.5 * (1.0 - g * np.exp(1j * phi))
    return alpha * x + beta * np.conj(x)

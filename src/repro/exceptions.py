"""Exception hierarchy for the MIMO transceiver reproduction."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class ConfigurationError(ReproError):
    """Raised when a transceiver or block configuration is inconsistent."""


class SynchronizationError(ReproError):
    """Raised when the time synchroniser cannot locate the start of a burst."""


class ChannelEstimationError(ReproError):
    """Raised when channel estimation fails (e.g. singular channel matrix)."""


class DecodingError(ReproError):
    """Raised when the receive datapath cannot decode a frame."""

"""MIMO detectors (equalisers).

The paper's MIMO decoder multiplies each received frequency-domain vector by
the pre-computed inverse channel matrix for its subcarrier — zero-forcing
(ZF) detection.  :class:`ZeroForcingDetector` reproduces that behaviour from
a :class:`~repro.mimo.channel_estimation.ChannelEstimate`;
:class:`MmseDetector` is the textbook baseline used by the ablation
benchmarks to quantify what the ZF choice costs at low SNR.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import numpy.typing as npt

from repro.contracts import shaped
from repro.exceptions import DecodingError
from repro.mimo.channel_estimation import ChannelEstimate
from repro.mimo.matrix import hermitian
from repro.types import ComplexArray, FloatArray


def _apply_per_subcarrier(weights: ComplexArray, received: npt.ArrayLike) -> ComplexArray:
    """Multiply per-subcarrier weight matrices into received vectors.

    ``weights`` has shape ``(fft_size, n_out, n_rx)``.  ``received`` is either
    one OFDM symbol, shape ``(n_rx, fft_size)``, or a whole burst of them,
    shape ``(n_rx, n_symbols, fft_size)``; the result keeps the layout with
    ``n_out`` replacing ``n_rx``.  Both forms contract the antenna axis in the
    same index order, so the batched product is bit-identical to applying the
    2-D form symbol by symbol.
    """
    y = np.asarray(received, dtype=np.complex128)
    if y.ndim == 2:
        if weights.shape[0] != y.shape[1]:
            raise ValueError("weights and received disagree on the FFT size")
        # einsum over subcarriers: x_hat[:, k] = W[k] @ y[:, k]
        return np.einsum("kij,jk->ik", weights, y)
    if y.ndim == 3:
        if weights.shape[0] != y.shape[2]:
            raise ValueError("weights and received disagree on the FFT size")
        # one contraction for the whole burst: x_hat[:, n, k] = W[k] @ y[:, n, k]
        return np.einsum("kij,jnk->ink", weights, y)
    raise ValueError(
        "received must have shape (n_rx, fft_size) or (n_rx, n_symbols, fft_size)"
    )


@shaped(
    received="(n_rx, fft_size) | (n_rx, n_symbols, fft_size)",
    channel_inverses="(fft_size, n_tx, n_rx)",
)
def zf_detect(received: npt.ArrayLike, channel_inverses: npt.ArrayLike) -> ComplexArray:
    """Zero-forcing detection: multiply by the stored ``H^-1`` per subcarrier.

    Parameters
    ----------
    received:
        Frequency-domain received symbols — one OFDM symbol of shape
        ``(n_rx, fft_size)``, or a whole burst of shape
        ``(n_rx, n_symbols, fft_size)``.
    channel_inverses:
        Pre-computed inverse channel matrices, shape ``(fft_size, n_tx, n_rx)``.

    Returns
    -------
    Equalised transmit-stream estimates, shape ``(n_tx, fft_size)`` or
    ``(n_tx, n_symbols, fft_size)`` matching the input form.
    """
    inv = np.asarray(channel_inverses, dtype=np.complex128)
    if inv.ndim != 3:
        raise ValueError("channel_inverses must have shape (fft_size, n_tx, n_rx)")
    return _apply_per_subcarrier(inv, received)


class ZeroForcingDetector:
    """Per-subcarrier ZF detector driven by a channel estimate."""

    def __init__(self, estimate: ChannelEstimate) -> None:
        self.estimate = estimate

    def detect(self, received: npt.ArrayLike) -> ComplexArray:
        """Equalise ``received`` of shape ``(n_rx, fft_size)``."""
        return zf_detect(received, self.estimate.inverses)

    def noise_enhancement(self) -> FloatArray:
        """Per-subcarrier noise-enhancement factor of ZF equalisation.

        For each active subcarrier this is ``trace(inv @ inv^H) / n_tx`` —
        the factor by which white noise power is amplified, which explains
        the BER gap to MMSE at low SNR in the ablation benchmark.
        """
        inv = self.estimate.inverses
        active = self.estimate.active_mask
        enhancement = np.zeros(inv.shape[0])
        for k in np.nonzero(active)[0]:
            gram = inv[k] @ hermitian(inv[k])
            enhancement[k] = float(np.real(np.trace(gram))) / inv.shape[1]
        return enhancement


class MmseDetector:
    """Linear MMSE detector baseline.

    Uses the *estimated* channel matrices (not the inverses) and the noise
    variance: ``W_k = (H^H H + sigma^2 I)^-1 H^H``.
    """

    def __init__(self, estimate: ChannelEstimate, noise_variance: float) -> None:
        if noise_variance < 0:
            raise ValueError("noise_variance cannot be negative")
        self.estimate = estimate
        self.noise_variance = noise_variance
        self._weights = self._compute_weights()

    def _compute_weights(self) -> np.ndarray:
        h = self.estimate.matrices
        fft_size, n_rx, n_tx = h.shape
        weights = np.zeros((fft_size, n_tx, n_rx), dtype=np.complex128)
        identity = np.eye(n_tx)
        for k in np.nonzero(self.estimate.active_mask)[0]:
            hk = h[k]
            gram = hermitian(hk) @ hk + self.noise_variance * identity
            try:
                weights[k] = np.linalg.solve(gram, hermitian(hk))
            except np.linalg.LinAlgError as error:
                # With noise_variance == 0 the regulariser vanishes and a
                # rank-deficient channel estimate makes the Gram matrix
                # exactly singular.  That is a property of the burst, not a
                # programming error: surface it as the receive-chain failure
                # the sweep engine already counts as a lost frame.
                raise DecodingError(
                    f"MMSE Gram matrix is singular on subcarrier {k} "
                    f"(noise_variance={self.noise_variance})"
                ) from error
        return weights

    def detect(self, received: npt.ArrayLike) -> ComplexArray:
        """Equalise one symbol ``(n_rx, fft_size)`` or a burst
        ``(n_rx, n_symbols, fft_size)``."""
        return _apply_per_subcarrier(self._weights, received)

"""MIMO processing substrate: QR decomposition, triangular inversion,
channel estimation and symbol detection."""

from repro.mimo.channel_estimation import (
    ChannelEstimate,
    ChannelEstimator,
    estimate_channel_from_lts,
    invert_channel_matrices,
)
from repro.mimo.detector import MmseDetector, ZeroForcingDetector, zf_detect
from repro.mimo.matrix import (
    frobenius_error,
    hermitian,
    is_unitary,
    is_upper_triangular,
    matrix_inverse_via_qr,
)
from repro.mimo.qr import CordicQrDecomposer, GivensRotation, qr_decompose_givens
from repro.mimo.rinv import invert_upper_triangular, r_inverse_4x4_paper_equations

__all__ = [
    "ChannelEstimate",
    "ChannelEstimator",
    "estimate_channel_from_lts",
    "invert_channel_matrices",
    "MmseDetector",
    "ZeroForcingDetector",
    "zf_detect",
    "frobenius_error",
    "hermitian",
    "is_unitary",
    "is_upper_triangular",
    "matrix_inverse_via_qr",
    "CordicQrDecomposer",
    "GivensRotation",
    "qr_decompose_givens",
    "invert_upper_triangular",
    "r_inverse_4x4_paper_equations",
]

"""Small complex-matrix helpers shared by the MIMO processing blocks."""

from __future__ import annotations

import numpy as np
import numpy.typing as npt

from repro.types import ComplexArray


def hermitian(matrix: npt.ArrayLike) -> ComplexArray:
    """Conjugate transpose."""
    return np.conj(np.asarray(matrix)).T


def is_upper_triangular(matrix: npt.ArrayLike, tolerance: float = 1e-9) -> bool:
    """True when everything below the main diagonal is (numerically) zero."""
    m = np.asarray(matrix)
    if m.ndim != 2 or m.shape[0] != m.shape[1]:
        raise ValueError("expected a square matrix")
    lower = np.tril(m, k=-1)
    return bool(np.all(np.abs(lower) <= tolerance))


def is_unitary(matrix: npt.ArrayLike, tolerance: float = 1e-8) -> bool:
    """True when ``Q^H Q`` is (numerically) the identity."""
    q = np.asarray(matrix, dtype=np.complex128)
    if q.ndim != 2 or q.shape[0] != q.shape[1]:
        raise ValueError("expected a square matrix")
    identity = np.eye(q.shape[0])
    return bool(np.allclose(hermitian(q) @ q, identity, atol=tolerance))


def frobenius_error(a: npt.ArrayLike, b: npt.ArrayLike) -> float:
    """Relative Frobenius-norm error ``||a - b|| / ||b||``."""
    a_arr = np.asarray(a, dtype=np.complex128)
    b_arr = np.asarray(b, dtype=np.complex128)
    if a_arr.shape != b_arr.shape:
        raise ValueError("matrices must have the same shape")
    denom = np.linalg.norm(b_arr)
    if denom == 0:
        return float(np.linalg.norm(a_arr))
    return float(np.linalg.norm(a_arr - b_arr) / denom)


def matrix_inverse_via_qr(matrix: npt.ArrayLike) -> ComplexArray:
    """Reference matrix inverse through NumPy's QR (float baseline).

    Used by the ablation benchmark that compares the paper's CORDIC/Givens
    pipeline against a straightforward floating-point implementation.
    """
    h = np.asarray(matrix, dtype=np.complex128)
    if h.ndim != 2 or h.shape[0] != h.shape[1]:
        raise ValueError("expected a square matrix")
    q, r = np.linalg.qr(h)  # reprolint: disable=EXC002 -- offline float reference for ablation benchmarks; never pooled by the sweep engine
    return np.linalg.solve(r, hermitian(q))  # reprolint: disable=EXC002 -- same: callers are benchmarks/tests that want the raw LinAlgError

"""QR decomposition via complex Givens rotations (the "three angle" method).

The paper decomposes each subcarrier's 4x4 channel matrix with a systolic
array of CORDIC cells (Figs. 6-8):

* **boundary cells** (two vectoring CORDICs) annihilate the phase of the
  incoming element and then compute the real Givens rotation against the
  stored diagonal value — producing the two angles ``theta_b`` (phase) and
  ``theta_1`` (rotation) that are passed along the row;
* **internal cells** (three rotation CORDICs) first remove the phase
  ``theta_b`` from their incoming element and then apply the real rotation
  ``theta_1`` jointly to the stored value and the de-phased input.

The same angle stream applied to an identity matrix yields ``Q^H`` directly
(the array labelled "Q matrix" in Fig. 7), which is exactly what the
inversion ``H^-1 = R^-1 Q^H`` needs.

Two implementations are provided:

* :func:`qr_decompose_givens` — floating-point rotations (the functional
  reference);
* :class:`CordicQrDecomposer` — every angle computation and rotation routed
  through :class:`repro.dsp.cordic.Cordic`, so word-length/iteration effects
  can be studied, and so the structural model in
  :mod:`repro.rtl.systolic_qrd` has a numerically identical core to check
  against.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.dsp.cordic import Cordic
from repro.mimo.matrix import hermitian


@dataclass(frozen=True)
class GivensRotation:
    """One complex Givens step: phase removal plus a real rotation.

    Annihilates row ``row`` of column ``col`` against the diagonal element in
    row ``col`` (the boundary cell's stored value).

    Attributes
    ----------
    col:
        Column being processed (the boundary cell's column).
    row:
        Row whose element is being annihilated.
    theta_b:
        Phase of the annihilated element (removed first).
    theta_1:
        Real rotation angle between the diagonal value and the de-phased
        element.
    """

    col: int
    row: int
    theta_b: float
    theta_1: float


def _apply_rotation_float(
    matrix: np.ndarray, rotation: GivensRotation
) -> None:
    """Apply one Givens step to ``matrix`` in place (float reference)."""
    col, row = rotation.col, rotation.row
    phase = np.exp(-1j * rotation.theta_b)
    matrix[row, :] = matrix[row, :] * phase
    c = math.cos(rotation.theta_1)
    s = math.sin(rotation.theta_1)
    upper = matrix[col, :].copy()
    lower = matrix[row, :].copy()
    matrix[col, :] = c * upper + s * lower
    matrix[row, :] = -s * upper + c * lower


def qr_decompose_givens(
    matrix: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, List[GivensRotation]]:
    """QR decomposition by complex Givens rotations (floating point).

    Returns ``(q, r, rotations)`` with ``matrix = q @ r``, ``r`` upper
    triangular with real non-negative diagonal, and the rotation sequence the
    systolic array would evaluate (useful for the structural model and for
    replaying the same rotations onto the identity to obtain ``Q^H``).
    """
    h = np.asarray(matrix, dtype=np.complex128)
    if h.ndim != 2 or h.shape[0] != h.shape[1]:
        raise ValueError("expected a square matrix")
    n = h.shape[0]
    r = h.copy()
    q_hermitian = np.eye(n, dtype=np.complex128)
    rotations: List[GivensRotation] = []

    for col in range(n):
        # First make the diagonal element real and non-negative: the boundary
        # cell's stored value is a magnitude.
        diag = r[col, col]
        theta_diag = math.atan2(diag.imag, diag.real)
        diag_rotation = GivensRotation(col=col, row=col, theta_b=theta_diag, theta_1=0.0)
        rotations.append(diag_rotation)
        _apply_rotation_float(r, diag_rotation)
        _apply_rotation_float(q_hermitian, diag_rotation)
        for row in range(col + 1, n):
            element = r[row, col]
            theta_b = math.atan2(element.imag, element.real)
            magnitude = abs(element)
            pivot = r[col, col].real
            theta_1 = math.atan2(magnitude, pivot)
            rotation = GivensRotation(col=col, row=row, theta_b=theta_b, theta_1=theta_1)
            rotations.append(rotation)
            _apply_rotation_float(r, rotation)
            _apply_rotation_float(q_hermitian, rotation)
    # Clean numerically-zero subdiagonal residue.
    r[np.tril_indices(n, k=-1)] = 0.0
    q = hermitian(q_hermitian)
    return q, r, rotations


class CordicQrDecomposer:
    """QR decomposition with every angle/rotation evaluated by CORDIC.

    Parameters
    ----------
    iterations:
        Micro-rotations per CORDIC (the ablation sweep varies this).
    cordic:
        Optionally supply a pre-configured :class:`Cordic` (e.g. with a
        fixed-point datapath); ``iterations`` is ignored in that case.
    """

    def __init__(self, iterations: int = 16, cordic: Optional[Cordic] = None) -> None:
        self.cordic = cordic if cordic is not None else Cordic(iterations=iterations)

    # ------------------------------------------------------------------
    def _rotate_complex(self, value: complex, angle: float) -> complex:
        result = self.cordic.rotate(value.real, value.imag, angle)
        return complex(result.x, result.y)

    def _apply_rotation(self, matrix: np.ndarray, rotation: GivensRotation) -> None:
        col, row = rotation.col, rotation.row
        n = matrix.shape[1]
        # Phase removal on the annihilated row (one rotation CORDIC per element).
        for k in range(n):
            matrix[row, k] = self._rotate_complex(matrix[row, k], -rotation.theta_b)
        # Real rotation applied jointly to the pivot row and the annihilated
        # row: one CORDIC for the real parts, one for the imaginary parts.
        for k in range(n):
            upper = matrix[col, k]
            lower = matrix[row, k]
            real = self.cordic.rotate(upper.real, lower.real, -rotation.theta_1)
            imag = self.cordic.rotate(upper.imag, lower.imag, -rotation.theta_1)
            matrix[col, k] = complex(real.x, imag.x)
            matrix[row, k] = complex(real.y, imag.y)

    # ------------------------------------------------------------------
    def decompose(
        self, matrix: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, List[GivensRotation]]:
        """Decompose ``matrix`` into ``(q, r, rotations)`` using CORDIC cells."""
        h = np.asarray(matrix, dtype=np.complex128)
        if h.ndim != 2 or h.shape[0] != h.shape[1]:
            raise ValueError("expected a square matrix")
        n = h.shape[0]
        r = h.copy()
        q_hermitian = np.eye(n, dtype=np.complex128)
        rotations: List[GivensRotation] = []

        for col in range(n):
            diag = r[col, col]
            diag_vec = self.cordic.vector(diag.real, diag.imag)
            diag_rotation = GivensRotation(
                col=col, row=col, theta_b=diag_vec.angle, theta_1=0.0
            )
            rotations.append(diag_rotation)
            self._apply_rotation(r, diag_rotation)
            self._apply_rotation(q_hermitian, diag_rotation)
            for row in range(col + 1, n):
                element = r[row, col]
                # Boundary cell, first vectoring CORDIC: phase + magnitude of b.
                vec_b = self.cordic.vector(element.real, element.imag)
                theta_b = vec_b.angle
                magnitude = vec_b.magnitude
                # Boundary cell, second vectoring CORDIC: rotation of (|a|, |b|).
                pivot = r[col, col].real
                vec_1 = self.cordic.vector(pivot, magnitude)
                theta_1 = vec_1.angle
                rotation = GivensRotation(
                    col=col, row=row, theta_b=theta_b, theta_1=theta_1
                )
                rotations.append(rotation)
                self._apply_rotation(r, rotation)
                self._apply_rotation(q_hermitian, rotation)

        r[np.tril_indices(n, k=-1)] = 0.0
        q = hermitian(q_hermitian)
        return q, r, rotations

    def decompose_r_and_q_hermitian(
        self, matrix: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(r, q_hermitian)`` — what the hardware arrays actually output."""
        q, r, _rotations = self.decompose(matrix)
        return r, hermitian(q)

"""Per-subcarrier MIMO channel estimation and inversion.

The receiver estimates a 4x4 channel matrix on every subcarrier from the
staggered LTS preamble (each transmit antenna sends the LTS in its own time
slot, Fig. 2, and each slot contains two LTS repetitions that are averaged).
The estimated matrices are then inverted — QR decomposition, back
substitution of R, and the ``R^-1 Q^H`` multiply — and the inverses stored in
the channel-estimate memories used by the MIMO detector.

:class:`ChannelEstimator` packages the whole process; the lower-level
functions are exposed for tests and benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

import numpy.typing as npt

from repro.types import ComplexArray
from repro.exceptions import ChannelEstimationError
from repro.mimo.matrix import hermitian
from repro.mimo.qr import CordicQrDecomposer, qr_decompose_givens
from repro.mimo.rinv import invert_upper_triangular


def estimate_channel_from_lts(
    received_lts: npt.ArrayLike,
    reference_lts: npt.ArrayLike,
    active_mask: Optional[npt.NDArray[np.bool_]] = None,
) -> ComplexArray:
    """Estimate per-subcarrier channel matrices from staggered LTS symbols.

    Parameters
    ----------
    received_lts:
        Frequency-domain received LTS, shape ``(n_tx_slots, n_rx, fft_size)``:
        element ``[j, i, k]`` is what receive antenna ``i`` observed on
        subcarrier ``k`` while transmit antenna ``j`` was sending its LTS
        (already averaged over the two LTS repetitions).
    reference_lts:
        Known frequency-domain LTS values per subcarrier, shape
        ``(fft_size,)``.  Subcarriers where the reference is zero (guards,
        DC) are left as zero in the estimate.
    active_mask:
        Optional boolean mask of subcarriers to estimate; defaults to the
        non-zero entries of ``reference_lts``.

    Returns
    -------
    Channel estimate of shape ``(fft_size, n_rx, n_tx)``.
    """
    rx = np.asarray(received_lts, dtype=np.complex128)
    ref = np.asarray(reference_lts, dtype=np.complex128).ravel()
    if rx.ndim != 3:
        raise ValueError("received_lts must have shape (n_tx, n_rx, fft_size)")
    n_tx, n_rx, fft_size = rx.shape
    if ref.size != fft_size:
        raise ValueError("reference_lts length must equal the FFT size")
    if active_mask is None:
        active_mask = np.abs(ref) > 0
    else:
        active_mask = np.asarray(active_mask, dtype=bool).ravel()
        if active_mask.size != fft_size:
            raise ValueError("active_mask length must equal the FFT size")

    estimate = np.zeros((fft_size, n_rx, n_tx), dtype=np.complex128)
    for k in np.nonzero(active_mask)[0]:
        if ref[k] == 0:
            raise ChannelEstimationError(
                f"subcarrier {k} is marked active but the reference LTS is zero there"
            )
        # H[i, j] = Y_i^{(j)}(k) / LTS(k)
        estimate[k] = (rx[:, :, k] / ref[k]).T
    return estimate


def invert_channel_matrices(
    channel: npt.ArrayLike,
    active_mask: Optional[npt.NDArray[np.bool_]] = None,
    use_cordic: bool = False,
    cordic_iterations: int = 16,
) -> ComplexArray:
    """Invert per-subcarrier channel matrices via QR decomposition.

    Implements the paper's pipeline: ``H = Q R``; ``H^-1 = R^-1 Q^H``.

    Parameters
    ----------
    channel:
        Channel matrices, shape ``(fft_size, n_rx, n_tx)`` with
        ``n_rx == n_tx``.
    active_mask:
        Subcarriers to invert (defaults to those whose matrix is non-zero).
    use_cordic:
        Route every rotation through the CORDIC engine instead of
        floating-point trigonometry.
    cordic_iterations:
        CORDIC micro-rotation count when ``use_cordic`` is set.
    """
    h = np.asarray(channel, dtype=np.complex128)
    if h.ndim != 3 or h.shape[1] != h.shape[2]:
        raise ValueError("channel must have shape (fft_size, n, n)")
    fft_size = h.shape[0]
    if active_mask is None:
        active_mask = np.array([np.any(np.abs(h[k]) > 0) for k in range(fft_size)])
    else:
        active_mask = np.asarray(active_mask, dtype=bool).ravel()
        if active_mask.size != fft_size:
            raise ValueError("active_mask length must equal the FFT size")

    decomposer = CordicQrDecomposer(iterations=cordic_iterations) if use_cordic else None
    inverses = np.zeros_like(h)
    for k in np.nonzero(active_mask)[0]:
        if decomposer is not None:
            q, r, _ = decomposer.decompose(h[k])
        else:
            q, r, _ = qr_decompose_givens(h[k])
        r_inv = invert_upper_triangular(r)
        inverses[k] = r_inv @ hermitian(q)
    return inverses


@dataclass
class ChannelEstimate:
    """Channel estimation result.

    Attributes
    ----------
    matrices:
        Estimated channel matrices per subcarrier, ``(fft_size, n_rx, n_tx)``.
    inverses:
        Zero-forcing equalisation matrices per subcarrier (``H^-1``), same
        shape; zero on inactive subcarriers.
    active_mask:
        Boolean mask of the subcarriers that were estimated.
    """

    matrices: ComplexArray
    inverses: ComplexArray
    active_mask: npt.NDArray[np.bool_]

    @property
    def fft_size(self) -> int:
        """Transform length the estimate covers."""
        return self.matrices.shape[0]

    @property
    def n_rx(self) -> int:
        """Number of receive antennas."""
        return self.matrices.shape[1]

    @property
    def n_tx(self) -> int:
        """Number of transmit antennas."""
        return self.matrices.shape[2]

    def estimation_error(self, true_channel: np.ndarray) -> float:
        """RMS relative error of the estimate versus a ground-truth channel."""
        truth = np.asarray(true_channel, dtype=np.complex128)
        if truth.shape != self.matrices.shape:
            raise ValueError("true channel must match the estimate's shape")
        active = self.active_mask
        diff = self.matrices[active] - truth[active]
        denom = np.linalg.norm(truth[active])
        if denom == 0:
            return float(np.linalg.norm(diff))
        return float(np.linalg.norm(diff) / denom)


class ChannelEstimator:
    """LTS-based channel estimator with QRD inversion.

    Parameters
    ----------
    reference_lts:
        Known frequency-domain LTS values per subcarrier.
    use_cordic:
        Route the QR decomposition through CORDIC arithmetic (slower but
        hardware-faithful word-length behaviour).
    cordic_iterations:
        CORDIC micro-rotation count when ``use_cordic`` is set.
    """

    def __init__(
        self,
        reference_lts: np.ndarray,
        use_cordic: bool = False,
        cordic_iterations: int = 16,
    ) -> None:
        self.reference_lts = np.asarray(reference_lts, dtype=np.complex128).ravel()
        if self.reference_lts.size == 0:
            raise ValueError("reference_lts must not be empty")
        self.use_cordic = use_cordic
        self.cordic_iterations = cordic_iterations
        self.active_mask = np.abs(self.reference_lts) > 0

    def estimate(self, received_lts: np.ndarray) -> ChannelEstimate:
        """Estimate and invert the channel from staggered LTS observations."""
        matrices = estimate_channel_from_lts(
            received_lts, self.reference_lts, self.active_mask
        )
        inverses = invert_channel_matrices(
            matrices,
            self.active_mask,
            use_cordic=self.use_cordic,
            cordic_iterations=self.cordic_iterations,
        )
        return ChannelEstimate(
            matrices=matrices, inverses=inverses, active_mask=self.active_mask.copy()
        )

"""Upper-triangular matrix inversion (the "R matrix inverse" block).

The paper lists the explicit back-substitution equations its pipelined
hardware evaluates for the 4x4 case (Section IV.B).  This module implements
both the general back-substitution (:func:`invert_upper_triangular`) and the
literal 4x4 equations (:func:`r_inverse_4x4_paper_equations`); tests verify
the two agree, and the benchmark uses the general routine for arbitrary
matrix sizes.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ChannelEstimationError


def invert_upper_triangular(r: np.ndarray, tolerance: float = 1e-12) -> np.ndarray:
    """Invert an upper-triangular matrix by back substitution.

    Implements the recurrence the paper's equations follow::

        R^-1[i, i] = 1 / R[i, i]
        R^-1[i, j] = -( sum_{k=i+1..j} R[i, k] * R^-1[k, j] ) / R[i, i]   (j > i)

    Raises
    ------
    ChannelEstimationError
        If a diagonal element is (numerically) zero, i.e. the channel matrix
        is rank deficient and zero-forcing equalisation is impossible.
    """
    matrix = np.asarray(r, dtype=np.complex128)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError("expected a square matrix")
    n = matrix.shape[0]
    if np.any(np.abs(np.tril(matrix, k=-1)) > 1e-9 * max(1.0, np.abs(matrix).max())):
        raise ValueError("matrix is not upper triangular")
    diag = np.diagonal(matrix)
    if np.any(np.abs(diag) <= tolerance):
        raise ChannelEstimationError("upper-triangular matrix is singular")

    inverse = np.zeros_like(matrix)
    for i in range(n - 1, -1, -1):
        inverse[i, i] = 1.0 / matrix[i, i]
        for j in range(i + 1, n):
            acc = 0.0 + 0.0j
            for k in range(i + 1, j + 1):
                acc += matrix[i, k] * inverse[k, j]
            inverse[i, j] = -acc / matrix[i, i]
    return inverse


def r_inverse_4x4_paper_equations(r: np.ndarray) -> np.ndarray:
    """The paper's explicit 4x4 R-inverse equations, transcribed literally.

    The hardware evaluates these with a heavily pipelined datapath because
    later terms depend on earlier ones (e.g. ``R^-1(2,3)`` needs
    ``R^-1(3,3)``).
    """
    matrix = np.asarray(r, dtype=np.complex128)
    if matrix.shape != (4, 4):
        raise ValueError("the paper's explicit equations are for 4x4 matrices")
    diag = np.diagonal(matrix)
    if np.any(np.abs(diag) == 0):
        raise ChannelEstimationError("upper-triangular matrix is singular")

    inv = np.zeros((4, 4), dtype=np.complex128)
    inv[3, 3] = 1.0 / matrix[3, 3]
    inv[2, 2] = 1.0 / matrix[2, 2]
    inv[2, 3] = -matrix[2, 3] * inv[3, 3] / matrix[2, 2]
    inv[1, 1] = 1.0 / matrix[1, 1]
    inv[1, 2] = -matrix[1, 2] * inv[2, 2] / matrix[1, 1]
    inv[1, 3] = -(matrix[1, 2] * inv[2, 3] + matrix[1, 3] * inv[3, 3]) / matrix[1, 1]
    inv[0, 0] = 1.0 / matrix[0, 0]
    inv[0, 1] = -matrix[0, 1] * inv[1, 1] / matrix[0, 0]
    inv[0, 2] = -(matrix[0, 1] * inv[1, 2] + matrix[0, 2] * inv[2, 2]) / matrix[0, 0]
    inv[0, 3] = -(
        matrix[0, 1] * inv[1, 3] + matrix[0, 2] * inv[2, 3] + matrix[0, 3] * inv[3, 3]
    ) / matrix[0, 0]
    return inv

"""Burst time synchronisation (Fig. 4).

The time synchroniser locates the start of a burst while the receiver idles.
It is preloaded with the complex conjugates of the last 16 STS samples and
the first 16 LTS samples; every clock cycle a sliding window of 32 received
samples is multiplied against those stored values and summed (32 complex
multipliers — 128 real 18-bit multipliers in hardware), the magnitude of the
sum is computed with a CORDIC, and the result is compared against a stored
threshold that represents the STS-to-LTS transition peak.  Once the
threshold is exceeded the start of frame is declared.

:class:`TimeSynchronizer` reproduces that structure.  Two detection modes are
provided:

* ``"threshold"`` — the hardware behaviour: the first window whose
  correlation magnitude exceeds ``threshold`` wins;
* ``"peak"`` — a robust software mode that picks the global correlation peak
  (useful in fading/noise sweeps where a fixed absolute threshold would need
  per-SNR tuning).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.dsp.cordic import cordic_magnitude
from repro.dsp.correlation import cross_correlate
from repro.exceptions import SynchronizationError


@dataclass(frozen=True)
class SyncResult:
    """Outcome of the burst search — one shape for both detection modes.

    Historically the threshold path reported the raw correlation magnitude
    while the peak path reported the energy-normalised metric in the same
    fields, so callers comparing detections across modes (or across
    antennas) compared different quantities.  Both traces are now always
    present and ``peak_magnitude`` is the *detection metric* at the locking
    window in both modes, which is what lets the streaming frame detector
    apply a single acceptance test regardless of the synchroniser's mode.

    Attributes
    ----------
    lts_start:
        Index (into the searched stream) of the first sample of the LTS
        section.
    peak_index:
        Index of the correlator window that triggered the detection.
    peak_magnitude:
        Detection metric at that window — ``metric[peak_index]`` in both
        modes (energy-normalised when the synchroniser normalises).
    locked:
        True when detection succeeded.
    correlation_magnitude:
        The raw correlation magnitude trace in both modes (for
        diagnostics/plots).
    metric:
        The detection-metric trace in both modes: the energy-normalised
        correlation when ``normalize`` is on (scale-invariant, ~1.0 at a
        clean preamble transition), the raw magnitude otherwise.
    """

    lts_start: int
    peak_index: int
    peak_magnitude: float
    locked: bool
    correlation_magnitude: np.ndarray
    metric: np.ndarray


class TimeSynchronizer:
    """Sliding-window preamble correlator with threshold/peak detection.

    Parameters
    ----------
    sts_time:
        Clean time-domain STS section (as transmitted by antenna 0).
    lts_time:
        Clean time-domain LTS section (including its cyclic prefix).
    window_sts / window_lts:
        How many trailing STS and leading LTS samples form the stored
        reference (16 + 16 = 32 in the paper).
    threshold:
        Absolute correlation-magnitude threshold for ``"threshold"`` mode.
        When ``None`` it is derived from the clean-signal autocorrelation
        peak (half of it), mirroring the pre-computed stored threshold.
    mode:
        ``"threshold"`` (hardware behaviour) or ``"peak"``.
    use_cordic_magnitude:
        Compute magnitudes with the CORDIC model instead of ``abs`` (slower,
        hardware-faithful).
    normalize:
        In peak mode, normalise each window's correlation by the window's
        energy before picking the peak.  The hardware relies on a tuned
        absolute threshold instead; normalisation is the software-robust
        equivalent that keeps the peak at the preamble even when the
        four-stream data section is stronger than the single-antenna STS.
    """

    def __init__(
        self,
        sts_time: np.ndarray,
        lts_time: np.ndarray,
        window_sts: int = 16,
        window_lts: int = 16,
        threshold: Optional[float] = None,
        mode: str = "peak",
        use_cordic_magnitude: bool = False,
        normalize: bool = True,
    ) -> None:
        if mode not in ("peak", "threshold"):
            raise ValueError("mode must be 'peak' or 'threshold'")
        sts = np.asarray(sts_time, dtype=np.complex128).ravel()
        lts = np.asarray(lts_time, dtype=np.complex128).ravel()
        if window_sts <= 0 or window_lts <= 0:
            raise ValueError("window lengths must be positive")
        if sts.size < window_sts or lts.size < window_lts:
            raise ValueError("preamble sections shorter than the requested windows")
        self.window_sts = window_sts
        self.window_lts = window_lts
        self.mode = mode
        self.use_cordic_magnitude = use_cordic_magnitude
        self.normalize = normalize
        # The stored reference is the complex conjugate of the expected
        # transition samples, so the correlation sum peaks (real, positive)
        # when the window lines up with the clean waveform.
        expected = np.concatenate([sts[-window_sts:], lts[:window_lts]])
        self.reference = np.conj(expected)
        clean_peak = float(np.abs(np.dot(expected, self.reference)))
        self.threshold = threshold if threshold is not None else 0.5 * clean_peak
        self.clean_peak = clean_peak

    @property
    def window_length(self) -> int:
        """Total correlator window length (32 in the paper)."""
        return self.window_sts + self.window_lts

    # ------------------------------------------------------------------
    def correlate(self, samples: np.ndarray) -> np.ndarray:
        """Correlation magnitude for every window position."""
        correlation = cross_correlate(samples, self.reference)
        if self.use_cordic_magnitude:
            return cordic_magnitude(correlation)
        return np.abs(correlation)

    def normalized_metric(
        self, samples: np.ndarray, magnitude: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Energy-normalised detection metric for every window position.

        Each window's correlation magnitude is divided by the geometric mean
        of the window's energy and the reference's energy, so the metric is
        invariant to channel gain (≈1.0 at a clean preamble transition).
        When ``normalize`` is off this returns the raw magnitude, keeping
        :attr:`SyncResult.metric` meaningful in every configuration.

        ``magnitude`` lets callers that already computed the raw correlation
        trace (e.g. :meth:`search`) avoid a second correlator pass.
        """
        stream = np.asarray(samples, dtype=np.complex128).ravel()
        if magnitude is None:
            magnitude = self.correlate(stream)
        if not self.normalize:
            return magnitude
        window_energy = np.convolve(
            np.abs(stream) ** 2,
            np.ones(self.window_length),
            mode="valid",
        )
        reference_energy = float(np.sum(np.abs(self.reference) ** 2))
        return magnitude / np.sqrt(
            np.maximum(window_energy * reference_energy, 1e-30)
        )

    def search(self, samples: np.ndarray) -> SyncResult:
        """Search a sample stream for the STS-to-LTS transition.

        Raises
        ------
        SynchronizationError
            If the stream is shorter than the window, or (in threshold mode)
            no window exceeds the threshold.
        """
        stream = np.asarray(samples, dtype=np.complex128).ravel()
        if stream.size < self.window_length:
            raise SynchronizationError(
                "sample stream shorter than the correlator window"
            )
        magnitude = self.correlate(stream)
        metric = self.normalized_metric(stream, magnitude=magnitude)

        if self.mode == "threshold":
            # The hardware compares the *raw* magnitude against the stored
            # absolute threshold; only the reporting is normalised.
            above = np.nonzero(magnitude >= self.threshold)[0]
            if above.size == 0:
                raise SynchronizationError(
                    "no correlation window exceeded the synchronisation threshold"
                )
            peak_index = int(above[0])
        else:
            peak_index = int(np.argmax(metric))

        # The window covers the last `window_sts` STS samples followed by the
        # first `window_lts` LTS samples, so the LTS section begins
        # `window_sts` samples after the window start.
        lts_start = peak_index + self.window_sts
        return SyncResult(
            lts_start=lts_start,
            peak_index=peak_index,
            peak_magnitude=float(metric[peak_index]),
            locked=True,
            correlation_magnitude=magnitude,
            metric=metric,
        )

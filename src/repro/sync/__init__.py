"""Receiver synchronisation: input buffering, burst time synchronisation and
(as an extension beyond the paper) preamble-based CFO estimation."""

from repro.hardware.memory import CircularBuffer
from repro.sync.cfo import CfoEstimate, CfoEstimator, apply_cfo_correction, estimate_cfo_from_repetition
from repro.sync.time_sync import SyncResult, TimeSynchronizer

__all__ = [
    "CircularBuffer",
    "SyncResult",
    "TimeSynchronizer",
    "CfoEstimate",
    "CfoEstimator",
    "apply_cfo_correction",
    "estimate_cfo_from_repetition",
]

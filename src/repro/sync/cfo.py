"""Carrier-frequency-offset (CFO) estimation from the repetitive preamble.

The paper's receiver corrects residual *phase* errors with the pilot tones
but does not describe an explicit CFO estimator; any practical deployment of
the architecture needs one, and the preamble it already transmits (a periodic
STS and two identical LTS repetitions) is exactly what classic
Moose/Schmidl-Cox style estimators use.  This module provides that extension:

* **coarse** estimation from the short-training section, whose period is
  ``fft_size / 4`` samples — wide acquisition range, low accuracy;
* **fine** estimation from the two long-training repetitions, separated by
  ``fft_size`` samples — narrow range (±1/(2·fft_size) cycles/sample), high
  accuracy;
* a combined estimate and a correction helper.

The estimator is optional on the receive path
(:class:`repro.core.config.TransceiverConfig.correct_cfo`); DESIGN.md lists
it as an extension beyond the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

import numpy.typing as npt

from repro.types import ComplexArray
from repro.core.preamble import PreambleGenerator
from repro.exceptions import SynchronizationError


def estimate_cfo_from_repetition(
    samples: npt.ArrayLike, period: int, start: int, n_periods: int
) -> float:
    """Estimate a normalised CFO from a periodic section of a sample stream.

    Correlates each sample with the sample one ``period`` later over
    ``(n_periods - 1) * period`` lags starting at ``start``; the angle of the
    accumulated correlation divided by ``2*pi*period`` is the CFO in cycles
    per sample.  Multi-antenna input (shape ``(n_rx, n_samples)``) is
    combined coherently across antennas.
    """
    x = np.atleast_2d(np.asarray(samples, dtype=np.complex128))
    if period <= 0 or n_periods < 2:
        raise ValueError("period must be positive and n_periods at least 2")
    span = (n_periods - 1) * period
    if start < 0 or start + span + period > x.shape[1]:
        raise SynchronizationError("repetitive section extends past the sample stream")
    segment = x[:, start : start + span]
    delayed = x[:, start + period : start + period + span]
    correlation = np.sum(delayed * np.conj(segment))
    if correlation == 0:
        return 0.0
    return float(np.angle(correlation) / (2.0 * np.pi * period))


def apply_cfo_correction(samples: npt.ArrayLike, cfo_normalized: float) -> ComplexArray:
    """Remove a normalised CFO from a sample stream (any leading shape)."""
    x = np.asarray(samples, dtype=np.complex128)
    n = x.shape[-1]
    rotation = np.exp(-2j * np.pi * cfo_normalized * np.arange(n))
    return x * rotation


@dataclass(frozen=True)
class CfoEstimate:
    """Result of preamble-based CFO estimation (cycles per sample)."""

    coarse: float
    fine: float
    combined: float

    def in_hertz(self, sample_rate_hz: float) -> float:
        """Convert the combined estimate to Hz at a given sample rate."""
        return self.combined * sample_rate_hz


class CfoEstimator:
    """Coarse + fine CFO estimation from the STS/LTS preamble.

    Parameters
    ----------
    fft_size:
        OFDM transform length (sets the STS period and LTS repetition
        spacing).
    """

    def __init__(self, fft_size: int = 64) -> None:
        self.preamble = PreambleGenerator(fft_size)
        self.fft_size = fft_size
        self.sts_period = fft_size // 4
        self.lts_period = fft_size

    @property
    def coarse_range(self) -> float:
        """Maximum unambiguous |CFO| of the coarse estimate (cycles/sample)."""
        return 0.5 / self.sts_period

    @property
    def fine_range(self) -> float:
        """Maximum unambiguous |CFO| of the fine estimate (cycles/sample)."""
        return 0.5 / self.lts_period

    # ------------------------------------------------------------------
    def coarse(self, samples: npt.ArrayLike, sts_start: int) -> float:
        """Coarse CFO from the 10 short-training repetitions."""
        # Use 8 of the 10 repetitions, skipping the first (transient) one.
        return estimate_cfo_from_repetition(
            samples,
            period=self.sts_period,
            start=sts_start + self.sts_period,
            n_periods=8,
        )

    def fine(self, samples: npt.ArrayLike, lts_start: int) -> float:
        """Fine CFO from the two long-training repetitions of slot 0."""
        lts_cp = self.preamble.lts_cp_length
        return estimate_cfo_from_repetition(
            samples,
            period=self.lts_period,
            start=lts_start + lts_cp,
            n_periods=2,
        )

    def estimate(self, samples: npt.ArrayLike, lts_start: int) -> CfoEstimate:
        """Combined coarse + fine estimate.

        The coarse estimate resolves the ambiguity of the fine one: the fine
        estimate is taken relative to the nearest multiple of its
        (1/fft_size) ambiguity interval implied by the coarse value.
        """
        sts_length = self.preamble.sts_time().size
        sts_start = lts_start - sts_length
        coarse = self.coarse(samples, sts_start) if sts_start >= 0 else 0.0
        fine = self.fine(samples, lts_start)
        ambiguity = 1.0 / self.lts_period
        # Unwrap the fine estimate onto the coarse one.
        k = np.round((coarse - fine) / ambiguity)
        combined = fine + k * ambiguity
        return CfoEstimate(coarse=coarse, fine=fine, combined=float(combined))

    def correct(self, samples: npt.ArrayLike, estimate: CfoEstimate) -> ComplexArray:
        """Remove the combined CFO estimate from a sample stream."""
        return apply_cfo_correction(samples, estimate.combined)

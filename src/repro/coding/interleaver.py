"""802.11a block interleaver / de-interleaver.

The paper implements the interleaver as two large register-based memories in
a ping-pong arrangement: one memory fills from the convolutional encoder
while the other streams out in the permuted order defined by the 802.11a
standard.  (The interleaving pattern prevented use of the FPGA's block RAM,
which is why the entity is so ALUT-hungry in Table 2.)

This module provides the permutation itself (:func:`interleave` /
:func:`deinterleave` and the index helpers) and streaming block objects
(:class:`BlockInterleaver`, :class:`BlockDeinterleaver`) that model the
ping-pong double-buffer behaviour, including the fact that data only becomes
available once an entire block has been written.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

import numpy.typing as npt

from repro.types import IntArray
from repro.utils.bits import _as_bit_array


def interleaver_permutation(n_cbps: int, n_bpsc: int) -> IntArray:
    """802.11a interleaver permutation.

    Returns an array ``perm`` of length ``n_cbps`` such that input bit ``k``
    is written to output position ``perm[k]``.

    Parameters
    ----------
    n_cbps:
        Coded bits per OFDM symbol (the interleaver block size).
    n_bpsc:
        Coded bits per subcarrier (1 BPSK, 2 QPSK, 4 16-QAM, 6 64-QAM).
    """
    if n_cbps <= 0 or n_cbps % 16 != 0:
        raise ValueError("n_cbps must be a positive multiple of 16")
    if n_bpsc <= 0:
        raise ValueError("n_bpsc must be positive")
    s = max(n_bpsc // 2, 1)
    k = np.arange(n_cbps)
    # First permutation: adjacent coded bits map onto non-adjacent subcarriers.
    i = (n_cbps // 16) * (k % 16) + k // 16
    # Second permutation: adjacent bits alternate between constellation
    # significance positions.
    j = s * (i // s) + (i + n_cbps - (16 * i) // n_cbps) % s
    perm = np.empty(n_cbps, dtype=np.int64)
    perm[k] = j
    return perm


def deinterleaver_permutation(n_cbps: int, n_bpsc: int) -> IntArray:
    """Inverse permutation: output position ``j`` receives input bit ``perm[j]``."""
    perm = interleaver_permutation(n_cbps, n_bpsc)
    inverse = np.empty_like(perm)
    inverse[perm] = np.arange(perm.size)
    return inverse


def interleave(values: npt.ArrayLike, n_cbps: int, n_bpsc: int) -> np.ndarray:
    """Interleave one or more whole blocks of coded bits (or soft values)."""
    arr = np.asarray(values)
    if arr.size % n_cbps != 0:
        raise ValueError(
            f"input length {arr.size} is not a multiple of the block size {n_cbps}"
        )
    perm = interleaver_permutation(n_cbps, n_bpsc)
    blocks = arr.reshape(-1, n_cbps)
    out = np.empty_like(blocks)
    out[:, perm] = blocks
    return out.reshape(arr.shape)


def deinterleave(values: npt.ArrayLike, n_cbps: int, n_bpsc: int) -> np.ndarray:
    """Invert :func:`interleave` on one or more whole blocks."""
    arr = np.asarray(values)
    if arr.size % n_cbps != 0:
        raise ValueError(
            f"input length {arr.size} is not a multiple of the block size {n_cbps}"
        )
    perm = interleaver_permutation(n_cbps, n_bpsc)
    blocks = arr.reshape(-1, n_cbps)
    out = blocks[:, perm]
    return out.reshape(arr.shape)


class BlockInterleaver:
    """Streaming ping-pong block interleaver.

    Bits are pushed one at a time (as the convolutional encoder emits them).
    Output blocks only become available once a whole memory has been filled,
    mirroring the hardware's "only when an entire memory block is full can it
    be read out" behaviour.
    """

    def __init__(self, n_cbps: int, n_bpsc: int) -> None:
        self.n_cbps = n_cbps
        self.n_bpsc = n_bpsc
        self._permutation = interleaver_permutation(n_cbps, n_bpsc)
        self._write_memory: List[int] = []
        self._ready_blocks: List[np.ndarray] = []
        #: Number of complete blocks that have passed through the interleaver.
        self.blocks_processed = 0

    @property
    def fill_level(self) -> int:
        """Number of bits currently buffered in the write memory."""
        return len(self._write_memory)

    def push(self, bit: int) -> Optional[np.ndarray]:
        """Push one coded bit; return an interleaved block when one completes."""
        if bit not in (0, 1):
            raise ValueError("interleaver input bits must be 0 or 1")
        self._write_memory.append(int(bit))
        if len(self._write_memory) < self.n_cbps:
            return None
        block = np.array(self._write_memory, dtype=np.uint8)
        self._write_memory = []
        out = np.empty(self.n_cbps, dtype=np.uint8)
        out[self._permutation] = block
        self.blocks_processed += 1
        return out

    def push_block(self, bits: np.ndarray) -> List[np.ndarray]:
        """Push many bits, collecting every completed interleaved block."""
        completed: List[np.ndarray] = []
        for bit in _as_bit_array(bits):
            block = self.push(int(bit))
            if block is not None:
                completed.append(block)
        return completed

    def reset(self) -> None:
        """Discard any partially filled memory."""
        self._write_memory = []
        self.blocks_processed = 0


class BlockDeinterleaver:
    """Streaming block de-interleaver (same structure, inverted addressing).

    Accepts hard bits or soft values; the hardware analogue must widen its
    memories to hold soft bit representations, which the resource model in
    :mod:`repro.hardware.estimator` accounts for.
    """

    def __init__(self, n_cbps: int, n_bpsc: int) -> None:
        self.n_cbps = n_cbps
        self.n_bpsc = n_bpsc
        self._permutation = interleaver_permutation(n_cbps, n_bpsc)
        self._write_memory: List[float] = []
        self.blocks_processed = 0

    @property
    def fill_level(self) -> int:
        """Number of values currently buffered in the write memory."""
        return len(self._write_memory)

    def push(self, value: float) -> Optional[np.ndarray]:
        """Push one received value; return a de-interleaved block when complete."""
        self._write_memory.append(float(value))
        if len(self._write_memory) < self.n_cbps:
            return None
        block = np.array(self._write_memory, dtype=np.float64)
        self._write_memory = []
        out = block[self._permutation]
        self.blocks_processed += 1
        return out

    def push_block(self, values: np.ndarray) -> List[np.ndarray]:
        """Push many values, collecting every completed de-interleaved block."""
        completed: List[np.ndarray] = []
        for value in np.asarray(values, dtype=np.float64).ravel():
            block = self.push(float(value))
            if block is not None:
                completed.append(block)
        return completed

    def reset(self) -> None:
        """Discard any partially filled memory."""
        self._write_memory = []
        self.blocks_processed = 0

"""Channel coding substrate: convolutional coding, Viterbi decoding,
802.11a block (de)interleaving and scrambling."""

from repro.coding.convolutional import (
    CodeRate,
    ConvolutionalCode,
    ConvolutionalEncoder,
    PUNCTURE_PATTERNS,
)
from repro.coding.interleaver import BlockDeinterleaver, BlockInterleaver, interleave, deinterleave
from repro.coding.scrambler import Scrambler, pilot_polarity_sequence
from repro.coding.viterbi import ViterbiDecoder

__all__ = [
    "CodeRate",
    "ConvolutionalCode",
    "ConvolutionalEncoder",
    "PUNCTURE_PATTERNS",
    "BlockInterleaver",
    "BlockDeinterleaver",
    "interleave",
    "deinterleave",
    "Scrambler",
    "pilot_polarity_sequence",
    "ViterbiDecoder",
]

"""Viterbi decoder (hard and soft decision) with depuncturing.

The paper performs error correction with a Viterbi decoder per receive
channel (Table 4 lists its resource cost).  The decoder here supports the
same generic :class:`~repro.coding.convolutional.ConvolutionalCode` the
encoder uses, hard- or soft-decision branch metrics, and depuncturing of the
802.11a punctured rates.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.coding.convolutional import ConvolutionalCode
from repro.utils.bits import BitArray

_METRIC_INF = 1e18


class ViterbiDecoder:
    """Maximum-likelihood sequence decoder for convolutional codes.

    Parameters
    ----------
    code:
        Code definition shared with the encoder (defaults to 802.11a K=7).
    decision:
        ``"hard"`` — the input is coded bits (0/1) and branch metrics are
        Hamming distances; ``"soft"`` — the input is log-likelihood ratios
        (positive LLR means the coded bit is more likely a 0, the convention
        produced by :mod:`repro.modulation.demapper`) and branch metrics are
        correlations.
    traceback_length:
        Kept for API completeness / resource modelling; this software decoder
        always runs full-block traceback, which upper-bounds the hardware's
        windowed traceback performance.
    """

    def __init__(
        self,
        code: Optional[ConvolutionalCode] = None,
        decision: str = "hard",
        traceback_length: int = 96,
    ) -> None:
        if decision not in ("hard", "soft"):
            raise ValueError("decision must be 'hard' or 'soft'")
        self.code = code if code is not None else ConvolutionalCode.ieee80211a()
        self.decision = decision
        self.traceback_length = traceback_length
        self._next_states, self._outputs = self.code.build_trellis()
        n = self.code.n_outputs
        # outputs unpacked to individual bits, shape (n_states, 2, n_outputs)
        shifts = np.arange(n - 1, -1, -1)
        self._output_bits = ((self._outputs[..., None] >> shifts) & 1).astype(np.float64)

    # ------------------------------------------------------------------
    # depuncturing
    # ------------------------------------------------------------------
    def depuncture(
        self, values: np.ndarray, n_input_bits: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Re-insert erasures removed by the puncturer.

        Parameters
        ----------
        values:
            Received coded values (hard bits or LLRs) in transmission order.
        n_input_bits:
            Number of trellis steps (information + tail bits) the block
            represents.

        Returns
        -------
        (full_values, erasure_mask):
            ``full_values`` has shape ``(n_input_bits, n_outputs)`` with
            zeros in erased positions, and ``erasure_mask`` is 1 where a real
            received value is present and 0 where the puncturer deleted the
            bit.
        """
        pattern = self.code.puncture_pattern
        period = self.code.puncture_period
        n_out = self.code.n_outputs
        received = np.asarray(values, dtype=np.float64).ravel()
        full = np.zeros((n_input_bits, n_out), dtype=np.float64)
        mask = np.zeros((n_input_bits, n_out), dtype=np.float64)
        idx = 0
        for step in range(n_input_bits):
            column = step % period
            for out in range(n_out):
                if pattern[out, column]:
                    if idx >= received.size:
                        raise ValueError(
                            "received stream too short for the requested block length"
                        )
                    full[step, out] = received[idx]
                    mask[step, out] = 1.0
                    idx += 1
        if idx != received.size:
            raise ValueError(
                f"received stream has {received.size} values but the block "
                f"consumes {idx}"
            )
        return full, mask

    # ------------------------------------------------------------------
    # branch metrics
    # ------------------------------------------------------------------
    def _branch_metrics(
        self, observation: np.ndarray, mask: np.ndarray
    ) -> np.ndarray:
        """Metric of each (state, input) branch for one trellis step.

        Lower is better.  ``observation`` and ``mask`` have length
        ``n_outputs``.
        """
        if self.decision == "hard":
            # Hamming distance over non-erased positions.
            diff = np.abs(self._output_bits - observation[None, None, :])
            return (diff * mask[None, None, :]).sum(axis=-1)
        # Soft decision: LLR convention is positive => bit 0 more likely.
        # Metric = sum over outputs of (bit ? +LLR : -LLR), lower better.
        signs = 1.0 - 2.0 * self._output_bits  # bit0 -> +1, bit1 -> -1
        return -(signs * (observation * mask)[None, None, :]).sum(axis=-1)

    # ------------------------------------------------------------------
    # decoding
    # ------------------------------------------------------------------
    def decode(
        self,
        received: Sequence[float] | np.ndarray,
        n_info_bits: Optional[int] = None,
        terminated: bool = True,
    ) -> BitArray:
        """Decode a received block back to information bits.

        Parameters
        ----------
        received:
            Hard bits or LLRs, in the (punctured) order the encoder emitted.
        n_info_bits:
            Number of information bits to return.  Required when puncturing
            makes the count ambiguous; when omitted it is inferred assuming
            an unpunctured, terminated block.
        terminated:
            Whether the encoder appended tail bits forcing the final state to
            zero; when True the decoder both exploits that and strips the
            tail from its output.
        """
        values = np.asarray(received, dtype=np.float64).ravel()
        tail = self.code.memory if terminated else 0
        if n_info_bits is None:
            pattern_sum = int(self.code.puncture_pattern.sum())
            period = self.code.puncture_period
            if values.size * period % pattern_sum != 0:
                raise ValueError(
                    "cannot infer block length; pass n_info_bits explicitly"
                )
            n_steps = values.size * period // pattern_sum
            n_info_bits = n_steps - tail
        n_steps = n_info_bits + tail
        if n_info_bits < 0:
            raise ValueError("n_info_bits must be non-negative")
        if n_steps == 0:
            return np.zeros(0, dtype=np.uint8)

        observations, mask = self.depuncture(values, n_steps)

        n_states = self.code.n_states
        metrics = np.full(n_states, _METRIC_INF)
        metrics[0] = 0.0
        survivors = np.zeros((n_steps, n_states), dtype=np.int64)
        survivor_bits = np.zeros((n_steps, n_states), dtype=np.uint8)

        next_states = self._next_states
        for step in range(n_steps):
            branch = self._branch_metrics(observations[step], mask[step])
            candidate = metrics[:, None] + branch  # (state, bit)
            new_metrics = np.full(n_states, _METRIC_INF)
            best_prev = np.zeros(n_states, dtype=np.int64)
            best_bit = np.zeros(n_states, dtype=np.uint8)
            flat_next = next_states.ravel()
            flat_metric = candidate.ravel()
            order = np.argsort(flat_metric, kind="stable")
            seen = np.zeros(n_states, dtype=bool)
            for idx in order:
                ns = flat_next[idx]
                if seen[ns]:
                    continue
                seen[ns] = True
                new_metrics[ns] = flat_metric[idx]
                best_prev[ns] = idx // 2
                best_bit[ns] = idx % 2
                if seen.all():
                    break
            metrics = new_metrics
            survivors[step] = best_prev
            survivor_bits[step] = best_bit

        end_state = 0 if terminated else int(np.argmin(metrics))
        decoded = np.zeros(n_steps, dtype=np.uint8)
        state = end_state
        for step in range(n_steps - 1, -1, -1):
            decoded[step] = survivor_bits[step, state]
            state = survivors[step, state]
        return decoded[:n_info_bits]

"""Viterbi decoder (hard and soft decision) with depuncturing.

The paper performs error correction with a Viterbi decoder per receive
channel (Table 4 lists its resource cost).  The decoder here supports the
same generic :class:`~repro.coding.convolutional.ConvolutionalCode` the
encoder uses, hard- or soft-decision branch metrics, and depuncturing of the
802.11a punctured rates.

Two add-compare-select implementations are provided: a fully vectorised
path (the default, used by the :mod:`repro.sim` sweep engine's hot loop)
that resolves every trellis step with a handful of NumPy gather/argmin
operations over a precomputed predecessor table, and the original
per-branch scalar path kept as the reference the agreement tests in
``tests/test_hot_path_agreement.py`` validate against.  Both paths are
bit-exact: they evaluate the identical ``metric + branch`` floating-point
expressions and break ties toward the smaller ``(state, bit)`` flat index.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.coding.convolutional import ConvolutionalCode
from repro.utils.bits import BitArray

_METRIC_INF = 1e18


class ViterbiDecoder:
    """Maximum-likelihood sequence decoder for convolutional codes.

    Parameters
    ----------
    code:
        Code definition shared with the encoder (defaults to 802.11a K=7).
    decision:
        ``"hard"`` — the input is coded bits (0/1) and branch metrics are
        Hamming distances; ``"soft"`` — the input is log-likelihood ratios
        (positive LLR means the coded bit is more likely a 0, the convention
        produced by :mod:`repro.modulation.demapper`) and branch metrics are
        correlations.
    traceback_length:
        Kept for API completeness / resource modelling; this software decoder
        always runs full-block traceback, which upper-bounds the hardware's
        windowed traceback performance.
    vectorized:
        Use the NumPy-vectorised add-compare-select path (default).  The
        scalar path is retained for the bit-exact agreement tests and for
        exotic codes whose trellis is not uniform (a different number of
        branches into each state).
    """

    def __init__(
        self,
        code: Optional[ConvolutionalCode] = None,
        decision: str = "hard",
        traceback_length: int = 96,
        vectorized: bool = True,
    ) -> None:
        if decision not in ("hard", "soft"):
            raise ValueError("decision must be 'hard' or 'soft'")
        self.code = code if code is not None else ConvolutionalCode.ieee80211a()
        self.decision = decision
        self.traceback_length = traceback_length
        self.vectorized = vectorized
        self._next_states, self._outputs = self.code.build_trellis()
        n = self.code.n_outputs
        # outputs unpacked to individual bits, shape (n_states, 2, n_outputs)
        shifts = np.arange(n - 1, -1, -1)
        self._output_bits = ((self._outputs[..., None] >> shifts) & 1).astype(np.float64)
        self._predecessors = self._build_predecessor_table()

    def _build_predecessor_table(self) -> Optional[np.ndarray]:
        """Flat ``(state, bit)`` indices feeding each next state.

        Row ``ns`` lists every flat index ``prev * 2 + bit`` whose branch
        lands in state ``ns``, sorted ascending so that ``argmin`` (which
        returns the first minimum) reproduces the scalar path's stable
        tie-break toward the smaller flat index.  Returns ``None`` when the
        trellis is not uniform, in which case decoding falls back to the
        scalar path.
        """
        flat_next = self._next_states.ravel()
        counts = np.bincount(flat_next, minlength=self.code.n_states)
        if counts.min() == 0 or counts.min() != counts.max():
            return None
        order = np.argsort(flat_next, kind="stable")
        return order.reshape(self.code.n_states, counts[0])

    # ------------------------------------------------------------------
    # depuncturing
    # ------------------------------------------------------------------
    def depuncture(
        self, values: np.ndarray, n_input_bits: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Re-insert erasures removed by the puncturer.

        Parameters
        ----------
        values:
            Received coded values (hard bits or LLRs) in transmission order.
        n_input_bits:
            Number of trellis steps (information + tail bits) the block
            represents.

        Returns
        -------
        (full_values, erasure_mask):
            ``full_values`` has shape ``(n_input_bits, n_outputs)`` with
            zeros in erased positions, and ``erasure_mask`` is 1 where a real
            received value is present and 0 where the puncturer deleted the
            bit.
        """
        pattern = self.code.puncture_pattern
        period = self.code.puncture_period
        n_out = self.code.n_outputs
        received = np.asarray(values, dtype=np.float64).ravel()
        # Tile the puncture pattern across trellis steps; filling the boolean
        # mask in C order (step-major, output-minor) reproduces exactly the
        # transmission order the serial depuncturer consumed values in.
        columns = np.arange(n_input_bits) % period
        present = pattern[:, columns].T.astype(bool)
        consumed = int(np.count_nonzero(present))
        if received.size < consumed:
            raise ValueError(
                "received stream too short for the requested block length"
            )
        if received.size > consumed:
            raise ValueError(
                f"received stream has {received.size} values but the block "
                f"consumes {consumed}"
            )
        full = np.zeros((n_input_bits, n_out), dtype=np.float64)
        full[present] = received
        return full, present.astype(np.float64)

    # ------------------------------------------------------------------
    # branch metrics
    # ------------------------------------------------------------------
    def _branch_metrics(
        self, observation: np.ndarray, mask: np.ndarray
    ) -> np.ndarray:
        """Metric of each (state, input) branch for one trellis step.

        Lower is better.  ``observation`` and ``mask`` have length
        ``n_outputs``.
        """
        if self.decision == "hard":
            # Hamming distance over non-erased positions.
            diff = np.abs(self._output_bits - observation[None, None, :])
            return (diff * mask[None, None, :]).sum(axis=-1)
        # Soft decision: LLR convention is positive => bit 0 more likely.
        # Metric = sum over outputs of (bit ? +LLR : -LLR), lower better.
        signs = 1.0 - 2.0 * self._output_bits  # bit0 -> +1, bit1 -> -1
        return -(signs * (observation * mask)[None, None, :]).sum(axis=-1)

    def _branch_metrics_block(
        self, observations: np.ndarray, mask: np.ndarray
    ) -> np.ndarray:
        """Branch metrics for every trellis step at once.

        ``observations`` and ``mask`` have shape ``(n_steps, n_outputs)``;
        the result has shape ``(n_steps, n_states, 2)``.  The arithmetic is
        the per-step :meth:`_branch_metrics` expression broadcast over steps,
        so the two are bit-identical.
        """
        if self.decision == "hard":
            diff = np.abs(self._output_bits[None] - observations[:, None, None, :])
            return (diff * mask[:, None, None, :]).sum(axis=-1)
        signs = 1.0 - 2.0 * self._output_bits
        return -(signs[None] * (observations * mask)[:, None, None, :]).sum(axis=-1)

    # ------------------------------------------------------------------
    # decoding
    # ------------------------------------------------------------------
    def decode(
        self,
        received: Sequence[float] | np.ndarray,
        n_info_bits: Optional[int] = None,
        terminated: bool = True,
    ) -> BitArray:
        """Decode a received block back to information bits.

        Parameters
        ----------
        received:
            Hard bits or LLRs, in the (punctured) order the encoder emitted.
        n_info_bits:
            Number of information bits to return.  Required when puncturing
            makes the count ambiguous; when omitted it is inferred assuming
            an unpunctured, terminated block.
        terminated:
            Whether the encoder appended tail bits forcing the final state to
            zero; when True the decoder both exploits that and strips the
            tail from its output.
        """
        values = np.asarray(received, dtype=np.float64).ravel()
        tail = self.code.memory if terminated else 0
        if n_info_bits is None:
            pattern_sum = int(self.code.puncture_pattern.sum())
            period = self.code.puncture_period
            if values.size * period % pattern_sum != 0:
                raise ValueError(
                    "cannot infer block length; pass n_info_bits explicitly"
                )
            n_steps = values.size * period // pattern_sum
            n_info_bits = n_steps - tail
        n_steps = n_info_bits + tail
        if n_info_bits < 0:
            raise ValueError("n_info_bits must be non-negative")
        if n_steps == 0:
            return np.zeros(0, dtype=np.uint8)

        observations, mask = self.depuncture(values, n_steps)

        if self.vectorized and self._predecessors is not None:
            metrics, survivors, survivor_bits = self._acs_vectorized(
                observations, mask
            )
        else:
            metrics, survivors, survivor_bits = self._acs_scalar(observations, mask)

        end_state = 0 if terminated else int(np.argmin(metrics))
        decoded = np.zeros(n_steps, dtype=np.uint8)
        state = end_state
        for step in range(n_steps - 1, -1, -1):
            decoded[step] = survivor_bits[step, state]
            state = survivors[step, state]
        return decoded[:n_info_bits]

    # ------------------------------------------------------------------
    # add-compare-select
    # ------------------------------------------------------------------
    def _acs_vectorized(
        self, observations: np.ndarray, mask: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vectorised ACS recursion over the whole block.

        The per-step work is a gather of each state's incoming candidate
        metrics through the precomputed predecessor table followed by a
        row-wise ``argmin`` — no Python loop over states or branches.
        ``argmin`` returns the first minimum and the predecessor rows are
        sorted by flat ``(state, bit)`` index, matching the scalar path's
        stable tie-break exactly.
        """
        n_steps = observations.shape[0]
        n_states = self.code.n_states
        predecessors = self._predecessors
        rows = np.arange(n_states)
        branch_all = self._branch_metrics_block(observations, mask)

        metrics = np.full(n_states, _METRIC_INF)
        metrics[0] = 0.0
        survivors = np.zeros((n_steps, n_states), dtype=np.int64)
        survivor_bits = np.zeros((n_steps, n_states), dtype=np.uint8)
        for step in range(n_steps):
            candidate = metrics[:, None] + branch_all[step]  # (state, bit)
            contenders = candidate.ravel()[predecessors]  # (state, n_branches)
            choice = np.argmin(contenders, axis=1)
            winners = predecessors[rows, choice]
            metrics = contenders[rows, choice]
            survivors[step] = winners >> 1
            survivor_bits[step] = (winners & 1).astype(np.uint8)
        return metrics, survivors, survivor_bits

    def _acs_scalar(
        self, observations: np.ndarray, mask: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Reference per-branch ACS (the original implementation).

        Kept as the ground truth for the vectorised path's agreement tests
        and as the fallback for non-uniform trellises.
        """
        n_steps = observations.shape[0]
        n_states = self.code.n_states
        metrics = np.full(n_states, _METRIC_INF)
        metrics[0] = 0.0
        survivors = np.zeros((n_steps, n_states), dtype=np.int64)
        survivor_bits = np.zeros((n_steps, n_states), dtype=np.uint8)

        next_states = self._next_states
        for step in range(n_steps):
            branch = self._branch_metrics(observations[step], mask[step])
            candidate = metrics[:, None] + branch  # (state, bit)
            new_metrics = np.full(n_states, _METRIC_INF)
            best_prev = np.zeros(n_states, dtype=np.int64)
            best_bit = np.zeros(n_states, dtype=np.uint8)
            flat_next = next_states.ravel()
            flat_metric = candidate.ravel()
            order = np.argsort(flat_metric, kind="stable")
            seen = np.zeros(n_states, dtype=bool)
            for idx in order:
                ns = flat_next[idx]
                if seen[ns]:
                    continue
                seen[ns] = True
                new_metrics[ns] = flat_metric[idx]
                best_prev[ns] = idx // 2
                best_bit[ns] = idx % 2
                if seen.all():
                    break
            metrics = new_metrics
            survivors[step] = best_prev
            survivor_bits[step] = best_bit
        return metrics, survivors, survivor_bits

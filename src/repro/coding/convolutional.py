"""Generic convolutional encoder with puncturing.

The paper's transmitter streams uncoded data into a "generic convolutional
encoder" whose data-path width, code rate ``R`` and puncture pattern are
synthesis-time parameters.  The evaluated configuration is the 802.11a
industry-standard code: constraint length 7, generator polynomials 133/171
(octal), mother rate 1/2, optionally punctured to 2/3 or 3/4.

:class:`ConvolutionalCode` captures the code definition (polynomials and
puncture pattern); :class:`ConvolutionalEncoder` is the streaming encoder.
The matching decoder lives in :mod:`repro.coding.viterbi`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.utils.bits import BitArray, _as_bit_array


class CodeRate(str, Enum):
    """Supported effective code rates after puncturing (802.11a set)."""

    RATE_1_2 = "1/2"
    RATE_2_3 = "2/3"
    RATE_3_4 = "3/4"

    @property
    def fraction(self) -> float:
        """Numeric value of the code rate."""
        num, den = self.value.split("/")
        return int(num) / int(den)


#: 802.11a puncture patterns, expressed over the mother-code output pairs
#: (A, B) per input bit.  A ``1`` keeps the coded bit, ``0`` deletes it.
PUNCTURE_PATTERNS = {
    CodeRate.RATE_1_2: np.array([[1], [1]], dtype=np.uint8),
    CodeRate.RATE_2_3: np.array([[1, 1], [1, 0]], dtype=np.uint8),
    CodeRate.RATE_3_4: np.array([[1, 1, 0], [1, 0, 1]], dtype=np.uint8),
}


@dataclass(frozen=True)
class ConvolutionalCode:
    """Definition of a rate-1/n convolutional mother code plus puncturing.

    Parameters
    ----------
    constraint_length:
        Total memory + 1 (the 802.11a code uses 7).
    generators:
        Generator polynomials given as octal integers (e.g. ``(0o133, 0o171)``),
        most-significant tap corresponding to the current input bit.
    puncture_pattern:
        Array of shape ``(n_outputs, period)`` of 0/1 flags; defaults to no
        puncturing.  The 802.11a patterns are available in
        :data:`PUNCTURE_PATTERNS`.
    """

    constraint_length: int = 7
    generators: Tuple[int, ...] = (0o133, 0o171)
    puncture_pattern: np.ndarray = field(
        default_factory=lambda: PUNCTURE_PATTERNS[CodeRate.RATE_1_2]
    )

    def __post_init__(self) -> None:
        if self.constraint_length < 2:
            raise ValueError("constraint_length must be at least 2")
        if len(self.generators) < 2:
            raise ValueError("at least two generator polynomials are required")
        limit = 1 << self.constraint_length
        for g in self.generators:
            if not 0 < g < limit:
                raise ValueError(
                    f"generator {oct(g)} does not fit constraint length {self.constraint_length}"
                )
        pattern = np.asarray(self.puncture_pattern, dtype=np.uint8)
        if pattern.ndim != 2 or pattern.shape[0] != len(self.generators):
            raise ValueError(
                "puncture pattern must have one row per generator polynomial"
            )
        if pattern.size and not np.any(pattern):
            raise ValueError("puncture pattern deletes every coded bit")
        object.__setattr__(self, "puncture_pattern", pattern)

    # ------------------------------------------------------------------
    @classmethod
    def ieee80211a(cls, rate: CodeRate = CodeRate.RATE_1_2) -> "ConvolutionalCode":
        """The 802.11a K=7 (133, 171) code at the requested punctured rate."""
        return cls(
            constraint_length=7,
            generators=(0o133, 0o171),
            puncture_pattern=PUNCTURE_PATTERNS[rate],
        )

    @property
    def n_outputs(self) -> int:
        """Number of mother-code output bits per input bit."""
        return len(self.generators)

    @property
    def memory(self) -> int:
        """Number of shift-register delay elements."""
        return self.constraint_length - 1

    @property
    def n_states(self) -> int:
        """Number of trellis states."""
        return 1 << self.memory

    @property
    def puncture_period(self) -> int:
        """Number of input bits covered by one puncture-pattern period."""
        return self.puncture_pattern.shape[1]

    @property
    def rate(self) -> float:
        """Effective code rate after puncturing."""
        kept = int(self.puncture_pattern.sum())
        return self.puncture_period / kept

    def output_bits(self, state: int, input_bit: int) -> Tuple[int, ...]:
        """Mother-code output bits for ``input_bit`` entering ``state``.

        ``state`` holds the most recent input bit in its MSB, matching the
        hardware shift register.
        """
        register = (input_bit << self.memory) | state
        outputs = []
        for g in self.generators:
            outputs.append(bin(register & g).count("1") & 1)
        return tuple(outputs)

    def next_state(self, state: int, input_bit: int) -> int:
        """Trellis successor state when ``input_bit`` is shifted in."""
        return ((input_bit << self.memory) | state) >> 1

    def build_trellis(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(next_states, outputs)`` tables for the Viterbi decoder.

        ``next_states[state, bit]`` is the successor state and
        ``outputs[state, bit]`` packs the mother-code output bits MSB-first
        (output 0 in the MSB).
        """
        next_states = np.zeros((self.n_states, 2), dtype=np.int64)
        outputs = np.zeros((self.n_states, 2), dtype=np.int64)
        for state in range(self.n_states):
            for bit in (0, 1):
                next_states[state, bit] = self.next_state(state, bit)
                out_bits = self.output_bits(state, bit)
                value = 0
                for b in out_bits:
                    value = (value << 1) | b
                outputs[state, bit] = value
        return next_states, outputs


class ConvolutionalEncoder:
    """Streaming convolutional encoder with optional puncturing and tailing.

    The hardware encoder is a shift register plus XOR trees; this model keeps
    the same state semantics so the Viterbi decoder and the encoder agree on
    the trellis.
    """

    def __init__(self, code: Optional[ConvolutionalCode] = None) -> None:
        self.code = code if code is not None else ConvolutionalCode.ieee80211a()
        self._state = 0
        self._puncture_phase = 0

    @property
    def state(self) -> int:
        """Current shift-register state."""
        return self._state

    def reset(self) -> None:
        """Return the shift register and puncture phase to the all-zero state."""
        self._state = 0
        self._puncture_phase = 0

    def encode_bit(self, bit: int) -> List[int]:
        """Encode one input bit, returning the surviving (punctured) coded bits."""
        if bit not in (0, 1):
            raise ValueError("input bit must be 0 or 1")
        outputs = self.code.output_bits(self._state, bit)
        self._state = self.code.next_state(self._state, bit)
        column = self._puncture_phase % self.code.puncture_period
        kept = [
            int(out)
            for row, out in enumerate(outputs)
            if self.code.puncture_pattern[row, column]
        ]
        self._puncture_phase = (self._puncture_phase + 1) % self.code.puncture_period
        return kept

    def encode(
        self,
        bits: Sequence[int] | np.ndarray,
        terminate: bool = True,
        reset: bool = True,
    ) -> BitArray:
        """Encode a bit array.

        Parameters
        ----------
        bits:
            Information bits.
        terminate:
            Append ``constraint_length - 1`` zero tail bits so the decoder
            trellis ends in the all-zero state (what the 802.11a tail bits
            do).
        reset:
            Reset the encoder state before encoding (default) so each call is
            an independent code block, matching the per-OFDM-burst operation
            of the hardware.
        """
        data = _as_bit_array(bits)
        if reset:
            self.reset()
        stream = list(data)
        if terminate:
            stream.extend([0] * self.code.memory)
        coded: List[int] = []
        for bit in stream:
            coded.extend(self.encode_bit(int(bit)))
        return np.array(coded, dtype=np.uint8)

    def coded_length(self, n_info_bits: int, terminate: bool = True) -> int:
        """Number of coded bits produced for ``n_info_bits`` information bits."""
        total_in = n_info_bits + (self.code.memory if terminate else 0)
        pattern = self.code.puncture_pattern
        period = self.code.puncture_period
        per_period = int(pattern.sum())
        full, rem = divmod(total_in, period)
        count = full * per_period
        if rem:
            count += int(pattern[:, :rem].sum())
        return count

"""repro — reproduction of "An FPGA 1Gbps Wireless Baseband MIMO Transceiver".

A pure-Python reimplementation of the paper's 4x4 MIMO-OFDM baseband
transceiver (SOCC 2012): the complete transmit and receive datapaths, the
CORDIC/QRD channel-estimation pipeline, the wireless channel substrate used
in place of the paper's RF front end, and the FPGA resource/latency models
used in place of the paper's synthesis toolchain.

Quick start::

    from repro import TransceiverConfig, MimoChannel, simulate_link
    from repro.channel import FlatRayleighChannel

    config = TransceiverConfig.paper_default()
    channel = MimoChannel(FlatRayleighChannel(rng=1), snr_db=30, rng=2)
    stats = simulate_link(config, channel, n_info_bits=512, n_bursts=5, rng=3)
    print(stats["bit_error_rate"])
"""

from repro.coding.convolutional import CodeRate
from repro.channel.model import MimoChannel
from repro.core.config import OfdmNumerology, TransceiverConfig
from repro.core.frame import ReceiveResult, TransmitBurst
from repro.core.receiver import MimoReceiver
from repro.core.throughput import throughput_for_config, throughput_report
from repro.core.transceiver import LinkSimulationResult, MimoTransceiver, simulate_link
from repro.core.transmitter import MimoTransmitter
from repro.hardware.estimator import ReceiverResourceModel, TransmitterResourceModel
from repro.modulation.constellations import Modulation
from repro.sim import ImpairmentSpec, SweepResult, SweepRunner, SweepSpec, run_sweep

__version__ = "1.1.0"

__all__ = [
    "CodeRate",
    "Modulation",
    "MimoChannel",
    "OfdmNumerology",
    "TransceiverConfig",
    "TransmitBurst",
    "ReceiveResult",
    "MimoTransmitter",
    "MimoReceiver",
    "MimoTransceiver",
    "LinkSimulationResult",
    "simulate_link",
    "ImpairmentSpec",
    "SweepSpec",
    "SweepResult",
    "SweepRunner",
    "run_sweep",
    "throughput_for_config",
    "throughput_report",
    "TransmitterResourceModel",
    "ReceiverResourceModel",
    "__version__",
]

"""Gray-mapped constellations (BPSK, QPSK, 16-QAM, 64-QAM).

The paper's symbol mapper is a look-up memory: the interleaver output bits
form the address (1, 2, 4 or 6 bits wide depending on the modulation scheme)
and each location stores the corresponding I/Q pair.  This module builds
exactly those look-up tables, using the 802.11a Gray mapping and
normalisation factors so every constellation has unit average power.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum
from typing import Dict

import numpy as np


class Modulation(str, Enum):
    """Supported modulation schemes and their LUT address widths."""

    BPSK = "bpsk"
    QPSK = "qpsk"
    QAM16 = "16qam"
    QAM64 = "64qam"

    @property
    def bits_per_symbol(self) -> int:
        """Coded bits per constellation symbol (the LUT address width)."""
        return {
            Modulation.BPSK: 1,
            Modulation.QPSK: 2,
            Modulation.QAM16: 4,
            Modulation.QAM64: 6,
        }[self]

    @classmethod
    def from_any(cls, value: "Modulation | str") -> "Modulation":
        """Accept either a :class:`Modulation` or its string name."""
        if isinstance(value, Modulation):
            return value
        normalized = str(value).strip().lower().replace("-", "").replace("_", "")
        aliases = {
            "bpsk": cls.BPSK,
            "qpsk": cls.QPSK,
            "16qam": cls.QAM16,
            "qam16": cls.QAM16,
            "64qam": cls.QAM64,
            "qam64": cls.QAM64,
        }
        if normalized not in aliases:
            raise ValueError(f"unknown modulation scheme: {value!r}")
        return aliases[normalized]


# 802.11a Gray mapping of bit groups onto one-dimensional PAM levels.
_PAM2 = {0: -1.0, 1: 1.0}
_PAM4 = {0b00: -3.0, 0b01: -1.0, 0b11: 1.0, 0b10: 3.0}
_PAM8 = {
    0b000: -7.0,
    0b001: -5.0,
    0b011: -3.0,
    0b010: -1.0,
    0b110: 1.0,
    0b111: 3.0,
    0b101: 5.0,
    0b100: 7.0,
}


@dataclass(frozen=True)
class Constellation:
    """A modulation scheme's look-up table and its metadata.

    Attributes
    ----------
    modulation:
        The scheme this table implements.
    points:
        Complex constellation points indexed by the MSB-first bit-group value
        (i.e. the LUT contents, address = interleaved bits).
    normalization:
        The scale factor already applied so average symbol energy is 1.
    """

    modulation: Modulation
    points: np.ndarray
    normalization: float

    @property
    def bits_per_symbol(self) -> int:
        """Coded bits per symbol."""
        return self.modulation.bits_per_symbol

    @property
    def size(self) -> int:
        """Number of constellation points."""
        return self.points.size

    def average_power(self) -> float:
        """Mean symbol energy (should be 1.0 after normalisation)."""
        return float(np.mean(np.abs(self.points) ** 2))

    def bit_table(self) -> np.ndarray:
        """Bits of every LUT address, shape ``(size, bits_per_symbol)``, MSB first."""
        k = self.bits_per_symbol
        addresses = np.arange(self.size)
        shifts = np.arange(k - 1, -1, -1)
        return ((addresses[:, None] >> shifts) & 1).astype(np.uint8)


def _build_constellation(modulation: Modulation) -> Constellation:
    k = modulation.bits_per_symbol
    size = 1 << k
    points = np.zeros(size, dtype=np.complex128)
    if modulation is Modulation.BPSK:
        norm = 1.0
        for address in range(size):
            points[address] = complex(_PAM2[address], 0.0)
    elif modulation is Modulation.QPSK:
        norm = 1.0 / math.sqrt(2.0)
        for address in range(size):
            i_bits = (address >> 1) & 0b1
            q_bits = address & 0b1
            points[address] = complex(_PAM2[i_bits], _PAM2[q_bits]) * norm
    elif modulation is Modulation.QAM16:
        norm = 1.0 / math.sqrt(10.0)
        for address in range(size):
            i_bits = (address >> 2) & 0b11
            q_bits = address & 0b11
            points[address] = complex(_PAM4[i_bits], _PAM4[q_bits]) * norm
    elif modulation is Modulation.QAM64:
        norm = 1.0 / math.sqrt(42.0)
        for address in range(size):
            i_bits = (address >> 3) & 0b111
            q_bits = address & 0b111
            points[address] = complex(_PAM8[i_bits], _PAM8[q_bits]) * norm
    else:  # pragma: no cover - enum is exhaustive
        raise ValueError(f"unsupported modulation: {modulation}")
    return Constellation(modulation=modulation, points=points, normalization=norm)


_CONSTELLATIONS: Dict[Modulation, Constellation] = {
    mod: _build_constellation(mod) for mod in Modulation
}


def get_constellation(modulation: Modulation | str) -> Constellation:
    """Return the (cached) constellation for a modulation scheme."""
    return _CONSTELLATIONS[Modulation.from_any(modulation)]

"""Hard and soft symbol demapper (batched).

The paper's symbol demapper is a decoder-multiplexer structure that can be
configured for hard or soft demapping; soft outputs are carried through the
de-interleaver to the Viterbi decoder.  The software model provides:

* hard demapping — nearest constellation point, returning the bit group;
* soft demapping — max-log-MAP per-bit log-likelihood ratios, with the
  convention that a *positive* LLR means the coded bit is more likely ``0``
  (the convention :class:`repro.coding.viterbi.ViterbiDecoder` expects).

All entry points accept symbol arrays of any shape and demap every symbol in
one vectorised pass — the receiver hands a whole burst's
``(n_symbols, n_data_subcarriers)`` block to a single call, which is one of
the two hot paths the :mod:`repro.sim` sweep engine leans on.  The
per-symbol reference implementations (``hard_decisions_scalar`` /
``soft_decisions_scalar``) are retained for the bit-exact agreement tests in
``tests/test_hot_path_agreement.py``.
"""

from __future__ import annotations

import numpy as np

import numpy.typing as npt

from repro.types import BitArray, IntArray
from repro.modulation.constellations import Constellation, Modulation, get_constellation
from repro.utils.bits import unpack_bits


class SymbolDemapper:
    """Demap received complex symbols to hard bits or soft LLRs."""

    def __init__(self, modulation: Modulation | str) -> None:
        self.constellation: Constellation = get_constellation(modulation)
        self._bit_table = self.constellation.bit_table()
        # Per-bit constellation partitions, precomputed once: the indices of
        # the points whose label has a 0 (resp. 1) in each bit position.
        k = self.constellation.bits_per_symbol
        self._points_bit_zero = [
            np.flatnonzero(self._bit_table[:, bit] == 0) for bit in range(k)
        ]
        self._points_bit_one = [
            np.flatnonzero(self._bit_table[:, bit] != 0) for bit in range(k)
        ]

    @property
    def modulation(self) -> Modulation:
        """The modulation scheme in use."""
        return self.constellation.modulation

    @property
    def bits_per_symbol(self) -> int:
        """Coded bits produced per received symbol."""
        return self.constellation.bits_per_symbol

    # ------------------------------------------------------------------
    def _distances(self, symbols: np.ndarray) -> np.ndarray:
        """Squared Euclidean distance of every symbol to every point."""
        received = np.asarray(symbols, dtype=np.complex128).ravel()
        return np.abs(received[:, None] - self.constellation.points[None, :]) ** 2

    def hard_decisions(self, symbols: npt.ArrayLike) -> BitArray:
        """Nearest-point hard demapping, returning the coded bit stream.

        ``symbols`` may have any shape; every symbol is demapped in one
        vectorised pass and the bits are returned in C-order (for the
        receiver's ``(n_symbols, n_subcarriers)`` block that is exactly the
        per-symbol transmission order).
        """
        return unpack_bits(self.hard_addresses(symbols), self.bits_per_symbol)

    def hard_addresses(self, symbols: npt.ArrayLike) -> IntArray:
        """Nearest-point hard demapping, returning LUT addresses."""
        return np.argmin(self._distances(symbols), axis=1)

    # ------------------------------------------------------------------
    def soft_decisions(
        self, symbols: np.ndarray, noise_variance: float = 1.0
    ) -> np.ndarray:
        """Max-log-MAP per-bit LLRs (positive means bit more likely 0).

        Parameters
        ----------
        symbols:
            Received (equalised) symbols, any shape; all are demapped in one
            batched pass.
        noise_variance:
            Per-complex-dimension noise variance used to scale the LLRs.  A
            constant scale does not change hard Viterbi decisions but keeps
            the soft metric calibrated when different streams see different
            noise levels.
        """
        if noise_variance <= 0:
            raise ValueError("noise_variance must be positive")
        distances = self._distances(symbols)
        k = self.bits_per_symbol
        llrs = np.empty((distances.shape[0], k), dtype=np.float64)
        for bit in range(k):
            d_zero = distances[:, self._points_bit_zero[bit]].min(axis=1)
            d_one = distances[:, self._points_bit_one[bit]].min(axis=1)
            llrs[:, bit] = (d_one - d_zero) / noise_variance
        return llrs.ravel()

    # ------------------------------------------------------------------
    # scalar reference implementations (agreement-test ground truth)
    # ------------------------------------------------------------------
    def hard_decisions_scalar(self, symbols: npt.ArrayLike) -> BitArray:
        """Per-symbol reference hard demapper (one symbol at a time)."""
        received = np.asarray(symbols, dtype=np.complex128).ravel()
        bits = []
        for symbol in received:
            distances = np.abs(symbol - self.constellation.points) ** 2
            bits.append(unpack_bits([int(np.argmin(distances))], self.bits_per_symbol))
        if not bits:
            return np.zeros(0, dtype=np.uint8)
        return np.concatenate(bits)

    def soft_decisions_scalar(
        self, symbols: np.ndarray, noise_variance: float = 1.0
    ) -> np.ndarray:
        """Per-symbol, per-bit reference soft demapper."""
        if noise_variance <= 0:
            raise ValueError("noise_variance must be positive")
        received = np.asarray(symbols, dtype=np.complex128).ravel()
        k = self.bits_per_symbol
        llrs = np.zeros((received.size, k), dtype=np.float64)
        for index, symbol in enumerate(received):
            distances = np.abs(symbol - self.constellation.points) ** 2
            for bit in range(k):
                mask_zero = self._bit_table[:, bit] == 0
                d_zero = distances[mask_zero].min()
                d_one = distances[~mask_zero].min()
                llrs[index, bit] = (d_one - d_zero) / noise_variance
        return llrs.ravel()

    # ------------------------------------------------------------------
    def demap(
        self,
        symbols: np.ndarray,
        soft: bool = False,
        noise_variance: float = 1.0,
    ) -> np.ndarray:
        """Demap symbols, selecting hard bits or soft LLRs.

        This mirrors the run-time configurability of the hardware demapper
        ("can be set up to perform hard or soft symbol demapping").
        """
        if soft:
            return self.soft_decisions(symbols, noise_variance=noise_variance)
        return self.hard_decisions(symbols)

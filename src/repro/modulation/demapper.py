"""Hard and soft symbol demapper.

The paper's symbol demapper is a decoder-multiplexer structure that can be
configured for hard or soft demapping; soft outputs are carried through the
de-interleaver to the Viterbi decoder.  The software model provides:

* hard demapping — nearest constellation point, returning the bit group;
* soft demapping — max-log-MAP per-bit log-likelihood ratios, with the
  convention that a *positive* LLR means the coded bit is more likely ``0``
  (the convention :class:`repro.coding.viterbi.ViterbiDecoder` expects).
"""

from __future__ import annotations

import numpy as np

from repro.modulation.constellations import Constellation, Modulation, get_constellation
from repro.utils.bits import unpack_bits


class SymbolDemapper:
    """Demap received complex symbols to hard bits or soft LLRs."""

    def __init__(self, modulation: Modulation | str) -> None:
        self.constellation: Constellation = get_constellation(modulation)
        self._bit_table = self.constellation.bit_table()

    @property
    def modulation(self) -> Modulation:
        """The modulation scheme in use."""
        return self.constellation.modulation

    @property
    def bits_per_symbol(self) -> int:
        """Coded bits produced per received symbol."""
        return self.constellation.bits_per_symbol

    # ------------------------------------------------------------------
    def hard_decisions(self, symbols: np.ndarray) -> np.ndarray:
        """Nearest-point hard demapping, returning the coded bit stream."""
        received = np.asarray(symbols, dtype=np.complex128).ravel()
        distances = np.abs(received[:, None] - self.constellation.points[None, :]) ** 2
        addresses = np.argmin(distances, axis=1)
        return unpack_bits(addresses, self.bits_per_symbol)

    def hard_addresses(self, symbols: np.ndarray) -> np.ndarray:
        """Nearest-point hard demapping, returning LUT addresses."""
        received = np.asarray(symbols, dtype=np.complex128).ravel()
        distances = np.abs(received[:, None] - self.constellation.points[None, :]) ** 2
        return np.argmin(distances, axis=1)

    # ------------------------------------------------------------------
    def soft_decisions(
        self, symbols: np.ndarray, noise_variance: float = 1.0
    ) -> np.ndarray:
        """Max-log-MAP per-bit LLRs (positive means bit more likely 0).

        Parameters
        ----------
        symbols:
            Received (equalised) symbols.
        noise_variance:
            Per-complex-dimension noise variance used to scale the LLRs.  A
            constant scale does not change hard Viterbi decisions but keeps
            the soft metric calibrated when different streams see different
            noise levels.
        """
        if noise_variance <= 0:
            raise ValueError("noise_variance must be positive")
        received = np.asarray(symbols, dtype=np.complex128).ravel()
        n_sym = received.size
        k = self.bits_per_symbol
        distances = np.abs(received[:, None] - self.constellation.points[None, :]) ** 2
        llrs = np.zeros((n_sym, k), dtype=np.float64)
        for bit in range(k):
            mask_zero = self._bit_table[:, bit] == 0
            d_zero = distances[:, mask_zero].min(axis=1)
            d_one = distances[:, ~mask_zero].min(axis=1)
            llrs[:, bit] = (d_one - d_zero) / noise_variance
        return llrs.ravel()

    # ------------------------------------------------------------------
    def demap(
        self,
        symbols: np.ndarray,
        soft: bool = False,
        noise_variance: float = 1.0,
    ) -> np.ndarray:
        """Demap symbols, selecting hard bits or soft LLRs.

        This mirrors the run-time configurability of the hardware demapper
        ("can be set up to perform hard or soft symbol demapping").
        """
        if soft:
            return self.soft_decisions(symbols, noise_variance=noise_variance)
        return self.hard_decisions(symbols)

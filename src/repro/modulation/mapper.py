"""LUT-based symbol mapper.

In the hardware, the block-interleaver output forms the address of a ROM
whose contents are the constellation I/Q values; the dual-port nature of the
FPGA memory lets two physical ROMs serve all four transmit channels.  The
software mapper reproduces the same address/LUT semantics and exposes the
ROM contents for the memory-initialisation-file workflow mentioned in Fig. 1.
"""

from __future__ import annotations

import numpy as np

import numpy.typing as npt

from repro.types import ComplexArray
from repro.modulation.constellations import Constellation, Modulation, get_constellation
from repro.utils.bits import pack_bits


class SymbolMapper:
    """Map interleaved coded bits onto complex constellation symbols."""

    def __init__(self, modulation: Modulation | str) -> None:
        self.constellation: Constellation = get_constellation(modulation)

    @property
    def modulation(self) -> Modulation:
        """The modulation scheme in use."""
        return self.constellation.modulation

    @property
    def bits_per_symbol(self) -> int:
        """LUT address width (coded bits per symbol)."""
        return self.constellation.bits_per_symbol

    def map_bits(self, bits: npt.ArrayLike) -> ComplexArray:
        """Map a coded bit stream to symbols.

        The bit-stream length must be a multiple of ``bits_per_symbol``; bits
        are consumed MSB-first per symbol, exactly as they would form the ROM
        address in hardware.
        """
        addresses = pack_bits(bits, self.bits_per_symbol)
        return self.constellation.points[addresses]

    def map_addresses(self, addresses: npt.ArrayLike) -> ComplexArray:
        """Map pre-grouped LUT addresses directly to symbols."""
        idx = np.asarray(addresses, dtype=np.int64)
        if idx.size and (idx.min() < 0 or idx.max() >= self.constellation.size):
            raise ValueError("address out of range for the constellation LUT")
        return self.constellation.points[idx]

    def lut_contents(self) -> ComplexArray:
        """The ROM contents (I/Q per address) for memory-initialisation files."""
        return self.constellation.points.copy()

"""Modulation substrate: Gray-mapped constellations, the LUT symbol mapper
and hard/soft symbol demappers."""

from repro.modulation.constellations import (
    Constellation,
    Modulation,
    get_constellation,
)
from repro.modulation.demapper import SymbolDemapper
from repro.modulation.mapper import SymbolMapper

__all__ = [
    "Constellation",
    "Modulation",
    "get_constellation",
    "SymbolMapper",
    "SymbolDemapper",
]

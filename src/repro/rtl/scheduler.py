"""Channel-matrix memory read scheduler.

The channel matrices of all subcarriers live in an array of 16 memories
(H00..H33), one per matrix position, each ``fft_size`` entries deep.  A
scheduler multiplexes these memories into the QRD systolic array: it first
reads 20 addresses (one CORDIC latency) from H00 into column 0; on the next
cycle it starts H01 into column 0 while H10 enters column 1; and so on.
Once address 20 of H33 has entered column 0, the column-0 pointer wraps back
to H00 for subcarrier 21 and an ``init`` pulse resets the feedback state of
the cells so successive subcarriers do not mix (the pulse then propagates
down the array with the data).

:class:`ChannelMatrixScheduler` reproduces that addressing sequence so the
dataflow of Fig. 8 and its latency bookkeeping can be tested without running
actual matrix data through the array.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from repro.dsp.cordic import CORDIC_PIPELINE_LATENCY


@dataclass(frozen=True)
class ScheduledRead:
    """One memory read issued to the QRD array.

    Attributes
    ----------
    cycle:
        Clock cycle at which the read is issued.
    column:
        QRD array input column the word is steered to.
    memory_row, memory_col:
        Which H(i, j) memory is read.
    subcarrier:
        Memory address, i.e. the subcarrier whose matrix entry this is.
    init:
        True when this read carries the init pulse that resets the cell
        feedback state (issued when a column wraps back to H00 and a new
        subcarrier's matrix begins).
    """

    cycle: int
    column: int
    memory_row: int
    memory_col: int
    subcarrier: int
    init: bool


class ChannelMatrixScheduler:
    """Generate the read schedule that feeds the QRD systolic array.

    Parameters
    ----------
    n_antennas:
        MIMO order (4 in the paper: 16 channel-matrix memories).
    n_subcarriers:
        Number of occupied subcarriers whose matrices must be decomposed.
    burst_length:
        Consecutive addresses read from one memory before the scheduler
        advances to the next matrix entry — equal to the CORDIC latency (20)
        so the array's pipeline stays full.
    """

    def __init__(
        self,
        n_antennas: int = 4,
        n_subcarriers: int = 64,
        burst_length: int = CORDIC_PIPELINE_LATENCY,
    ) -> None:
        if n_antennas <= 0 or n_subcarriers <= 0 or burst_length <= 0:
            raise ValueError("all scheduler parameters must be positive")
        self.n_antennas = n_antennas
        self.n_subcarriers = n_subcarriers
        self.burst_length = burst_length

    # ------------------------------------------------------------------
    @property
    def n_memories(self) -> int:
        """Number of channel-matrix memories (16 for a 4x4 system)."""
        return self.n_antennas * self.n_antennas

    @property
    def reads_per_column(self) -> int:
        """Memory reads a single column issues per full pass of subcarriers."""
        return self.n_memories * self.burst_length * self._passes_per_column()

    def _passes_per_column(self) -> int:
        return -(-self.n_subcarriers // self.burst_length)

    @property
    def column_start_offset(self) -> int:
        """Cycles between successive columns starting their schedules (1)."""
        return 1

    def total_schedule_cycles(self) -> int:
        """Cycles needed to stream every subcarrier's matrix into the array."""
        single_column = self.n_memories * self.burst_length * self._passes_per_column()
        return single_column + (self.n_antennas - 1) * self.column_start_offset

    # ------------------------------------------------------------------
    def column_schedule(self, column: int) -> Iterator[ScheduledRead]:
        """Read sequence of one input column.

        Column ``c`` starts ``c`` cycles after column 0 and walks the
        memories starting from row ``c`` of the matrix (column 0 reads
        H00, H01, ...; column 1 reads H10, H11, ...), ``burst_length``
        subcarriers at a time.
        """
        if not 0 <= column < self.n_antennas:
            raise ValueError(f"column {column} out of range")
        cycle = column * self.column_start_offset
        for pass_index in range(self._passes_per_column()):
            base_subcarrier = pass_index * self.burst_length
            for entry in range(self.n_memories):
                flat = (column * self.n_antennas + entry) % self.n_memories
                memory_row, memory_col = divmod(flat, self.n_antennas)
                for offset in range(self.burst_length):
                    subcarrier = base_subcarrier + offset
                    if subcarrier >= self.n_subcarriers:
                        cycle += 1
                        continue
                    yield ScheduledRead(
                        cycle=cycle,
                        column=column,
                        memory_row=memory_row,
                        memory_col=memory_col,
                        subcarrier=subcarrier,
                        init=(entry == 0 and offset == 0),
                    )
                    cycle += 1

    def full_schedule(self) -> List[ScheduledRead]:
        """The complete read schedule of all columns, ordered by cycle."""
        reads: List[ScheduledRead] = []
        for column in range(self.n_antennas):
            reads.extend(self.column_schedule(column))
        reads.sort(key=lambda r: (r.cycle, r.column))
        return reads

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check structural invariants of the schedule.

        * No column issues two reads in the same cycle.
        * Every (subcarrier, matrix entry) pair is read exactly once per
          column pass structure.
        * Init pulses occur exactly when a column wraps back to its first
          memory.
        """
        for column in range(self.n_antennas):
            seen_cycles = set()
            seen_words = set()
            for read in self.column_schedule(column):
                if read.cycle in seen_cycles:
                    raise AssertionError("column issued two reads in one cycle")
                seen_cycles.add(read.cycle)
                key = (read.memory_row, read.memory_col, read.subcarrier)
                if key in seen_words:
                    raise AssertionError("duplicate memory word in schedule")
                seen_words.add(key)
            expected_words = self.n_memories * self.n_subcarriers
            if len(seen_words) != expected_words:
                raise AssertionError(
                    f"column {column} read {len(seen_words)} words, "
                    f"expected {expected_words}"
                )

"""Structural model of the QR-decomposition systolic arrays (Figs. 6-8).

The hardware decomposes each subcarrier's channel matrix with two connected
systolic arrays:

* a triangular **R array** of boundary cells (2 vectoring CORDICs each) on
  the diagonal and internal cells (3 rotation CORDICs each) above it, which
  annihilates the sub-diagonal entries column by column and leaves R in the
  cells;
* a square **Q array** of internal cells which applies the same rotation
  stream to an identity matrix, producing Q^H.

Each CORDIC element is pipelined 20 clock cycles deep, and the paper reports
a total QRD datapath latency of 440 cycles for the 4x4 array.

:class:`SystolicQrdArray` models the array at the cell level: it enumerates
the cells, computes the numerical result with the same per-cell operations as
the functional model in :mod:`repro.mimo.qr` (so results can be cross
checked), and accounts for latency per cell and for the whole array.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Tuple

import numpy as np

from repro.dsp.cordic import CORDIC_PIPELINE_LATENCY, Cordic
from repro.hardware.latency import qrd_critical_path_cordics
from repro.mimo.matrix import hermitian


class QrdCellKind(str, Enum):
    """Cell types of the systolic array."""

    BOUNDARY = "boundary"
    INTERNAL = "internal"


@dataclass(frozen=True)
class QrdCell:
    """One cell of the systolic array.

    Attributes
    ----------
    kind:
        Boundary (vectoring) or internal (rotation) cell.
    row, col:
        Position in the array; for the Q array the column index continues
        past the R array's columns.
    array:
        ``"R"`` or ``"Q"``.
    cordic_count:
        CORDIC elements inside the cell (2 for boundary, 3 for internal).
    """

    kind: QrdCellKind
    row: int
    col: int
    array: str
    cordic_count: int


class SystolicQrdArray:
    """Cell-level model of the combined R/Q QRD systolic array.

    Parameters
    ----------
    n:
        Matrix dimension (4 in the paper).
    cordic_iterations:
        Micro-rotations per CORDIC used for the numerical result.
    cordic_latency:
        Pipeline depth of each CORDIC element (20 cycles in the paper).
    """

    def __init__(
        self,
        n: int = 4,
        cordic_iterations: int = 16,
        cordic_latency: int = CORDIC_PIPELINE_LATENCY,
    ) -> None:
        if n <= 0:
            raise ValueError("matrix dimension must be positive")
        self.n = n
        self.cordic_latency = cordic_latency
        self.cordic = Cordic(iterations=cordic_iterations)
        self.cells = self._build_cells()

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    def _build_cells(self) -> List[QrdCell]:
        cells: List[QrdCell] = []
        # R array: triangular, boundary cells on the diagonal.
        for row in range(self.n):
            cells.append(
                QrdCell(
                    kind=QrdCellKind.BOUNDARY,
                    row=row,
                    col=row,
                    array="R",
                    cordic_count=2,
                )
            )
            for col in range(row + 1, self.n):
                cells.append(
                    QrdCell(
                        kind=QrdCellKind.INTERNAL,
                        row=row,
                        col=col,
                        array="R",
                        cordic_count=3,
                    )
                )
        # Q array: square grid of internal cells fed with the identity.
        for row in range(self.n):
            for col in range(self.n):
                cells.append(
                    QrdCell(
                        kind=QrdCellKind.INTERNAL,
                        row=row,
                        col=self.n + col,
                        array="Q",
                        cordic_count=3,
                    )
                )
        return cells

    @property
    def boundary_cell_count(self) -> int:
        """Boundary cells in the R array (4 for a 4x4 matrix)."""
        return sum(1 for c in self.cells if c.kind is QrdCellKind.BOUNDARY)

    @property
    def internal_cell_count(self) -> int:
        """Internal cells across both arrays (6 + 16 for a 4x4 matrix)."""
        return sum(1 for c in self.cells if c.kind is QrdCellKind.INTERNAL)

    @property
    def r_array_internal_cell_count(self) -> int:
        """Internal cells of the R array alone (6 for a 4x4 matrix)."""
        return sum(
            1
            for c in self.cells
            if c.kind is QrdCellKind.INTERNAL and c.array == "R"
        )

    @property
    def total_cordic_count(self) -> int:
        """Total CORDIC elements across both arrays."""
        return sum(c.cordic_count for c in self.cells)

    # ------------------------------------------------------------------
    # latency accounting
    # ------------------------------------------------------------------
    @property
    def datapath_latency_cycles(self) -> int:
        """Latency from first matrix entry in to last result out.

        Equal to the number of CORDIC stages on the critical path times the
        per-CORDIC pipeline depth — 22 x 20 = 440 cycles for the 4x4 array,
        the figure the paper reports.
        """
        return qrd_critical_path_cordics(self.n) * self.cordic_latency

    def throughput_matrices_per_cycle(self) -> float:
        """Matrices the pipelined array can accept per clock cycle.

        The scheduler feeds one matrix entry per cycle per column, so a new
        matrix can enter every ``n`` cycles once the pipeline is full.
        """
        return 1.0 / self.n

    # ------------------------------------------------------------------
    # numerical behaviour (cross-checked against repro.mimo.qr)
    # ------------------------------------------------------------------
    def _boundary_cell(self, stored: float, incoming: complex) -> Tuple[float, float, float]:
        """Boundary cell: vectoring CORDICs produce theta_b, theta_1 and |r'|."""
        vec_b = self.cordic.vector(incoming.real, incoming.imag)
        theta_b = vec_b.angle
        magnitude = vec_b.magnitude
        vec_1 = self.cordic.vector(stored, magnitude)
        theta_1 = vec_1.angle
        new_stored = vec_1.magnitude
        return new_stored, theta_b, theta_1

    def _internal_cell(
        self, stored: complex, incoming: complex, theta_b: float, theta_1: float
    ) -> Tuple[complex, complex]:
        """Internal cell: de-phase the input then rotate it against the store."""
        rot = self.cordic.rotate(incoming.real, incoming.imag, -theta_b)
        dephased = complex(rot.x, rot.y)
        real = self.cordic.rotate(stored.real, dephased.real, -theta_1)
        imag = self.cordic.rotate(stored.imag, dephased.imag, -theta_1)
        new_stored = complex(real.x, imag.x)
        output = complex(real.y, imag.y)
        return new_stored, output

    def process(self, channel_matrix: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Run one channel matrix through the array.

        Returns ``(r, q_hermitian)`` — exactly what the hardware's R and Q
        arrays hold after the matrix (and the identity) have been streamed
        through: ``channel_matrix ~= hermitian(q_hermitian) @ r``.
        """
        h = np.asarray(channel_matrix, dtype=np.complex128)
        if h.shape != (self.n, self.n):
            raise ValueError(f"expected a {self.n}x{self.n} matrix")
        n = self.n
        # Cell state: R-array boundary cells store a real magnitude, internal
        # cells store a complex value; Q-array internal cells store complex.
        r_boundary = np.zeros(n, dtype=np.float64)
        r_internal = np.zeros((n, n), dtype=np.complex128)
        q_internal = np.zeros((n, n), dtype=np.complex128)

        # Rows of H enter from the top, one row at a time, followed by the
        # rows of the identity matrix into the Q array.
        for source_row in range(n):
            h_row = h[source_row].copy()
            identity_row = np.eye(n, dtype=np.complex128)[source_row].copy()
            for stage in range(n):
                if stage > source_row:
                    break
                incoming = h_row[stage]
                if stage == source_row:
                    # The row reaches the diagonal: it initialises the cells.
                    new_stored, theta_b, theta_1 = self._boundary_cell(0.0, incoming)
                    # Initialising a zeroed boundary cell is a pure phase
                    # annihilation: store the magnitude directly.
                    r_boundary[stage] = new_stored
                    for col in range(stage + 1, n):
                        rot = self.cordic.rotate(
                            h_row[col].real, h_row[col].imag, -theta_b
                        )
                        r_internal[stage, col] = complex(rot.x, rot.y)
                    for col in range(n):
                        rot = self.cordic.rotate(
                            identity_row[col].real, identity_row[col].imag, -theta_b
                        )
                        q_internal[stage, col] = complex(rot.x, rot.y)
                    break
                # Annihilate this row's element against the stage's cells.
                new_stored, theta_b, theta_1 = self._boundary_cell(
                    r_boundary[stage], h_row[stage]
                )
                r_boundary[stage] = new_stored
                for col in range(stage + 1, n):
                    new_cell, passed = self._internal_cell(
                        r_internal[stage, col], h_row[col], theta_b, theta_1
                    )
                    r_internal[stage, col] = new_cell
                    h_row[col] = passed
                for col in range(n):
                    new_cell, passed = self._internal_cell(
                        q_internal[stage, col], identity_row[col], theta_b, theta_1
                    )
                    q_internal[stage, col] = new_cell
                    identity_row[col] = passed

        r = np.zeros((n, n), dtype=np.complex128)
        for i in range(n):
            r[i, i] = r_boundary[i]
            for j in range(i + 1, n):
                r[i, j] = r_internal[i, j]
        q_hermitian = q_internal
        return r, q_hermitian

    def reconstruct(self, channel_matrix: np.ndarray) -> np.ndarray:
        """Reconstruct the channel matrix from the array outputs (for tests)."""
        r, q_hermitian = self.process(channel_matrix)
        return hermitian(q_hermitian) @ r

"""Streaming receive front end (circular buffers + correlator + LTS capture).

:class:`RxFrontEnd` models the receiver input stage the paper describes:
each antenna's samples stream into a circular buffer sized to cover the time
synchroniser's latency, the synchroniser watches antenna streams with its
32-tap correlator, and once lock is declared the LTS samples are replayed
out of the circular buffers into the FFTs.  The functional receiver in
:mod:`repro.core.receiver` slices arrays directly; this structural model
checks that the buffered/replayed path sees exactly the same samples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.config import TransceiverConfig
from repro.core.preamble import PreambleGenerator
from repro.exceptions import SynchronizationError
from repro.hardware.memory import CircularBuffer
from repro.sync.time_sync import TimeSynchronizer


@dataclass
class RxFrontEndReport:
    """Result of streaming a burst into the front end."""

    lts_start: int
    samples_consumed: int
    buffer_depth: int
    locked: bool


class RxFrontEnd:
    """Circular input buffering plus time synchronisation for all antennas.

    Parameters
    ----------
    config:
        Transceiver configuration.
    buffer_margin:
        Extra depth (in samples) added to the circular buffers beyond the
        preamble length, standing in for the synchroniser latency headroom
        the paper mentions.
    """

    def __init__(
        self,
        config: Optional[TransceiverConfig] = None,
        buffer_margin: int = 128,
    ) -> None:
        self.config = config if config is not None else TransceiverConfig()
        self.preamble = PreambleGenerator(self.config.fft_size)
        layout = self.preamble.layout(self.config.n_antennas)
        depth = layout.total_length + buffer_margin
        self.buffers: List[CircularBuffer] = [
            CircularBuffer(depth=depth, word_bits=32)
            for _ in range(self.config.n_antennas)
        ]
        self.synchronizer = TimeSynchronizer(
            sts_time=self.preamble.sts_time(),
            lts_time=self.preamble.lts_time(),
            mode="peak",
        )
        self.layout = layout

    # ------------------------------------------------------------------
    def ingest(self, samples: np.ndarray) -> RxFrontEndReport:
        """Stream a burst into the buffers and locate the LTS start.

        Parameters
        ----------
        samples:
            Received samples, shape ``(n_rx, n_samples)``.
        """
        streams = np.asarray(samples, dtype=np.complex128)
        if streams.ndim != 2 or streams.shape[0] != self.config.n_antennas:
            raise ValueError(
                f"expected shape ({self.config.n_antennas}, n_samples), got {streams.shape}"
            )
        n_samples = streams.shape[1]
        for antenna, buffer in enumerate(self.buffers):
            buffer.push_many(streams[antenna])

        best: Optional[int] = None
        best_metric = -1.0
        for antenna in range(streams.shape[0]):
            try:
                result = self.synchronizer.search(streams[antenna])
            except SynchronizationError:
                continue
            if result.peak_magnitude > best_metric:
                best_metric = result.peak_magnitude
                best = result.lts_start
        if best is None:
            raise SynchronizationError("no antenna produced a synchronisation lock")
        return RxFrontEndReport(
            lts_start=int(best),
            samples_consumed=n_samples,
            buffer_depth=self.buffers[0].depth,
            locked=True,
        )

    # ------------------------------------------------------------------
    def replay_lts(self, report: RxFrontEndReport, total_ingested: int) -> np.ndarray:
        """Replay the buffered LTS slots for FFT processing.

        Returns an array of shape ``(n_rx, n_lts_slots * lts_slot_length)``
        read back out of the circular buffers — the samples the FFTs would
        receive in hardware.  ``total_ingested`` is the number of samples
        pushed so far (needed to convert absolute indices into
        "samples-ago" positions inside the circular buffers).
        """
        slot_len = self.layout.lts_slot_length
        n_slots = self.layout.n_lts_slots
        lts_length = n_slots * slot_len
        end_index = report.lts_start + lts_length
        if end_index > total_ingested:
            raise ValueError("the LTS section has not been fully ingested yet")
        newest_needed = total_ingested - report.lts_start
        replayed = np.zeros(
            (self.config.n_antennas, lts_length), dtype=np.complex128
        )
        for antenna, buffer in enumerate(self.buffers):
            if newest_needed > len(buffer):
                raise ValueError("circular buffer too shallow to replay the LTS")
            window = buffer.latest(newest_needed)
            replayed[antenna] = window[:lts_length]
        return replayed

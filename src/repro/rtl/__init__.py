"""Structural (RTL-level) models of the paper's datapaths.

Where :mod:`repro.core` is the functional model of the transceiver, this
package models the *structure* the paper describes so that cycle-level
claims can be checked:

* :mod:`repro.rtl.systolic_qrd` — the triangular R array and square Q array
  of CORDIC cells (Figs. 6-8), with per-cell latency accounting that
  reproduces the 440-cycle QRD datapath latency;
* :mod:`repro.rtl.scheduler` — the channel-matrix memory read scheduler that
  staggers subcarriers into the array 20 addresses at a time;
* :mod:`repro.rtl.tx_datapath` — the streaming transmit pipeline built from
  the ping-pong interleaver memories, the dual look-up mapper ROMs and the
  double-buffered cyclic-prefix memory, with cycle counting;
* :mod:`repro.rtl.rx_datapath` — the streaming receive pipeline front end
  (circular input buffers, correlator, FFT buffering) with cycle counting.
"""

from repro.rtl.scheduler import ChannelMatrixScheduler
from repro.rtl.systolic_qrd import SystolicQrdArray, QrdCellKind
from repro.rtl.rx_datapath import RxFrontEnd
from repro.rtl.tx_datapath import TxStreamDatapath

__all__ = [
    "ChannelMatrixScheduler",
    "SystolicQrdArray",
    "QrdCellKind",
    "RxFrontEnd",
    "TxStreamDatapath",
]

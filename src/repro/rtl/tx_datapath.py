"""Streaming transmit datapath built from the hardware memory idioms.

:class:`TxStreamDatapath` is the structural counterpart of
:class:`repro.core.transmitter.MimoTransmitter` for a single spatial stream:
it pushes coded bits through the ping-pong interleaver memories, the dual
look-up-table symbol mapper and the double-buffered cyclic-prefix memory one
"clock cycle" at a time, counting cycles as it goes.  Tests check that the
waveform it produces is identical to the functional transmitter's and that
the cycle accounting matches the streaming-rate arithmetic behind the
throughput model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.coding.interleaver import interleaver_permutation
from repro.core.config import TransceiverConfig
from repro.core.pilots import PilotProcessor
from repro.dsp.fft import Fft
from repro.hardware.memory import DualPortRam, PingPongBuffer, Rom
from repro.modulation.mapper import SymbolMapper
from repro.utils.bits import _as_bit_array, pack_bits


@dataclass
class TxDatapathReport:
    """Cycle accounting of one streaming run."""

    input_bits: int
    ofdm_symbols: int
    output_samples: int
    cycles_consumed: int

    @property
    def samples_per_symbol(self) -> float:
        """Average output samples per OFDM symbol."""
        if self.ofdm_symbols == 0:
            return 0.0
        return self.output_samples / self.ofdm_symbols


class TxStreamDatapath:
    """Single-stream structural transmit pipeline (interleaver -> mapper -> IFFT -> CP)."""

    def __init__(self, config: Optional[TransceiverConfig] = None) -> None:
        self.config = config if config is not None else TransceiverConfig()
        self.numerology = self.config.numerology
        n_cbps = self.config.coded_bits_per_symbol
        self.interleaver_memory = PingPongBuffer(block_size=n_cbps, word_bits=1)
        self._permutation = interleaver_permutation(
            n_cbps, self.config.bits_per_subcarrier
        )
        mapper = SymbolMapper(self.config.modulation)
        self.mapper_rom = Rom(list(mapper.lut_contents()), word_bits=32)
        self.pilots = PilotProcessor(self.numerology)
        self.fft_engine = Fft(self.config.fft_size)
        # The CP memory is twice the OFDM symbol so one half can fill while
        # the other is read out (Fig. 3); 32-bit words hold the I/Q pair.
        self.cp_memory = DualPortRam(depth=2 * self.config.fft_size, word_bits=32)
        self._cycles = 0
        self._symbol_index = 0

    # ------------------------------------------------------------------
    @property
    def cycles(self) -> int:
        """Clock cycles consumed so far."""
        return self._cycles

    def reset(self) -> None:
        """Reset cycle counters, symbol index and buffer occupancy."""
        self._cycles = 0
        self._symbol_index = 0
        n_cbps = self.config.coded_bits_per_symbol
        self.interleaver_memory = PingPongBuffer(block_size=n_cbps, word_bits=1)

    # ------------------------------------------------------------------
    def _map_block(self, interleaved: np.ndarray) -> np.ndarray:
        """Look the interleaved bit groups up in the mapper ROM."""
        addresses = pack_bits(interleaved, self.config.bits_per_subcarrier)
        return np.array([self.mapper_rom.read(int(a)) for a in addresses])

    def _ofdm_symbol(self, data_symbols: np.ndarray) -> np.ndarray:
        """Assemble, transform and cyclic-prefix one OFDM symbol."""
        fft_size = self.config.fft_size
        cp = self.config.cyclic_prefix_length
        frequency = np.zeros(fft_size, dtype=np.complex128)
        frequency[list(self.numerology.data_bins)] = data_symbols
        frequency = self.pilots.insert(frequency, self._symbol_index)
        time_domain = self.fft_engine.inverse(frequency)
        # Model the CP double buffer: write the symbol into one half of the
        # memory, then read the tail followed by the body out of it.
        half = self._symbol_index % 2
        base = half * fft_size
        for idx, value in enumerate(time_domain):
            self.cp_memory.write(base + idx, complex(value))
        output = np.empty(fft_size + cp, dtype=np.complex128)
        for idx in range(cp):
            output[idx] = self.cp_memory.read(base + fft_size - cp + idx)
        for idx in range(fft_size):
            output[cp + idx] = self.cp_memory.read(base + idx)
        self._symbol_index += 1
        return output

    # ------------------------------------------------------------------
    def stream(self, coded_bits: np.ndarray) -> tuple[np.ndarray, TxDatapathReport]:
        """Push a coded bit stream through the pipeline.

        Only whole OFDM symbols are emitted; a partially filled interleaver
        memory stays buffered (exactly like the hardware, which cannot read a
        memory until it is full).

        Returns the concatenated time-domain samples and a cycle report.
        """
        bits = _as_bit_array(coded_bits)
        waveform: List[np.ndarray] = []
        n_cbps = self.config.coded_bits_per_symbol
        for bit in bits:
            self._cycles += 1
            block_ready = self.interleaver_memory.push(float(bit))
            if not block_ready:
                continue
            block = self.interleaver_memory.read_block().astype(np.uint8)
            interleaved = np.empty(n_cbps, dtype=np.uint8)
            interleaved[self._permutation] = block
            data_symbols = self._map_block(interleaved)
            symbol = self._ofdm_symbol(data_symbols)
            waveform.append(symbol)
            # Reading the symbol out of the CP memory costs one cycle per
            # output sample (the IFFT streams in parallel with the fill).
            self._cycles += symbol.size
        samples = (
            np.concatenate(waveform) if waveform else np.zeros(0, dtype=np.complex128)
        )
        report = TxDatapathReport(
            input_bits=int(bits.size),
            ofdm_symbols=len(waveform),
            output_samples=int(samples.size),
            cycles_consumed=self._cycles,
        )
        return samples, report

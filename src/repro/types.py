"""Shared type vocabulary for the datapath's public APIs.

The engine moves a small set of array species between stages — complex
baseband samples, float soft bits, uint8 hard bits, integer symbol
addresses — and a handful of closed string enums (detector and DSP
backend names).  Spelling them once here keeps the annotations on public
APIs short, searchable, and consistent, and gives checkers (mypy via
``make typecheck``, plus any IDE) a precise dtype to propagate.

These are *aliases*, not wrappers: at runtime every one of them is just
``np.ndarray`` (or ``str``), so importing this module costs nothing and
annotated code keeps working on plain arrays.
"""

from __future__ import annotations

from typing import Literal, Union

import numpy as np
import numpy.typing as npt

__all__ = [
    "BackendName",
    "BitArray",
    "ComplexArray",
    "Complex64Array",
    "DetectorName",
    "FloatArray",
    "IntArray",
    "ScalarOrArray",
]

#: Complex baseband samples / frequency-domain symbols (canonical
#: double precision; the ``"numpy32"`` backend narrows internally).
ComplexArray = npt.NDArray[np.complex128]

#: Single-precision complex samples, as produced by the ``"numpy32"``
#: :class:`repro.dsp.backend.DspBackend`.
Complex64Array = npt.NDArray[np.complex64]

#: Real-valued arrays: soft bits, LLRs, power/phase traces.
FloatArray = npt.NDArray[np.float64]

#: Hard bits and bytes (0/1 values in ``uint8``).
BitArray = npt.NDArray[np.uint8]

#: Integer arrays: symbol addresses, subcarrier indices, permutations.
IntArray = npt.NDArray[np.integer]

#: Scalar-or-array duck type for elementwise helpers (dB conversions).
ScalarOrArray = Union[float, npt.NDArray[np.floating]]

#: The MIMO detectors the receiver configuration accepts.
DetectorName = Literal["zf", "mmse"]

#: The registered DSP backends (see :mod:`repro.dsp.backend`).
BackendName = Literal["numpy", "numpy32"]

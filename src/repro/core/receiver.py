"""4x4 MIMO-OFDM receiver (Fig. 5).

The receive datapath is: time synchronisation (sliding-window correlation
against the stored STS/LTS transition), per-antenna FFT of the staggered LTS
slots, per-subcarrier channel estimation and QRD-based matrix inversion,
MIMO detection of every data OFDM symbol (zero-forcing as in the paper, or
the MMSE baseline via ``TransceiverConfig.detector``), pilot phase and
feed-forward timing correction, symbol demapping (hard or soft, batched
over the whole burst), block de-interleaving, Viterbi decoding and
descrambling.

The post-sync chain is vectorised over the whole burst: every data FFT
window is gathered into one ``(n_rx, n_symbols, fft_size)`` block, pushed
through a single planned FFT call (:mod:`repro.dsp.fft`'s cached
:class:`~repro.dsp.fft.FftPlan`), detected with one per-subcarrier einsum
and pilot-corrected with one :meth:`~repro.core.pilots.PilotProcessor.
correct_block` pass.  The original per-symbol loop is retained behind
``vectorized=False`` as the bit-exact agreement-test reference (the same
pattern as the Viterbi ACS and demapper hot paths).

Finite word lengths are modelled at the paper's two RX interfaces when the
configuration asks for them: the incoming sample stream is quantised to
``TransceiverConfig.rx_sample_format`` (the 16-bit I/Q antenna interface)
before synchronisation, and every FFT output entering channel estimation
and detection is quantised to ``TransceiverConfig.rx_multiplier_format``
(the 18-bit embedded-multiplier operands).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.coding.convolutional import ConvolutionalCode, ConvolutionalEncoder
from repro.coding.interleaver import deinterleave
from repro.coding.scrambler import Scrambler
from repro.coding.viterbi import ViterbiDecoder
from repro.contracts import shaped
from repro.core.config import TransceiverConfig
from repro.core.frame import ReceiveResult, StreamDecodeResult
from repro.core.pilots import PilotProcessor
from repro.core.preamble import PreambleGenerator
from repro.dsp.fft import fft
from repro.exceptions import ConfigurationError, DecodingError
from repro.mimo.channel_estimation import ChannelEstimate, ChannelEstimator
from repro.mimo.detector import MmseDetector, zf_detect
from repro.modulation.demapper import SymbolDemapper
from repro.sync.cfo import CfoEstimator
from repro.sync.time_sync import TimeSynchronizer
from repro.types import ComplexArray, FloatArray


class MimoReceiver:
    """MIMO-OFDM burst receiver.

    Parameters
    ----------
    config:
        Transceiver configuration (must match the transmitter's).
    sync_mode:
        ``"peak"`` (robust, default) or ``"threshold"`` (hardware behaviour)
        for the time synchroniser.
    timing_advance:
        Samples by which every FFT window (LTS and data) is advanced into
        the cyclic prefix.  Because the same advance is applied to the
        channel-estimation windows and the data windows, the resulting phase
        ramp cancels in equalisation; the advance simply moves any
        late-timing error of the synchroniser into the cyclic prefix instead
        of into the next symbol.
    vectorized:
        Process the whole burst through the batched FFT/detect/pilot chain
        (default).  ``False`` selects the original per-symbol loop, kept as
        the bit-exact reference for the agreement tests.
    """

    def __init__(
        self,
        config: Optional[TransceiverConfig] = None,
        sync_mode: str = "peak",
        timing_advance: int = 2,
        vectorized: bool = True,
    ) -> None:
        self.config = config if config is not None else TransceiverConfig()
        if timing_advance < 0 or timing_advance > self.config.cyclic_prefix_length:
            raise ConfigurationError(
                "timing_advance must lie within the cyclic prefix"
            )
        self.timing_advance = timing_advance
        self.vectorized = vectorized
        self.numerology = self.config.numerology
        self.preamble = PreambleGenerator(self.config.fft_size)
        self.pilots = PilotProcessor(self.numerology)
        self.demapper = SymbolDemapper(self.config.modulation)
        self.code = ConvolutionalCode.ieee80211a(self.config.code_rate)
        self._encoder = ConvolutionalEncoder(self.code)
        decision = "soft" if self.config.soft_decision else "hard"
        self.viterbi = ViterbiDecoder(self.code, decision=decision)
        self._scrambler = Scrambler()
        self.synchronizer = TimeSynchronizer(
            sts_time=self.preamble.sts_time(),
            lts_time=self.preamble.lts_time(),
            mode=sync_mode,
        )
        self.cfo_estimator = (
            CfoEstimator(self.config.fft_size) if self.config.correct_cfo else None
        )
        self.channel_estimator = ChannelEstimator(
            reference_lts=self.preamble.lts_frequency,
            use_cordic=self.config.use_cordic_channel_inversion,
        )

    # ------------------------------------------------------------------
    # fixed-point interfaces
    # ------------------------------------------------------------------
    def _quantize_multiplier(self, values: np.ndarray) -> np.ndarray:
        """Clamp frequency-domain values to the multiplier operand format."""
        fmt = self.config.rx_multiplier_format
        return fmt.quantize_complex(values) if fmt is not None else values

    # ------------------------------------------------------------------
    # synchronisation and channel estimation
    # ------------------------------------------------------------------
    def synchronize(self, samples: np.ndarray) -> int:
        """Locate the LTS start across all receive antennas.

        Every antenna's stream is searched; the antenna with the strongest
        correlation peak wins (the STS is transmitted from antenna 0 only,
        so different receive antennas see it with different channel gains).
        """
        streams = np.asarray(samples, dtype=np.complex128)
        if streams.ndim != 2:
            raise ConfigurationError("samples must have shape (n_rx, n_samples)")
        best_start = None
        best_peak = -1.0
        for antenna in range(streams.shape[0]):
            result = self.synchronizer.search(streams[antenna])
            if result.peak_magnitude > best_peak:
                best_peak = result.peak_magnitude
                best_start = result.lts_start
        assert best_start is not None
        return int(best_start)

    def estimate_channel(
        self, samples: np.ndarray, lts_start: int
    ) -> ChannelEstimate:
        """Estimate the channel from the staggered LTS slots of a burst.

        Raises :class:`~repro.exceptions.DecodingError` when any LTS FFT
        window falls outside the received samples — a window that starts
        before sample zero is truncated and would only yield a garbage
        estimate (the sweep engine counts that burst as a lost frame).
        """
        streams = np.asarray(samples, dtype=np.complex128)
        n_rx = streams.shape[0]
        n_tx = self.config.n_antennas
        fft_size = self.config.fft_size
        layout = self.preamble.layout(n_tx)
        lts_cp = self.preamble.lts_cp_length

        slot_starts = (
            int(lts_start)
            + np.arange(n_tx) * layout.lts_slot_length
            + lts_cp
            - self.timing_advance
        )
        if slot_starts[0] < 0:
            raise DecodingError(
                f"LTS FFT window starts {-int(slot_starts[0])} samples before the "
                "burst (lts_start too small); refusing to decode a truncated window"
            )
        if slot_starts[-1] + 2 * fft_size > streams.shape[1]:
            raise DecodingError("burst too short to contain the full LTS preamble")

        if not self.vectorized:
            received_lts = np.zeros((n_tx, n_rx, fft_size), dtype=np.complex128)
            for slot in range(n_tx):
                first_end = int(slot_starts[slot]) + fft_size
                second_end = first_end + fft_size
                for rx in range(n_rx):
                    first = self._quantize_multiplier(
                        fft(streams[rx, int(slot_starts[slot]) : first_end])
                    )
                    second = self._quantize_multiplier(
                        fft(streams[rx, first_end:second_end])
                    )
                    # Averaged with an adder and right shift in hardware.
                    received_lts[slot, rx] = (first + second) / 2.0
            return self.channel_estimator.estimate(received_lts)

        # Gather every (slot, repetition) window of every antenna and run one
        # planned FFT over the whole stack: (n_rx, n_tx, 2, fft_size).
        window = (
            slot_starts[:, None, None]
            + np.arange(2)[None, :, None] * fft_size
            + np.arange(fft_size)[None, None, :]
        )
        frequency = self._quantize_multiplier(fft(streams[:, window]))
        # Averaged with an adder and right shift in hardware.
        averaged = (frequency[:, :, 0] + frequency[:, :, 1]) / 2.0
        return self.channel_estimator.estimate(averaged.transpose(1, 0, 2))

    # ------------------------------------------------------------------
    # per-stream decoding
    # ------------------------------------------------------------------
    def _decode_stream(
        self,
        equalized_symbols: np.ndarray,
        n_info_bits: int,
        noise_variance: float,
    ) -> np.ndarray:
        """Demap, de-interleave, Viterbi-decode and descramble one stream.

        ``equalized_symbols`` has shape ``(n_symbols, n_data_subcarriers)``.

        The whole block is demapped in one batched call and every OFDM
        symbol's bits are de-interleaved in one permutation pass — the bits
        come out in exactly the per-symbol order the serial path produced.
        """
        n_cbps = self.config.coded_bits_per_symbol
        n_bpsc = self.config.bits_per_subcarrier
        if equalized_symbols.shape[0] == 0:
            received = np.zeros(0)
        else:
            demapped = self.demapper.demap(
                equalized_symbols,
                soft=self.config.soft_decision,
                noise_variance=noise_variance,
            )
            received = deinterleave(demapped, n_cbps, n_bpsc)

        coded_length = self._encoder.coded_length(n_info_bits, terminate=True)
        if received.size < coded_length:
            raise DecodingError(
                "recovered coded stream shorter than the expected code block"
            )
        decoded = self.viterbi.decode(
            received[:coded_length], n_info_bits=n_info_bits, terminated=True
        )
        if self.config.scramble:
            decoded = self._scrambler.process(decoded, reset=True)
        return decoded

    # ------------------------------------------------------------------
    # post-sync datapath: FFT windows -> MIMO detection -> pilot correction
    # ------------------------------------------------------------------
    @shaped(streams="(n_rx, n_samples)")
    def equalize_burst(
        self,
        streams: ComplexArray,
        estimate: ChannelEstimate,
        data_start: int,
        n_symbols: int,
        noise_variance: float = 1.0,
    ) -> Tuple[ComplexArray, FloatArray]:
        """Equalise every data OFDM symbol of a synchronised burst.

        This is the paper's Fig. 5 inner datapath: per-antenna FFT of each
        data window, per-subcarrier MIMO detection (ZF or MMSE per the
        configuration), and pilot phase/timing correction — with the
        ``rx_multiplier_format`` quantisation applied to every FFT output.
        In the default vectorised mode the whole burst runs as one strided
        gather, one planned FFT over ``(n_rx, n_symbols, fft_size)``, one
        detection einsum and one batched pilot pass; ``vectorized=False``
        runs the original per-symbol loop, which is bit-identical.

        Parameters
        ----------
        streams:
            Received samples, shape ``(n_rx, n_samples)`` (already CFO
            corrected / sample-quantised as applicable).
        estimate:
            Channel estimate driving the detector.
        data_start:
            Sample index of the first data OFDM symbol.
        n_symbols:
            Number of data OFDM symbols to equalise.
        noise_variance:
            Noise variance for the MMSE detector weights.

        Returns
        -------
        (equalized, pilot_phases)
            ``equalized`` has shape ``(n_tx, n_symbols, n_data_subcarriers)``;
            ``pilot_phases`` holds each symbol's common pilot phase in the
            scalar loop's (symbol, stream) order.
        """
        n_tx = self.config.n_antennas
        sps = self.config.samples_per_symbol
        cp = self.config.cyclic_prefix_length
        fft_size = self.config.fft_size

        data_bins = list(self.numerology.data_bins)
        starts = data_start + np.arange(n_symbols) * sps + cp - self.timing_advance
        if n_symbols and starts[0] < 0:
            raise DecodingError(
                f"data FFT window starts {-int(starts[0])} samples before the "
                "burst (data_start too small); refusing to decode a truncated window"
            )
        if n_symbols and int(starts[-1]) + fft_size > streams.shape[1]:
            raise DecodingError(
                "burst too short for the requested number of OFDM symbols"
            )

        if self.config.detector == "mmse":
            mmse = MmseDetector(estimate, noise_variance)
            detect = mmse.detect
        else:
            def detect(frequency: np.ndarray) -> np.ndarray:
                return zf_detect(frequency, estimate.inverses)

        if self.vectorized:
            window = starts[:, None] + np.arange(fft_size)
            frequency = self._quantize_multiplier(fft(streams[:, window]))
            detected = detect(frequency)
            corrected, diag = self.pilots.correct_block(detected)
            equalized = corrected[..., data_bins]
            # Transpose to the scalar loop's (symbol, stream) append order so
            # the diagnostics mean reduces over the same sequence.
            pilot_phases = diag.common_phase.T.ravel()
        else:
            equalized = np.zeros(
                (n_tx, n_symbols, len(data_bins)), dtype=np.complex128
            )
            phases = []
            for n in range(n_symbols):
                start = int(starts[n])
                block = streams[:, start : start + fft_size]
                frequency = self._quantize_multiplier(fft(block))
                detected = detect(frequency)
                for stream in range(n_tx):
                    corrected, diag = self.pilots.correct(detected[stream], n)
                    phases.append(diag.common_phase)
                    equalized[stream, n] = corrected[data_bins]
            pilot_phases = np.array(phases, dtype=np.float64)
        return equalized, pilot_phases

    # ------------------------------------------------------------------
    # externally-detected frame windows (streaming entry point)
    # ------------------------------------------------------------------
    def frame_length(self, n_info_bits: int) -> int:
        """Burst length in samples for ``n_info_bits`` per spatial stream.

        Mirrors the transmitter's burst construction exactly: preamble +
        data OFDM symbols + the one-cyclic-prefix idle tail.  A streaming
        frame detector uses this to know how many samples to cut around a
        detected preamble.
        """
        if n_info_bits <= 0:
            raise ConfigurationError("n_info_bits must be positive")
        coded_length = self._encoder.coded_length(n_info_bits, terminate=True)
        n_symbols = -(-coded_length // self.config.coded_bits_per_symbol)
        layout = self.preamble.layout(self.config.n_antennas)
        return (
            layout.total_length
            + n_symbols * self.config.samples_per_symbol
            + self.config.cyclic_prefix_length
        )

    def receive_window(
        self,
        window: np.ndarray,
        n_info_bits: int,
        lts_offset: int,
        noise_variance: float = 1.0,
        reference_bits: Optional[Sequence[np.ndarray]] = None,
    ) -> ReceiveResult:
        """Decode one externally-detected frame window.

        The streaming pipeline's entry point: a frame detector has already
        located the burst in a continuous stream and cut out a complete
        window (see :meth:`frame_length`), so time synchronisation is
        skipped and ``lts_offset`` — the LTS start *relative to the
        window* — is trusted.  Everything downstream (CFO, channel
        estimation, equalisation, decoding) is the exact offline
        :meth:`receive` datapath, which is what makes chunked streaming
        decode bit-exact against the burst loop.
        """
        streams = np.asarray(window, dtype=np.complex128)
        if streams.ndim != 2 or streams.shape[0] != self.config.n_antennas:
            raise ConfigurationError(
                f"window must have shape ({self.config.n_antennas}, n_samples)"
            )
        if not 0 <= int(lts_offset) < streams.shape[1]:
            raise ConfigurationError("lts_offset must lie inside the window")
        return self.receive(
            streams,
            n_info_bits,
            lts_start=int(lts_offset),
            noise_variance=noise_variance,
            reference_bits=reference_bits,
        )

    # ------------------------------------------------------------------
    # full burst reception
    # ------------------------------------------------------------------
    def receive(
        self,
        samples: np.ndarray,
        n_info_bits: int,
        lts_start: Optional[int] = None,
        noise_variance: float = 1.0,
        reference_bits: Optional[Sequence[np.ndarray]] = None,
    ) -> ReceiveResult:
        """Decode one burst.

        Parameters
        ----------
        samples:
            Received baseband samples, shape ``(n_rx, n_samples)``.
        n_info_bits:
            Information bits carried by each spatial stream (in a real system
            this is conveyed by a SIGNAL field; here it is a parameter).
        lts_start:
            Skip time synchronisation and use this LTS start index instead
            (useful for isolating other blocks in tests).
        noise_variance:
            Noise variance used to scale soft-decision LLRs.
        reference_bits:
            When provided, per-stream BER is computed and attached to the
            result.
        """
        streams = np.asarray(samples, dtype=np.complex128)
        if streams.ndim != 2 or streams.shape[0] != self.config.n_antennas:
            raise ConfigurationError(
                f"samples must have shape ({self.config.n_antennas}, n_samples)"
            )
        if n_info_bits <= 0:
            raise ConfigurationError("n_info_bits must be positive")

        if self.config.rx_sample_format is not None:
            streams = self.config.rx_sample_format.quantize_complex(streams)

        if lts_start is None:
            lts_start = self.synchronize(streams)

        estimated_cfo = 0.0
        if self.cfo_estimator is not None:
            cfo = self.cfo_estimator.estimate(streams, lts_start)
            streams = self.cfo_estimator.correct(streams, cfo)
            estimated_cfo = cfo.combined

        estimate = self.estimate_channel(streams, lts_start)

        n_tx = self.config.n_antennas
        layout = self.preamble.layout(n_tx)
        data_start = lts_start + n_tx * layout.lts_slot_length
        coded_length = self._encoder.coded_length(n_info_bits, terminate=True)
        n_cbps = self.config.coded_bits_per_symbol
        n_symbols = -(-coded_length // n_cbps)
        sps = self.config.samples_per_symbol
        if data_start + n_symbols * sps > streams.shape[1]:
            raise DecodingError("burst too short for the requested number of OFDM symbols")

        equalized, pilot_phases = self.equalize_burst(
            streams, estimate, data_start, n_symbols, noise_variance
        )

        results: List[StreamDecodeResult] = []
        for stream in range(n_tx):
            decoded = self._decode_stream(
                equalized[stream], n_info_bits, noise_variance
            )
            bit_errors = None
            ber = None
            if reference_bits is not None:
                ref = np.asarray(reference_bits[stream], dtype=np.uint8)
                if ref.size != decoded.size:
                    raise ValueError("reference bits length mismatch")
                bit_errors = int(np.count_nonzero(ref != decoded))
                ber = bit_errors / ref.size
            results.append(
                StreamDecodeResult(
                    stream=stream,
                    decoded_bits=decoded,
                    equalized_symbols=equalized[stream],
                    bit_errors=bit_errors,
                    bit_error_rate=ber,
                )
            )

        diagnostics = {
            "lts_start": float(lts_start),
            "n_ofdm_symbols": float(n_symbols),
            "mean_pilot_phase": float(np.mean(pilot_phases)) if len(pilot_phases) else 0.0,
            "estimated_cfo": estimated_cfo,
        }
        return ReceiveResult(
            streams=results,
            lts_start=int(lts_start),
            channel_estimate=estimate,
            diagnostics=diagnostics,
        )

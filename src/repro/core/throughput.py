"""Throughput reporting for the 1 Gbps claim.

Bridges :class:`~repro.core.config.TransceiverConfig` and the hardware
throughput model so a single call answers "what bit rate does this
configuration sustain at the paper's 100 MHz clock, and does it reach
1 Gbps?".
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.coding.convolutional import CodeRate
from repro.core.config import TransceiverConfig
from repro.core.preamble import PreambleGenerator
from repro.hardware.clock import ClockDomain, ThroughputModel
from repro.modulation.constellations import Modulation


def throughput_for_config(config: TransceiverConfig) -> ThroughputModel:
    """Build the hardware throughput model for a transceiver configuration."""
    numerology = config.numerology
    return ThroughputModel(
        n_streams=config.n_streams,
        n_data_subcarriers=numerology.n_data_subcarriers,
        bits_per_subcarrier=config.bits_per_subcarrier,
        code_rate=config.code_rate.fraction,
        fft_size=config.fft_size,
        cyclic_prefix_length=config.cyclic_prefix_length,
        clock=ClockDomain(config.clock_hz),
    )


def throughput_report(
    configs: Optional[Iterable[TransceiverConfig]] = None,
    symbols_per_burst: int = 100,
) -> List[Dict[str, object]]:
    """Throughput of a set of configurations, including preamble overhead.

    When ``configs`` is omitted, the standard sweep is used: every
    modulation scheme crossed with every supported code rate at the paper's
    4x4 / 64-point / 100 MHz operating point.
    """
    if configs is None:
        configs = [
            TransceiverConfig(modulation=modulation, code_rate=rate)
            for modulation in Modulation
            for rate in CodeRate
        ]
    rows: List[Dict[str, object]] = []
    for config in configs:
        model = throughput_for_config(config)
        preamble = PreambleGenerator(config.fft_size)
        layout = preamble.layout(config.n_antennas)
        rows.append(
            {
                "modulation": config.modulation.value,
                "code_rate": config.code_rate.value,
                "fft_size": config.fft_size,
                "coded_rate_gbps": model.coded_bit_rate_bps / 1e9,
                "info_rate_gbps": model.info_bit_rate_bps / 1e9,
                "info_rate_with_preamble_gbps": model.info_bit_rate_with_preamble_bps(
                    symbols_per_burst, layout.total_length
                )
                / 1e9,
                "meets_1gbps": model.meets_gigabit_target(),
            }
        )
    return rows

"""Pilot insertion, phase correction and feed-forward timing correction.

Every OFDM data symbol carries pilot tones whose polarity is scrambled by
the 127-length pilot-polarity sequence.  On the receiver the (equalised)
pilots are extracted and de-scrambled, their average is used to correct the
common phase of the whole symbol, and — following the paper's feed-forward
timing synchronisation — the per-subcarrier phase slope of the pilots gives
a timing value ``tau`` that is applied as an incrementing per-subcarrier
correction (the hardware uses a running adder; the model applies the
equivalent phase ramp).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.coding.scrambler import pilot_polarity_sequence
from repro.core.config import OfdmNumerology


@dataclass(frozen=True)
class PilotCorrection:
    """Diagnostics of the pilot-based corrections for one OFDM symbol."""

    common_phase: float
    tau: float
    pilot_magnitude: float


@dataclass(frozen=True)
class PilotBlockCorrection:
    """Diagnostics of the pilot corrections for a whole block of symbols.

    Each field is an array shaped like the corrected block without its
    subcarrier axis (e.g. ``(n_streams, n_symbols)`` for a burst), holding
    per-symbol what :class:`PilotCorrection` holds for one symbol.
    """

    common_phase: np.ndarray
    tau: np.ndarray
    pilot_magnitude: np.ndarray


class PilotProcessor:
    """Insert pilots on the transmitter and correct phase/timing on the receiver."""

    def __init__(self, numerology: OfdmNumerology, max_symbols: int = 4096) -> None:
        self.numerology = numerology
        self._polarity = pilot_polarity_sequence(max_symbols)

    # ------------------------------------------------------------------
    def polarity(self, symbol_index: int) -> float:
        """Pilot polarity ``p_n`` for OFDM symbol ``symbol_index``."""
        return float(self._polarity[symbol_index % self._polarity.size])

    def pilot_values(self, symbol_index: int) -> np.ndarray:
        """Pilot tone values for one OFDM symbol (base values times polarity)."""
        base = np.array(self.numerology.pilot_values, dtype=np.complex128)
        return base * self.polarity(symbol_index)

    def insert(self, frequency_domain: np.ndarray, symbol_index: int) -> np.ndarray:
        """Write the pilots of symbol ``symbol_index`` into a frequency-domain symbol."""
        symbol = np.asarray(frequency_domain, dtype=np.complex128).copy()
        if symbol.size != self.numerology.fft_size:
            raise ValueError("frequency-domain symbol has the wrong length")
        symbol[list(self.numerology.pilot_bins)] = self.pilot_values(symbol_index)
        return symbol

    def insert_block(self, block: np.ndarray, start_index: int = 0) -> np.ndarray:
        """Vectorised :meth:`insert` across a whole block of OFDM symbols.

        Parameters
        ----------
        block:
            Frequency-domain symbols with the subcarrier axis last and the
            symbol axis second-to-last: shape ``(..., n_symbols, fft_size)``.
            Any further leading axes (spatial streams) share the same
            per-symbol pilot values.
        start_index:
            Burst index of the first symbol along the symbol axis (selects
            the pilot polarities).

        Returns
        -------
        A copy of ``block`` whose pilot bins hold exactly the values
        :meth:`insert` writes for symbol index ``start_index + n``.
        """
        symbols = np.asarray(block, dtype=np.complex128).copy()
        if symbols.ndim < 2:
            raise ValueError("block must have shape (..., n_symbols, fft_size)")
        if symbols.shape[-1] != self.numerology.fft_size:
            raise ValueError("frequency-domain symbols have the wrong length")
        n_symbols = symbols.shape[-2]
        base = np.array(self.numerology.pilot_values, dtype=np.complex128)
        polarity = self._polarity[
            (start_index + np.arange(n_symbols)) % self._polarity.size
        ].astype(np.float64)
        # (n_symbols, n_pilots) — row n is pilot_values(start_index + n).
        symbols[..., list(self.numerology.pilot_bins)] = base * polarity[:, None]
        return symbols

    # ------------------------------------------------------------------
    def extract(self, frequency_domain: np.ndarray) -> np.ndarray:
        """Read the pilot subcarriers out of a frequency-domain symbol."""
        symbol = np.asarray(frequency_domain, dtype=np.complex128)
        return symbol[list(self.numerology.pilot_bins)]

    def correct(
        self, frequency_domain: np.ndarray, symbol_index: int
    ) -> tuple[np.ndarray, PilotCorrection]:
        """Apply common-phase and timing (tau) correction to one symbol.

        Parameters
        ----------
        frequency_domain:
            The equalised frequency-domain OFDM symbol of one spatial stream.
        symbol_index:
            Index of the symbol within the burst (selects the pilot
            polarity).

        Returns
        -------
        (corrected_symbol, diagnostics)
        """
        symbol = np.asarray(frequency_domain, dtype=np.complex128).copy()
        if symbol.size != self.numerology.fft_size:
            raise ValueError("frequency-domain symbol has the wrong length")
        expected = self.pilot_values(symbol_index)
        measured = self.extract(symbol)

        # --- common phase correction (de-scrambled pilot average) ---------
        correlation = np.sum(measured * np.conj(expected))
        if np.abs(correlation) == 0:
            return symbol, PilotCorrection(common_phase=0.0, tau=0.0, pilot_magnitude=0.0)
        common_phase = float(np.angle(correlation))
        symbol = symbol * np.exp(-1j * common_phase)

        # --- feed-forward timing correction (tau) -------------------------
        # After the common phase is removed, a residual timing error shows up
        # as a phase proportional to the logical subcarrier index.  Each
        # pilot's phase divided by its subcarrier number estimates tau; the
        # average over pilots is used (as in the paper), implemented here as
        # a magnitude-weighted least-squares slope for numerical robustness.
        measured = self.extract(symbol)
        pilot_indices = np.array(self.numerology.pilot_logical, dtype=np.float64)
        phases = np.angle(measured * np.conj(expected))
        weights = np.abs(measured)
        denom = float(np.sum(weights * pilot_indices * pilot_indices))
        tau = float(np.sum(weights * pilot_indices * phases) / denom) if denom else 0.0

        # Apply the incrementing per-subcarrier correction.
        logical = self._logical_index_vector()
        symbol = symbol * np.exp(-1j * tau * logical)
        magnitude = float(np.mean(np.abs(measured)))
        return symbol, PilotCorrection(
            common_phase=common_phase, tau=tau, pilot_magnitude=magnitude
        )

    def correct_block(
        self, block: np.ndarray, start_index: int = 0
    ) -> tuple[np.ndarray, PilotBlockCorrection]:
        """Vectorised :meth:`correct` across a whole block of OFDM symbols.

        Parameters
        ----------
        block:
            Equalised frequency-domain symbols with the subcarrier axis last
            and the symbol axis second-to-last: shape ``(..., n_symbols,
            fft_size)``.  Any further leading axes (spatial streams) are
            corrected independently.
        start_index:
            Burst index of the first symbol along the symbol axis (selects
            the pilot polarities).

        Returns
        -------
        (corrected_block, diagnostics)
            Bit-identical to calling :meth:`correct` on every ``(...,
            n, :)`` slice with symbol index ``start_index + n`` — every
            reduction runs over the same pilot values in the same order, and
            symbols whose pilot correlation is exactly zero are left
            untouched with zeroed diagnostics, exactly like the scalar
            early-return.
        """
        # A C-contiguous operand is required for bit-exactness, not speed:
        # numpy picks its pairwise-reduction strategy from the strides, so
        # summing pilots out of a non-contiguous block (einsum output) can
        # differ from the scalar reference in the last ULP.
        symbols = np.ascontiguousarray(block, dtype=np.complex128)
        if symbols.ndim < 2:
            raise ValueError("block must have shape (..., n_symbols, fft_size)")
        if symbols.shape[-1] != self.numerology.fft_size:
            raise ValueError("frequency-domain symbols have the wrong length")
        n_symbols = symbols.shape[-2]
        pilot_bins = list(self.numerology.pilot_bins)

        base = np.array(self.numerology.pilot_values, dtype=np.complex128)
        polarity = self._polarity[
            (start_index + np.arange(n_symbols)) % self._polarity.size
        ].astype(np.float64)
        # (n_symbols, n_pilots) — row n is pilot_values(start_index + n).
        expected = base * polarity[:, None]

        measured = symbols[..., pilot_bins]
        correlation = np.sum(measured * np.conj(expected), axis=-1)
        zero = np.abs(correlation) == 0

        # --- common phase correction (de-scrambled pilot average) ---------
        common_phase = np.where(zero, 0.0, np.angle(correlation))
        symbols = symbols * np.exp(-1j * common_phase)[..., None]

        # --- feed-forward timing correction (tau) -------------------------
        measured = symbols[..., pilot_bins]
        pilot_indices = np.array(self.numerology.pilot_logical, dtype=np.float64)
        phases = np.angle(measured * np.conj(expected))
        weights = np.abs(measured)
        denom = np.sum(weights * pilot_indices * pilot_indices, axis=-1)
        numer = np.sum(weights * pilot_indices * phases, axis=-1)
        valid = ~zero & (denom != 0)
        tau = np.zeros_like(denom)
        np.divide(numer, denom, out=tau, where=valid)

        logical = self._logical_index_vector()
        symbols = symbols * np.exp(-1j * tau[..., None] * logical)
        magnitude = np.where(zero, 0.0, np.mean(np.abs(measured), axis=-1))
        return symbols, PilotBlockCorrection(
            common_phase=common_phase, tau=tau, pilot_magnitude=magnitude
        )

    # ------------------------------------------------------------------
    def _logical_index_vector(self) -> np.ndarray:
        """Logical subcarrier index of every FFT bin (0 for DC, negative above N/2)."""
        n = self.numerology.fft_size
        logical = np.arange(n, dtype=np.float64)
        logical[logical > n / 2] -= n
        return logical

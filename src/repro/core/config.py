"""Transceiver configuration and OFDM numerology.

The paper's evaluated build is a 4x4 system with 64-point OFDM, 16-QAM and a
rate-1/2 convolutional code, clocked at 100 MHz; Section V also discusses a
512-point variant and the abstract's 1 Gbps point uses 64-QAM with a higher
code rate.  :class:`TransceiverConfig` captures all of those knobs;
:class:`OfdmNumerology` derives the subcarrier allocation (data, pilot,
guard) from the FFT length, reproducing the 802.11a allocation exactly at 64
points and scaling it proportionally for other transform lengths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from repro.coding.convolutional import CodeRate
from repro.dsp.fixedpoint import FixedPointFormat
from repro.exceptions import ConfigurationError
from repro.modulation.constellations import Modulation
from repro.types import DetectorName

#: 802.11a pilot subcarriers (logical indices, 64-point OFDM).
_IEEE80211A_PILOTS = (-21, -7, 7, 21)


def _logical_to_fft_bin(logical_index: int, fft_size: int) -> int:
    """Map a logical subcarrier index (negative = below DC) to an FFT bin."""
    if logical_index == 0:
        return 0
    if logical_index > 0:
        return logical_index
    return fft_size + logical_index


@dataclass(frozen=True)
class OfdmNumerology:
    """Subcarrier allocation for one OFDM symbol.

    Attributes
    ----------
    fft_size:
        Transform length.
    data_bins:
        FFT bin indices carrying data symbols (in the order the symbol
        mapper fills them: lowest logical subcarrier first).
    pilot_bins:
        FFT bin indices carrying pilot tones.
    pilot_logical:
        Logical indices of the pilots (used for the timing-correction slope).
    pilot_values:
        Base pilot values (before the per-symbol polarity is applied).
    """

    fft_size: int
    data_bins: Tuple[int, ...]
    pilot_bins: Tuple[int, ...]
    pilot_logical: Tuple[int, ...]
    pilot_values: Tuple[complex, ...]

    @property
    def n_data_subcarriers(self) -> int:
        """Number of data-bearing subcarriers."""
        return len(self.data_bins)

    @property
    def n_pilots(self) -> int:
        """Number of pilot subcarriers."""
        return len(self.pilot_bins)

    @property
    def active_bins(self) -> Tuple[int, ...]:
        """All occupied bins (data + pilots)."""
        return tuple(sorted(set(self.data_bins) | set(self.pilot_bins)))

    def active_mask(self) -> np.ndarray:
        """Boolean mask over FFT bins of the occupied subcarriers."""
        mask = np.zeros(self.fft_size, dtype=bool)
        mask[list(self.active_bins)] = True
        return mask

    @classmethod
    def for_fft_size(cls, fft_size: int) -> "OfdmNumerology":
        """Build the allocation for ``fft_size``.

        64-point OFDM reproduces the 802.11a allocation (48 data + 4 pilot
        subcarriers on logical indices -26..26); larger power-of-two lengths
        scale the occupied band and pilot count proportionally (e.g. the
        512-point variant discussed in Section V carries 384 data and 32
        pilot subcarriers), keeping the ~81 % occupancy the paper's "eight
        times as many" scaling argument assumes and keeping the coded bits
        per symbol a multiple of 16 as the interleaver requires.
        """
        if fft_size < 64 or fft_size & (fft_size - 1):
            raise ConfigurationError("fft_size must be a power of two >= 64")
        scale = fft_size // 64
        half_active = 26 * scale
        if fft_size == 64:
            pilot_logical = _IEEE80211A_PILOTS
        else:
            # 2*scale pilots per side, evenly spread across the active band.
            positive = tuple(
                int(round(13.0 * (2 * i + 1) / 2.0)) for i in range(2 * scale)
            )
            pilot_logical = tuple(-p for p in positive) + positive
        pilot_logical = tuple(sorted(pilot_logical))
        logical_active = [
            k for k in range(-half_active, half_active + 1) if k != 0
        ]
        data_logical = [k for k in logical_active if k not in pilot_logical]
        data_bins = tuple(_logical_to_fft_bin(k, fft_size) for k in data_logical)
        pilot_bins = tuple(_logical_to_fft_bin(k, fft_size) for k in pilot_logical)
        # 802.11a pilot polarities: +1 on the three lower pilots, -1 on +21.
        pilot_values = tuple(
            complex(-1.0, 0.0) if k == max(pilot_logical) else complex(1.0, 0.0)
            for k in pilot_logical
        )
        return cls(
            fft_size=fft_size,
            data_bins=data_bins,
            pilot_bins=pilot_bins,
            pilot_logical=pilot_logical,
            pilot_values=pilot_values,
        )


@dataclass(frozen=True)
class TransceiverConfig:
    """Complete configuration of the MIMO-OFDM transceiver.

    The defaults are the paper's synthesised configuration (4x4, 16-QAM,
    64-point OFDM, rate-1/2 coding, 25 % cyclic prefix, 100 MHz clock).
    ``gigabit()`` returns the configuration behind the 1 Gbps headline
    (64-QAM, rate 3/4).

    ``correct_cfo`` enables the preamble-based carrier-frequency-offset
    estimator (an extension beyond the paper, which relies on pilot phase
    correction alone); see :mod:`repro.sync.cfo`.

    ``detector`` selects the MIMO detector: ``"zf"`` (the paper's
    zero-forcing multiply-by-stored-inverse design) or ``"mmse"`` (the
    textbook linear-MMSE baseline from :mod:`repro.mimo.detector`), which is
    one of the sweep axes of the :mod:`repro.sim` engine.

    ``rx_sample_format`` / ``rx_multiplier_format`` model the receiver's
    finite word lengths (Section IV: 16-bit I/Q samples on the antenna
    interface, 18-bit embedded-multiplier operands).  When set, the receiver
    quantises the incoming sample stream (``rx_sample_format``, the ADC /
    JESD204 interface) and every FFT output entering the channel estimator
    and MIMO detector (``rx_multiplier_format``).  ``None`` (the default)
    keeps the floating-point datapath.  The paper's formats are
    :data:`repro.dsp.fixedpoint.SAMPLE_FORMAT_16BIT` and
    :data:`repro.dsp.fixedpoint.MULTIPLIER_FORMAT_18BIT`.
    """

    n_antennas: int = 4
    fft_size: int = 64
    cyclic_prefix_ratio: float = 0.25
    modulation: Modulation = Modulation.QAM16
    code_rate: CodeRate = CodeRate.RATE_1_2
    clock_hz: float = 100e6
    soft_decision: bool = False
    use_cordic_channel_inversion: bool = False
    scramble: bool = True
    correct_cfo: bool = False
    detector: DetectorName = "zf"
    rx_sample_format: Optional[FixedPointFormat] = None
    rx_multiplier_format: Optional[FixedPointFormat] = None

    def __post_init__(self) -> None:
        if self.n_antennas <= 0:
            raise ConfigurationError("n_antennas must be positive")
        if self.fft_size < 16 or self.fft_size & (self.fft_size - 1):
            raise ConfigurationError("fft_size must be a power of two >= 16")
        if not 0 <= self.cyclic_prefix_ratio < 1:
            raise ConfigurationError("cyclic_prefix_ratio must be in [0, 1)")
        if self.clock_hz <= 0:
            raise ConfigurationError("clock_hz must be positive")
        # Normalise enum-ish fields so strings are accepted.
        object.__setattr__(self, "modulation", Modulation.from_any(self.modulation))
        object.__setattr__(self, "code_rate", CodeRate(self.code_rate))
        object.__setattr__(self, "detector", str(self.detector).lower())
        if self.detector not in ("zf", "mmse"):
            raise ConfigurationError("detector must be 'zf' or 'mmse'")
        for name in ("rx_sample_format", "rx_multiplier_format"):
            try:
                coerced = FixedPointFormat.coerce(getattr(self, name), name)
            except TypeError as error:
                raise ConfigurationError(str(error)) from None
            object.__setattr__(self, name, coerced)

    # ------------------------------------------------------------------
    @classmethod
    def paper_default(cls) -> "TransceiverConfig":
        """The configuration synthesised in Tables 1-4 (16-QAM, rate 1/2)."""
        return cls()

    @classmethod
    def gigabit(cls) -> "TransceiverConfig":
        """The configuration achieving the 1 Gbps headline (64-QAM, rate 3/4)."""
        return cls(modulation=Modulation.QAM64, code_rate=CodeRate.RATE_3_4)

    # ------------------------------------------------------------------
    @property
    def numerology(self) -> OfdmNumerology:
        """Subcarrier allocation derived from the FFT length."""
        return OfdmNumerology.for_fft_size(self.fft_size)

    @property
    def cyclic_prefix_length(self) -> int:
        """Cyclic-prefix samples per OFDM symbol (25 % of the FFT length)."""
        return int(self.fft_size * self.cyclic_prefix_ratio)

    @property
    def samples_per_symbol(self) -> int:
        """Time-domain samples per OFDM symbol including the cyclic prefix."""
        return self.fft_size + self.cyclic_prefix_length

    @property
    def bits_per_subcarrier(self) -> int:
        """Coded bits per data subcarrier."""
        return self.modulation.bits_per_symbol

    @property
    def coded_bits_per_symbol(self) -> int:
        """Coded bits per OFDM symbol per spatial stream (N_CBPS)."""
        return self.numerology.n_data_subcarriers * self.bits_per_subcarrier

    @property
    def data_bits_per_symbol(self) -> int:
        """Information bits per OFDM symbol per spatial stream (N_DBPS)."""
        return int(round(self.coded_bits_per_symbol * self.code_rate.fraction))

    @property
    def n_streams(self) -> int:
        """Number of independent spatial streams (equal to antennas here)."""
        return self.n_antennas

    def symbol_duration_s(self) -> float:
        """Duration of one OFDM symbol at the configured clock."""
        return self.samples_per_symbol / self.clock_hz

"""4x4 MIMO-OFDM transmitter (Fig. 1).

The transmit datapath per spatial stream is: (scramble) -> convolutional
encoder -> block interleaver -> LUT symbol mapper -> pilot insertion -> IFFT
-> cyclic prefix.  The burst control path prepends the staggered MIMO
preamble (STS from antenna 0 only, one LTS slot per antenna) before the data
OFDM symbols, exactly as Fig. 2 requires for receiver-side channel
estimation.

Mirroring the receive chain, the post-encoding datapath is vectorised over
the whole burst: all streams' coded bits are interleaved and LUT-mapped in
one pass, scattered into one ``(n_streams, n_symbols, fft_size)``
frequency-domain block, pilot-inserted with one
:meth:`~repro.core.pilots.PilotProcessor.insert_block` pass, transformed by
a single planned IFFT (through the configured
:class:`~repro.dsp.backend.DspBackend`), and cyclic-prefixed with one
indexed gather.  The original per-symbol loop survives behind
``vectorized=False`` as the bit-exact agreement-test reference.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.coding.convolutional import ConvolutionalCode, ConvolutionalEncoder
from repro.coding.interleaver import interleave
from repro.coding.scrambler import Scrambler
from repro.contracts import shaped
from repro.core.config import TransceiverConfig
from repro.core.frame import TransmitBurst
from repro.core.pilots import PilotProcessor
from repro.core.preamble import PreambleGenerator
from repro.dsp.backend import BackendLike, get_backend
from repro.dsp.fft import ofdm_modulate
from repro.exceptions import ConfigurationError
from repro.modulation.mapper import SymbolMapper
from repro.types import BitArray, ComplexArray
from repro.utils.bits import _as_bit_array


class MimoTransmitter:
    """MIMO-OFDM burst transmitter.

    Parameters
    ----------
    config:
        Transceiver configuration; defaults to the paper's synthesised
        configuration (4x4, 16-QAM, 64-point OFDM, rate 1/2).
    vectorized:
        Build the burst through the whole-burst batched datapath (default).
        ``False`` selects the original per-symbol loop, kept as the
        bit-exact reference for the agreement tests.
    backend:
        :class:`~repro.dsp.backend.DspBackend` (or registry name) carrying
        the transform arithmetic of the vectorised path.  The default
        complex128 numpy backend is bit-identical to the scalar loop; the
        ``"numpy32"`` backend runs the IFFTs in single precision.
    """

    def __init__(
        self,
        config: Optional[TransceiverConfig] = None,
        vectorized: bool = True,
        backend: BackendLike = None,
    ) -> None:
        self.config = config if config is not None else TransceiverConfig()
        self.vectorized = vectorized
        self.backend = get_backend(backend)
        self.numerology = self.config.numerology
        self.preamble = PreambleGenerator(self.config.fft_size)
        self.pilots = PilotProcessor(self.numerology)
        self.mapper = SymbolMapper(self.config.modulation)
        self.code = ConvolutionalCode.ieee80211a(self.config.code_rate)
        self._encoder = ConvolutionalEncoder(self.code)
        self._scrambler = Scrambler()

    # ------------------------------------------------------------------
    # sizing helpers
    # ------------------------------------------------------------------
    def coded_length(self, n_info_bits: int) -> int:
        """Coded bits produced for ``n_info_bits`` information bits (with tail)."""
        return self._encoder.coded_length(n_info_bits, terminate=True)

    def symbols_for_info_bits(self, n_info_bits: int) -> int:
        """Number of OFDM symbols needed to carry ``n_info_bits`` per stream."""
        if n_info_bits <= 0:
            raise ConfigurationError("n_info_bits must be positive")
        coded = self.coded_length(n_info_bits)
        n_cbps = self.config.coded_bits_per_symbol
        return -(-coded // n_cbps)

    def max_info_bits(self, n_ofdm_symbols: int) -> int:
        """Largest number of information bits that fit in ``n_ofdm_symbols``."""
        if n_ofdm_symbols <= 0:
            raise ConfigurationError("n_ofdm_symbols must be positive")
        capacity = n_ofdm_symbols * self.config.coded_bits_per_symbol
        rate = self.config.code_rate.fraction
        # Invert coded_length: coded = ceil((info + tail)/rate); search down
        # from the continuous estimate to stay within capacity.
        estimate = int(capacity * rate) - self.code.memory
        while estimate > 0 and self.coded_length(estimate) > capacity:
            estimate -= 1
        if estimate <= 0:
            raise ConfigurationError("burst too short to carry any information bits")
        return estimate

    # ------------------------------------------------------------------
    # per-stream datapath
    # ------------------------------------------------------------------
    def _encode_stream(self, bits: np.ndarray) -> tuple[np.ndarray, int]:
        """Scramble + encode + pad one stream; returns (padded coded bits, n_symbols)."""
        info = _as_bit_array(bits)
        if self.config.scramble:
            info = self._scrambler.process(info, reset=True)
        coded = self._encoder.encode(info, terminate=True, reset=True)
        n_cbps = self.config.coded_bits_per_symbol
        n_symbols = -(-coded.size // n_cbps)
        padded = np.zeros(n_symbols * n_cbps, dtype=np.uint8)
        padded[: coded.size] = coded
        return padded, n_symbols

    def _map_stream(self, coded_bits: np.ndarray, n_symbols: int) -> np.ndarray:
        """Interleave and map one stream; returns frequency-domain symbols.

        Output shape is ``(n_symbols, fft_size)`` with pilots inserted.
        """
        n_cbps = self.config.coded_bits_per_symbol
        n_bpsc = self.config.bits_per_subcarrier
        fft_size = self.config.fft_size
        data_bins = list(self.numerology.data_bins)
        symbols = np.zeros((n_symbols, fft_size), dtype=np.complex128)
        for n in range(n_symbols):
            block = coded_bits[n * n_cbps : (n + 1) * n_cbps]
            interleaved = interleave(block, n_cbps, n_bpsc)
            constellation_points = self.mapper.map_bits(interleaved)
            frequency = np.zeros(fft_size, dtype=np.complex128)
            frequency[data_bins] = constellation_points
            symbols[n] = self.pilots.insert(frequency, n)
        return symbols

    def _modulate_stream(self, frequency_symbols: np.ndarray) -> np.ndarray:
        """IFFT + cyclic prefix for every OFDM symbol of one stream."""
        cp = self.config.cyclic_prefix_length
        waveform = [
            ofdm_modulate(frequency_symbols[n], cp)
            for n in range(frequency_symbols.shape[0])
        ]
        if not waveform:
            return np.zeros(0, dtype=np.complex128)
        return np.concatenate(waveform)

    # ------------------------------------------------------------------
    # whole-burst datapath
    # ------------------------------------------------------------------
    @shaped("(n_streams, n_symbols, fft_size)", padded_bits="(n_streams, n_bits)")
    def _map_block(self, padded_bits: BitArray, n_symbols: int) -> ComplexArray:
        """Interleave, map and pilot-insert every stream's burst in one pass.

        ``padded_bits`` has shape ``(n_streams, n_symbols * n_cbps)``; the
        result is the ``(n_streams, n_symbols, fft_size)`` frequency-domain
        block, value-identical to running :meth:`_map_stream` per stream
        (the interleaver permutes all blocks with one fancy index, the LUT
        mapper packs every symbol's address in one reshape, and the pilots
        land with one :meth:`~repro.core.pilots.PilotProcessor.insert_block`
        pass).
        """
        n_cbps = self.config.coded_bits_per_symbol
        n_bpsc = self.config.bits_per_subcarrier
        fft_size = self.config.fft_size
        n_streams = padded_bits.shape[0]
        data_bins = list(self.numerology.data_bins)

        interleaved = interleave(padded_bits, n_cbps, n_bpsc)
        points = self.mapper.map_bits(interleaved)
        block = np.zeros((n_streams, n_symbols, fft_size), dtype=np.complex128)
        block[..., data_bins] = points.reshape(n_streams, n_symbols, len(data_bins))
        return self.pilots.insert_block(block)

    @shaped(
        "(n_streams, n_time_samples)",
        frequency_block="(n_streams, n_symbols, fft_size)",
    )
    def _modulate_block(self, frequency_block: ComplexArray) -> ComplexArray:
        """One planned IFFT + one strided CP gather for the whole burst.

        ``frequency_block`` has shape ``(n_streams, n_symbols, fft_size)``;
        the result is ``(n_streams, n_symbols * samples_per_symbol)`` time
        samples, value-identical to per-symbol
        :func:`~repro.dsp.fft.ofdm_modulate` (the backend's batched IFFT
        runs the same butterflies row by row, and the gather index copies
        exactly the prefix + symbol concatenation).
        """
        n_streams, n_symbols, fft_size = frequency_block.shape
        cp = self.config.cyclic_prefix_length
        if n_symbols == 0:
            return self.backend.zeros((n_streams, 0))
        time_domain = self.backend.ifft(frequency_block)
        gather = np.concatenate(
            [np.arange(fft_size - cp, fft_size), np.arange(fft_size)]
        )
        return time_domain[..., gather].reshape(n_streams, -1)

    # ------------------------------------------------------------------
    # burst assembly
    # ------------------------------------------------------------------
    def transmit(self, stream_bits: Sequence[np.ndarray]) -> TransmitBurst:
        """Build a complete burst from per-stream information bits.

        Parameters
        ----------
        stream_bits:
            One bit array per spatial stream (``n_antennas`` arrays).  All
            streams are padded to the same number of OFDM symbols.

        Returns
        -------
        :class:`~repro.core.frame.TransmitBurst` with per-antenna samples.
        """
        n_streams = self.config.n_streams
        if len(stream_bits) != n_streams:
            raise ConfigurationError(
                f"expected {n_streams} bit streams, got {len(stream_bits)}"
            )
        info_bits = [_as_bit_array(bits) for bits in stream_bits]
        for bits in info_bits:
            if bits.size == 0:
                raise ConfigurationError("every stream must carry at least one bit")

        encoded: List[np.ndarray] = []
        symbol_counts: List[int] = []
        for bits in info_bits:
            coded, n_symbols = self._encode_stream(bits)
            encoded.append(coded)
            symbol_counts.append(n_symbols)

        n_symbols = max(symbol_counts)
        n_cbps = self.config.coded_bits_per_symbol
        padded = []
        for coded in encoded:
            full = np.zeros(n_symbols * n_cbps, dtype=np.uint8)
            full[: coded.size] = coded
            padded.append(full)

        if self.vectorized:
            frequency_symbols = self._map_block(np.stack(padded), n_symbols)
        else:
            frequency_symbols = np.zeros(
                (n_streams, n_symbols, self.config.fft_size), dtype=np.complex128
            )
            for stream in range(n_streams):
                frequency_symbols[stream] = self._map_stream(padded[stream], n_symbols)

        preamble_waveform = self.preamble.mimo_preamble(n_streams)
        layout = self.preamble.layout(n_streams)
        data_length = n_symbols * self.config.samples_per_symbol
        # A short idle tail (one cyclic-prefix length of zeros) ends the
        # burst; it models the transmitter returning to idle and gives the
        # receiver timing margin when the synchroniser locks a sample or two
        # late on dispersive channels.
        tail_length = self.config.cyclic_prefix_length
        burst = np.zeros(
            (n_streams, layout.total_length + data_length + tail_length),
            dtype=np.complex128,
        )
        burst[:, : layout.total_length] = preamble_waveform
        data_end = layout.total_length + data_length
        if self.vectorized:
            burst[:, layout.total_length : data_end] = self._modulate_block(  # reprolint: disable=DTYPE001 -- the assembled burst is the complex128 air-interface boundary; payload precision is already decided inside the backend's ifft, so this single widening store loses nothing
                frequency_symbols
            )
        else:
            for stream in range(n_streams):
                burst[stream, layout.total_length : data_end] = (
                    self._modulate_stream(frequency_symbols[stream])
                )

        return TransmitBurst(
            samples=burst,
            info_bits=info_bits,
            coded_bits=padded,
            n_ofdm_symbols=n_symbols,
            layout=layout,
            config=self.config,
            frequency_symbols=frequency_symbols,
        )

    def transmit_random(
        self, n_info_bits: int, rng: Optional[np.random.Generator] = None
    ) -> TransmitBurst:
        """Convenience: transmit ``n_info_bits`` random bits on every stream."""
        generator = rng if rng is not None else np.random.default_rng()  # reprolint: disable=DET001 -- opt-in convenience for interactive use; every engine path injects a seeded generator
        streams = [
            generator.integers(0, 2, size=n_info_bits, dtype=np.uint8)
            for _ in range(self.config.n_streams)
        ]
        return self.transmit(streams)

"""Preamble generation: STS, LTS and the MIMO preamble schedule (Fig. 2).

The transmitter is preloaded with the frequency-domain values of the short
and long training sequences.  For 64-point OFDM these are the 802.11a
sequences; for larger transforms a deterministic extension with the same
structure is generated (STS energy on every fourth occupied subcarrier, a
+/-1 LTS on every occupied subcarrier).

The MIMO schedule follows Fig. 2: the STS is transmitted from antenna 0
only (it is used solely for time synchronisation, and a single transmitter
keeps the signal clean), then each antenna in turn transmits the LTS while
the others are silent, which is what lets the receiver estimate every column
of the channel matrix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.core.config import OfdmNumerology, _logical_to_fft_bin
from repro.dsp.fft import ifft
from repro.exceptions import ConfigurationError
from repro.types import ComplexArray

# 802.11a long training sequence on logical subcarriers -26..-1, +1..+26.
_LTS_NEGATIVE = [1, 1, -1, -1, 1, 1, -1, 1, -1, 1, 1, 1, 1, 1, 1, -1, -1, 1, 1, -1, 1, -1, 1, 1, 1, 1]
_LTS_POSITIVE = [1, -1, -1, 1, 1, -1, 1, -1, 1, -1, -1, -1, -1, -1, 1, 1, -1, -1, 1, -1, 1, -1, 1, 1, 1, 1]

# 802.11a short training sequence: non-zero on every 4th subcarrier.
_STS_SCALE = np.sqrt(13.0 / 6.0)
_STS_NONZERO = {
    -24: (1 + 1j), -20: (-1 - 1j), -16: (1 + 1j), -12: (-1 - 1j), -8: (-1 - 1j), -4: (1 + 1j),
    4: (-1 - 1j), 8: (-1 - 1j), 12: (1 + 1j), 16: (1 + 1j), 20: (1 + 1j), 24: (1 + 1j),
}

#: Number of 16-sample repetitions in the 802.11a short training section.
STS_REPETITIONS = 10


@dataclass(frozen=True)
class PreambleLayout:
    """Sample offsets of the preamble sections within a burst.

    Attributes
    ----------
    sts_length:
        Length of the short-training section in samples.
    lts_slot_length:
        Length of one LTS slot (cyclic prefix + two LTS repetitions).
    n_lts_slots:
        Number of staggered LTS slots (one per transmit antenna).
    """

    sts_length: int
    lts_slot_length: int
    n_lts_slots: int

    @property
    def total_length(self) -> int:
        """Total preamble length in samples."""
        return self.sts_length + self.n_lts_slots * self.lts_slot_length

    def lts_slot_start(self, slot: int) -> int:
        """Start sample of LTS slot ``slot`` (0-based) within the burst."""
        if not 0 <= slot < self.n_lts_slots:
            raise ValueError(f"slot {slot} out of range")
        return self.sts_length + slot * self.lts_slot_length

    @property
    def data_start(self) -> int:
        """Start sample of the first data OFDM symbol."""
        return self.total_length


class PreambleGenerator:
    """Generate STS/LTS waveforms and the staggered MIMO preamble."""

    def __init__(self, fft_size: int = 64) -> None:
        if fft_size < 64 or fft_size & (fft_size - 1):
            raise ConfigurationError("fft_size must be a power of two >= 64")
        self.fft_size = fft_size
        self.numerology = OfdmNumerology.for_fft_size(fft_size)
        self.lts_frequency = self._build_lts_frequency()
        self.sts_frequency = self._build_sts_frequency()
        #: Cyclic prefix of the long training section (twice the data CP).
        self.lts_cp_length = fft_size // 2
        #: Length of one short training repetition.
        self.short_symbol_length = fft_size // 4

    # ------------------------------------------------------------------
    # frequency-domain sequences
    # ------------------------------------------------------------------
    def _build_lts_frequency(self) -> np.ndarray:
        freq = np.zeros(self.fft_size, dtype=np.complex128)
        if self.fft_size == 64:
            for offset, value in enumerate(_LTS_NEGATIVE):
                freq[_logical_to_fft_bin(-26 + offset, 64)] = value
            for offset, value in enumerate(_LTS_POSITIVE):
                freq[_logical_to_fft_bin(1 + offset, 64)] = value
            return freq
        # Deterministic +/-1 sequence on every active subcarrier for larger
        # transforms (seeded so transmitter and receiver agree).
        rng = np.random.default_rng(0x1757)
        active = self.numerology.active_bins
        values = rng.integers(0, 2, size=len(active)) * 2 - 1
        for bin_index, value in zip(active, values):
            freq[bin_index] = float(value)
        return freq

    def _build_sts_frequency(self) -> np.ndarray:
        freq = np.zeros(self.fft_size, dtype=np.complex128)
        if self.fft_size == 64:
            for logical, value in _STS_NONZERO.items():
                freq[_logical_to_fft_bin(logical, 64)] = _STS_SCALE * value
            return freq
        # Energy on every 4th active logical subcarrier, alternating QPSK
        # corners, for larger transforms.
        rng = np.random.default_rng(0x5757)
        scale = _STS_SCALE
        half_active = (len(self.numerology.active_bins)) // 2
        for logical in range(-half_active, half_active + 1):
            if logical == 0 or logical % 4 != 0:
                continue
            corner = (1 + 1j) if rng.integers(0, 2) else (-1 - 1j)
            freq[_logical_to_fft_bin(logical, self.fft_size)] = scale * corner
        return freq

    # ------------------------------------------------------------------
    # time-domain sections
    # ------------------------------------------------------------------
    def sts_time(self) -> ComplexArray:
        """Short training section: 10 repetitions of the short symbol."""
        full_period = ifft(self.sts_frequency)
        short_symbol = full_period[: self.short_symbol_length]
        return np.tile(short_symbol, STS_REPETITIONS)

    def lts_symbol_time(self) -> ComplexArray:
        """One long-training OFDM symbol (no cyclic prefix)."""
        return ifft(self.lts_frequency)

    def lts_time(self) -> ComplexArray:
        """Long training section: long cyclic prefix + two LTS repetitions."""
        symbol = self.lts_symbol_time()
        prefix = symbol[-self.lts_cp_length:]
        return np.concatenate([prefix, symbol, symbol])

    # ------------------------------------------------------------------
    # MIMO schedule (Fig. 2)
    # ------------------------------------------------------------------
    def layout(self, n_antennas: int) -> PreambleLayout:
        """Section offsets for an ``n_antennas``-stream burst."""
        if n_antennas <= 0:
            raise ConfigurationError("n_antennas must be positive")
        return PreambleLayout(
            sts_length=self.sts_time().size,
            lts_slot_length=self.lts_time().size,
            n_lts_slots=n_antennas,
        )

    def mimo_preamble(self, n_antennas: int) -> ComplexArray:
        """Per-antenna preamble waveforms, shape ``(n_antennas, total_length)``.

        Antenna 0 transmits the STS; each antenna then transmits the LTS in
        its own slot while the others stay silent.
        """
        layout = self.layout(n_antennas)
        sts = self.sts_time()
        lts = self.lts_time()
        waveform = np.zeros((n_antennas, layout.total_length), dtype=np.complex128)
        waveform[0, : layout.sts_length] = sts
        for antenna in range(n_antennas):
            start = layout.lts_slot_start(antenna)
            waveform[antenna, start : start + layout.lts_slot_length] = lts
        return waveform

    def transmission_schedule(self, n_antennas: int) -> List[Tuple[str, int, int, int]]:
        """Human-readable schedule: (section, antenna, start, length) tuples.

        Reproduces Fig. 2 as data, used by the preamble benchmark and the
        documentation examples.
        """
        layout = self.layout(n_antennas)
        schedule: List[Tuple[str, int, int, int]] = [
            ("STS", 0, 0, layout.sts_length)
        ]
        for antenna in range(n_antennas):
            schedule.append(
                (
                    "LTS",
                    antenna,
                    layout.lts_slot_start(antenna),
                    layout.lts_slot_length,
                )
            )
        return schedule

"""End-to-end link simulation: transmitter -> channel -> receiver.

:class:`MimoTransceiver` wires a :class:`~repro.core.transmitter.MimoTransmitter`
and a :class:`~repro.core.receiver.MimoReceiver` around a
:class:`~repro.channel.model.MimoChannel`; :func:`simulate_link` runs a
complete burst and reports BER/PER, which is what the link-level benchmarks
and the BER-vs-SNR sweeps are built on.

For whole grids (SNR x modulation x channel x detector) use the batched
engine in :mod:`repro.sim` — worker pools, early stopping and result
caching; see ``docs/simulation.md``.  ``simulate_link`` delegates to that
engine's serial backbone (:func:`repro.sim.engine.simulate_point`), which
runs the same burst physics but keeps the classic strict semantics: one
RNG stream across bursts and decode failures raised, not counted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.channel.awgn import noise_variance_for_snr
from repro.channel.model import MimoChannel
from repro.core.config import TransceiverConfig
from repro.core.frame import ReceiveResult, TransmitBurst
from repro.core.receiver import MimoReceiver
from repro.core.transmitter import MimoTransmitter
from repro.utils.rng import SeedLike, make_rng


@dataclass
class LinkSimulationResult:
    """Outcome of one simulated burst.

    Attributes
    ----------
    bit_errors:
        Total bit errors across all spatial streams.
    total_bits:
        Total information bits transmitted across all streams.
    bit_error_rate:
        ``bit_errors / total_bits``.
    stream_bit_error_rates:
        Per-stream BER.
    burst:
        The transmitted burst (for inspection).
    receive_result:
        The full receiver output (channel estimate, diagnostics, ...).
    """

    bit_errors: int
    total_bits: int
    bit_error_rate: float
    stream_bit_error_rates: List[float]
    burst: TransmitBurst
    receive_result: ReceiveResult

    @property
    def frame_error(self) -> bool:
        """True when at least one bit error occurred (burst-level PER flag)."""
        return self.bit_errors > 0


class MimoTransceiver:
    """Transmitter + channel + receiver wired together.

    ``vectorized_tx``/``vectorized_rx`` select the whole-burst batched
    datapaths (default) or the per-symbol reference loops; ``backend``
    names the :class:`~repro.dsp.backend.DspBackend` carrying the
    vectorised transmitter's transform arithmetic.
    """

    def __init__(
        self,
        config: Optional[TransceiverConfig] = None,
        channel: Optional[MimoChannel] = None,
        sync_mode: str = "peak",
        vectorized_rx: bool = True,
        vectorized_tx: bool = True,
        backend=None,
    ) -> None:
        self.config = config if config is not None else TransceiverConfig()
        self.transmitter = MimoTransmitter(
            self.config, vectorized=vectorized_tx, backend=backend
        )
        self.receiver = MimoReceiver(
            self.config, sync_mode=sync_mode, vectorized=vectorized_rx
        )
        self.channel = channel if channel is not None else MimoChannel()
        if self.channel.n_tx != self.config.n_antennas:
            raise ValueError("channel antenna count does not match the configuration")

    def set_channel(self, channel: MimoChannel) -> None:
        """Swap the channel model between bursts.

        The sweep engine reuses one transceiver (trellis, constellation and
        preamble tables are expensive to rebuild) while giving every burst
        a fresh fading realisation through this hook.
        """
        if channel.n_tx != self.config.n_antennas:
            raise ValueError("channel antenna count does not match the configuration")
        self.channel = channel

    def run_burst(
        self,
        n_info_bits: int,
        rng: SeedLike = None,
        known_timing: bool = False,
    ) -> LinkSimulationResult:
        """Transmit, propagate and decode one burst of random data.

        Parameters
        ----------
        n_info_bits:
            Information bits per spatial stream.
        rng:
            Seed or generator for the payload bits (channel noise uses the
            channel's own generator).
        known_timing:
            Bypass the time synchroniser and hand the receiver the true LTS
            position (isolates detection/decoding from sync errors).
        """
        generator = make_rng(rng)
        burst = self.transmitter.transmit_random(n_info_bits, rng=generator)
        output = self.channel.transmit(burst.samples)

        lts_start = None
        if known_timing:
            lts_start = burst.layout.sts_length + self.channel.sample_delay

        # The channel reports the exact variance it injected (calibrated
        # against the occupied-sample signal power); fall back to measuring
        # the noisy output only for duck-typed channels that do not.
        noise_variance = getattr(output, "noise_variance", None)
        if not noise_variance:
            if self.channel.snr_db is not None:
                signal_power = float(np.mean(np.abs(output.samples) ** 2))
                noise_variance = noise_variance_for_snr(
                    self.channel.snr_db, max(signal_power, 1e-12)
                )
            else:
                noise_variance = 1.0

        result = self.receiver.receive(
            output.samples,
            n_info_bits=n_info_bits,
            lts_start=lts_start,
            noise_variance=noise_variance,
            reference_bits=burst.info_bits,
        )

        stream_bers = [
            stream.bit_error_rate if stream.bit_error_rate is not None else 0.0
            for stream in result.streams
        ]
        bit_errors = result.total_bit_errors(burst.info_bits)
        total_bits = burst.payload_bits
        return LinkSimulationResult(
            bit_errors=bit_errors,
            total_bits=total_bits,
            bit_error_rate=bit_errors / total_bits,
            stream_bit_error_rates=stream_bers,
            burst=burst,
            receive_result=result,
        )


def simulate_link(
    config: Optional[TransceiverConfig] = None,
    channel: Optional[MimoChannel] = None,
    n_info_bits: int = 512,
    n_bursts: int = 1,
    rng: SeedLike = None,
    known_timing: bool = False,
    target_errors: Optional[int] = None,
) -> dict:
    """Run up to ``n_bursts`` bursts and aggregate BER/PER statistics.

    A thin wrapper over the batched engine's serial backbone
    (:func:`repro.sim.engine.simulate_point`) that keeps the classic
    one-point API: a fixed channel, one RNG stream threaded through all
    bursts.  For grids over SNR/modulation/channel/detector — with worker
    pools, early stopping and caching — use :class:`repro.sim.SweepRunner`.

    Returns a dictionary with ``bit_error_rate``, ``packet_error_rate``,
    ``total_bits``, ``bit_errors``, ``frame_errors``, ``n_bursts`` (bursts
    actually run) and ``early_stopped`` keys, which the benchmarks print as
    the rows of their tables.

    Parameters
    ----------
    target_errors:
        When set, stop simulating once this many bit errors have been
        observed (the estimate's accuracy depends on the error count, not
        the burst count); ``None`` always runs the full ``n_bursts``.
    """
    from repro.sim.engine import simulate_point

    transceiver = MimoTransceiver(config=config, channel=channel)
    return simulate_point(
        transceiver,
        n_info_bits=n_info_bits,
        n_bursts=n_bursts,
        rng=rng,
        known_timing=known_timing,
        target_errors=target_errors,
    )

"""Burst and result containers shared by the transmitter and receiver."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.config import TransceiverConfig
from repro.core.preamble import PreambleLayout


@dataclass
class TransmitBurst:
    """Everything the transmitter produced for one burst.

    Attributes
    ----------
    samples:
        Time-domain baseband samples per antenna, shape
        ``(n_antennas, n_samples)``.
    info_bits:
        The information bits carried by each spatial stream (list indexed by
        stream).
    coded_bits:
        The coded, padded bit stream of each spatial stream (before
        interleaving), retained for diagnostics and tests.
    n_ofdm_symbols:
        Number of data OFDM symbols in the burst.
    layout:
        Preamble layout (section offsets) used to build the burst.
    config:
        The transceiver configuration the burst was generated with.
    frequency_symbols:
        Frequency-domain data symbols per stream before the IFFT, shape
        ``(n_streams, n_symbols, fft_size)`` (diagnostic; lets tests check
        EVM without re-deriving the mapping).
    """

    samples: np.ndarray
    info_bits: List[np.ndarray]
    coded_bits: List[np.ndarray]
    n_ofdm_symbols: int
    layout: PreambleLayout
    config: TransceiverConfig
    frequency_symbols: Optional[np.ndarray] = None

    @property
    def n_antennas(self) -> int:
        """Number of transmit antennas."""
        return self.samples.shape[0]

    @property
    def n_samples(self) -> int:
        """Burst length in samples per antenna."""
        return self.samples.shape[1]

    @property
    def duration_s(self) -> float:
        """Burst duration at the configured sample clock."""
        return self.n_samples / self.config.clock_hz

    @property
    def payload_bits(self) -> int:
        """Total information bits across all spatial streams."""
        return int(sum(bits.size for bits in self.info_bits))


@dataclass
class StreamDecodeResult:
    """Per-stream decoding outcome."""

    stream: int
    decoded_bits: np.ndarray
    equalized_symbols: np.ndarray
    bit_errors: Optional[int] = None
    bit_error_rate: Optional[float] = None


@dataclass
class ReceiveResult:
    """Everything the receiver recovered from one burst.

    Attributes
    ----------
    streams:
        Per-stream decode results (bits + equalised constellation symbols).
    lts_start:
        Sample index where the LTS section was found (after time sync).
    channel_estimate:
        The per-subcarrier channel estimate used for detection.
    diagnostics:
        Free-form numeric diagnostics (sync peak, pilot corrections, ...).
    """

    streams: List[StreamDecodeResult]
    lts_start: int
    channel_estimate: object
    diagnostics: Dict[str, float] = field(default_factory=dict)

    @property
    def decoded_bits(self) -> List[np.ndarray]:
        """Decoded information bits per stream."""
        return [stream.decoded_bits for stream in self.streams]

    def total_bit_errors(self, reference: List[np.ndarray]) -> int:
        """Total bit errors versus the transmitted information bits."""
        if len(reference) != len(self.streams):
            raise ValueError("reference must have one bit array per stream")
        errors = 0
        for stream_result, ref in zip(self.streams, reference):
            ref_arr = np.asarray(ref, dtype=np.uint8)
            dec = stream_result.decoded_bits
            if dec.size != ref_arr.size:
                raise ValueError("decoded and reference bit lengths differ")
            errors += int(np.count_nonzero(dec != ref_arr))
        return errors

"""Core of the reproduction: the 4x4 MIMO-OFDM baseband transceiver.

This package ties the substrates together into the system the paper
describes: :class:`~repro.core.transmitter.MimoTransmitter` (Fig. 1),
:class:`~repro.core.receiver.MimoReceiver` (Fig. 5) and
:class:`~repro.core.transceiver.MimoTransceiver` / :func:`simulate_link` for
end-to-end link simulation, plus the throughput model behind the 1 Gbps
claim.
"""

from repro.core.config import OfdmNumerology, TransceiverConfig
from repro.core.frame import ReceiveResult, StreamDecodeResult, TransmitBurst
from repro.core.pilots import PilotProcessor
from repro.core.preamble import PreambleGenerator
from repro.core.receiver import MimoReceiver
from repro.core.throughput import throughput_for_config, throughput_report
from repro.core.transceiver import LinkSimulationResult, MimoTransceiver, simulate_link
from repro.core.transmitter import MimoTransmitter

__all__ = [
    "OfdmNumerology",
    "TransceiverConfig",
    "TransmitBurst",
    "ReceiveResult",
    "StreamDecodeResult",
    "PilotProcessor",
    "PreambleGenerator",
    "MimoTransmitter",
    "MimoReceiver",
    "MimoTransceiver",
    "LinkSimulationResult",
    "simulate_link",
    "throughput_for_config",
    "throughput_report",
]

"""Continuous-stream receive pipeline: detector → burst datapath.

:class:`StreamingReceiver` glues the rolling-buffer
:class:`~repro.stream.detector.StreamFrameDetector` to the existing
vectorised burst datapath: every detected frame window is handed to
:meth:`~repro.core.receiver.MimoReceiver.receive_window`, which runs the
exact offline receive chain (CFO correction, staggered-LTS channel
estimation, :meth:`~repro.core.receiver.MimoReceiver.equalize_burst`,
Viterbi decoding) on the cut-out window.  Because detection is
chunk-invariant and the window decode is the offline path verbatim, a
stream fed in chunks of any size decodes bit-exactly like the one-shot
burst loop.

Loss accounting follows the sweep engine's convention
(:func:`repro.sim.engine.lost_frame_counts`): a frame the receiver gives
up on — sync refinement pointing outside the window, a rank-deficient
channel estimate — loses every payload bit, so streaming loss rates are
directly comparable to sweep PER numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.core.frame import ReceiveResult
from repro.core.receiver import MimoReceiver
from repro.exceptions import DecodingError
from repro.sim.engine import lost_frame_counts
from repro.stream.detector import FrameWindow, StreamFrameDetector


@dataclass(frozen=True)
class DecodedFrame:
    """Outcome of decoding one detected frame window.

    Attributes
    ----------
    window:
        The detected frame window (absolute stream position, lock metric).
    result:
        The full burst :class:`~repro.core.frame.ReceiveResult` when
        decoding succeeded, ``None`` when the receiver gave up.
    ok:
        True when the burst decoded (which says nothing about residual bit
        errors — compare against reference bits for that).
    error:
        The :class:`~repro.exceptions.DecodingError` message on give-up.
    """

    window: FrameWindow
    result: Optional[ReceiveResult]
    ok: bool
    error: Optional[str] = None

    def decoded_bits(self) -> Optional[List[np.ndarray]]:
        """Per-stream decoded payload bits (``None`` for a lost frame)."""
        if self.result is None:
            return None
        return [stream.decoded_bits for stream in self.result.streams]


class StreamingReceiver:
    """Receive a continuous multi-antenna stream of fixed-size frames.

    Parameters
    ----------
    receiver:
        The burst receiver to decode detected windows with; its preamble
        and time synchroniser are shared with the frame detector so both
        stages agree on the reference waveform and metric normalisation.
    n_info_bits:
        Information bits per spatial stream per frame (fixes the frame
        length the detector cuts; a real system would decode a SIGNAL
        field instead).
    noise_variance:
        Noise variance forwarded to the soft demapper / MMSE weights.
    min_metric / refine_span:
        Detection tuning forwarded to :class:`StreamFrameDetector`.
    """

    def __init__(
        self,
        receiver: Optional[MimoReceiver] = None,
        n_info_bits: int = 256,
        noise_variance: float = 1.0,
        min_metric: float = 0.6,
        refine_span: Optional[int] = None,
    ) -> None:
        self.receiver = receiver if receiver is not None else MimoReceiver()
        self.n_info_bits = int(n_info_bits)
        self.noise_variance = float(noise_variance)
        self.frame_length = self.receiver.frame_length(self.n_info_bits)
        config = self.receiver.config
        self.detector = StreamFrameDetector(
            preamble=self.receiver.preamble,
            n_rx=config.n_antennas,
            frame_length=self.frame_length,
            n_tx=config.n_antennas,
            min_metric=min_metric,
            refine_span=refine_span,
            synchronizer=self.receiver.synchronizer,
            # The burst datapath re-estimates CFO on the window when the
            # configuration asks for correction; a second coarse estimate
            # per detection would be redundant here.
            estimate_cfo=False,
        )
        self.frames_detected = 0
        self.frames_decoded = 0
        self.frames_lost = 0

    # ------------------------------------------------------------------
    def push(self, chunk: np.ndarray) -> List[DecodedFrame]:
        """Consume one stream chunk; decode and return any completed frames."""
        return [self._decode(w) for w in self.detector.push(chunk)]

    def flush(self) -> List[DecodedFrame]:
        """End of stream: decode whatever the detector can still emit."""
        return [self._decode(w) for w in self.detector.flush()]

    def lost_counts(self) -> Dict[str, int]:
        """Sweep-convention loss counts for all lost frames so far."""
        per_frame = lost_frame_counts(
            self.n_info_bits, self.receiver.config.n_antennas
        )
        return {key: value * self.frames_lost for key, value in per_frame.items()}

    # ------------------------------------------------------------------
    def _decode(self, window: FrameWindow) -> DecodedFrame:
        self.frames_detected += 1
        try:
            result = self.receiver.receive_window(
                window.samples,
                self.n_info_bits,
                lts_offset=window.lts_offset,
                noise_variance=self.noise_variance,
            )
        except DecodingError as error:
            # Same convention as the sweep engine's batch loop: the
            # receiver giving up loses the frame, the stream goes on.
            self.frames_lost += 1
            return DecodedFrame(
                window=window, result=None, ok=False, error=str(error)
            )
        self.frames_decoded += 1
        return DecodedFrame(window=window, result=result, ok=True)

"""Rolling-buffer frame detection over a continuous sample stream.

:class:`StreamFrameDetector` is the streaming counterpart of the burst
receiver's one-shot :meth:`~repro.core.receiver.MimoReceiver.synchronize`:
it consumes arbitrary-sized chunks of a continuous multi-antenna sample
stream into a ring buffer, slides the Schmidl & Cox-style preamble
correlator of :class:`~repro.sync.time_sync.TimeSynchronizer` across chunk
boundaries, and emits complete :class:`FrameWindow` blocks ready for the
vectorised burst datapath — including frames that straddle two or more
chunks.

**Chunk-size invariance by construction.**  Feeding the same stream in
chunks of 1 sample or 4096 samples must produce bit-identical frames, so
every decision is a pure function of the stream *content* at an absolute
sample position, never of how the content arrived:

* the detection metric (the synchroniser's energy-normalised correlation)
  is computed in fixed *tiles* aligned to absolute positions — each tile is
  evaluated once, by an identically-shaped vector operation, as soon as its
  samples are available, so floating-point summation order can never depend
  on the chunking;
* a frame is declared only after the full refinement span past the first
  threshold crossing is available, and emitted only after its last sample
  is buffered — until then the detector simply waits, and re-derives the
  same pending decision from the same content on the next chunk.

The acceptance test is the single normalised-metric threshold the
synchroniser now reports in both of its modes: a window position is a
candidate when any antenna's metric crosses ``min_metric``, and the lock is
refined to the strongest (antenna, position) within ``refine_span``
positions — mirroring the offline receiver's best-antenna peak search.
``refine_span`` defaults to one LTS slot minus the correlator window,
which covers every short-training sidelobe before the true peak while
excluding the structural sidelobe at the next LTS slot boundary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.preamble import PreambleGenerator
from repro.sync.cfo import CfoEstimator
from repro.sync.time_sync import TimeSynchronizer

#: Metric tile width in window positions.  Tiles are aligned to absolute
#: stream positions, so the same stream yields bit-identical metric values
#: for every chunking.  256 keeps the detection lookahead (crossing +
#: refinement + one tile + one correlator window) well inside the shortest
#: legal frame.
METRIC_TILE = 256

#: Compact the ring buffer / metric arrays once this many stale samples
#: accumulate (amortises the copy so 1-sample chunks stay O(1) per push).
_TRIM_SLACK = 8192


@dataclass(frozen=True)
class FrameWindow:
    """One complete detected frame, cut out of the continuous stream.

    Attributes
    ----------
    samples:
        The frame's samples per antenna, shape ``(n_rx, frame_length)`` —
        exactly the block the offline receive path would see for this
        burst.
    start:
        Absolute stream index of the window's first sample.
    lts_start:
        Absolute stream index of the detected LTS section start.
    peak_metric:
        Normalised detection metric at the locking window (~1.0 clean).
    antenna:
        Receive antenna whose correlation won the lock.
    cfo_coarse:
        Coarse CFO estimate from the window's short training section
        (cycles/sample), when the detector carries a CFO estimator.
    """

    samples: np.ndarray
    start: int
    lts_start: int
    peak_metric: float
    antenna: int
    cfo_coarse: Optional[float] = None

    @property
    def lts_offset(self) -> int:
        """LTS start relative to the window (what ``receive_window`` wants)."""
        return self.lts_start - self.start


class StreamFrameDetector:
    """Detect frame windows in a continuous multi-antenna sample stream.

    Parameters
    ----------
    preamble:
        The preamble generator shared with the transmitter/receiver (sets
        the correlator reference and the STS length that maps a lock back
        to the frame start).
    n_rx:
        Number of receive antennas in the stream.
    frame_length:
        Frame size in samples (see
        :meth:`~repro.core.receiver.MimoReceiver.frame_length`); the
        detector emits exactly this many samples per frame.
    n_tx:
        Transmit antenna count of the frames being detected (sets the
        preamble layout used for the refinement span); defaults to
        ``n_rx``.
    min_metric:
        Acceptance threshold on the normalised detection metric.  The
        clean-transition metric is ~1.0 and the worst structural sidelobe
        of the paper's preamble is ~0.67, so the default 0.6 detects
        through deep per-antenna fades while never firing on data.
    refine_span:
        Window positions after the first crossing searched for the true
        peak.  Defaults to ``lts_slot_length - correlator_window`` (128
        for the 64-point build), clamped to at least two correlator
        windows.
    synchronizer:
        Optional pre-built :class:`TimeSynchronizer` (e.g. the burst
        receiver's, so both paths share one reference and normalisation).
    estimate_cfo:
        Attach a coarse CFO estimate from each frame's STS section
        (:class:`~repro.sync.cfo.CfoEstimator`, reused across frames).
    """

    def __init__(
        self,
        preamble: PreambleGenerator,
        n_rx: int,
        frame_length: int,
        n_tx: Optional[int] = None,
        min_metric: float = 0.6,
        refine_span: Optional[int] = None,
        synchronizer: Optional[TimeSynchronizer] = None,
        estimate_cfo: bool = True,
    ) -> None:
        if n_rx <= 0:
            raise ValueError("n_rx must be positive")
        self.preamble = preamble
        self.n_rx = n_rx
        self.synchronizer = (
            synchronizer
            if synchronizer is not None
            else TimeSynchronizer(
                sts_time=preamble.sts_time(), lts_time=preamble.lts_time()
            )
        )
        self.sts_length = preamble.sts_time().size
        layout = preamble.layout(n_tx if n_tx is not None else n_rx)
        if frame_length < layout.total_length:
            raise ValueError("frame_length shorter than the preamble")
        self.frame_length = int(frame_length)
        if not 0.0 < min_metric:
            raise ValueError("min_metric must be positive")
        self.min_metric = float(min_metric)
        window = self.synchronizer.window_length
        if refine_span is None:
            refine_span = max(layout.lts_slot_length - window, 2 * window)
        if refine_span <= 0:
            raise ValueError("refine_span must be positive")
        self.refine_span = int(refine_span)
        #: Samples kept behind the search position so a freshly-detected
        #: frame's start (sts_length - window_sts before the peak) is still
        #: buffered.
        self.keep_margin = self.sts_length
        self.cfo_estimator = (
            CfoEstimator(preamble.fft_size) if estimate_cfo else None
        )
        self.reset()

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Drop all buffered state and restart at stream position zero."""
        self._buffer = np.zeros((self.n_rx, 4096), dtype=np.complex128)
        self._base = 0          # absolute index of _buffer[:, 0]
        self._size = 0          # valid samples in the buffer
        self._metric = np.zeros((self.n_rx, 4096), dtype=np.float64)
        self._metric_base = 0   # absolute position of _metric[:, 0]
        self._metric_size = 0   # valid metric positions
        self._search_from = 0   # absolute position detection resumes at
        self.samples_in = 0
        self.frames_emitted = 0
        self.discarded_detections = 0
        self.truncated_frames = 0

    def push(self, chunk: np.ndarray) -> List[FrameWindow]:
        """Consume one chunk of the stream; return any completed frames.

        ``chunk`` has shape ``(n_rx, n_samples)`` (a 1-D array is accepted
        for single-antenna streams).  Any ``n_samples >= 0`` works — the
        detector buffers partial frames across calls.
        """
        block = np.asarray(chunk, dtype=np.complex128)
        if block.ndim == 1:
            block = block[np.newaxis, :]
        if block.ndim != 2 or block.shape[0] != self.n_rx:
            raise ValueError(
                f"chunk must have shape ({self.n_rx}, n_samples), got {block.shape}"
            )
        self._append(block)
        self.samples_in += block.shape[1]
        return self._advance(flush=False)

    def flush(self) -> List[FrameWindow]:
        """End of stream: detect in the remaining tail (partial tile included).

        A pending frame whose window is fully buffered is emitted; a
        detection whose frame would run past the end of the stream is
        counted in ``truncated_frames`` and dropped.  The detector can keep
        consuming afterwards, but metric tiles recomputed after a
        mid-stream flush are no longer guaranteed chunking-invariant —
        flush once, at the true end.
        """
        return self._advance(flush=True)

    @property
    def pending_samples(self) -> int:
        """Samples buffered but not yet consumed by an emitted frame."""
        return self._base + self._size - self._search_from

    # ------------------------------------------------------------------
    # ring buffer and tiled metric
    # ------------------------------------------------------------------
    def _append(self, block: np.ndarray) -> None:
        needed = self._size + block.shape[1]
        if needed > self._buffer.shape[1]:
            capacity = max(needed, 2 * self._buffer.shape[1])
            grown = np.zeros((self.n_rx, capacity), dtype=np.complex128)
            grown[:, : self._size] = self._buffer[:, : self._size]
            self._buffer = grown
        self._buffer[:, self._size : needed] = block
        self._size = needed

    def _append_metric(self, rows: np.ndarray) -> None:
        needed = self._metric_size + rows.shape[1]
        if needed > self._metric.shape[1]:
            capacity = max(needed, 2 * self._metric.shape[1])
            grown = np.zeros((self.n_rx, capacity), dtype=np.float64)
            grown[:, : self._metric_size] = self._metric[:, : self._metric_size]
            self._metric = grown
        self._metric[:, self._metric_size : needed] = rows
        self._metric_size = needed

    @property
    def _metric_next(self) -> int:
        """Next absolute window position whose metric is not yet computed."""
        return self._metric_base + self._metric_size

    def _extend_metric(self, flush: bool) -> None:
        """Compute metric tiles for every newly-computable window position.

        Positions are evaluated in runs that always end on an absolute
        ``METRIC_TILE`` boundary (or, under ``flush``, at the last
        computable position), so each position's value comes from an
        identically-shaped computation for every chunking of the stream.
        """
        window = self.synchronizer.window_length
        last_possible = self._base + self._size - window + 1
        while self._metric_next < last_possible:
            start = self._metric_next
            tile_end = (start // METRIC_TILE + 1) * METRIC_TILE
            end = min(tile_end, last_possible)
            if end < tile_end and not flush:
                break  # wait until the tile's samples are all buffered
            segment = self._buffer[
                :, start - self._base : end - self._base + window - 1
            ]
            rows = np.empty((self.n_rx, end - start), dtype=np.float64)
            for antenna in range(self.n_rx):
                rows[antenna] = self.synchronizer.normalized_metric(
                    segment[antenna]
                )
            self._append_metric(rows)
            if end < tile_end:
                break  # flushed a partial tile; the stream is exhausted

    def _trim(self) -> None:
        """Amortised compaction of the stale buffer / metric prefixes."""
        keep_samples = min(self._metric_next, self._search_from - self.keep_margin)
        cut = keep_samples - self._base
        if cut > _TRIM_SLACK:
            remaining = self._buffer[:, cut : self._size].copy()
            self._buffer[:, : remaining.shape[1]] = remaining
            self._base += cut
            self._size = remaining.shape[1]
        cut = self._search_from - self._metric_base
        if cut > _TRIM_SLACK:
            cut = min(cut, self._metric_size)
            remaining = self._metric[:, cut : self._metric_size].copy()
            self._metric[:, : remaining.shape[1]] = remaining
            self._metric_base += cut
            self._metric_size = remaining.shape[1]

    def _drop_metric_before(self, position: int) -> None:
        """Restore metric contiguity after a frame consumed the stream."""
        if position <= self._metric_base:
            return
        cut = min(position - self._metric_base, self._metric_size)
        remaining = self._metric[:, cut : self._metric_size].copy()
        self._metric[:, : remaining.shape[1]] = remaining
        self._metric_base = position
        self._metric_size = remaining.shape[1]

    # ------------------------------------------------------------------
    # detection
    # ------------------------------------------------------------------
    def _advance(self, flush: bool) -> List[FrameWindow]:
        self._extend_metric(flush)
        emitted: List[FrameWindow] = []
        window_sts = self.synchronizer.window_sts
        while True:
            rel_from = self._search_from - self._metric_base
            if rel_from >= self._metric_size:
                break
            tail = self._metric[:, rel_from : self._metric_size]
            combined = tail.max(axis=0)
            crossings = np.nonzero(combined >= self.min_metric)[0]
            if crossings.size == 0:
                # Nothing detectable in everything computed so far.
                self._search_from = self._metric_next
                break
            crossing = self._search_from + int(crossings[0])
            refine_end = crossing + self.refine_span + 1
            if self._metric_next < refine_end:
                if not flush:
                    break  # wait for the refinement span to fill
                refine_end = self._metric_next
            rel_c = crossing - self._metric_base
            rel_end = refine_end - self._metric_base
            region = self._metric[:, rel_c:rel_end]
            antenna, offset = divmod(int(np.argmax(region)), region.shape[1])
            peak = crossing + offset
            lts_start = peak + window_sts
            frame_start = lts_start - self.sts_length
            frame_end = frame_start + self.frame_length
            if frame_start < self._base:
                # The lock points before retained history (a spurious
                # crossing right at the buffer edge): skip it.
                self.discarded_detections += 1
                self._search_from = peak + 1
                continue
            if frame_end > self._base + self._size:
                if not flush:
                    break  # wait for the frame tail
                self.truncated_frames += 1
                self._search_from = self._metric_next
                break
            samples = self._buffer[
                :, frame_start - self._base : frame_end - self._base
            ].copy()
            cfo = None
            if self.cfo_estimator is not None:
                cfo = float(self.cfo_estimator.coarse(samples, sts_start=0))
            emitted.append(
                FrameWindow(
                    samples=samples,
                    start=frame_start,
                    lts_start=lts_start,
                    peak_metric=float(region[antenna, offset]),
                    antenna=int(antenna),
                    cfo_coarse=cfo,
                )
            )
            self.frames_emitted += 1
            self._search_from = frame_end
            self._drop_metric_before(frame_end)
        self._trim()
        return emitted

"""Streaming multi-user downlink service (ROADMAP item 1).

The offline loops elsewhere in the repo decode one pre-cut burst at a
time; this package makes *live traffic* a supported workload:

* :mod:`repro.stream.detector` — chunk-invariant rolling-buffer frame
  detection over a continuous multi-antenna stream;
* :mod:`repro.stream.pipeline` — detected windows dispatched to the
  vectorised burst datapath, with sweep-convention loss accounting;
* :mod:`repro.stream.scheduler` / :mod:`repro.stream.traffic` — a
  downlink scheduler multiplexing N per-user queues (round-robin or
  smooth weighted round-robin) over one simulated air interface, fed by
  Poisson/CBR traffic generators;
* :mod:`repro.stream.metrics` — per-user latency percentiles, sustained
  frames/sec, goodput and loss rate as plain dataclasses.
"""

from repro.stream.detector import FrameWindow, StreamFrameDetector
from repro.stream.metrics import LatencySummary, ServiceReport, UserStats
from repro.stream.pipeline import DecodedFrame, StreamingReceiver
from repro.stream.scheduler import DownlinkScheduler
from repro.stream.traffic import CbrTraffic, PoissonTraffic, arrival_times

__all__ = [
    "FrameWindow",
    "StreamFrameDetector",
    "LatencySummary",
    "ServiceReport",
    "UserStats",
    "DecodedFrame",
    "StreamingReceiver",
    "DownlinkScheduler",
    "CbrTraffic",
    "PoissonTraffic",
    "arrival_times",
]

"""Per-user downlink traffic generators.

A traffic model turns a frame budget into deterministic arrival times for
one user's queue.  Two classic models are provided:

* :class:`CbrTraffic` — constant bit rate: one frame every
  ``1 / rate_fps`` seconds (a video stream, a sensor feed);
* :class:`PoissonTraffic` — memoryless arrivals at a mean rate (bursty
  web-style traffic).

Determinism matters more than realism here: the scheduler seeds every
user's generator from the engine's :class:`numpy.random.SeedSequence`
idiom, so a million-user run is bit-reproducible for any scheduling
order.  A model is any object with ``intervals(n_frames, rng)`` returning
the ``n_frames`` inter-arrival gaps in seconds; :func:`arrival_times`
turns gaps into absolute arrival instants.
"""

from __future__ import annotations

import numpy as np

from repro.types import FloatArray
from repro.utils.rng import SeedLike, make_rng


class CbrTraffic:
    """Constant-rate arrivals: one frame every ``1 / rate_fps`` seconds.

    ``phase_s`` offsets the first arrival, which lets a population of CBR
    users be staggered instead of arriving in lockstep.
    """

    def __init__(self, rate_fps: float, phase_s: float = 0.0) -> None:
        if rate_fps <= 0:
            raise ValueError("rate_fps must be positive")
        if phase_s < 0:
            raise ValueError("phase_s must be non-negative")
        self.rate_fps = float(rate_fps)
        self.phase_s = float(phase_s)

    def intervals(self, n_frames: int, rng: SeedLike = None) -> FloatArray:
        """Deterministic gaps; the ``rng`` is accepted but unused."""
        if n_frames < 0:
            raise ValueError("n_frames must be non-negative")
        gaps = np.full(n_frames, 1.0 / self.rate_fps, dtype=np.float64)
        if n_frames:
            gaps[0] = self.phase_s
        return gaps


class PoissonTraffic:
    """Poisson arrivals at ``rate_fps`` mean frames per second.

    Inter-arrival gaps are exponential with mean ``1 / rate_fps``, drawn
    from the generator the scheduler seeds per user — two runs with the
    same base seed replay the same arrival pattern.
    """

    def __init__(self, rate_fps: float) -> None:
        if rate_fps <= 0:
            raise ValueError("rate_fps must be positive")
        self.rate_fps = float(rate_fps)

    def intervals(self, n_frames: int, rng: SeedLike = None) -> FloatArray:
        """Exponential inter-arrival gaps in seconds."""
        if n_frames < 0:
            raise ValueError("n_frames must be non-negative")
        generator = make_rng(rng)
        return generator.exponential(1.0 / self.rate_fps, size=n_frames)


def arrival_times(
    traffic, n_frames: int, rng: SeedLike = None
) -> np.ndarray:
    """Absolute arrival instants (seconds) for one user's frame sequence."""
    gaps = np.asarray(traffic.intervals(n_frames, rng=rng), dtype=np.float64)
    if np.any(gaps < 0):
        raise ValueError("traffic model produced a negative inter-arrival gap")
    return np.cumsum(gaps)

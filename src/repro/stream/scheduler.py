"""Downlink scheduler: N user queues multiplexed over one air interface.

:class:`DownlinkScheduler` is the traffic side of the streaming subsystem:
per-user frame queues are filled by a traffic model
(:mod:`repro.stream.traffic`), a scheduling discipline (pure round-robin
or smooth weighted round-robin) picks which queue transmits next, and each
served frame travels the full physical layer — transmit burst, fading
channel with optional front-end impairments, AWGN — into the
chunk-invariant :class:`~repro.stream.pipeline.StreamingReceiver`, whose
detected-and-decoded frames are matched back to the frames that went on
air.

Two clocks run side by side and must not be confused:

* **simulated air time** advances by each frame's duration at the sample
  rate (the paper's 100 MHz baseband clock); enqueue→decode *latency* —
  queueing delay plus transmission time — lives on this clock;
* **wall-clock time** measures how fast the software pipeline ran;
  *sustained frames/sec* lives on this clock.

Idle air (every queue empty) advances the simulated clock without
generating samples — the receiver's stream is the back-to-back
concatenation of transmitted frames, so detector throughput is spent on
frames, not on noise between them.

Determinism: every (user, frame) derives payload, fading and noise streams
from :func:`repro.sim.engine.stream_frame_seed`, and every user's arrival
process from its own seed, so a thousand-user run is bit-reproducible
regardless of scheduling order or traffic model.
"""

from __future__ import annotations

import heapq
import time
from collections import deque
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.channel.model import MimoChannel
from repro.core.config import TransceiverConfig
from repro.core.receiver import MimoReceiver
from repro.core.transmitter import MimoTransmitter
from repro.sim.engine import build_fading_model, stream_frame_seed
from repro.sim.spec import ImpairmentSpec
from repro.stream.metrics import LatencySummary, ServiceReport, UserStats
from repro.stream.pipeline import DecodedFrame, StreamingReceiver
from repro.stream.traffic import PoissonTraffic, arrival_times

#: Entropy tag for per-user arrival-process seeds; disjoint from the
#: per-(user, frame) physics tree (which uses a four-element seed list).
_ARRIVAL_TAG = 0xA221

#: Paper baseband sample clock: 100 MHz.
DEFAULT_SAMPLE_RATE_HZ = 100e6


@dataclass
class _InFlight:
    """One served frame awaiting its detected window in the receive stream."""

    user: int
    frame_index: int
    arrival_s: float
    done_s: float
    expected_start: int
    reference_bits: List[np.ndarray]


class DownlinkScheduler:
    """Multiplex N per-user frame queues over one simulated air interface.

    Parameters
    ----------
    n_users:
        Number of user streams.
    frames_per_user:
        Frames each user's traffic source offers (the run serves all of
        them; latency reflects any queueing backlog the load builds up).
    traffic:
        Traffic model shared by every user, or a callable ``user -> model``
        for heterogeneous populations.  Defaults to Poisson arrivals at
        100 frames/sec per user.
    mode:
        ``"round_robin"`` — cycle over backlogged users; or ``"weighted"``
        — smooth weighted round-robin: every backlogged user's credit
        grows by its weight each decision, the largest credit transmits
        and pays back the participating total, so long-run service shares
        track the weights without starving anyone.
    weights:
        Per-user service weights for ``"weighted"`` mode (default: equal).
    n_info_bits:
        Information bits per spatial stream per frame.
    channel:
        Fading model name (``"ideal"``, ``"flat_rayleigh"``,
        ``"frequency_selective"``) — a fresh realisation per frame, the
        sweep engine's fresh-fading convention.
    snr_db:
        AWGN level (``None`` disables noise).
    impairment:
        Optional front-end :class:`~repro.sim.spec.ImpairmentSpec` (CFO,
        sample delay, IQ imbalance, fixed-point formats), wired into both
        the channel and the receiver exactly like the sweep engine does.
    config:
        Base transceiver configuration (default: the paper's 4x4/64-point
        build).  Impairment-driven receiver settings (CFO correction, RX
        formats) are applied on top.
    base_seed:
        Root of the deterministic seed tree.
    sample_rate_hz:
        Baseband sample rate that converts frame lengths into air time.
    noise_variance:
        Forwarded to the soft demapper / MMSE detector weights.
    """

    def __init__(
        self,
        n_users: int,
        frames_per_user: int = 2,
        traffic: Union[None, object, Callable[[int], object]] = None,
        mode: str = "round_robin",
        weights: Optional[Sequence[float]] = None,
        n_info_bits: int = 256,
        channel: str = "flat_rayleigh",
        snr_db: Optional[float] = 30.0,
        impairment: Optional[ImpairmentSpec] = None,
        config: Optional[TransceiverConfig] = None,
        base_seed: int = 0,
        sample_rate_hz: float = DEFAULT_SAMPLE_RATE_HZ,
        noise_variance: float = 1.0,
    ) -> None:
        if n_users <= 0:
            raise ValueError("n_users must be positive")
        if frames_per_user < 0:
            raise ValueError("frames_per_user must be non-negative")
        if mode not in ("round_robin", "weighted"):
            raise ValueError("mode must be 'round_robin' or 'weighted'")
        if sample_rate_hz <= 0:
            raise ValueError("sample_rate_hz must be positive")
        self.n_users = int(n_users)
        self.frames_per_user = int(frames_per_user)
        self.mode = mode
        if weights is None:
            self.weights = np.ones(self.n_users, dtype=np.float64)
        else:
            self.weights = np.asarray(weights, dtype=np.float64)
            if self.weights.shape != (self.n_users,):
                raise ValueError("weights must have one entry per user")
            if np.any(self.weights <= 0):
                raise ValueError("weights must be positive")
        if traffic is None:
            traffic = PoissonTraffic(100.0)
        self._traffic_for = traffic if callable(traffic) else (lambda user: traffic)
        self.n_info_bits = int(n_info_bits)
        self.channel = channel
        self.snr_db = snr_db
        self.impairment = impairment if impairment is not None else ImpairmentSpec()
        self.base_seed = int(base_seed)
        self.sample_rate_hz = float(sample_rate_hz)
        self.noise_variance = float(noise_variance)

        base = config if config is not None else TransceiverConfig()
        # The same impairment-to-receiver wiring as the sweep engine's
        # build_config: a CFO on air enables the estimator/corrector, and
        # the RX formats become the receiver's word lengths.
        self.config = replace(
            base,
            correct_cfo=base.correct_cfo or self.impairment.cfo_normalized != 0.0,
            rx_sample_format=self.impairment.rx_format or base.rx_sample_format,
            rx_multiplier_format=(
                self.impairment.rx_multiplier_format or base.rx_multiplier_format
            ),
        )
        self.transmitter = MimoTransmitter(self.config)
        self.pipeline = StreamingReceiver(
            receiver=MimoReceiver(self.config),
            n_info_bits=self.n_info_bits,
            noise_variance=self.noise_variance,
        )
        self.frame_length = self.pipeline.frame_length

    # ------------------------------------------------------------------
    # scheduling disciplines
    # ------------------------------------------------------------------
    def _pick_user(self, qlen: np.ndarray, credit: np.ndarray, rr_next: int) -> int:
        backlogged = qlen > 0
        if self.mode == "weighted":
            credit[backlogged] += self.weights[backlogged]
            candidate = np.where(backlogged, credit, -np.inf)
            user = int(np.argmax(candidate))
            credit[user] -= float(self.weights[backlogged].sum())
            return user
        users = np.nonzero(backlogged)[0]
        ahead = users[users >= rr_next]
        return int(ahead[0] if ahead.size else users[0])

    # ------------------------------------------------------------------
    # the run
    # ------------------------------------------------------------------
    def run(self) -> ServiceReport:
        """Serve every offered frame; return the aggregate service report."""
        started = time.perf_counter()

        users: Dict[int, UserStats] = {
            user: UserStats(user=user) for user in range(self.n_users)
        }
        arrivals: List[tuple] = []
        for user in range(self.n_users):
            seed = np.random.SeedSequence([self.base_seed, _ARRIVAL_TAG, user])
            times = arrival_times(
                self._traffic_for(user),
                self.frames_per_user,
                rng=np.random.default_rng(seed),
            )
            users[user].frames_offered = int(times.size)
            for frame_index, instant in enumerate(times):
                heapq.heappush(arrivals, (float(instant), user, frame_index))

        queues: List[deque] = [deque() for _ in range(self.n_users)]
        qlen = np.zeros(self.n_users, dtype=np.int64)
        credit = np.zeros(self.n_users, dtype=np.float64)
        rr_next = 0
        in_flight: deque = deque()
        air_s = 0.0      # simulated clock
        busy_s = 0.0     # air-interface occupancy
        stream_cursor = 0
        served = 0
        spurious = 0
        delivered = 0
        lost = 0
        bits_delivered = 0
        half_frame = self.frame_length // 2

        def settle(decoded: Sequence[DecodedFrame]) -> None:
            """Match decoded windows back to the frames that went on air."""
            nonlocal spurious, delivered, lost, bits_delivered
            for frame in decoded:
                start = frame.window.start
                # Served frames whose window is now behind the stream were
                # never detected: the sync miss loses them.
                while in_flight and in_flight[0].expected_start < start - half_frame:
                    missed = in_flight.popleft()
                    users[missed.user].frames_lost += 1
                    lost += 1
                if in_flight and abs(start - in_flight[0].expected_start) <= half_frame:
                    entry = in_flight.popleft()
                    stats = users[entry.user]
                    if frame.ok:
                        stats.latency_samples.append(entry.done_s - entry.arrival_s)
                        references = entry.reference_bits
                        decoded_bits = frame.decoded_bits()
                        errors = sum(
                            int(np.count_nonzero(ref != bits))
                            for ref, bits in zip(references, decoded_bits)
                        )
                        stats.bit_errors += errors
                        if errors == 0:
                            total = sum(ref.size for ref in references)
                            stats.frames_delivered += 1
                            stats.bits_delivered += total
                            bits_delivered += total
                            delivered += 1
                        else:
                            stats.frames_lost += 1
                            lost += 1
                    else:
                        stats.frames_lost += 1
                        lost += 1
                else:
                    # A detection that matches nothing on air.
                    spurious += 1

        total_frames = self.n_users * self.frames_per_user
        while served < total_frames:
            while arrivals and arrivals[0][0] <= air_s:
                instant, user, frame_index = heapq.heappop(arrivals)
                queues[user].append((instant, frame_index))
                qlen[user] += 1
            if not qlen.any():
                # Idle air: jump to the next arrival (no samples generated).
                air_s = arrivals[0][0]
                continue
            user = self._pick_user(qlen, credit, rr_next)
            rr_next = (user + 1) % self.n_users
            arrival_s, frame_index = queues[user].popleft()
            qlen[user] -= 1

            payload_seed, fading_seed, noise_seed = stream_frame_seed(
                self.base_seed, user, frame_index
            ).spawn(3)
            burst = self.transmitter.transmit_random(
                self.n_info_bits, rng=np.random.default_rng(payload_seed)
            )
            channel = MimoChannel(
                fading=build_fading_model(
                    self.channel,
                    self.config.n_antennas,
                    np.random.default_rng(fading_seed),
                ),
                snr_db=self.snr_db,
                cfo_normalized=self.impairment.cfo_normalized,
                sample_delay=self.impairment.sample_delay,
                iq_amplitude_db=self.impairment.iq_amplitude_db,
                iq_phase_deg=self.impairment.iq_phase_deg,
                tx_quantization=self.impairment.tx_format,
                rng=np.random.default_rng(noise_seed),
            )
            received = channel.transmit(burst.samples).samples
            duration_s = received.shape[1] / self.sample_rate_hz
            done_s = air_s + duration_s
            in_flight.append(
                _InFlight(
                    user=user,
                    frame_index=frame_index,
                    arrival_s=float(arrival_s),
                    done_s=done_s,
                    expected_start=stream_cursor + self.impairment.sample_delay,
                    reference_bits=burst.info_bits,
                )
            )
            users[user].frames_served += 1
            served += 1
            stream_cursor += received.shape[1]
            air_s = done_s
            busy_s += duration_s
            settle(self.pipeline.push(received))

        settle(self.pipeline.flush())
        while in_flight:
            missed = in_flight.popleft()
            users[missed.user].frames_lost += 1
            lost += 1

        wall_s = time.perf_counter() - started
        all_latencies: List[float] = []
        for stats in users.values():
            all_latencies.extend(stats.latency_samples)
        return ServiceReport(
            n_users=self.n_users,
            frames_offered=sum(s.frames_offered for s in users.values()),
            frames_served=served,
            frames_delivered=delivered,
            frames_lost=lost,
            spurious_detections=spurious,
            air_time_s=busy_s,
            wall_time_s=wall_s,
            sustained_fps=served / wall_s if wall_s > 0 else 0.0,
            goodput_bps=bits_delivered / busy_s if busy_s > 0 else 0.0,
            loss_rate=lost / served if served else 0.0,
            latency=LatencySummary.from_samples(all_latencies),
            users=users,
        )

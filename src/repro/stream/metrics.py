"""Latency and throughput instrumentation for the streaming service.

The streaming pipeline's first-class outputs are *service* metrics, not
BER waterfalls: per-user enqueue→decode latency percentiles, sustained
frames per second, goodput and loss rate.  Everything here is a plain
dataclass so examples and benchmarks can assert on fields directly and
print them without touching the scheduler internals.

Latency is measured in *simulated* time (the air interface's sample
clock): a frame's latency is the time from its arrival in the user's
queue to the moment its last sample leaves the air — queueing delay plus
transmission time.  Sustained frames/sec is the *wall-clock* rate the
pipeline processed frames at, which is the "how fast does this software
receiver actually run" number.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np


@dataclass(frozen=True)
class LatencySummary:
    """Percentile summary of a latency sample set (seconds).

    Attributes
    ----------
    n:
        Number of latency samples summarised.
    p50 / p95 / p99:
        Linear-interpolation percentiles of the samples.
    mean / worst:
        Mean and maximum latency.
    """

    n: int
    p50: float
    p95: float
    p99: float
    mean: float
    worst: float

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "LatencySummary":
        """Summarise a sequence of latency samples (empty → all zeros)."""
        values = np.asarray(list(samples), dtype=np.float64)
        if values.size == 0:
            return cls(n=0, p50=0.0, p95=0.0, p99=0.0, mean=0.0, worst=0.0)
        p50, p95, p99 = np.percentile(values, [50.0, 95.0, 99.0])
        return cls(
            n=int(values.size),
            p50=float(p50),
            p95=float(p95),
            p99=float(p99),
            mean=float(values.mean()),
            worst=float(values.max()),
        )


@dataclass
class UserStats:
    """Per-user delivery record accumulated by the scheduler.

    ``latency_samples`` holds the enqueue→decode latency of every frame
    that was served *and* decoded for this user; :meth:`latency` summarises
    them on demand.
    """

    user: int
    frames_offered: int = 0
    frames_served: int = 0
    frames_delivered: int = 0
    frames_lost: int = 0
    bits_delivered: int = 0
    bit_errors: int = 0
    latency_samples: List[float] = field(default_factory=list)

    def latency(self) -> LatencySummary:
        """Latency percentile summary of this user's decoded frames."""
        return LatencySummary.from_samples(self.latency_samples)


@dataclass
class ServiceReport:
    """Aggregate outcome of one scheduler run.

    Attributes
    ----------
    n_users:
        Number of user streams multiplexed.
    frames_offered / frames_served / frames_delivered / frames_lost:
        Frames that arrived in queues, went on air, decoded error-free,
        and were lost (sync miss, decode give-up or residual bit errors).
    spurious_detections:
        Detected frame windows that matched no served frame.
    air_time_s:
        Total simulated air-interface occupancy.
    wall_time_s:
        Wall-clock time the run took (the software pipeline's cost).
    sustained_fps:
        ``frames_served / wall_time_s`` — the pipeline's processing rate.
    goodput_bps:
        Error-free delivered information bits per simulated air second.
    loss_rate:
        ``frames_lost / frames_served`` (0 when nothing was served).
    latency:
        Aggregate enqueue→decode latency summary across all users.
    users:
        Per-user delivery records, indexed by user id.
    """

    n_users: int
    frames_offered: int
    frames_served: int
    frames_delivered: int
    frames_lost: int
    spurious_detections: int
    air_time_s: float
    wall_time_s: float
    sustained_fps: float
    goodput_bps: float
    loss_rate: float
    latency: LatencySummary
    users: Dict[int, UserStats] = field(default_factory=dict)

    def user_latency_percentiles(self, quantile: float = 99.0) -> LatencySummary:
        """Distribution of a per-user latency percentile across users.

        Answers "what does the p99 latency of a *typical user* look like":
        each user with at least one decoded frame contributes its own
        ``quantile`` latency, and the returned summary describes how those
        per-user values are distributed across the population.
        """
        per_user = [
            float(np.percentile(np.asarray(stats.latency_samples), quantile))
            for stats in self.users.values()
            if stats.latency_samples
        ]
        return LatencySummary.from_samples(per_user)

"""Burst-level simulation backbone shared by the runner and ``simulate_link``.

This module turns a :class:`~repro.sim.spec.SweepPoint` into actual link
simulations: it builds the :class:`~repro.core.config.TransceiverConfig` and
channel model a grid cell describes, runs batches of bursts with
deterministic per-batch seed streams, and aggregates BER/PER counts with
optional early stopping.  :func:`simulate_batch` is the unit of work the
:class:`~repro.sim.runner.SweepRunner` fans out over its worker pool — it is
a module-level function taking one picklable payload so it crosses process
boundaries untouched.

Seeding contract: every burst derives its RNG streams from
``SeedSequence([content_hash(point.seed_payload(spec)), burst_index])``, so
results are bit-identical whether batches run serially, in any order, or on
any number of workers — and identical for the same physical cell across
*different* grids, which is what lets the per-point result store share
records between overlapping sweeps.
"""

from __future__ import annotations

import time
from functools import lru_cache
from typing import Callable, Dict, Optional

import numpy as np

from repro.channel.fading import FlatRayleighChannel, FrequencySelectiveChannel
from repro.channel.model import IdealChannel, MimoChannel
from repro.core.config import TransceiverConfig
from repro.core.transceiver import MimoTransceiver
from repro.dsp.backend import default_backend
from repro.exceptions import DecodingError
from repro.sim.spec import CHANNEL_MODELS, ImpairmentSpec, SweepPoint, SweepSpec
from repro.utils.rng import SeedLike, make_rng

#: Entropy tag appended to ``base_seed`` for the shared fading realisation
#: used when ``fresh_fading_per_burst`` is off; keeps that stream disjoint
#: from every per-(point, batch) stream (which append the point index).
_FIXED_FADING_TAG = 0x0FAD


def build_config(point: SweepPoint, spec: SweepSpec) -> TransceiverConfig:
    """Transceiver configuration for one grid cell.

    The cell's front-end condition shapes the receiver: a CFO axis enables
    the preamble-based estimator/corrector, and the RX quantisation formats
    become the receiver's sample/multiplier word lengths.
    """
    impairment = point.impairment or ImpairmentSpec()
    return TransceiverConfig(
        n_antennas=point.n_streams,
        fft_size=spec.fft_size,
        modulation=point.modulation,
        code_rate=point.code_rate,
        soft_decision=spec.soft_decision,
        detector=point.detector,
        correct_cfo=impairment.cfo_normalized != 0.0,
        rx_sample_format=impairment.rx_format,
        rx_multiplier_format=impairment.rx_multiplier_format,
    )


def build_fading_model(channel: str, n_streams: int, rng: SeedLike):
    """Fading model instance by name (fresh realisation per call).

    The name-keyed core of :func:`build_fading`, shared with callers that
    have no :class:`SweepPoint` — the streaming scheduler builds per-frame
    realisations from a channel name and antenna count directly.
    """
    n = n_streams
    if channel == "ideal":
        return IdealChannel(n, n)
    if channel == "flat_rayleigh":
        return FlatRayleighChannel(n, n, rng=rng)
    if channel == "frequency_selective":
        return FrequencySelectiveChannel(n, n, rng=rng)
    raise ValueError(f"unknown channel model {channel!r}")


def build_fading(point: SweepPoint, rng: SeedLike):
    """Fading model instance for one grid cell (fresh realisation per call)."""
    return build_fading_model(point.channel, point.n_streams, rng)


def fixed_fading_seed(spec: SweepSpec, point: SweepPoint) -> np.random.SeedSequence:
    """Seed of the fading realisation shared across the whole sweep.

    Deliberately independent of the SNR, modulation, code rate and detector
    axes so a waterfall compares operating points over the *same* channel
    draw; only the antenna count and channel kind (which change the
    realisation's shape/statistics) participate.
    """
    return np.random.SeedSequence(
        [
            spec.base_seed,
            _FIXED_FADING_TAG,
            point.n_streams,
            CHANNEL_MODELS.index(point.channel),
        ]
    )


@lru_cache(maxsize=8)
def _transceiver_for(config: TransceiverConfig, backend_name: str) -> MimoTransceiver:
    """Reusable transceiver per (configuration, DSP backend).

    Building a :class:`MimoTransceiver` constructs the full trellis,
    constellation tables and preamble; reusing it across bursts and batches
    (the channel is swapped per burst instead) keeps the hot loop hot.  The
    backend name participates in the cache key so a process that switches
    ``REPRO_DSP_BACKEND`` mid-run can never be served a transceiver built
    for another backend's arithmetic.
    """
    n = config.n_antennas
    return MimoTransceiver(
        config=config,
        channel=MimoChannel(IdealChannel(n, n)),
        backend=backend_name,
    )


def simulate_point(
    transceiver: MimoTransceiver,
    n_info_bits: int,
    n_bursts: int,
    rng: SeedLike = None,
    known_timing: bool = False,
    target_errors: Optional[int] = None,
    channel_factory: Optional[Callable[[int], MimoChannel]] = None,
) -> Dict[str, object]:
    """Run up to ``n_bursts`` bursts and aggregate BER/PER statistics.

    This is the serial backbone behind
    :func:`repro.core.transceiver.simulate_link`: one RNG stream threaded
    through all bursts, reproducing the classic fixed-channel loop
    bit-for-bit when ``channel_factory`` and ``target_errors`` are left
    unset.  The sweep engine's :func:`simulate_batch` runs the same
    physics but differs deliberately in two ways: it seeds each burst
    independently (so batching never changes results) and it tolerates
    receiver give-ups, counting a :class:`~repro.exceptions.DecodingError`
    burst as a fully errored frame, whereas this function — like
    ``run_burst`` — lets the exception propagate.

    Parameters
    ----------
    transceiver:
        The transmit/receive chain; its current channel is used unless
        ``channel_factory`` overrides it per burst.
    channel_factory:
        Called with the burst index to produce that burst's channel
        (fresh-fading Monte-Carlo mode).
    target_errors:
        Stop simulating once this many bit errors have accumulated — the
        BER estimate's accuracy is governed by the error *count*, so
        error-rich points settle after a handful of bursts.
    """
    if n_bursts <= 0:
        raise ValueError("n_bursts must be positive")
    generator = make_rng(rng)
    bit_errors = 0
    total_bits = 0
    frame_errors = 0
    bursts_run = 0
    early_stopped = False
    for index in range(n_bursts):
        if channel_factory is not None:
            transceiver.set_channel(channel_factory(index))
        result = transceiver.run_burst(
            n_info_bits, rng=generator, known_timing=known_timing
        )
        bit_errors += result.bit_errors
        total_bits += result.total_bits
        frame_errors += int(result.frame_error)
        bursts_run += 1
        if target_errors is not None and bit_errors >= target_errors:
            early_stopped = bursts_run < n_bursts
            break
    return {
        "bit_error_rate": bit_errors / total_bits if total_bits else 0.0,
        "packet_error_rate": frame_errors / bursts_run if bursts_run else 0.0,
        "total_bits": total_bits,
        "bit_errors": bit_errors,
        "frame_errors": frame_errors,
        "n_bursts": bursts_run,
        "early_stopped": early_stopped,
    }


def burst_seed(spec: SweepSpec, point: SweepPoint, burst_index: int) -> np.random.SeedSequence:
    """Deterministic seed of one (point, burst) cell of the seed tree.

    Seeding at burst granularity — not per batch or per worker — makes the
    simulated physics a pure function of the spec: re-batching the sweep or
    changing the pool size reruns the *same* bursts.

    Since engine version 4 the point's entropy comes from the content hash
    of its physics identity (:meth:`SweepPoint.seed_payload`) rather than
    its grid index, so the same physical cell draws the same bursts in
    *any* grid — the property the per-point result store's cross-sweep
    sharing rests on — and a bigger burst budget extends the stream instead
    of re-rolling it.
    """
    from repro.sim.cache import content_key

    entropy = int(content_key(point.seed_payload(spec)), 16)
    return np.random.SeedSequence([entropy, int(burst_index)])


def lost_frame_counts(n_info_bits: int, n_streams: int) -> Dict[str, int]:
    """Per-burst counts for a frame the receiver could not decode at all.

    The shared loss-accounting convention: a sync miss, a lock outside the
    buffer or a rank-deficient estimate loses *every* payload bit of the
    burst.  Both the sweep engine's :func:`simulate_batch` and the
    streaming pipeline count lost frames this way, so PER/loss-rate numbers
    are comparable across the two workloads.
    """
    lost_bits = n_info_bits * n_streams
    return {
        "bit_errors": lost_bits,
        "total_bits": lost_bits,
        "frame_error": 1,
        "decode_failure": 1,
    }


#: Entropy tag for streaming per-(user, frame) seeds; disjoint from the
#: sweep's per-(point, burst) tree and the fixed-fading stream.
_STREAM_TAG = 0x57EA


def stream_frame_seed(
    base_seed: int, user: int, frame_index: int
) -> np.random.SeedSequence:
    """Deterministic seed of one (user, frame) cell of the streaming tree.

    The streaming counterpart of :func:`burst_seed`: payload, fading and
    noise generators for every user's every frame derive from this, so a
    multi-user run is bit-reproducible for any scheduling order and never
    collides with a sweep using the same base seed.
    """
    return np.random.SeedSequence([base_seed, _STREAM_TAG, user, frame_index])


def simulate_batch(task: dict) -> Dict[str, object]:
    """Simulate one batch of bursts for one grid point (pool work unit).

    ``task`` is a plain-JSON payload::

        {"spec": SweepSpec.to_dict(), "point": SweepPoint.to_dict(),
         "start_burst": int, "n_bursts": int, "batch_index": int}

    Each burst in ``[start_burst, start_burst + n_bursts)`` derives payload,
    fading and noise generators from its own :func:`burst_seed`, and the
    batch reports *per-burst* counts so the runner can fold the global
    burst sequence and apply ``target_errors`` at burst granularity — the
    reported sweep statistics are a pure function of the spec, independent
    of batching and pool size.

    The batch also applies ``target_errors`` to its own cumulative error
    count as a shortcut: the global cumulative count at any burst is at
    least the batch-local one, so every burst skipped here would have been
    discarded by the runner's burst-level fold anyway.
    """
    spec = SweepSpec.from_dict(task["spec"])
    point = SweepPoint.from_dict(task["point"])
    start_burst = int(task["start_burst"])
    n_bursts = int(task["n_bursts"])
    batch_start = time.perf_counter()

    transceiver = _transceiver_for(build_config(point, spec), default_backend().name)

    fixed_fading = None
    if not spec.fresh_fading_per_burst:
        fixed_fading = build_fading(
            point, np.random.default_rng(fixed_fading_seed(spec, point))
        )

    impairment = point.impairment or ImpairmentSpec()
    bursts = []
    local_errors = 0
    for burst_index in range(start_burst, start_burst + n_bursts):
        payload_seed, fading_seed, noise_seed = burst_seed(
            spec, point, burst_index
        ).spawn(3)
        fading = (
            fixed_fading
            if fixed_fading is not None
            else build_fading(point, np.random.default_rng(fading_seed))
        )
        transceiver.set_channel(
            MimoChannel(
                fading=fading,
                snr_db=point.snr_db,
                cfo_normalized=impairment.cfo_normalized,
                sample_delay=impairment.sample_delay,
                iq_amplitude_db=impairment.iq_amplitude_db,
                iq_phase_deg=impairment.iq_phase_deg,
                tx_quantization=impairment.tx_format,
                rng=np.random.default_rng(noise_seed),
            )
        )
        try:
            result = transceiver.run_burst(
                spec.n_info_bits,
                rng=np.random.default_rng(payload_seed),
                known_timing=spec.known_timing,
            )
            burst = {
                "bit_errors": result.bit_errors,
                "total_bits": result.total_bits,
                "frame_error": int(result.frame_error),
                "decode_failure": 0,
            }
        except DecodingError:
            # Deep in the noise the receiver gives up: the time synchroniser
            # misses the burst entirely, locks onto a window that starts
            # before the first received sample, or a rank-deficient estimate
            # leaves the MMSE weights unsolvable.  A sweep over extreme
            # operating points must survive all of those: count the burst as
            # a fully errored frame (every payload bit lost) and move on.
            burst = lost_frame_counts(spec.n_info_bits, point.n_streams)
        bursts.append(burst)
        local_errors += burst["bit_errors"]
        if spec.target_errors is not None and local_errors >= spec.target_errors:
            break
    return {
        "batch_index": int(task["batch_index"]),
        "bursts": bursts,
        "elapsed_s": time.perf_counter() - batch_start,
    }

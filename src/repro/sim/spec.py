"""Typed sweep descriptions and results for the batched simulation engine.

A :class:`SweepSpec` declares a grid of link-simulation operating points —
the Cartesian product of SNR, modulation, code rate, stream count, channel
model, detector and front-end impairment axes — together with the per-point
burst budget, the early-stopping error target and the base seed.
:meth:`SweepSpec.points` expands the grid into :class:`SweepPoint` cells;
the :class:`~repro.sim.runner.SweepRunner` simulates each cell into a
:class:`SweepPointResult` and aggregates them into a :class:`SweepResult`.

:class:`ImpairmentSpec` describes one front-end condition — carrier
frequency offset, sample-timing delay, IQ imbalance and fixed-point
quantisation — so the paper's "survives real front-end conditions" claims
(BER vs CFO, BER vs word length) are sweepable exactly like SNR or
modulation; ``None`` on the axis is the ideal front end.

Everything here is a plain frozen dataclass with loss-free ``to_dict`` /
``from_dict`` round-trips, which is what makes the JSON result cache
(:mod:`repro.sim.cache`) and the multiprocessing workers possible: a spec is
hashed from its canonical JSON form, and a cached result is rebuilt without
re-running a single burst.
"""

from __future__ import annotations

import itertools
from dataclasses import asdict, dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.dsp.fixedpoint import (
    FixedPointFormat,
    MULTIPLIER_FORMAT_18BIT,
    SAMPLE_FORMAT_16BIT,
)

#: Bumped whenever the engine's statistics change meaning, so stale cache
#: entries from an older engine can never be mistaken for fresh results.
#: Version 2: front-end impairment axes (the expansion order of the grid
#: gained an axis, so every point's RNG stream moved).
#: Version 3: SNR calibrated against occupied-sample signal power (delay
#: padding and idle tails no longer dilute it), the receive-mixer IQ
#: imbalance moved after noise injection, and receivers use the exact
#: injected noise variance instead of re-measuring the noisy output.
#: Version 4: burst RNG streams are keyed by the point's *content*
#: (:meth:`SweepPoint.seed_payload`) instead of its grid index, so the same
#: physical cell simulates identically in any grid — the property that lets
#: overlapping sweeps share per-point records in the result store.
ENGINE_VERSION = 4

#: Channel models the engine knows how to build (see ``repro.sim.engine``).
CHANNEL_MODELS = ("ideal", "flat_rayleigh", "frequency_selective")

#: Detector choices, matching ``TransceiverConfig.detector``.
DETECTORS = ("zf", "mmse")


def _as_tuple(value, caster) -> tuple:
    """Normalise a scalar, sequence or numpy-array axis into a tuple."""
    if isinstance(value, np.ndarray):
        value = value.tolist()
    if isinstance(value, (str, bytes)) or not isinstance(value, Sequence):
        return (caster(value),)
    return tuple(caster(item) for item in value)


@dataclass(frozen=True)
class ImpairmentSpec:
    """One front-end condition of the sweep's impairment axis.

    All defaults describe the ideal front end, so partial specs read
    naturally: ``ImpairmentSpec(cfo_normalized=1e-3)`` is "CFO only".

    Parameters
    ----------
    cfo_normalized:
        Carrier-frequency offset in cycles per sample (the paper's 100 MHz
        clock makes ``1e-4`` a 10 kHz offset).  A non-zero value makes the
        engine enable the receiver's preamble-based CFO estimator
        (``TransceiverConfig.correct_cfo``).
    sample_delay:
        Integer sample-timing delay of the burst; exercises the time
        synchroniser's search.
    iq_amplitude_db / iq_phase_deg:
        Receive-mixer IQ amplitude (dB) and phase (degrees) imbalance.
    tx_format:
        Optional :class:`~repro.dsp.fixedpoint.FixedPointFormat` quantising
        the transmit samples (the DAC word length).
    rx_format:
        Optional format quantising the received sample stream at the
        receiver input (``TransceiverConfig.rx_sample_format`` — the
        paper's 16-bit I/Q interface).
    rx_multiplier_format:
        Optional format quantising the receiver's FFT outputs
        (``TransceiverConfig.rx_multiplier_format`` — the paper's 18-bit
        embedded multipliers).
    """

    cfo_normalized: float = 0.0
    sample_delay: int = 0
    iq_amplitude_db: float = 0.0
    iq_phase_deg: float = 0.0
    tx_format: Optional[FixedPointFormat] = None
    rx_format: Optional[FixedPointFormat] = None
    rx_multiplier_format: Optional[FixedPointFormat] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "cfo_normalized", float(self.cfo_normalized))
        object.__setattr__(self, "sample_delay", int(self.sample_delay))
        object.__setattr__(self, "iq_amplitude_db", float(self.iq_amplitude_db))
        object.__setattr__(self, "iq_phase_deg", float(self.iq_phase_deg))
        if self.sample_delay < 0:
            raise ValueError("sample_delay must be non-negative")
        for name in ("tx_format", "rx_format", "rx_multiplier_format"):
            object.__setattr__(
                self, name, FixedPointFormat.coerce(getattr(self, name), name)
            )

    # ------------------------------------------------------------------
    @property
    def is_ideal(self) -> bool:
        """True when every field sits at its ideal-front-end default."""
        return self == ImpairmentSpec()

    @classmethod
    def quantized(cls, word_length: int, **changes) -> "ImpairmentSpec":
        """Symmetric TX/RX sample quantisation at ``word_length`` bits.

        Uses ``Q(word_length, word_length - 2)`` — the paper's 16-bit
        sample format shrunk bit by bit while keeping its ±2.0 full-scale
        range — which is what a BER-vs-word-length sensitivity curve wants.
        Extra keyword arguments set other impairment fields.
        """
        fmt = FixedPointFormat(word_length=word_length, frac_bits=word_length - 2)
        return cls(tx_format=fmt, rx_format=fmt, **changes)

    @classmethod
    def paper_frontend(cls, **changes) -> "ImpairmentSpec":
        """The paper's fixed-point interfaces: 16-bit samples, 18-bit multipliers."""
        return cls(
            tx_format=SAMPLE_FORMAT_16BIT,
            rx_format=SAMPLE_FORMAT_16BIT,
            rx_multiplier_format=MULTIPLIER_FORMAT_18BIT,
            **changes,
        )

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-JSON representation (nested formats become dicts)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "ImpairmentSpec":
        """Rebuild a spec from :meth:`to_dict` output (loss-free)."""
        return cls(**payload)


def _as_impairment(value) -> Optional[ImpairmentSpec]:
    """Normalise one impairment-axis entry (``None`` = ideal front end)."""
    if value is None or isinstance(value, ImpairmentSpec):
        return value
    if isinstance(value, dict):
        return ImpairmentSpec.from_dict(value)
    raise TypeError(
        f"impairments entries must be ImpairmentSpec, dict or None, got {value!r}"
    )


@dataclass(frozen=True)
class SweepSpec:
    """Declarative description of a link-level sweep.

    Grid axes (each accepts a scalar or a sequence; the grid is their
    Cartesian product):

    snr_db:
        SNR points in dB.  ``None`` entries are not allowed — use a very
        high SNR for a quasi-noiseless point.
    modulations:
        Constellations, e.g. ``("bpsk", "qpsk", "16qam", "64qam")``.
    code_rates:
        Convolutional code rates, e.g. ``("1/2", "2/3", "3/4")``.
    stream_counts:
        Antenna/stream counts of the square MIMO system (4 is the paper's).
    channels:
        Channel models: ``"ideal"``, ``"flat_rayleigh"`` or
        ``"frequency_selective"``.
    detectors:
        MIMO detectors: ``"zf"`` (paper) or ``"mmse"`` (baseline).
    impairments:
        Front-end conditions: :class:`ImpairmentSpec` instances (or their
        ``to_dict`` payloads), with ``None`` meaning the ideal front end.
        Like every other axis this participates in the Cartesian product,
        so BER-vs-CFO or BER-vs-word-length sensitivity grids are one spec.

    Per-point simulation budget:

    n_info_bits:
        Information bits per spatial stream per burst.
    n_bursts:
        Maximum bursts per grid point.
    target_errors:
        Early-stopping threshold: once a point has accumulated this many
        bit errors its BER estimate is statistically settled and no more
        bursts are simulated for it.  ``None`` disables early stopping.

    Reproducibility and physics knobs:

    base_seed:
        Root of the deterministic per-(point, batch) seed tree.  Two runs
        of the same spec produce identical results regardless of worker
        count or scheduling.
    fresh_fading_per_burst:
        When True (default) every burst sees an independent fading
        realisation (Monte-Carlo over the channel ensemble); when False one
        fading realisation — seeded only by ``base_seed`` and the antenna
        count — is shared by all bursts, all SNR points and all
        modulations, which is what a classic waterfall plot over a single
        channel draw wants.
    known_timing:
        Bypass time synchronisation and hand the receiver the true LTS
        position (isolates detection/decoding from sync errors).
    fft_size / soft_decision:
        Forwarded to :class:`~repro.core.config.TransceiverConfig`.
    """

    snr_db: Tuple[float, ...] = (20.0,)
    modulations: Tuple[str, ...] = ("16qam",)
    code_rates: Tuple[str, ...] = ("1/2",)
    stream_counts: Tuple[int, ...] = (4,)
    channels: Tuple[str, ...] = ("flat_rayleigh",)
    detectors: Tuple[str, ...] = ("zf",)
    impairments: Tuple[Optional[ImpairmentSpec], ...] = (None,)
    n_info_bits: int = 512
    n_bursts: int = 100
    target_errors: Optional[int] = 100
    base_seed: int = 0
    fresh_fading_per_burst: bool = True
    known_timing: bool = False
    fft_size: int = 64
    soft_decision: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "snr_db", _as_tuple(self.snr_db, float))
        object.__setattr__(self, "modulations", _as_tuple(self.modulations, str))
        object.__setattr__(self, "code_rates", _as_tuple(self.code_rates, str))
        object.__setattr__(self, "stream_counts", _as_tuple(self.stream_counts, int))
        object.__setattr__(self, "channels", _as_tuple(self.channels, str))
        object.__setattr__(self, "detectors", _as_tuple(self.detectors, str))
        object.__setattr__(
            self, "impairments", _as_tuple(self.impairments, _as_impairment)
        )
        for channel in self.channels:
            if channel not in CHANNEL_MODELS:
                raise ValueError(
                    f"unknown channel model {channel!r}; expected one of {CHANNEL_MODELS}"
                )
        for detector in self.detectors:
            if detector not in DETECTORS:
                raise ValueError(
                    f"unknown detector {detector!r}; expected one of {DETECTORS}"
                )
        if not self.snr_db:
            raise ValueError("the sweep needs at least one SNR point")
        if not self.impairments:
            raise ValueError(
                "the sweep needs at least one impairment entry (None = ideal)"
            )
        if self.n_info_bits <= 0:
            raise ValueError("n_info_bits must be positive")
        if self.n_bursts <= 0:
            raise ValueError("n_bursts must be positive")
        if self.target_errors is not None and self.target_errors <= 0:
            raise ValueError("target_errors must be positive or None")

    # ------------------------------------------------------------------
    @property
    def n_points(self) -> int:
        """Number of grid cells the spec expands to."""
        return (
            len(self.modulations)
            * len(self.code_rates)
            * len(self.stream_counts)
            * len(self.channels)
            * len(self.detectors)
            * len(self.impairments)
            * len(self.snr_db)
        )

    def points(self) -> List["SweepPoint"]:
        """Expand the grid into its cells (SNR varies fastest).

        Since engine version 4 the expansion order is presentation only:
        each cell's RNG streams are keyed by its *content*
        (:meth:`SweepPoint.seed_payload`), so reordering or subsetting the
        axes leaves every cell's simulated physics — and its result-store
        record — unchanged.
        """
        cells = itertools.product(
            self.modulations,
            self.code_rates,
            self.stream_counts,
            self.channels,
            self.detectors,
            self.impairments,
            self.snr_db,
        )
        return [
            SweepPoint(
                index=index,
                modulation=modulation,
                code_rate=code_rate,
                n_streams=n_streams,
                channel=channel,
                detector=detector,
                snr_db=snr,
                impairment=impairment,
            )
            for index, (
                modulation,
                code_rate,
                n_streams,
                channel,
                detector,
                impairment,
                snr,
            ) in enumerate(cells)
        ]

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-JSON representation (tuples become lists)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "SweepSpec":
        """Rebuild a spec from :meth:`to_dict` output."""
        return cls(**payload)

    def spec_hash(self) -> str:
        """Stable content hash of the spec (cache key).

        Any field change — including the engine version — yields a new
        hash, so cached results can never leak across different sweeps.
        The active DSP backend participates too: a sweep run under the
        single-precision backend must never be served results simulated in
        double precision, or vice versa.  (Runner knobs like batch size and
        worker count are deliberately absent: they do not affect the
        reported statistics.)
        """
        from repro.dsp.backend import default_backend
        from repro.sim.cache import content_key

        return content_key(
            {
                "engine_version": ENGINE_VERSION,
                "dsp_backend": default_backend().name,
                **self.to_dict(),
            }
        )

    def subset(self, **changes) -> "SweepSpec":
        """A copy of the spec with some fields replaced."""
        return replace(self, **changes)


@dataclass(frozen=True)
class SweepPoint:
    """One cell of the sweep grid (``impairment=None`` = ideal front end)."""

    index: int
    modulation: str
    code_rate: str
    n_streams: int
    channel: str
    detector: str
    snr_db: float
    impairment: Optional[ImpairmentSpec] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "impairment", _as_impairment(self.impairment))

    def to_dict(self) -> dict:
        """Plain-JSON representation."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "SweepPoint":
        """Rebuild a point from :meth:`to_dict` output.

        ``__post_init__`` turns a serialised impairment dict back into an
        :class:`ImpairmentSpec`, so cached results filter and compare
        exactly like freshly simulated ones.
        """
        return cls(**payload)

    # ------------------------------------------------------------------
    def seed_payload(self, spec: "SweepSpec") -> dict:
        """The cell's *physics identity* — everything that shapes its RNG draws.

        This payload seeds the point's burst streams
        (:func:`repro.sim.engine.burst_seed`), so it contains exactly the
        fields that change what payload, fading and noise get drawn — and
        nothing else.  Deliberately absent:

        * the grid ``index`` and the axis order — the same physical cell
          must simulate identically in any grid, or overlapping sweeps
          could not share per-point results;
        * budget knobs (``n_bursts``, ``target_errors``) — a bigger budget
          extends the same burst stream instead of re-rolling it, which is
          what lets adaptive refinement append bursts to a stored point;
        * ``detector`` and ``soft_decision`` — they change how the receiver
          *processes* a burst, not which random burst is drawn, so ZF and
          MMSE (or hard and soft decoding) are compared over identical
          noise realisations.
        """
        return {
            "base_seed": spec.base_seed,
            "modulation": self.modulation,
            "code_rate": self.code_rate,
            "n_streams": self.n_streams,
            "channel": self.channel,
            "snr_db": self.snr_db,
            "impairment": self.impairment.to_dict() if self.impairment else None,
            "n_info_bits": spec.n_info_bits,
            "fresh_fading_per_burst": spec.fresh_fading_per_burst,
            "known_timing": spec.known_timing,
            "fft_size": spec.fft_size,
        }

    def content_key(self, spec: "SweepSpec", extra_bursts: int = 0) -> str:
        """Stable store key of the cell's result record.

        Extends :meth:`seed_payload` with everything else that determines
        the *reported statistics*: the receiver-side knobs (``detector``,
        ``soft_decision``), the budget contract (``n_bursts``,
        ``target_errors``), the engine version and the active DSP backend.
        Two grids hashing a cell to the same key are guaranteed the same
        folded counts, so the record is shared; ``extra_bursts`` keys the
        refined records adaptive mode appends on top of the base budget.
        """
        from repro.dsp.backend import default_backend
        from repro.sim.cache import content_key as _content_key

        payload = {
            "record": "sweep-point",
            "engine_version": ENGINE_VERSION,
            "dsp_backend": default_backend().name,
            **self.seed_payload(spec),
            "detector": self.detector,
            "soft_decision": spec.soft_decision,
            "n_bursts": spec.n_bursts,
            "target_errors": spec.target_errors,
            "extra_bursts": int(extra_bursts),
        }
        return _content_key(payload, prefix="pt-")


@dataclass(frozen=True)
class SweepPointResult:
    """Aggregate link statistics of one simulated grid point.

    ``decode_failures`` counts bursts the receiver gave up on entirely
    (time-sync miss deep in the noise); each is folded into the BER/PER
    statistics as a fully errored frame.
    """

    point: SweepPoint
    bit_errors: int
    total_bits: int
    frame_errors: int
    n_bursts: int
    early_stopped: bool
    decode_failures: int = 0

    @property
    def bit_error_rate(self) -> float:
        """Monte-Carlo BER estimate of the point."""
        return self.bit_errors / self.total_bits if self.total_bits else 0.0

    @property
    def packet_error_rate(self) -> float:
        """Fraction of simulated bursts with at least one bit error."""
        return self.frame_errors / self.n_bursts if self.n_bursts else 0.0

    def ber_interval(
        self, confidence: float = 0.95, method: str = "wilson"
    ) -> Tuple[float, float]:
        """Confidence interval on the point's BER (see :mod:`repro.sim.stats`).

        ``method`` is ``"wilson"`` (default) or ``"clopper-pearson"``.
        Adaptive refinement allocates extra bursts where this interval is
        widest.
        """
        from repro.sim.stats import ber_interval

        return ber_interval(self.bit_errors, self.total_bits, confidence, method)

    def ber_interval_width(
        self, confidence: float = 0.95, method: str = "wilson"
    ) -> float:
        """Width of :meth:`ber_interval` — the refinement mode's priority."""
        low, high = self.ber_interval(confidence, method)
        return high - low

    def to_dict(self) -> dict:
        """Plain-JSON representation."""
        payload = asdict(self)
        payload["point"] = self.point.to_dict()
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "SweepPointResult":
        """Rebuild a point result from :meth:`to_dict` output."""
        data = dict(payload)
        data["point"] = SweepPoint.from_dict(data["point"])
        return cls(**data)


@dataclass
class SweepResult:
    """Outcome of a whole sweep, cache-round-trippable.

    Attributes
    ----------
    spec:
        The spec that produced the result.
    points:
        One :class:`SweepPointResult` per grid cell, in grid order.
    elapsed_s:
        Wall-clock time of *this* call — near zero when every point was
        served from the result store.
    from_cache:
        True when every point was served from the result store without
        simulating a burst.
    n_bursts_simulated:
        Bursts actually simulated by *this* call — 0 on a cache hit, and
        potentially far below ``spec.n_bursts * n_points`` when early
        stopping kicks in.
    """

    spec: SweepSpec
    points: List[SweepPointResult] = field(default_factory=list)
    elapsed_s: float = 0.0
    from_cache: bool = False
    n_bursts_simulated: int = 0

    # ------------------------------------------------------------------
    def _curve(self, metric: str, filters: dict) -> Dict[float, float]:
        """A per-SNR curve of one :class:`SweepPointResult` metric."""
        curve: Dict[float, float] = {}
        for result in self.filter(**filters):
            snr = result.point.snr_db
            if snr in curve:
                raise ValueError(
                    f"{metric} curve filters leave more than one point per "
                    "SNR; add more filters"
                )
            curve[snr] = getattr(result, metric)
        return dict(sorted(curve.items()))

    def ber_curve(self, **filters) -> Dict[float, float]:
        """BER keyed by SNR for the points matching ``filters``.

        ``filters`` compare against :class:`SweepPoint` fields, e.g.
        ``result.ber_curve(modulation="16qam", detector="zf")``.  Raises if
        the filter leaves more than one point per SNR (an ambiguous curve).
        """
        return self._curve("bit_error_rate", filters)

    def per_curve(self, **filters) -> Dict[float, float]:
        """Packet-error rate keyed by SNR for the points matching ``filters``."""
        return self._curve("packet_error_rate", filters)

    def filter(self, **filters) -> List[SweepPointResult]:
        """Point results whose grid cell matches every filter field.

        Filters compare against :class:`SweepPoint` attributes by value, so
        ``impairment=ImpairmentSpec(...)`` (or ``impairment=None`` for the
        ideal front end) works like any string or numeric axis.
        """
        matched = []
        for result in self.points:
            point = result.point
            if all(
                getattr(point, key) == value for key, value in filters.items()
            ):
                matched.append(result)
        return matched

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-JSON representation."""
        return {
            "engine_version": ENGINE_VERSION,
            "spec": self.spec.to_dict(),
            "spec_hash": self.spec.spec_hash(),
            "points": [point.to_dict() for point in self.points],
            "elapsed_s": self.elapsed_s,
        }

    @classmethod
    def from_dict(cls, payload: dict, from_cache: bool = False) -> "SweepResult":
        """Rebuild a result from :meth:`to_dict` output."""
        return cls(
            spec=SweepSpec.from_dict(payload["spec"]),
            points=[SweepPointResult.from_dict(p) for p in payload["points"]],
            elapsed_s=float(payload.get("elapsed_s", 0.0)),
            from_cache=from_cache,
            n_bursts_simulated=0 if from_cache else sum(
                p["n_bursts"] for p in payload["points"]
            ),
        )

"""JSON result cache keyed by content hashes.

Sweep results (and any other JSON-serialisable experiment payload, e.g. the
ergodic-capacity curves in :mod:`repro.analysis.capacity`) are stored one
file per key under a cache directory.  A repeated sweep whose
:class:`~repro.sim.spec.SweepSpec` hashes to an existing entry is served
from disk without simulating a single burst.

The default directory is ``~/.cache/repro-sim`` and can be overridden with
the ``REPRO_SIM_CACHE_DIR`` environment variable or per-instance.  Corrupt
or unreadable entries are treated as misses, never as errors.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Optional, Union

_ENV_VAR = "REPRO_SIM_CACHE_DIR"


def content_key(payload: dict, prefix: str = "") -> str:
    """Content hash of a JSON-serialisable payload, usable as a cache key.

    The single canonicalisation recipe (sorted keys, compact separators,
    SHA-256, 20 hex chars) shared by every cache user —
    :meth:`repro.sim.spec.SweepSpec.spec_hash`, the capacity curves, and
    whatever future experiment wants memoisation — so keying behaviour can
    never drift between them.
    """
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return prefix + hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:20]


def default_cache_dir() -> Path:
    """Resolve the cache directory from the environment or the home dir."""
    override = os.environ.get(_ENV_VAR)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro-sim"


class JsonCache:
    """Tiny content-addressed JSON store (one file per key)."""

    def __init__(self, directory: Union[None, str, Path] = None) -> None:
        self.directory = Path(directory) if directory is not None else default_cache_dir()

    def path_for(self, key: str) -> Path:
        """File backing ``key``."""
        return self.directory / f"{key}.json"

    def get(self, key: str) -> Optional[dict]:
        """Stored payload for ``key``, or ``None`` on miss/corruption."""
        path = self.path_for(key)
        try:
            with path.open("r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            return None
        # Every put() stores a dict; any other valid-JSON content (a bare
        # list, string, number...) is a truncated or foreign file wearing
        # the key's name — corruption, so a miss, not a crash downstream.
        if not isinstance(payload, dict):
            return None
        return payload

    def put(self, key: str, payload: dict) -> Path:
        """Store ``payload`` under ``key`` atomically; returns the file path.

        Delegates to :func:`repro.sim.store.commit_json_file`, whose
        temp-write + ``fsync`` + ``os.replace`` recipe guarantees a crash at
        any instant leaves either the previous entry or the complete new
        one — never a torn file that :meth:`get` would misread.  (The
        import is deferred: :mod:`repro.sim.store` imports this module for
        the cache-directory resolution.)
        """
        from repro.sim.store import commit_json_file

        return commit_json_file(self.path_for(key), payload)

    def clear(self) -> int:
        """Delete every entry and stale temp file; returns the number removed.

        An interrupted :meth:`put` (process killed between ``mkstemp`` and
        ``os.replace``) leaves a ``.<key>.<random>.tmp`` file behind; those
        are part of the store and must not survive a clear.
        """
        removed = 0
        if not self.directory.is_dir():
            return removed
        for pattern in ("*.json", ".*.tmp"):
            for path in self.directory.glob(pattern):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

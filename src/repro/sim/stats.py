"""Binomial confidence intervals and the adaptive burst allocator.

A Monte-Carlo BER estimate is a binomial proportion: ``k`` bit errors in
``n`` observed bits.  The sweep engine's adaptive refinement mode needs a
confidence interval on that proportion to decide *where* additional bursts
buy the most statistical precision, and two standard intervals are offered:

* :func:`wilson_interval` — the Wilson score interval, the default.  It is
  closed-form, never degenerates at ``k = 0`` or ``k = n`` (unlike the
  naive Wald interval, whose width collapses to zero exactly where a BER
  sweep needs it most — clean high-SNR points), and its coverage is close
  to nominal even for small ``n``.
* :func:`clopper_pearson_interval` — the exact (conservative) interval from
  Beta-distribution quantiles; guaranteed coverage at the cost of extra
  width.  Requires ``scipy``; the caller gets a clear error when it is
  missing rather than a silent fallback.

Both treat observed bits as independent Bernoulli trials.  Decoded bit
errors are in truth burst-correlated (a frame error flips many bits at
once), so the interval understates the true uncertainty by the within-burst
correlation factor — fine for *allocating* bursts between points, where
only relative widths matter; quote per-burst (PER) intervals when absolute
coverage matters.

:func:`allocate_bursts` turns the widths into a greedy water-filling
allocation: each burst of the budget goes to the point whose *predicted*
interval is currently widest, with the prediction shrinking as
``sqrt(n / (n + added))`` — the large-sample scaling of every binomial
interval.  The allocator is deterministic (ties break on the lowest point
index), which is what lets a re-run of an adaptive sweep replay the same
allocation and be served entirely from the result store.
"""

from __future__ import annotations

import math
from typing import Dict, Literal, Tuple

#: Interval methods the dispatching :func:`ber_interval` understands.
INTERVAL_METHODS = ("wilson", "clopper-pearson")

#: The binomial confidence-interval methods ``ber_interval`` accepts.
IntervalMethod = Literal["wilson", "clopper-pearson"]


def _normal_quantile(p: float) -> float:
    """Inverse standard-normal CDF (Acklam's rational approximation).

    Accurate to ~1e-9 over (0, 1) — far below the Monte-Carlo noise these
    intervals summarise — and keeps the default Wilson path dependency-free.
    """
    if not 0.0 < p < 1.0:
        raise ValueError("quantile argument must lie strictly inside (0, 1)")
    a = (-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
         1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00)
    b = (-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
         6.680131188771972e+01, -1.328068155288572e+01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
         -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00)
    d = (7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
         3.754408661907416e+00)
    p_low = 0.02425
    if p < p_low:
        q = math.sqrt(-2.0 * math.log(p))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0
        )
    if p <= 1.0 - p_low:
        q = p - 0.5
        r = q * q
        return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q / (
            ((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0
        )
    q = math.sqrt(-2.0 * math.log(1.0 - p))
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
        (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0
    )


def wilson_interval(
    errors: int, trials: int, confidence: float = 0.95
) -> Tuple[float, float]:
    """Wilson score interval for ``errors`` successes in ``trials`` trials.

    Returns ``(0.0, 1.0)`` for zero trials (no information).  The interval
    is never empty: at ``errors = 0`` the upper bound stays positive
    (roughly ``z**2 / n``), correctly reporting that "no errors observed"
    does not mean "error rate is zero".
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must lie strictly inside (0, 1)")
    if trials < 0 or errors < 0 or errors > trials:
        raise ValueError("need 0 <= errors <= trials")
    if trials == 0:
        return (0.0, 1.0)
    z = _normal_quantile(0.5 + confidence / 2.0)
    n = float(trials)
    p = errors / n
    denominator = 1.0 + z * z / n
    centre = (p + z * z / (2.0 * n)) / denominator
    half = (
        z * math.sqrt(p * (1.0 - p) / n + z * z / (4.0 * n * n)) / denominator
    )
    return (max(0.0, centre - half), min(1.0, centre + half))


def clopper_pearson_interval(
    errors: int, trials: int, confidence: float = 0.95
) -> Tuple[float, float]:
    """Exact Clopper–Pearson interval from Beta quantiles (needs scipy).

    ``lower = BetaInv(alpha/2; k, n-k+1)`` and
    ``upper = BetaInv(1-alpha/2; k+1, n-k)`` with the conventional closures
    ``lower = 0`` at ``k = 0`` and ``upper = 1`` at ``k = n``.
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must lie strictly inside (0, 1)")
    if trials < 0 or errors < 0 or errors > trials:
        raise ValueError("need 0 <= errors <= trials")
    if trials == 0:
        return (0.0, 1.0)
    try:
        from scipy.stats import beta
    except ImportError as error:  # pragma: no cover - scipy is in the image
        raise ImportError(
            "clopper_pearson_interval requires scipy; use method='wilson'"
        ) from error
    alpha = 1.0 - confidence
    lower = 0.0 if errors == 0 else float(beta.ppf(alpha / 2.0, errors, trials - errors + 1))
    upper = (
        1.0
        if errors == trials
        else float(beta.ppf(1.0 - alpha / 2.0, errors + 1, trials - errors))
    )
    return (lower, upper)


def ber_interval(
    errors: int,
    trials: int,
    confidence: float = 0.95,
    method: IntervalMethod = "wilson",
) -> Tuple[float, float]:
    """Dispatch to the named interval method (``INTERVAL_METHODS``)."""
    if method == "wilson":
        return wilson_interval(errors, trials, confidence)
    if method == "clopper-pearson":
        return clopper_pearson_interval(errors, trials, confidence)
    raise ValueError(
        f"unknown interval method {method!r}; expected one of {INTERVAL_METHODS}"
    )


def allocate_bursts(
    widths: Dict[int, float],
    observations: Dict[int, int],
    per_burst: Dict[int, int],
    budget: int,
) -> Dict[int, int]:
    """Split a burst budget across points, widest predicted interval first.

    Parameters
    ----------
    widths:
        Current confidence-interval width per point id.
    observations:
        Observed trials (bits) per point id backing each width.
    per_burst:
        Trials one additional burst contributes per point id.
    budget:
        Bursts to hand out.

    Greedy water-filling: each burst goes to the point whose interval,
    after the bursts already allocated to it this round, is predicted to be
    widest (``width * sqrt(n / (n + added))``).  Points whose width is zero
    receive nothing — there is no uncertainty left to spend on.  Ties break
    on the lowest point id, so the allocation is a pure function of its
    inputs.  Returns only the non-zero entries.
    """
    if budget < 0:
        raise ValueError("budget must be non-negative")
    if set(widths) != set(observations) or set(widths) != set(per_burst):
        raise ValueError("widths, observations and per_burst must share keys")
    allocation = {index: 0 for index in widths}

    def predicted(index: int) -> float:
        n = max(observations[index], 1)
        added = allocation[index] * max(per_burst[index], 1)
        return widths[index] * math.sqrt(n / (n + added))

    order = sorted(widths)
    for _ in range(budget):
        best = max(order, key=lambda index: (predicted(index), -index))
        if predicted(best) <= 0.0:
            break
        allocation[best] += 1
    return {index: count for index, count in allocation.items() if count > 0}

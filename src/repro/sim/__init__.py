"""Batched link-simulation engine: typed sweeps, worker pools, result cache.

``repro.sim`` is the scale layer of the reproduction.  Where
:func:`repro.core.transceiver.simulate_link` runs one operating point burst
by burst, this package describes whole experiment grids declaratively and
executes them efficiently:

* :class:`~repro.sim.spec.SweepSpec` / :class:`~repro.sim.spec.SweepResult`
  — typed, JSON-round-trippable descriptions of a sweep over SNR,
  modulation, code rate, stream count, channel model, detector and
  front-end impairment (:class:`~repro.sim.spec.ImpairmentSpec`: CFO,
  timing delay, IQ imbalance, fixed-point word lengths);
* :class:`~repro.sim.runner.SweepRunner` — fans bursts out over a
  ``multiprocessing`` pool in deterministically seeded batches, stops each
  grid point early once its bit-error target is reached, and serves
  repeated sweeps from a JSON cache keyed by the spec's content hash;
* :mod:`~repro.sim.engine` — the burst-level backbone shared with
  ``simulate_link``, so the one-point and grid APIs run the exact same
  physics.

Quick start::

    from repro.sim import SweepSpec, run_sweep

    spec = SweepSpec(
        snr_db=(5, 10, 15, 20, 25, 30),
        modulations=("qpsk", "16qam", "64qam"),
        n_info_bits=512,
        n_bursts=200,
        target_errors=100,
        base_seed=7,
    )
    result = run_sweep(spec)
    print(result.ber_curve(modulation="16qam"))

See ``docs/simulation.md`` for the full engine guide.
"""

from repro.sim.cache import JsonCache, default_cache_dir
from repro.sim.runner import SweepRunner, run_sweep
from repro.sim.spec import (
    ENGINE_VERSION,
    ImpairmentSpec,
    SweepPoint,
    SweepPointResult,
    SweepResult,
    SweepSpec,
)

__all__ = [
    "ENGINE_VERSION",
    "ImpairmentSpec",
    "JsonCache",
    "SweepPoint",
    "SweepPointResult",
    "SweepResult",
    "SweepRunner",
    "SweepSpec",
    "default_cache_dir",
    "run_sweep",
]

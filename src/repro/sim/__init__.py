"""Batched link-simulation engine: typed sweeps, work queues, result store.

``repro.sim`` is the scale layer of the reproduction.  Where
:func:`repro.core.transceiver.simulate_link` runs one operating point burst
by burst, this package describes whole experiment grids declaratively and
executes them efficiently:

* :class:`~repro.sim.spec.SweepSpec` / :class:`~repro.sim.spec.SweepResult`
  — typed, JSON-round-trippable descriptions of a sweep over SNR,
  modulation, code rate, stream count, channel model, detector and
  front-end impairment (:class:`~repro.sim.spec.ImpairmentSpec`: CFO,
  timing delay, IQ imbalance, fixed-point word lengths);
* :class:`~repro.sim.runner.SweepRunner` — drains deterministically seeded
  burst batches through a pluggable work queue (:mod:`repro.sim.queue`),
  stops each grid point early once its bit-error target is reached, commits
  every finished point atomically to the sharded per-point
  :class:`~repro.sim.store.ResultStore`, and resumes interrupted or
  overlapping sweeps from it — simulating only the missing remainder;
* :meth:`~repro.sim.runner.SweepRunner.run_adaptive` — adaptive refinement:
  extra bursts go to the points whose BER confidence intervals
  (:mod:`repro.sim.stats`: Wilson / Clopper–Pearson) are widest;
* :mod:`~repro.sim.engine` — the burst-level backbone shared with
  ``simulate_link``, so the one-point and grid APIs run the exact same
  physics.

Quick start::

    from repro.sim import SweepSpec, run_sweep

    spec = SweepSpec(
        snr_db=(5, 10, 15, 20, 25, 30),
        modulations=("qpsk", "16qam", "64qam"),
        n_info_bits=512,
        n_bursts=200,
        target_errors=100,
        base_seed=7,
    )
    result = run_sweep(spec)
    print(result.ber_curve(modulation="16qam"))

See ``docs/simulation.md`` for the full engine guide.
"""

from repro.sim.cache import JsonCache, content_key, default_cache_dir
from repro.sim.queue import (
    InProcessQueue,
    MultiprocessingQueue,
    WorkQueue,
    make_queue,
)
from repro.sim.runner import SweepRunner, run_sweep
from repro.sim.spec import (
    ENGINE_VERSION,
    ImpairmentSpec,
    SweepPoint,
    SweepPointResult,
    SweepResult,
    SweepSpec,
)
from repro.sim.stats import (
    allocate_bursts,
    ber_interval,
    clopper_pearson_interval,
    wilson_interval,
)
from repro.sim.store import ResultStore, commit_json_file, default_store_dir

__all__ = [
    "ENGINE_VERSION",
    "ImpairmentSpec",
    "InProcessQueue",
    "JsonCache",
    "MultiprocessingQueue",
    "ResultStore",
    "SweepPoint",
    "SweepPointResult",
    "SweepResult",
    "SweepRunner",
    "SweepSpec",
    "WorkQueue",
    "allocate_bursts",
    "ber_interval",
    "clopper_pearson_interval",
    "commit_json_file",
    "content_key",
    "default_cache_dir",
    "default_store_dir",
    "make_queue",
    "run_sweep",
    "wilson_interval",
]

"""Batched, parallel sweep execution with early stopping and caching.

:class:`SweepRunner` turns a :class:`~repro.sim.spec.SweepSpec` into a
:class:`~repro.sim.spec.SweepResult`:

1. **Cache first** — the spec's content hash is looked up in the JSON cache;
   a hit returns the stored result without simulating anything.
2. **Batches** — each grid point's burst budget is split into fixed-size
   batches, the unit of work shipped to the ``multiprocessing`` pool.  Every
   batch owns a deterministic RNG stream seeded by
   ``(base_seed, point_index, batch_index)``, so the simulated physics is
   bit-identical for any worker count.
3. **Early stopping** — batches report per-burst counts and the runner
   folds the global burst sequence in order, truncating at the exact burst
   whose cumulative bit errors cross ``spec.target_errors``.  Parallel
   runs may *compute* bursts past that point, but they are discarded, so
   the reported statistics never depend on the pool size or batch size
   (which is why neither participates in the cache key).

On a multi-core host the pool parallelises the per-burst chain; on any host
early stopping alone collapses the error-rich half of a waterfall sweep to a
handful of bursts per point, which is where the bulk of the speed-up over
the serial ``simulate_link`` loop comes from.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from typing import List, Optional, Union

from repro.sim.cache import JsonCache
from repro.sim.engine import simulate_batch
from repro.sim.spec import SweepPoint, SweepPointResult, SweepResult, SweepSpec

CacheLike = Union[None, bool, str, "os.PathLike[str]", JsonCache]


def _resolve_cache(cache: CacheLike) -> Optional[JsonCache]:
    """Normalise the ``cache`` argument into a :class:`JsonCache` or ``None``."""
    if cache is None or cache is False:
        return None
    if cache is True:
        return JsonCache()
    if isinstance(cache, JsonCache):
        return cache
    return JsonCache(cache)


class SweepRunner:
    """Execute a sweep spec over a worker pool, with caching.

    Parameters
    ----------
    spec:
        The sweep to run.
    n_workers:
        Pool size; ``None`` uses every CPU.  ``1`` runs inline with no pool
        (no fork overhead — the right choice on single-core hosts and under
        benchmarks).  Zero or negative raises :class:`ValueError` — it used
        to silently mean "use every CPU".
    batch_size:
        Bursts per work unit.  Smaller batches give early stopping a finer
        trigger; larger batches amortise task overhead.  The default of 10
        (clamped to the burst budget) works well for both.
    cache:
        ``True`` (default) for the shared JSON cache, ``False``/``None`` to
        disable, or a directory / :class:`~repro.sim.cache.JsonCache` to
        use a specific store.
    """

    def __init__(
        self,
        spec: SweepSpec,
        n_workers: Optional[int] = None,
        batch_size: Optional[int] = None,
        cache: CacheLike = True,
    ) -> None:
        self.spec = spec
        if n_workers is not None and n_workers <= 0:
            raise ValueError("n_workers must be positive or None")
        self.n_workers = n_workers if n_workers is not None else (os.cpu_count() or 1)
        if batch_size is not None and batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.batch_size = min(batch_size or 10, spec.n_bursts)
        self.cache = _resolve_cache(cache)

    # ------------------------------------------------------------------
    def run(self, use_cache: bool = True) -> SweepResult:
        """Run (or load) the sweep and return its result."""
        key = self.spec.spec_hash()
        if self.cache is not None and use_cache:
            payload = self.cache.get(key)
            if payload is not None:
                return SweepResult.from_dict(payload, from_cache=True)

        start = time.perf_counter()
        points = self.spec.points()
        if self.n_workers > 1:
            results, computed_bursts = self._run_pooled(points)
        else:
            results, computed_bursts = self._run_serial(points)
        elapsed = time.perf_counter() - start

        result = SweepResult(
            spec=self.spec,
            points=results,
            elapsed_s=elapsed,
            from_cache=False,
            n_bursts_simulated=computed_bursts,
        )
        if self.cache is not None:
            self.cache.put(key, result.to_dict())
        return result

    # ------------------------------------------------------------------
    def _tasks_for(self, point: SweepPoint) -> List[dict]:
        """Batch payloads covering one point's burst budget."""
        spec_payload = self.spec.to_dict()
        point_payload = point.to_dict()
        tasks = []
        start_burst = 0
        batch_index = 0
        while start_burst < self.spec.n_bursts:
            n_bursts = min(self.batch_size, self.spec.n_bursts - start_burst)
            tasks.append(
                {
                    "spec": spec_payload,
                    "point": point_payload,
                    "start_burst": start_burst,
                    "n_bursts": n_bursts,
                    "batch_index": batch_index,
                }
            )
            start_burst += n_bursts
            batch_index += 1
        return tasks

    def _fold(self, point: SweepPoint, batch_stats: List[dict]) -> SweepPointResult:
        """Accumulate the global burst sequence, stopping at the error target.

        Batches report per-burst counts; folding them in batch order and
        truncating at the exact burst whose cumulative bit errors cross
        ``target_errors`` makes the reported statistics a pure function of
        the spec — independent of batch size, worker count and completion
        order.  (Parallel runs may have *computed* bursts past the crossing
        point; they are discarded here.)
        """
        target = self.spec.target_errors
        bit_errors = 0
        total_bits = 0
        frame_errors = 0
        decode_failures = 0
        n_bursts = 0
        stopped = False
        for stats in sorted(batch_stats, key=lambda s: s["batch_index"]):
            for burst in stats["bursts"]:
                bit_errors += burst["bit_errors"]
                total_bits += burst["total_bits"]
                frame_errors += burst["frame_error"]
                decode_failures += burst["decode_failure"]
                n_bursts += 1
                if target is not None and bit_errors >= target:
                    stopped = True
                    break
            if stopped:
                break
        return SweepPointResult(
            point=point,
            bit_errors=bit_errors,
            total_bits=total_bits,
            frame_errors=frame_errors,
            n_bursts=n_bursts,
            early_stopped=n_bursts < self.spec.n_bursts,
            decode_failures=decode_failures,
        )

    def _target_reached(self, bit_errors: int) -> bool:
        """Whether a running per-point error total crossed the stop target.

        Callers accumulate each batch's errors into a running total as it
        is collected (O(1) per batch) instead of re-summing every collected
        burst after each batch, which made the early-stop check O(B²) per
        point over a B-batch budget.
        """
        target = self.spec.target_errors
        return target is not None and bit_errors >= target

    @staticmethod
    def _batch_errors(stats: dict) -> int:
        """Total bit errors of one batch report."""
        return sum(burst["bit_errors"] for burst in stats["bursts"])

    # ------------------------------------------------------------------
    def _run_serial(self, points: List[SweepPoint]):
        """Inline execution (no pool): batch loop with early stopping.

        Returns ``(point_results, computed_bursts)`` where the second item
        counts every burst actually simulated — including any the fold
        later discards past the early-stopping point.
        """
        results = []
        computed = 0
        for point in points:
            collected: List[dict] = []
            collected_errors = 0
            for task in self._tasks_for(point):
                stats = simulate_batch(task)
                collected.append(stats)
                computed += len(stats["bursts"])
                collected_errors += self._batch_errors(stats)
                if self._target_reached(collected_errors):
                    break
            results.append(self._fold(point, collected))
        return results, computed

    def _run_pooled(self, points: List[SweepPoint]):
        """Pool execution: waves interleaved across every unfinished point.

        Returns ``(point_results, computed_bursts)`` like
        :meth:`_run_serial`.

        Each wave round-robins one batch from every point that still has
        budget and has not crossed its error target, topping up until the
        wave can keep ``n_workers`` busy.  This keeps the pool saturated
        even when early stopping collapses most points to a single batch —
        a strictly per-point schedule would degrade to serial execution
        exactly when early stopping works best.  The fold is unaffected:
        statistics are computed from per-burst counts in burst order, so
        scheduling shape never changes results.
        """
        tasks = {point.index: self._tasks_for(point) for point in points}
        cursors = {point.index: 0 for point in points}
        collected: dict = {point.index: [] for point in points}
        collected_errors = {point.index: 0 for point in points}
        computed = 0
        context = multiprocessing.get_context()
        with context.Pool(processes=self.n_workers) as pool:
            while True:
                wave: List[tuple] = []
                added = True
                while added and len(wave) < self.n_workers:
                    added = False
                    for point in points:
                        index = point.index
                        if cursors[index] >= len(tasks[index]):
                            continue
                        if self._target_reached(collected_errors[index]):
                            cursors[index] = len(tasks[index])
                            continue
                        wave.append((index, tasks[index][cursors[index]]))
                        cursors[index] += 1
                        added = True
                if not wave:
                    break
                stats = pool.map(simulate_batch, [task for _, task in wave])
                for (index, _), batch in zip(wave, stats):
                    collected[index].append(batch)
                    collected_errors[index] += self._batch_errors(batch)
                    computed += len(batch["bursts"])
        return (
            [self._fold(point, collected[point.index]) for point in points],
            computed,
        )


def run_sweep(spec: SweepSpec, **runner_kwargs) -> SweepResult:
    """One-call convenience wrapper: ``SweepRunner(spec, **kwargs).run()``."""
    return SweepRunner(spec, **runner_kwargs).run()

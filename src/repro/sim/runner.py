"""Resumable, store-backed sweep execution over pluggable work queues.

:class:`SweepRunner` turns a :class:`~repro.sim.spec.SweepSpec` into a
:class:`~repro.sim.spec.SweepResult`:

1. **Resume first** — every grid point hashes to a stable
   :meth:`~repro.sim.spec.SweepPoint.content_key`; points with a finished
   record in the sharded :class:`~repro.sim.store.ResultStore` are loaded
   without simulating a burst.  An interrupted sweep therefore re-runs
   only its missing remainder, and overlapping grids share their
   intersection.
2. **Batches over a work queue** — each pending point's burst budget is
   split into fixed-size batches and drained through a
   :class:`~repro.sim.queue.WorkQueue` (in-process FIFO for one worker, a
   ``multiprocessing`` pool otherwise).  Every burst owns a deterministic
   RNG stream seeded by the point's content and the burst index, so the
   simulated physics is bit-identical for any backend, batch size or
   completion order.
3. **Early stopping + atomic commits** — batches report per-burst counts
   and the runner folds each point's burst sequence in order, truncating
   at the exact burst whose cumulative bit errors cross
   ``spec.target_errors``.  The moment a point folds, its record is
   committed to the store (one atomic appended line), so a crash loses at
   most the in-flight points.
4. **Adaptive refinement** (:meth:`SweepRunner.run_adaptive`) — after the
   base sweep, extra bursts are allocated round by round to the points
   whose BER confidence intervals are widest (see :mod:`repro.sim.stats`),
   extending each point's deterministic burst stream; refined records are
   stored under budget-extended keys so a re-run replays the allocation
   from the store without simulating.

Statistics never depend on the worker count, queue backend or batch size
(which is why none of them participates in the point keys).
"""

from __future__ import annotations

import os
import time
from typing import Dict, List, Optional, Union

from repro.sim.cache import JsonCache
from repro.sim.engine import simulate_batch
from repro.sim.queue import QueueLike, make_queue
from repro.sim.spec import SweepPoint, SweepPointResult, SweepResult, SweepSpec
from repro.sim.stats import allocate_bursts
from repro.sim.store import ResultStore

StoreLike = Union[None, bool, str, "os.PathLike[str]", JsonCache, ResultStore]


def _resolve_store(cache: StoreLike) -> Optional[ResultStore]:
    """Normalise the ``cache`` argument into a :class:`ResultStore` or ``None``.

    A :class:`JsonCache` is accepted for backwards compatibility and maps
    to a store rooted in a ``points/`` subdirectory of the cache directory,
    keeping per-spec ``*.json`` files and per-point shards apart.
    """
    if cache is None or cache is False:
        return None
    if cache is True:
        return ResultStore()
    if isinstance(cache, ResultStore):
        return cache
    if isinstance(cache, JsonCache):
        return ResultStore(cache.directory / "points")
    return ResultStore(cache)


class SweepRunner:
    """Execute a sweep spec over a work queue, with per-point persistence.

    Parameters
    ----------
    spec:
        The sweep to run.
    n_workers:
        Pool size; ``None`` uses every CPU.  ``1`` runs inline with no pool
        (no fork overhead — the right choice on single-core hosts and under
        benchmarks).  Zero or negative raises :class:`ValueError`.
    batch_size:
        Bursts per work unit.  Smaller batches give early stopping a finer
        trigger; larger batches amortise task overhead.  The default of 10
        (clamped to the burst budget) works well for both.
    cache:
        ``True`` (default) for the shared per-point store, ``False``/``None``
        to disable persistence, or a directory /
        :class:`~repro.sim.store.ResultStore` /
        :class:`~repro.sim.cache.JsonCache` selecting a specific store.
    resume:
        When True (default), finished points found in the store are loaded
        instead of simulated — re-running an interrupted or overlapping
        sweep costs only the missing remainder.  ``False`` re-simulates
        everything (fresh records are still committed).
    queue:
        Execution backend: ``"auto"`` (default; in-process for one worker,
        a ``multiprocessing`` pool otherwise), ``"serial"``, ``"process"``,
        a :class:`~repro.sim.queue.WorkQueue` instance or a factory
        ``n_workers -> WorkQueue``.
    """

    def __init__(
        self,
        spec: SweepSpec,
        n_workers: Optional[int] = None,
        batch_size: Optional[int] = None,
        cache: StoreLike = True,
        resume: bool = True,
        queue: QueueLike = "auto",
    ) -> None:
        self.spec = spec
        if n_workers is not None and n_workers <= 0:
            raise ValueError("n_workers must be positive or None")
        self.n_workers = n_workers if n_workers is not None else (os.cpu_count() or 1)
        if batch_size is not None and batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.batch_size = min(batch_size or 10, spec.n_bursts)
        self.store = _resolve_store(cache)
        self.resume = bool(resume)
        self.queue_backend = queue

    # ------------------------------------------------------------------
    def run(
        self, use_cache: bool = True, resume: Optional[bool] = None
    ) -> SweepResult:
        """Run (or resume) the sweep and return its result.

        ``resume=None`` defers to the runner's ``resume`` setting;
        ``use_cache=False`` (or ``resume=False``) forces full
        re-simulation while still committing fresh records.
        """
        effective_resume = self.resume if resume is None else bool(resume)
        if not use_cache:
            effective_resume = False
        start = time.perf_counter()
        points = self.spec.points()
        loaded: Dict[int, SweepPointResult] = {}
        if self.store is not None and effective_resume:
            loaded = self._load_finished(points)
        pending = [point for point in points if point.index not in loaded]
        simulated: Dict[int, SweepPointResult] = {}
        computed = 0
        if pending:
            simulated, computed = self._simulate(pending, check_store=effective_resume)
        return SweepResult(
            spec=self.spec,
            points=[
                loaded[p.index] if p.index in loaded else simulated[p.index]
                for p in points
            ],
            elapsed_s=time.perf_counter() - start,
            from_cache=self.store is not None and not pending,
            n_bursts_simulated=computed,
        )

    # ------------------------------------------------------------------
    # Store round-trips
    def _load_finished(self, points: List[SweepPoint]) -> Dict[int, SweepPointResult]:
        """Finished-point results already committed to the store."""
        by_key = {point.content_key(self.spec): point for point in points}
        records = self.store.get_many(by_key)
        loaded = {}
        for key, payload in records.items():
            point = by_key[key]
            result = self._result_from_record(point, payload)
            if result is not None:
                loaded[point.index] = result
        return loaded

    @staticmethod
    def _result_from_record(
        point: SweepPoint, payload: dict
    ) -> Optional[SweepPointResult]:
        """Rebuild one point result from its store record (None if corrupt)."""
        try:
            return SweepPointResult(
                point=point,
                bit_errors=int(payload["bit_errors"]),
                total_bits=int(payload["total_bits"]),
                frame_errors=int(payload["frame_errors"]),
                n_bursts=int(payload["n_bursts"]),
                early_stopped=bool(payload["early_stopped"]),
                decode_failures=int(payload.get("decode_failures", 0)),
            )
        except (KeyError, TypeError, ValueError):
            return None

    def _commit(
        self, result: SweepPointResult, elapsed_s: float, extra_bursts: int = 0
    ) -> None:
        """Commit one folded point to the store (atomic appended record)."""
        if self.store is None:
            return
        self.store.put(
            result.point.content_key(self.spec, extra_bursts=extra_bursts),
            {
                "bit_errors": result.bit_errors,
                "total_bits": result.total_bits,
                "frame_errors": result.frame_errors,
                "n_bursts": result.n_bursts,
                "early_stopped": result.early_stopped,
                "decode_failures": result.decode_failures,
                "elapsed_s": elapsed_s,
                "point": result.point.to_dict(),
            },
        )

    # ------------------------------------------------------------------
    # Task building and folding
    def _tasks_for(self, point: SweepPoint) -> List[dict]:
        """Batch payloads covering one point's burst budget."""
        spec_payload = self.spec.to_dict()
        point_payload = point.to_dict()
        tasks = []
        start_burst = 0
        batch_index = 0
        while start_burst < self.spec.n_bursts:
            n_bursts = min(self.batch_size, self.spec.n_bursts - start_burst)
            tasks.append(
                {
                    "spec": spec_payload,
                    "point": point_payload,
                    "start_burst": start_burst,
                    "n_bursts": n_bursts,
                    "batch_index": batch_index,
                }
            )
            start_burst += n_bursts
            batch_index += 1
        return tasks

    def _fold(self, point: SweepPoint, batch_stats: List[dict]) -> SweepPointResult:
        """Accumulate the global burst sequence, stopping at the error target.

        Batches report per-burst counts; folding them in batch order and
        truncating at the exact burst whose cumulative bit errors cross
        ``target_errors`` makes the reported statistics a pure function of
        the spec — independent of batch size, worker count and completion
        order.  (Parallel runs may have *computed* bursts past the crossing
        point; they are discarded here.)
        """
        target = self.spec.target_errors
        bit_errors = 0
        total_bits = 0
        frame_errors = 0
        decode_failures = 0
        n_bursts = 0
        stopped = False
        for stats in sorted(batch_stats, key=lambda s: s["batch_index"]):
            for burst in stats["bursts"]:
                bit_errors += burst["bit_errors"]
                total_bits += burst["total_bits"]
                frame_errors += burst["frame_error"]
                decode_failures += burst["decode_failure"]
                n_bursts += 1
                if target is not None and bit_errors >= target:
                    stopped = True
                    break
            if stopped:
                break
        return SweepPointResult(
            point=point,
            bit_errors=bit_errors,
            total_bits=total_bits,
            frame_errors=frame_errors,
            n_bursts=n_bursts,
            early_stopped=n_bursts < self.spec.n_bursts,
            decode_failures=decode_failures,
        )

    def _target_reached(self, bit_errors: int) -> bool:
        """Whether a running per-point error total crossed the stop target."""
        target = self.spec.target_errors
        return target is not None and bit_errors >= target

    @staticmethod
    def _batch_errors(stats: dict) -> int:
        """Total bit errors of one batch report."""
        return sum(burst["bit_errors"] for burst in stats["bursts"])

    # ------------------------------------------------------------------
    # Queue-driven execution
    def _simulate(self, points: List[SweepPoint], check_store: bool = False):
        """Drain the pending points through the work queue.

        Returns ``(results_by_index, computed_bursts)`` where the second
        item counts every burst actually simulated — including any the
        fold later discards past the early-stopping point.

        Scheduling: whenever the queue has capacity, one batch is submitted
        from the point with the fewest batches in flight (ties to the
        fewest dispatched, then the lowest index), which round-robins the
        frontier across every unfinished point — the pool stays saturated
        even when early stopping collapses most points to a single batch.
        A point whose running error total crosses the target stops
        submitting; its in-flight surplus is discarded by the fold.  Every
        point is committed to the store the moment it folds, so an
        interrupted run keeps its finished points.

        With ``check_store`` set, a point is re-checked against the store
        right before its *first* batch is dispatched: a concurrent runner
        that committed the point after this run's initial scan is honoured,
        bounding double simulation to the points genuinely in flight at the
        same moment.
        """
        tasks = {point.index: self._tasks_for(point) for point in points}
        cursors = {point.index: 0 for point in points}
        in_flight = {point.index: 0 for point in points}
        collected: Dict[int, List[dict]] = {point.index: [] for point in points}
        errors = {point.index: 0 for point in points}
        by_index = {point.index: point for point in points}
        results: Dict[int, SweepPointResult] = {}
        computed = 0
        queue = make_queue(self.queue_backend, self.n_workers)
        try:
            def wants_work(index: int) -> bool:
                return (
                    index not in results
                    and cursors[index] < len(tasks[index])
                    and not self._target_reached(errors[index])
                )

            def maybe_finish(index: int) -> None:
                if index in results or in_flight[index] > 0:
                    return
                if cursors[index] < len(tasks[index]) and not self._target_reached(
                    errors[index]
                ):
                    return
                result = self._fold(by_index[index], collected[index])
                results[index] = result
                self._commit(
                    result,
                    sum(s.get("elapsed_s", 0.0) for s in collected[index]),
                )

            def submit_next() -> bool:
                candidates = [index for index in by_index if wants_work(index)]
                while candidates:
                    index = min(
                        candidates,
                        key=lambda i: (in_flight[i], cursors[i], i),
                    )
                    if check_store and cursors[index] == 0 and self.store is not None:
                        record = self.store.get(
                            by_index[index].content_key(self.spec)
                        )
                        loaded = (
                            self._result_from_record(by_index[index], record)
                            if record is not None
                            else None
                        )
                        if loaded is not None:
                            # A concurrent runner finished this point since
                            # our initial scan: adopt its record, skip the
                            # simulation entirely.
                            results[index] = loaded
                            candidates.remove(index)
                            continue
                    queue.submit(simulate_batch, tasks[index][cursors[index]], tag=index)
                    cursors[index] += 1
                    in_flight[index] += 1
                    return True
                return False

            while True:
                while queue.pending() < queue.capacity and submit_next():
                    pass
                if queue.pending() == 0:
                    break
                index, stats = queue.next_result()
                in_flight[index] -= 1
                collected[index].append(stats)
                errors[index] += self._batch_errors(stats)
                computed += len(stats["bursts"])
                maybe_finish(index)
            for index in by_index:
                maybe_finish(index)
        finally:
            queue.close()
        return results, computed

    # ------------------------------------------------------------------
    # Adaptive refinement
    def run_adaptive(
        self,
        extra_bursts: int,
        rounds: int = 4,
        confidence: float = 0.95,
        method: str = "wilson",
        resume: Optional[bool] = None,
    ) -> SweepResult:
        """Run the base sweep, then spend ``extra_bursts`` where CIs are widest.

        Each round allocates ``extra_bursts / rounds`` additional bursts
        across the grid with :func:`repro.sim.stats.allocate_bursts`:
        greedily, to the points whose BER confidence intervals
        (``confidence``/``method``, see :mod:`repro.sim.stats`) are
        predicted widest.  Extension bursts continue each point's
        deterministic content-keyed stream right after its last folded
        burst — no re-rolling, no early stopping — and the refined record
        is committed under the point's budget-extended key
        (``content_key(spec, extra_bursts=...)``).

        The allocation is a pure function of the base results, so a re-run
        of the same adaptive call replays it exactly and is served entirely
        from the store.  Returned points carry heterogeneous burst counts;
        ``early_stopped`` is False for every refined point (it ran its full
        refined budget).
        """
        if extra_bursts <= 0:
            raise ValueError("extra_bursts must be positive")
        if rounds <= 0:
            raise ValueError("rounds must be positive")
        start = time.perf_counter()
        base = self.run(resume=resume)
        effective_resume = self.resume if resume is None else bool(resume)
        current: Dict[int, SweepPointResult] = {
            result.point.index: result for result in base.points
        }
        extras = {index: 0 for index in current}
        computed = base.n_bursts_simulated
        per_round = -(-extra_bursts // rounds)  # ceil
        remaining = extra_bursts
        while remaining > 0:
            budget = min(per_round, remaining)
            remaining -= budget
            allocation = allocate_bursts(
                widths={
                    index: result.ber_interval_width(confidence, method)
                    for index, result in current.items()
                },
                observations={
                    index: result.total_bits for index, result in current.items()
                },
                per_burst={
                    index: max(
                        result.total_bits // max(result.n_bursts, 1),
                        self.spec.n_info_bits,
                    )
                    for index, result in current.items()
                },
                budget=budget,
            )
            if not allocation:
                break
            current, extended = self._extend_points(
                current, extras, allocation, effective_resume
            )
            computed += extended
        return SweepResult(
            spec=self.spec,
            points=[current[index] for index in sorted(current)],
            elapsed_s=time.perf_counter() - start,
            from_cache=self.store is not None and computed == 0,
            n_bursts_simulated=computed,
        )

    def _extend_points(
        self,
        current: Dict[int, SweepPointResult],
        extras: Dict[int, int],
        allocation: Dict[int, int],
        effective_resume: bool,
    ):
        """Simulate one refinement round's allocation; returns new results.

        For every allocated point, the refined record (base + all
        extensions so far) is first looked up in the store under the
        extended-budget key; hits are adopted without simulating.  Misses
        simulate the extension bursts through the work queue — seeded by
        absolute burst index, they are the exact bursts an uninterrupted
        run would have drawn — and commit the refined record.
        """
        refined_spec = self.spec.subset(target_errors=None)
        spec_payload = refined_spec.to_dict()
        pending: Dict[int, int] = {}
        for index, count in allocation.items():
            new_extra = extras[index] + count
            if self.store is not None and effective_resume:
                record = self.store.get(
                    current[index].point.content_key(
                        self.spec, extra_bursts=new_extra
                    )
                )
                loaded = (
                    self._result_from_record(current[index].point, record)
                    if record is not None
                    else None
                )
                if loaded is not None:
                    current[index] = loaded
                    extras[index] = new_extra
                    continue
            pending[index] = count
        computed = 0
        if not pending:
            return current, computed

        batches: Dict[int, List[dict]] = {index: [] for index in pending}
        queue = make_queue(self.queue_backend, self.n_workers)
        try:
            for index, count in sorted(pending.items()):
                start_burst = current[index].n_bursts
                offset = 0
                batch_index = 0
                while offset < count:
                    n_bursts = min(self.batch_size, count - offset)
                    queue.submit(
                        simulate_batch,
                        {
                            "spec": spec_payload,
                            "point": current[index].point.to_dict(),
                            "start_burst": start_burst + offset,
                            "n_bursts": n_bursts,
                            "batch_index": batch_index,
                        },
                        tag=index,
                    )
                    offset += n_bursts
                    batch_index += 1
            while queue.pending() > 0:
                index, stats = queue.next_result()
                batches[index].append(stats)
                computed += len(stats["bursts"])
        finally:
            queue.close()

        for index, stats_list in batches.items():
            result = current[index]
            bit_errors = result.bit_errors
            total_bits = result.total_bits
            frame_errors = result.frame_errors
            decode_failures = result.decode_failures
            n_bursts = result.n_bursts
            elapsed = 0.0
            for stats in sorted(stats_list, key=lambda s: s["batch_index"]):
                elapsed += stats.get("elapsed_s", 0.0)
                for burst in stats["bursts"]:
                    bit_errors += burst["bit_errors"]
                    total_bits += burst["total_bits"]
                    frame_errors += burst["frame_error"]
                    decode_failures += burst["decode_failure"]
                    n_bursts += 1
            extras[index] += pending[index]
            current[index] = SweepPointResult(
                point=result.point,
                bit_errors=bit_errors,
                total_bits=total_bits,
                frame_errors=frame_errors,
                n_bursts=n_bursts,
                early_stopped=False,
                decode_failures=decode_failures,
            )
            self._commit(current[index], elapsed, extra_bursts=extras[index])
        return current, computed


def run_sweep(spec: SweepSpec, **runner_kwargs) -> SweepResult:
    """One-call convenience wrapper: ``SweepRunner(spec, **kwargs).run()``."""
    return SweepRunner(spec, **runner_kwargs).run()

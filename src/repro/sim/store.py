"""Sharded, append-friendly per-point result store.

Where :class:`~repro.sim.cache.JsonCache` keyed one opaque file per whole
:class:`~repro.sim.spec.SweepSpec`, this store keeps one *record* per
``(engine_version, point_key)`` — the content hash a
:meth:`~repro.sim.spec.SweepPoint.content_key` computes from the cell's
physics and budget.  Records live in 256 hash-sharded JSONL files, each
appended to with an atomic per-record commit, which buys three properties
the scale-out sweep layer needs:

* **sharing** — two overlapping grids hash their common cells to the same
  keys, so the intersection is simulated once and read twice;
* **resumability** — every finished point is durable the moment its record
  is committed; an interrupted sweep re-run loads the finished points and
  simulates only the remainder;
* **concurrency** — appends take an exclusive ``flock`` on the shard, a
  record is written with a single ``write`` + ``fsync``, and the reader
  skips torn or foreign lines, so multiple runners can share one store
  directory without corrupting it.

The store is append-only: a re-put of an existing key appends a newer
record and readers take the last one (the engine is deterministic, so
duplicate records for a key carry identical payloads).  ``clear()`` or an
occasional directory wipe is the only compaction it needs.

:func:`commit_json_file` is the one atomic whole-file commit recipe
(temp file in the target directory, ``fsync``, ``os.replace``, directory
``fsync``) — the :class:`~repro.sim.cache.JsonCache` compatibility shim
routes its ``put`` through it so a crash mid-write can never leave a
destination file torn.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
from pathlib import Path
from typing import Dict, Iterable, Iterator, Optional, Tuple, Union

try:  # POSIX shard locking; other platforms fall back to the thread lock.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

from repro.sim.cache import default_cache_dir

#: Number of hex characters of the key hash that select a shard (two chars
#: = 256 shards, plenty for millions of point-sized records).
_SHARD_CHARS = 2


def default_store_dir() -> Path:
    """The shared store directory: ``<cache dir>/points``.

    Lives inside the :func:`~repro.sim.cache.default_cache_dir` tree (and
    therefore honours ``REPRO_SIM_CACHE_DIR``) but in its own subdirectory,
    so per-spec ``*.json`` cache entries and per-point ``*.jsonl`` shards
    never collide.
    """
    return default_cache_dir() / "points"


def _fsync_directory(directory: Path) -> None:
    """Flush a directory entry so a just-committed file survives a crash."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - e.g. platforms without dir fds
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - fsync on dirs unsupported
        pass
    finally:
        os.close(fd)


def commit_json_file(path: Path, payload: dict) -> Path:
    """Atomically replace ``path`` with the JSON serialisation of ``payload``.

    The payload is written to a temp file *in the destination directory*,
    flushed and ``fsync``-ed before the ``os.replace``, and the directory
    entry is flushed after it.  Dying at any instant leaves either the old
    destination (or no file) or the complete new one — never a torn write:
    the rename is only issued once the temp file's bytes are durable.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, temp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_name, path)
        _fsync_directory(path.parent)
    except BaseException:
        try:
            os.unlink(temp_name)
        except OSError:
            pass
        raise
    return path


class ResultStore:
    """Content-keyed record store over hash-sharded JSONL files.

    Every record is one JSON line ``{"key": ..., "payload": {...}}``; the
    shard a key lives in is derived from a hash of the key string, so the
    key's own format (prefixes included) never skews the distribution.

    Parameters
    ----------
    directory:
        Shard directory; defaults to :func:`default_store_dir`.
    """

    def __init__(self, directory: Union[None, str, Path] = None) -> None:
        self.directory = (
            Path(directory) if directory is not None else default_store_dir()
        )
        self._lock = threading.Lock()

    # -- layout --------------------------------------------------------
    def shard_path(self, key: str) -> Path:
        """Shard file holding ``key``'s records."""
        shard = hashlib.sha256(key.encode("utf-8")).hexdigest()[:_SHARD_CHARS]
        return self.directory / f"{shard}.jsonl"

    @staticmethod
    def _iter_shard(path: Path) -> Iterator[Tuple[str, dict]]:
        """Yield ``(key, payload)`` for every intact record of one shard.

        Torn lines (a writer died mid-``write``), foreign files and records
        without the expected shape are skipped, never raised: corruption in
        an append-only store means "this record is missing", not "the sweep
        crashes".
        """
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            return
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if (
                isinstance(record, dict)
                and isinstance(record.get("key"), str)
                and isinstance(record.get("payload"), dict)
            ):
                yield record["key"], record["payload"]

    # -- reads ---------------------------------------------------------
    def get(self, key: str) -> Optional[dict]:
        """Latest payload stored under ``key``, or ``None``."""
        found = None
        for record_key, payload in self._iter_shard(self.shard_path(key)):
            if record_key == key:
                found = payload
        return found

    def get_many(self, keys: Iterable[str]) -> Dict[str, dict]:
        """Latest payloads for every present key, reading each shard once.

        This is the resume fast path: a whole grid's worth of keys usually
        maps onto a handful of shards, so a warm re-run costs a few file
        reads instead of one per point.
        """
        wanted = set(keys)
        by_shard: Dict[Path, set] = {}
        for key in wanted:
            by_shard.setdefault(self.shard_path(key), set()).add(key)
        found: Dict[str, dict] = {}
        for shard, shard_keys in by_shard.items():
            for record_key, payload in self._iter_shard(shard):
                if record_key in shard_keys:
                    found[record_key] = payload
        return found

    def __contains__(self, key: str) -> bool:
        return self.get(key) is not None

    def keys(self) -> set:
        """Every distinct key with at least one intact record."""
        found = set()
        if self.directory.is_dir():
            for shard in sorted(self.directory.glob("*.jsonl")):
                for key, _ in self._iter_shard(shard):
                    found.add(key)
        return found

    def __len__(self) -> int:
        return len(self.keys())

    # -- writes --------------------------------------------------------
    def put(self, key: str, payload: dict) -> Path:
        """Append one record atomically; returns the shard path.

        The commit is a single ``write`` of the full line under an
        exclusive shard lock, followed by ``fsync``.  If a previous writer
        died mid-line (the shard's last byte is not a newline), a newline
        is appended first so the torn tail can never concatenate with — and
        corrupt — this record.
        """
        line = json.dumps(
            {"key": key, "payload": payload}, sort_keys=True, separators=(",", ":")
        )
        data = (line + "\n").encode("utf-8")
        path = self.shard_path(key)
        with self._lock:
            self.directory.mkdir(parents=True, exist_ok=True)
            fd = os.open(path, os.O_RDWR | os.O_CREAT | os.O_APPEND, 0o644)
            try:
                if fcntl is not None:
                    fcntl.flock(fd, fcntl.LOCK_EX)
                try:
                    size = os.fstat(fd).st_size
                    if size > 0:
                        os.lseek(fd, size - 1, os.SEEK_SET)
                        if os.read(fd, 1) != b"\n":
                            os.write(fd, b"\n")
                    os.write(fd, data)
                    os.fsync(fd)
                finally:
                    if fcntl is not None:
                        fcntl.flock(fd, fcntl.LOCK_UN)
            finally:
                os.close(fd)
        return path

    def clear(self) -> int:
        """Delete every shard; returns the number of intact records removed."""
        removed = 0
        if not self.directory.is_dir():
            return removed
        for shard in self.directory.glob("*.jsonl"):
            removed += sum(1 for _ in self._iter_shard(shard))
            try:
                shard.unlink()
            except OSError:
                pass
        return removed

"""Work-queue abstraction the sweep runner drains.

The :class:`~repro.sim.runner.SweepRunner` used to own a
``multiprocessing.Pool`` and a wave scheduler; both are now behind one
small interface so the execution substrate is pluggable — an in-process
FIFO today, a process pool today, a multi-host queue tomorrow — without
touching the runner's scheduling, early-stopping or folding logic.

The contract is deliberately tiny:

* :meth:`WorkQueue.submit` enqueues ``func(payload)`` tagged with an opaque
  ``tag`` (the runner uses the grid-point index);
* :meth:`WorkQueue.next_result` blocks for the next completion and returns
  ``(tag, result)``, re-raising a worker's exception in the caller;
* :attr:`WorkQueue.capacity` tells the producer how much work to keep in
  flight — the runner submits until ``pending() >= capacity``;
* results may complete out of submission order; the runner's burst-level
  fold makes the reported statistics independent of completion order, so
  any backend that executes each payload exactly once is correct.

``func`` must be importable by reference (a module-level function) for the
multiprocessing backend, which ships it to worker processes by name; the
in-process backend accepts any callable.
"""

from __future__ import annotations

import multiprocessing
import queue as _thread_queue
from collections import deque
from typing import Any, Callable, Optional, Tuple, Union


class WorkQueue:
    """Interface every queue backend implements (see the module docstring)."""

    #: How much submitted-but-unfinished work the backend wants in flight.
    capacity: int = 1

    def submit(self, func: Callable[[dict], Any], payload: dict, tag: Any = None) -> None:
        """Enqueue one unit of work."""
        raise NotImplementedError

    def next_result(self) -> Tuple[Any, Any]:
        """Block for the next completion; ``(tag, result)`` or re-raise."""
        raise NotImplementedError

    def pending(self) -> int:
        """Units submitted but not yet returned by :meth:`next_result`."""
        raise NotImplementedError

    def close(self) -> None:
        """Release the backend's resources; pending work may be abandoned."""
        raise NotImplementedError

    def __enter__(self) -> "WorkQueue":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


class InProcessQueue(WorkQueue):
    """Lazy FIFO executing each task inline inside :meth:`next_result`.

    The serial backend: zero fork overhead, tasks run exactly when their
    result is demanded, and — because nothing executes at submit time —
    the producer's early-stopping decisions stay as fine-grained as with a
    capacity-1 pool.  Exceptions propagate directly from the task.
    """

    capacity = 1

    def __init__(self) -> None:
        self._fifo: deque = deque()

    def submit(self, func: Callable[[dict], Any], payload: dict, tag: Any = None) -> None:
        self._fifo.append((func, payload, tag))

    def next_result(self) -> Tuple[Any, Any]:
        if not self._fifo:
            raise RuntimeError("next_result() called with no pending work")
        func, payload, tag = self._fifo.popleft()
        return tag, func(payload)

    def pending(self) -> int:
        return len(self._fifo)

    def close(self) -> None:
        self._fifo.clear()


class MultiprocessingQueue(WorkQueue):
    """Process-pool backend: completions stream back as workers finish.

    Tasks go out through ``Pool.apply_async`` and come back through a
    thread-safe result queue fed by the pool's callback thread, so
    :meth:`next_result` returns completions in *finish* order — the
    producer can react (stop a point, top up another) while slower tasks
    are still running.  A worker exception is re-raised from
    :meth:`next_result`, tagged result lost, pool left usable.
    """

    def __init__(self, n_workers: int, lookahead: int = 2) -> None:
        if n_workers <= 0:
            raise ValueError("n_workers must be positive")
        if lookahead <= 0:
            raise ValueError("lookahead must be positive")
        context = multiprocessing.get_context()
        self._pool = context.Pool(processes=n_workers)
        #: Keep more work in flight than workers so none ever idles waiting
        #: for the producer to notice a completion.
        self.capacity = n_workers * lookahead
        self._results: _thread_queue.Queue = _thread_queue.Queue()
        self._pending = 0

    def submit(self, func: Callable[[dict], Any], payload: dict, tag: Any = None) -> None:
        results = self._results

        def on_done(value: Any, tag: Any = tag) -> None:
            results.put((tag, value, None))

        def on_error(error: BaseException, tag: Any = tag) -> None:
            results.put((tag, None, error))

        self._pending += 1
        self._pool.apply_async(
            func, (payload,), callback=on_done, error_callback=on_error
        )

    def next_result(self) -> Tuple[Any, Any]:
        if self._pending <= 0:
            raise RuntimeError("next_result() called with no pending work")
        tag, value, error = self._results.get()
        self._pending -= 1
        if error is not None:
            raise error
        return tag, value

    def pending(self) -> int:
        return self._pending

    def close(self) -> None:
        self._pool.terminate()
        self._pool.join()


QueueLike = Union[str, WorkQueue, Callable[[int], WorkQueue]]


def make_queue(backend: QueueLike = "auto", n_workers: int = 1) -> WorkQueue:
    """Build a queue backend by name, instance or factory.

    ``"auto"`` picks :class:`InProcessQueue` for one worker and
    :class:`MultiprocessingQueue` otherwise; ``"serial"`` / ``"process"``
    select explicitly.  A :class:`WorkQueue` instance is returned as-is
    (the caller owns its lifetime); a callable is invoked with the worker
    count — the injection point for test doubles and future remote
    backends.
    """
    if isinstance(backend, WorkQueue):
        return backend
    if callable(backend):
        return backend(n_workers)
    if backend == "auto":
        backend = "serial" if n_workers <= 1 else "process"
    if backend == "serial":
        return InProcessQueue()
    if backend == "process":
        return MultiprocessingQueue(n_workers)
    raise ValueError(
        f"unknown queue backend {backend!r}; expected 'auto', 'serial', "
        "'process', a WorkQueue or a factory"
    )

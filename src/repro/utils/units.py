"""The sanctioned crossings between the dB and linear power domains.

Both domains are plain floats, so nothing in the type system stops an
``snr_db`` from leaking into linear arithmetic — the dB-vs-linear SNR
miscalibration fixed in the occupied-power calibration work was exactly
that bug.  The repo's convention is that the *name* carries the domain
(``*_db`` vs ``*_linear`` / ``noise_variance`` / ``signal_power``) and
that every conversion goes through one of the three helpers below, which
the ``UNIT001`` lint rule recognises as domain crossings.  Inline
``10 ** (x / 10)`` / ``10 * log10(...)`` idioms anywhere else are
flagged; this module is the one place allowed to spell them out.

The implementations are bit-identical to the inline idioms they replace
(same operations in the same order), so routing existing call sites
through them changes no simulated numbers.
"""

from __future__ import annotations

from typing import Union

import numpy as np
import numpy.typing as npt

__all__ = ["amplitude_db_to_gain", "db_to_linear", "linear_to_db"]

_FloatLike = Union[float, npt.NDArray[np.floating]]


def db_to_linear(value_db: _FloatLike) -> _FloatLike:
    """Convert a power quantity from decibels to linear scale.

    ``db_to_linear(snr_db)`` is the linear SNR; dividing a signal power
    by it yields the matching noise variance.
    """
    return 10.0 ** (value_db / 10.0)


def linear_to_db(value_linear: _FloatLike) -> _FloatLike:
    """Convert a linear power ratio to decibels (``10 * log10``)."""
    return 10.0 * np.log10(value_linear)


def amplitude_db_to_gain(value_db: _FloatLike) -> _FloatLike:
    """Convert an *amplitude* quantity in dB to a linear voltage gain.

    Amplitude quantities (IQ imbalance, per-antenna gain mismatch) use
    the 20-per-decade convention: ``10 ** (value_db / 20)``.
    """
    return 10.0 ** (value_db / 20.0)

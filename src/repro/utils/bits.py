"""Bit-level helpers used throughout the transceiver.

All functions operate on NumPy ``uint8`` arrays whose elements are 0 or 1,
with the most significant bit first unless stated otherwise.  The hardware
described in the paper streams bits serially into the convolutional encoder
and groups them for the symbol mapper; these helpers provide the equivalent
conversions for the software model.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Union

import numpy as np

from repro.types import BitArray, IntArray

__all__ = [
    "BitArray",
    "bits_to_bytes",
    "bits_to_int",
    "bytes_to_bits",
    "count_bit_errors",
    "int_to_bits",
    "pack_bits",
    "random_bits",
    "unpack_bits",
]


def _as_bit_array(bits: Union[Sequence[int], np.ndarray]) -> BitArray:
    """Coerce ``bits`` into a validated uint8 array of zeros and ones."""
    arr = np.asarray(bits, dtype=np.uint8)
    if arr.ndim != 1:
        arr = arr.ravel()
    if arr.size and arr.max(initial=0) > 1:
        raise ValueError("bit array may only contain 0s and 1s")
    return arr


def random_bits(n: int, rng: np.random.Generator | None = None) -> BitArray:
    """Return ``n`` uniformly random bits as a uint8 array.

    Parameters
    ----------
    n:
        Number of bits to generate.  Must be non-negative.
    rng:
        Optional NumPy generator; a fresh default generator is used when
        omitted so results are non-deterministic.
    """
    if n < 0:
        raise ValueError(f"cannot generate a negative number of bits: {n}")
    generator = rng if rng is not None else np.random.default_rng()  # reprolint: disable=DET001 -- documented opt-in: omitting rng is the caller asking for non-determinism; engine paths always pass one
    return generator.integers(0, 2, size=n, dtype=np.uint8)


def int_to_bits(value: int, width: int) -> BitArray:
    """Convert a non-negative integer to ``width`` bits, MSB first."""
    if width < 0:
        raise ValueError("width must be non-negative")
    if value < 0:
        raise ValueError("value must be non-negative")
    if width and value >= (1 << width):
        raise ValueError(f"value {value} does not fit in {width} bits")
    return np.array([(value >> (width - 1 - i)) & 1 for i in range(width)], dtype=np.uint8)


def bits_to_int(bits: Union[Sequence[int], np.ndarray]) -> int:
    """Convert an MSB-first bit array to the integer it represents."""
    arr = _as_bit_array(bits)
    result = 0
    for bit in arr:
        result = (result << 1) | int(bit)
    return result


def pack_bits(bits: Union[Sequence[int], np.ndarray], group: int) -> IntArray:
    """Group a bit stream into integers of ``group`` bits each, MSB first.

    This mirrors the symbol-mapper addressing in the paper: the interleaver
    output is grouped into 1/2/4/6-bit addresses that index the constellation
    look-up table.
    """
    arr = _as_bit_array(bits)
    if group <= 0:
        raise ValueError("group size must be positive")
    if arr.size % group != 0:
        raise ValueError(
            f"bit stream length {arr.size} is not a multiple of group size {group}"
        )
    reshaped = arr.reshape(-1, group)
    weights = 1 << np.arange(group - 1, -1, -1)
    return (reshaped * weights).sum(axis=1).astype(np.int64)


def unpack_bits(values: Union[Sequence[int], np.ndarray], group: int) -> BitArray:
    """Expand integers back into an MSB-first bit stream of ``group`` bits each."""
    if group <= 0:
        raise ValueError("group size must be positive")
    vals = np.asarray(values, dtype=np.int64).ravel()
    if vals.size and (vals.min(initial=0) < 0 or vals.max(initial=0) >= (1 << group)):
        raise ValueError(f"values do not fit in {group} bits")
    shifts = np.arange(group - 1, -1, -1)
    bits = (vals[:, None] >> shifts) & 1
    return bits.astype(np.uint8).ravel()


def bytes_to_bits(data: Union[bytes, bytearray, Iterable[int]]) -> BitArray:
    """Convert a byte sequence to bits, MSB first within each byte."""
    byte_arr = np.frombuffer(bytes(data), dtype=np.uint8)
    return np.unpackbits(byte_arr)


def bits_to_bytes(bits: Union[Sequence[int], np.ndarray]) -> bytes:
    """Convert a bit array (length multiple of 8) back to bytes."""
    arr = _as_bit_array(bits)
    if arr.size % 8 != 0:
        raise ValueError("bit stream length must be a multiple of 8 to form bytes")
    return np.packbits(arr).tobytes()


def count_bit_errors(
    reference: Union[Sequence[int], np.ndarray],
    received: Union[Sequence[int], np.ndarray],
) -> int:
    """Count positions where two equal-length bit arrays differ."""
    ref = _as_bit_array(reference)
    rec = _as_bit_array(received)
    if ref.size != rec.size:
        raise ValueError(
            f"bit arrays have different lengths ({ref.size} vs {rec.size})"
        )
    return int(np.count_nonzero(ref != rec))

"""Deterministic random-number helpers.

Every stochastic element of the reproduction (payload bits, fading taps,
noise) accepts either a seed or a ``numpy.random.Generator`` so experiments
are repeatable.  ``make_rng`` normalises the two forms.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator]


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a ``numpy.random.Generator`` from a seed, generator or ``None``.

    Passing an existing generator returns it unchanged so callers can thread
    a single stream through a whole simulation; passing an integer creates a
    reproducible generator; passing ``None`` creates a fresh unseeded one.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)

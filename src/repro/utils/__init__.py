"""Shared utilities: bit manipulation, link-quality metrics and RNG helpers."""

from repro.utils.bits import (
    bits_to_bytes,
    bits_to_int,
    bytes_to_bits,
    count_bit_errors,
    int_to_bits,
    pack_bits,
    random_bits,
    unpack_bits,
)
from repro.utils.metrics import (
    bit_error_rate,
    error_vector_magnitude,
    packet_error_rate,
    signal_to_noise_ratio_db,
    symbol_error_rate,
)
from repro.utils.rng import make_rng

__all__ = [
    "bits_to_bytes",
    "bits_to_int",
    "bytes_to_bits",
    "count_bit_errors",
    "int_to_bits",
    "pack_bits",
    "random_bits",
    "unpack_bits",
    "bit_error_rate",
    "error_vector_magnitude",
    "packet_error_rate",
    "signal_to_noise_ratio_db",
    "symbol_error_rate",
    "make_rng",
]

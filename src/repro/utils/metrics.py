"""Link-quality metrics: BER, SER, PER, EVM and SNR estimation."""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

from repro.utils.bits import count_bit_errors
from repro.utils.units import linear_to_db


def bit_error_rate(
    reference: Union[Sequence[int], np.ndarray],
    received: Union[Sequence[int], np.ndarray],
) -> float:
    """Fraction of bit positions that differ between two bit streams."""
    ref = np.asarray(reference).ravel()
    if ref.size == 0:
        raise ValueError("cannot compute BER of empty bit streams")
    errors = count_bit_errors(reference, received)
    return errors / ref.size


def symbol_error_rate(
    reference: Union[Sequence[int], np.ndarray],
    received: Union[Sequence[int], np.ndarray],
) -> float:
    """Fraction of symbols (integers) that differ between two symbol streams."""
    ref = np.asarray(reference).ravel()
    rec = np.asarray(received).ravel()
    if ref.size != rec.size:
        raise ValueError("symbol streams must have equal length")
    if ref.size == 0:
        raise ValueError("cannot compute SER of empty symbol streams")
    return float(np.count_nonzero(ref != rec)) / ref.size


def packet_error_rate(packet_errors: Sequence[bool]) -> float:
    """Fraction of packets flagged as erroneous."""
    flags = np.asarray(packet_errors, dtype=bool).ravel()
    if flags.size == 0:
        raise ValueError("cannot compute PER with zero packets")
    return float(np.count_nonzero(flags)) / flags.size


def error_vector_magnitude(
    reference_symbols: np.ndarray, received_symbols: np.ndarray
) -> float:
    """RMS error-vector magnitude (as a fraction of RMS reference power).

    EVM is the standard constellation-quality metric for OFDM transmitters;
    the hardware test benches in the paper validate the mapper/IFFT chain the
    same way.
    """
    ref = np.asarray(reference_symbols, dtype=np.complex128).ravel()
    rec = np.asarray(received_symbols, dtype=np.complex128).ravel()
    if ref.size != rec.size:
        raise ValueError("symbol arrays must have equal length")
    if ref.size == 0:
        raise ValueError("cannot compute EVM of empty arrays")
    ref_power = np.mean(np.abs(ref) ** 2)
    if ref_power == 0:
        raise ValueError("reference symbols have zero power")
    error_power = np.mean(np.abs(rec - ref) ** 2)
    return float(np.sqrt(error_power / ref_power))


def signal_to_noise_ratio_db(signal: np.ndarray, noisy: np.ndarray) -> float:
    """Estimate the SNR in dB between a clean signal and its noisy version."""
    clean = np.asarray(signal, dtype=np.complex128).ravel()
    observed = np.asarray(noisy, dtype=np.complex128).ravel()
    if clean.size != observed.size or clean.size == 0:
        raise ValueError("signals must be non-empty and of equal length")
    signal_power = np.mean(np.abs(clean) ** 2)
    noise_power = np.mean(np.abs(observed - clean) ** 2)
    if noise_power == 0:
        return float("inf")
    return float(linear_to_db(signal_power / noise_power))

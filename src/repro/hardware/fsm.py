"""A small finite-state-machine helper.

Every datapath block in the paper has a local control FSM (the interleaver,
cyclic-prefix buffer, preamble sequencer, channel-matrix scheduler, ...).
:class:`FiniteStateMachine` gives the structural models a shared, explicit
representation of those controllers with transition validation and a state
history for testing.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple


class FiniteStateMachine:
    """Explicit-transition FSM with history.

    Parameters
    ----------
    states:
        All legal state names.
    initial:
        The reset state.
    transitions:
        Mapping ``(state, event) -> next_state``.  Events are arbitrary
        strings (e.g. ``"block_full"``, ``"start_of_frame"``).
    """

    def __init__(
        self,
        states: Iterable[str],
        initial: str,
        transitions: Dict[Tuple[str, str], str],
    ) -> None:
        self.states: Set[str] = set(states)
        if initial not in self.states:
            raise ValueError(f"initial state {initial!r} not in state set")
        for (src, _event), dst in transitions.items():
            if src not in self.states or dst not in self.states:
                raise ValueError(f"transition {src!r}->{dst!r} references unknown state")
        self.initial = initial
        self.transitions = dict(transitions)
        self.state = initial
        self.history: List[str] = [initial]

    def reset(self) -> None:
        """Return to the initial state (history restarts)."""
        self.state = self.initial
        self.history = [self.initial]

    def can_fire(self, event: str) -> bool:
        """True when ``event`` has a defined transition from the current state."""
        return (self.state, event) in self.transitions

    def fire(self, event: str) -> str:
        """Take the transition for ``event``; raises on undefined transitions."""
        key = (self.state, event)
        if key not in self.transitions:
            raise ValueError(
                f"no transition for event {event!r} from state {self.state!r}"
            )
        self.state = self.transitions[key]
        self.history.append(self.state)
        return self.state

    def fire_if_possible(self, event: str) -> Optional[str]:
        """Take the transition if defined, otherwise stay put and return None."""
        if self.can_fire(event):
            return self.fire(event)
        return None

"""Cycle-latency models of the receive datapath.

The paper gives two hard latency numbers — every CORDIC element is pipelined
20 clock cycles deep, and the QR-decomposition datapath has a total latency
of 440 cycles — and describes qualitatively that "the entire channel
estimation process has a massive latency", which is why OFDM data frames are
buffered in FIFOs until the channel estimates are ready.  This module turns
those statements into a parametric model so the buffering requirements and
processing delays can be computed for any configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dsp.cordic import CORDIC_PIPELINE_LATENCY
from repro.hardware.clock import ClockDomain

#: QRD datapath latency reported in the paper for the 4x4 array (cycles).
PAPER_QRD_LATENCY_CYCLES = 440


def qrd_critical_path_cordics(n_antennas: int) -> int:
    """Number of CORDIC stages on the QRD array's critical path.

    Calibrated to the paper: each of the ``n`` rows of the combined R/Q
    systolic array contributes one boundary cell (2 CORDICs) and one internal
    cell (3 CORDICs) to the critical path, plus a final 2-CORDIC output
    stage, giving ``5 n + 2`` stages — 22 for the 4x4 array, i.e. the
    reported 440 cycles at 20 cycles per CORDIC.
    """
    if n_antennas <= 0:
        raise ValueError("n_antennas must be positive")
    return 5 * n_antennas + 2


@dataclass(frozen=True)
class ReceiverLatencyBreakdown:
    """Latency (in clock cycles) of each stage of the receive pipeline."""

    time_sync_cycles: int
    fft_cycles: int
    qrd_cycles: int
    r_inverse_cycles: int
    matrix_multiply_cycles: int
    channel_estimation_cycles: int
    total_cycles: int

    def as_dict(self) -> dict:
        """Dictionary form for reporting."""
        return {
            "time_sync_cycles": self.time_sync_cycles,
            "fft_cycles": self.fft_cycles,
            "qrd_cycles": self.qrd_cycles,
            "r_inverse_cycles": self.r_inverse_cycles,
            "matrix_multiply_cycles": self.matrix_multiply_cycles,
            "channel_estimation_cycles": self.channel_estimation_cycles,
            "total_cycles": self.total_cycles,
        }


@dataclass(frozen=True)
class LatencyModel:
    """Parametric latency model of the MIMO receiver.

    Parameters
    ----------
    n_antennas:
        MIMO order (4 in the paper).
    fft_size:
        OFDM transform length (64 in the evaluated build, 512 discussed).
    cyclic_prefix_length:
        Cyclic-prefix samples per OFDM symbol.
    correlator_window:
        Sliding-window length of the time synchroniser (32 in the paper).
    cordic_latency:
        Pipeline depth of a single CORDIC element (20 in the paper).
    fft_pipeline_per_stage:
        Extra pipeline registers per FFT butterfly stage.
    r_inverse_pipeline:
        Pipeline depth of the back-substitution R-inverse block.
    """

    n_antennas: int = 4
    fft_size: int = 64
    cyclic_prefix_length: int = 16
    correlator_window: int = 32
    cordic_latency: int = CORDIC_PIPELINE_LATENCY
    fft_pipeline_per_stage: int = 4
    r_inverse_pipeline: int = 24
    clock: ClockDomain = field(default_factory=ClockDomain)

    # ------------------------------------------------------------------
    @property
    def time_sync_cycles(self) -> int:
        """Correlator window fill + adder tree + CORDIC magnitude + compare."""
        adder_tree = max(1, (self.correlator_window - 1).bit_length())
        return self.correlator_window + adder_tree + self.cordic_latency + 1

    @property
    def fft_cycles(self) -> int:
        """Streaming FFT latency: ingest the symbol then flush the stages."""
        stages = self.fft_size.bit_length() - 1
        return self.fft_size + stages * self.fft_pipeline_per_stage

    @property
    def qrd_cycles(self) -> int:
        """QR decomposition datapath latency (440 cycles for the 4x4 array)."""
        return qrd_critical_path_cordics(self.n_antennas) * self.cordic_latency

    @property
    def r_inverse_cycles(self) -> int:
        """Back-substitution pipeline latency."""
        # Each column of R^-1 beyond the diagonal needs the previous column's
        # results; the pipeline is therefore traversed once per column.
        return self.n_antennas * self.r_inverse_pipeline

    @property
    def matrix_multiply_cycles(self) -> int:
        """Q^T x R^-1 multiply latency for one subcarrier."""
        return self.n_antennas * self.n_antennas + self.cordic_latency // 2

    @property
    def channel_estimation_cycles(self) -> int:
        """Latency from LTS reception to all subcarrier inverses stored.

        The channel-matrix memories are streamed through the QRD array one
        matrix entry per cycle (``fft_size * n²`` reads), then the pipeline
        flushes through the QRD, R-inverse and matrix-multiply stages.
        """
        streaming = self.fft_size * self.n_antennas * self.n_antennas
        return (
            streaming
            + self.qrd_cycles
            + self.r_inverse_cycles
            + self.matrix_multiply_cycles
        )

    @property
    def total_cycles(self) -> int:
        """Latency from burst arrival to the first equalised OFDM symbol."""
        lts_ingest = 2 * self.fft_size + self.cyclic_prefix_length
        return (
            self.time_sync_cycles
            + lts_ingest
            + self.fft_cycles
            + self.channel_estimation_cycles
        )

    # ------------------------------------------------------------------
    def breakdown(self) -> ReceiverLatencyBreakdown:
        """Full latency breakdown."""
        return ReceiverLatencyBreakdown(
            time_sync_cycles=self.time_sync_cycles,
            fft_cycles=self.fft_cycles,
            qrd_cycles=self.qrd_cycles,
            r_inverse_cycles=self.r_inverse_cycles,
            matrix_multiply_cycles=self.matrix_multiply_cycles,
            channel_estimation_cycles=self.channel_estimation_cycles,
            total_cycles=self.total_cycles,
        )

    def required_data_fifo_depth(self) -> int:
        """OFDM data samples that must be buffered while estimation completes.

        The receiver stores FFT output in FIFOs until the channel estimates
        are ready; the required depth is the number of data samples arriving
        during the channel-estimation latency.
        """
        return self.channel_estimation_cycles

    def latency_seconds(self) -> float:
        """Total receive-pipeline latency in seconds at the configured clock."""
        return self.clock.cycles_to_seconds(self.total_cycles)

"""Parametric FPGA resource-estimation models (the synthesis substitute).

The paper's evaluation is a synthesis report of the 4x4, 16-QAM, 64-point
OFDM build on a large Altera FPGA:

* Table 1 — transmitter totals (ALUTs 33,423; registers 12,320; memory bits
  265,408; 18-bit DSP blocks 32);
* Table 2 — transmitter per-entity breakdown;
* Table 3 — receiver totals (ALUTs 183,957; registers 173,335; memory bits
  367,060; DSP 896);
* Table 4 — receiver per-entity breakdown, with the observation that the
  channel-estimation/equalisation blocks account for 86 % of ALUTs and 77 %
  of the DSP multipliers.

We have no FPGA toolchain, so the substitute is a *calibrated parametric
model*: each entity's cost is expressed as the paper's reported value scaled
by how its dominant size driver changes relative to the paper's
configuration (number of channels, coded bits per OFDM symbol, FFT length,
correlator window, antenna count, number of CORDIC cells, ...).  At the
paper's configuration the model reproduces the tables exactly; away from it,
it scales the way Section V argues (e.g. IFFT/interleaver resources and
buffer memory grow ~8x for 512-point OFDM while the channel-estimation
blocks stay constant).

The per-entity scaling drivers are:

========================  =============================================
Entity                    Scaling driver
========================  =============================================
conv encoder              number of channels
block (de)interleaver     channels x coded bits per OFDM symbol
IFFT / FFT                channels x FFT length
cyclic prefix             number of channels
time synchroniser         correlator window length
Viterbi decoder           channels x trellis states (vs. 64)
R matrix inverse          antenna count squared (vs. 16)
MIMO decoder              n_rx x n_tx products
QR decomposition          CORDIC cell count of the systolic arrays
QR multiplier             antenna count squared
buffers / ROMs (memory)   channels x FFT length x sample width
========================  =============================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Tuple

from repro.hardware.resources import ResourceReport, ResourceUsage


@dataclass(frozen=True)
class FpgaDevice:
    """Capacities of the target FPGA (the "Available" column of Tables 1/3)."""

    name: str
    aluts: int
    registers: int
    memory_bits: int
    dsp_blocks: int


#: The device whose "available" numbers appear in the paper's tables.
STRATIX_IV_DEVICE = FpgaDevice(
    name="Altera Stratix IV class (as reported in the paper)",
    aluts=424_960,
    registers=424_960,
    memory_bits=21_233_664,
    dsp_blocks=1_024,
)


@dataclass(frozen=True)
class ResourceModelConfig:
    """Configuration knobs that drive the resource scaling.

    The defaults are the paper's evaluated configuration (4 channels,
    16-QAM, 64-point OFDM with 48 data subcarriers, 32-sample correlator,
    K=7 Viterbi, 16-bit samples).
    """

    n_channels: int = 4
    n_rx: int = 4
    n_tx: int = 4
    fft_size: int = 64
    n_data_subcarriers: int = 48
    bits_per_subcarrier: int = 4
    correlator_window: int = 32
    viterbi_constraint_length: int = 7
    sample_width_bits: int = 16
    soft_decision_bits: int = 4

    def __post_init__(self) -> None:
        if self.n_channels <= 0 or self.n_rx <= 0 or self.n_tx <= 0:
            raise ValueError("channel/antenna counts must be positive")
        if self.fft_size <= 0 or self.fft_size & (self.fft_size - 1):
            raise ValueError("fft_size must be a power of two")
        if not 0 < self.n_data_subcarriers <= self.fft_size:
            raise ValueError("n_data_subcarriers must be in (0, fft_size]")
        if self.bits_per_subcarrier <= 0:
            raise ValueError("bits_per_subcarrier must be positive")
        if self.correlator_window <= 0:
            raise ValueError("correlator_window must be positive")
        if self.viterbi_constraint_length < 2:
            raise ValueError("viterbi_constraint_length must be >= 2")

    @property
    def coded_bits_per_symbol(self) -> int:
        """Coded bits per OFDM symbol per channel (the interleaver block size)."""
        return self.n_data_subcarriers * self.bits_per_subcarrier

    @property
    def trellis_states(self) -> int:
        """Number of Viterbi trellis states."""
        return 1 << (self.viterbi_constraint_length - 1)


#: Paper (reference) configuration all entity figures are calibrated against.
PAPER_CONFIG = ResourceModelConfig()


def qrd_cordic_cell_count(n_antennas: int) -> int:
    """Total CORDIC count of the R and Q systolic arrays for an NxN matrix.

    The R array (Fig. 6) has ``n`` boundary cells of 2 CORDICs and
    ``n (n-1) / 2`` internal cells of 3 CORDICs; the Q array (Fig. 7) is an
    ``n x n`` grid of 3-CORDIC internal cells.
    """
    if n_antennas <= 0:
        raise ValueError("n_antennas must be positive")
    boundary = 2 * n_antennas
    r_internal = 3 * (n_antennas * (n_antennas - 1) // 2)
    q_internal = 3 * n_antennas * n_antennas
    return boundary + r_internal + q_internal


def _scaled(value: int, numerator: float, denominator: float) -> int:
    """Scale a calibrated value by ``numerator/denominator`` and round."""
    if denominator == 0:
        raise ValueError("scaling denominator cannot be zero")
    return int(round(value * (numerator / denominator)))


def _scale_usage(
    reference: Tuple[int, int, int, int], ratio: float
) -> ResourceUsage:
    aluts, registers, memory_bits, dsp = reference
    return ResourceUsage(
        aluts=int(round(aluts * ratio)),
        registers=int(round(registers * ratio)),
        memory_bits=int(round(memory_bits * ratio)),
        dsp_blocks=int(round(dsp * ratio)),
    )


class TransmitterResourceModel:
    """Resource model of the 4-channel MIMO transmitter (Tables 1 and 2)."""

    #: Per-entity reference figures (ALUTs, registers, memory bits, DSP) at
    #: the paper's configuration — Table 2.
    REFERENCE_ENTITIES: Dict[str, Tuple[int, int, int, int]] = {
        "conv_encoder": (32, 136, 0, 0),
        "block_interleaver": (28_016, 1_730, 0, 0),
        "ifft": (3_854, 9_152, 8_896, 32),
        "cyclic_prefix": (40, 128, 0, 0),
    }

    #: Table 1 totals at the paper's configuration.
    REFERENCE_TOTALS = ResourceUsage(
        aluts=33_423, registers=12_320, memory_bits=265_408, dsp_blocks=32
    )

    def __init__(self, config: ResourceModelConfig | None = None) -> None:
        self.config = config if config is not None else PAPER_CONFIG

    # ------------------------------------------------------------------
    def _entity_ratio(self, entity: str) -> float:
        cfg, ref = self.config, PAPER_CONFIG
        channel_ratio = cfg.n_channels / ref.n_channels
        if entity == "conv_encoder":
            return channel_ratio
        if entity == "block_interleaver":
            return channel_ratio * (cfg.coded_bits_per_symbol / ref.coded_bits_per_symbol)
        if entity == "ifft":
            return channel_ratio * (cfg.fft_size / ref.fft_size)
        if entity == "cyclic_prefix":
            return channel_ratio
        raise KeyError(f"unknown transmitter entity: {entity}")

    def entity_usage(self, entity: str) -> ResourceUsage:
        """Estimated usage of one transmitter entity (all channels combined)."""
        reference = self.REFERENCE_ENTITIES[entity]
        return _scale_usage(reference, self._entity_ratio(entity))

    def entity_report(self) -> ResourceReport:
        """Per-entity report corresponding to Table 2."""
        report = ResourceReport(name="MIMO transmitter")
        for entity in self.REFERENCE_ENTITIES:
            report.add_entity(entity, self.entity_usage(entity))
        report.overhead = self._overhead_usage()
        return report

    # ------------------------------------------------------------------
    def _overhead_usage(self) -> ResourceUsage:
        """Control path, preamble ROMs, mapper LUTs, CP buffers and FIFOs.

        These are the resources present in the Table 1 totals but not broken
        out in Table 2.  Logic overhead (control FSMs, muxes, JESD interface)
        is held constant; memory overhead scales with channels x FFT length
        x sample width, which reproduces the "approximately eight times as
        many memory bits" claim for 512-point OFDM.
        """
        cfg, ref = self.config, PAPER_CONFIG
        reference_entity_totals = ResourceUsage()
        for entity_ref in self.REFERENCE_ENTITIES.values():
            reference_entity_totals = reference_entity_totals + ResourceUsage(*entity_ref)
        glue_aluts = self.REFERENCE_TOTALS.aluts - reference_entity_totals.aluts
        glue_registers = self.REFERENCE_TOTALS.registers - reference_entity_totals.registers
        glue_memory = self.REFERENCE_TOTALS.memory_bits - reference_entity_totals.memory_bits
        glue_dsp = self.REFERENCE_TOTALS.dsp_blocks - reference_entity_totals.dsp_blocks

        memory_ratio = (
            (cfg.n_channels * cfg.fft_size * cfg.sample_width_bits)
            / (ref.n_channels * ref.fft_size * ref.sample_width_bits)
        )
        channel_ratio = cfg.n_channels / ref.n_channels
        return ResourceUsage(
            aluts=int(round(glue_aluts * channel_ratio)),
            registers=int(round(glue_registers * channel_ratio)),
            memory_bits=int(round(glue_memory * memory_ratio)),
            dsp_blocks=int(round(glue_dsp * channel_ratio)),
        )

    def system_totals(self) -> ResourceUsage:
        """System totals corresponding to Table 1."""
        return self.entity_report().total()

    def utilization(self, device: FpgaDevice = STRATIX_IV_DEVICE) -> Dict[str, float]:
        """Percentage utilisation of the target device (Table 1 "% Used")."""
        return self.entity_report().utilization(device)


class ReceiverResourceModel:
    """Resource model of the 4-channel MIMO receiver (Tables 3 and 4)."""

    #: Per-entity reference figures at the paper's configuration — Table 4.
    REFERENCE_ENTITIES: Dict[str, Tuple[int, int, int, int]] = {
        "block_deinterleaver": (13_772, 1_772, 0, 0),
        "fft": (3_196, 9_650, 10_736, 64),
        "time_synchroniser": (3_557, 8_983, 0, 128),
        "viterbi_decoder": (5_028, 2_848, 18_460, 0),
        "r_matrix_inverse": (55_431, 31_711, 6_226, 56),
        "mimo_decoder": (1_036, 768, 0, 128),
        "qr_decomposition": (101_697, 109_447, 322, 248),
        "qr_multiplier": (1_368, 1_169, 0, 256),
    }

    #: Table 3 totals at the paper's configuration.
    REFERENCE_TOTALS = ResourceUsage(
        aluts=183_957, registers=173_335, memory_bits=367_060, dsp_blocks=896
    )

    #: Entities the paper groups as "channel estimation and equalisation".
    CHANNEL_ESTIMATION_ENTITIES = (
        "r_matrix_inverse",
        "mimo_decoder",
        "qr_decomposition",
        "qr_multiplier",
    )

    def __init__(self, config: ResourceModelConfig | None = None) -> None:
        self.config = config if config is not None else PAPER_CONFIG

    # ------------------------------------------------------------------
    def _entity_ratio(self, entity: str) -> float:
        cfg, ref = self.config, PAPER_CONFIG
        channel_ratio = cfg.n_channels / ref.n_channels
        if entity == "block_deinterleaver":
            return channel_ratio * (cfg.coded_bits_per_symbol / ref.coded_bits_per_symbol)
        if entity == "fft":
            return channel_ratio * (cfg.fft_size / ref.fft_size)
        if entity == "time_synchroniser":
            return cfg.correlator_window / ref.correlator_window
        if entity == "viterbi_decoder":
            return channel_ratio * (cfg.trellis_states / ref.trellis_states)
        if entity == "r_matrix_inverse":
            return (cfg.n_rx * cfg.n_tx) / (ref.n_rx * ref.n_tx)
        if entity == "mimo_decoder":
            return (cfg.n_rx * cfg.n_tx) / (ref.n_rx * ref.n_tx)
        if entity == "qr_decomposition":
            return qrd_cordic_cell_count(cfg.n_rx) / qrd_cordic_cell_count(ref.n_rx)
        if entity == "qr_multiplier":
            return (cfg.n_rx * cfg.n_tx) / (ref.n_rx * ref.n_tx)
        raise KeyError(f"unknown receiver entity: {entity}")

    def entity_usage(self, entity: str) -> ResourceUsage:
        """Estimated usage of one receiver entity (all channels combined)."""
        reference = self.REFERENCE_ENTITIES[entity]
        return _scale_usage(reference, self._entity_ratio(entity))

    def entity_report(self) -> ResourceReport:
        """Per-entity report corresponding to Table 4."""
        report = ResourceReport(name="MIMO receiver")
        for entity in self.REFERENCE_ENTITIES:
            report.add_entity(entity, self.entity_usage(entity))
        return report

    def channel_estimation_share(self) -> Dict[str, float]:
        """Fraction of each resource used by channel estimation/equalisation.

        Computed against the system totals, reproducing the paper's "86 % of
        the ALUTs and 77 % of the DSP multipliers" observation.
        """
        selected = ResourceUsage()
        for entity in self.CHANNEL_ESTIMATION_ENTITIES:
            selected = selected + self.entity_usage(entity)
        totals = self.system_totals()
        return {
            "aluts": selected.aluts / totals.aluts if totals.aluts else 0.0,
            "registers": selected.registers / totals.registers if totals.registers else 0.0,
            "memory_bits": (
                selected.memory_bits / totals.memory_bits if totals.memory_bits else 0.0
            ),
            "dsp_blocks": (
                selected.dsp_blocks / totals.dsp_blocks if totals.dsp_blocks else 0.0
            ),
        }

    # ------------------------------------------------------------------
    def _system_adjustment(self) -> Dict[str, int]:
        """Difference between the Table 3 totals and the Table 4 entity sum.

        In the paper the Table 4 entity ALUT count slightly exceeds the
        Table 3 system total (cross-entity synthesis optimisation), while
        registers, memory and DSPs have additional unattributed usage (input
        circular buffers, LTS/channel-estimate memories, data FIFOs,
        equalisation glue).  The logic adjustments are held constant and the
        memory adjustment scales with channels x FFT length x sample width,
        which yields the paper's ~8x memory growth for 512-point OFDM while
        the estimation logic stays constant.
        """
        reference_entity_totals = ResourceUsage()
        for entity_ref in self.REFERENCE_ENTITIES.values():
            reference_entity_totals = reference_entity_totals + ResourceUsage(*entity_ref)
        return {
            "aluts": self.REFERENCE_TOTALS.aluts - reference_entity_totals.aluts,
            "registers": self.REFERENCE_TOTALS.registers - reference_entity_totals.registers,
            "memory_bits": self.REFERENCE_TOTALS.memory_bits
            - reference_entity_totals.memory_bits,
            "dsp_blocks": self.REFERENCE_TOTALS.dsp_blocks
            - reference_entity_totals.dsp_blocks,
        }

    def system_totals(self) -> ResourceUsage:
        """System totals corresponding to Table 3."""
        cfg, ref = self.config, PAPER_CONFIG
        entity_sum = ResourceUsage()
        for entity in self.REFERENCE_ENTITIES:
            entity_sum = entity_sum + self.entity_usage(entity)
        adjustment = self._system_adjustment()
        memory_ratio = (
            (cfg.n_channels * cfg.fft_size * cfg.sample_width_bits)
            / (ref.n_channels * ref.fft_size * ref.sample_width_bits)
        )
        channel_ratio = cfg.n_channels / ref.n_channels
        totals = {
            "aluts": entity_sum.aluts + int(round(adjustment["aluts"] * channel_ratio)),
            "registers": entity_sum.registers
            + int(round(adjustment["registers"] * channel_ratio)),
            "memory_bits": entity_sum.memory_bits
            + int(round(adjustment["memory_bits"] * memory_ratio)),
            "dsp_blocks": entity_sum.dsp_blocks
            + int(round(adjustment["dsp_blocks"] * channel_ratio)),
        }
        clipped = {key: max(0, value) for key, value in totals.items()}
        return ResourceUsage(
            aluts=clipped["aluts"],
            registers=clipped["registers"],
            memory_bits=clipped["memory_bits"],
            dsp_blocks=clipped["dsp_blocks"],
        )

    def utilization(self, device: FpgaDevice = STRATIX_IV_DEVICE) -> Dict[str, float]:
        """Percentage utilisation of the target device (Table 3 "% Used")."""
        totals = self.system_totals()
        return {
            "aluts": 100.0 * totals.aluts / device.aluts,
            "registers": 100.0 * totals.registers / device.registers,
            "memory_bits": 100.0 * totals.memory_bits / device.memory_bits,
            "dsp_blocks": 100.0 * totals.dsp_blocks / device.dsp_blocks,
        }

"""Clocking and throughput model.

The paper's headline claim is a 1 Gbps wireless baseband built from a 4x4
MIMO-OFDM datapath clocked at 100 MHz.  :class:`ThroughputModel` computes the
achievable bit rates from the OFDM numerology, modulation, code rate and the
sample clock, so the claim can be checked across configurations (this is the
"Claim C1" benchmark in DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass

#: Sample/processing clock frequency reported in the paper (Hz).
PAPER_CLOCK_HZ = 100_000_000.0


@dataclass(frozen=True)
class ClockDomain:
    """A clock domain running at ``frequency_hz``."""

    frequency_hz: float = PAPER_CLOCK_HZ

    def __post_init__(self) -> None:
        if self.frequency_hz <= 0:
            raise ValueError("clock frequency must be positive")

    @property
    def period_s(self) -> float:
        """Clock period in seconds."""
        return 1.0 / self.frequency_hz

    def cycles_to_seconds(self, cycles: int) -> float:
        """Convert a cycle count to wall-clock time."""
        if cycles < 0:
            raise ValueError("cycles cannot be negative")
        return cycles * self.period_s

    def seconds_to_cycles(self, seconds: float) -> int:
        """Convert a duration to (rounded-up) clock cycles."""
        if seconds < 0:
            raise ValueError("seconds cannot be negative")
        return int(-(-seconds // self.period_s))


@dataclass(frozen=True)
class ThroughputModel:
    """Bit-rate model of the MIMO-OFDM air interface.

    One OFDM symbol occupies ``fft_size + cyclic_prefix_length`` samples at
    one sample per clock cycle, and carries
    ``n_streams * n_data_subcarriers * bits_per_subcarrier`` coded bits, of
    which ``code_rate`` are information bits.
    """

    n_streams: int = 4
    n_data_subcarriers: int = 48
    bits_per_subcarrier: int = 6
    code_rate: float = 0.75
    fft_size: int = 64
    cyclic_prefix_length: int = 16
    clock: ClockDomain = ClockDomain()

    def __post_init__(self) -> None:
        if self.n_streams <= 0:
            raise ValueError("n_streams must be positive")
        if self.n_data_subcarriers <= 0 or self.n_data_subcarriers > self.fft_size:
            raise ValueError("n_data_subcarriers must be in (0, fft_size]")
        if self.bits_per_subcarrier <= 0:
            raise ValueError("bits_per_subcarrier must be positive")
        if not 0 < self.code_rate <= 1:
            raise ValueError("code_rate must be in (0, 1]")
        if self.cyclic_prefix_length < 0:
            raise ValueError("cyclic_prefix_length cannot be negative")

    @property
    def samples_per_symbol(self) -> int:
        """Time-domain samples per OFDM symbol including the cyclic prefix."""
        return self.fft_size + self.cyclic_prefix_length

    @property
    def symbol_duration_s(self) -> float:
        """Duration of one OFDM symbol."""
        return self.samples_per_symbol * self.clock.period_s

    @property
    def coded_bits_per_symbol(self) -> int:
        """Coded bits carried by one OFDM symbol across all spatial streams."""
        return self.n_streams * self.n_data_subcarriers * self.bits_per_subcarrier

    @property
    def info_bits_per_symbol(self) -> float:
        """Information bits per OFDM symbol after the code rate."""
        return self.coded_bits_per_symbol * self.code_rate

    @property
    def coded_bit_rate_bps(self) -> float:
        """Coded (raw PHY) bit rate in bits per second."""
        return self.coded_bits_per_symbol / self.symbol_duration_s

    @property
    def info_bit_rate_bps(self) -> float:
        """Information bit rate in bits per second."""
        return self.info_bits_per_symbol / self.symbol_duration_s

    def info_bit_rate_with_preamble_bps(
        self, symbols_per_burst: int, preamble_samples: int
    ) -> float:
        """Information rate including the per-burst preamble overhead.

        Parameters
        ----------
        symbols_per_burst:
            Number of data OFDM symbols in each burst.
        preamble_samples:
            Time-domain samples spent on STS/LTS at the start of the burst.
        """
        if symbols_per_burst <= 0:
            raise ValueError("symbols_per_burst must be positive")
        if preamble_samples < 0:
            raise ValueError("preamble_samples cannot be negative")
        data_samples = symbols_per_burst * self.samples_per_symbol
        total_time = (data_samples + preamble_samples) * self.clock.period_s
        total_bits = symbols_per_burst * self.info_bits_per_symbol
        return total_bits / total_time

    def meets_gigabit_target(self, target_bps: float = 1e9) -> bool:
        """True when the information bit rate reaches the 1 Gbps target."""
        return self.info_bit_rate_bps >= target_bps

"""FPGA hardware substrate models.

The paper's evaluation (Section V) is an FPGA synthesis report: ALUTs,
registers, memory bits and 18-bit DSP blocks per entity, a 100 MHz clock and
pipeline latencies.  Because we have no FPGA or vendor toolchain, this
package provides the substitute substrate:

* :mod:`repro.hardware.resources` — report dataclasses (the "synthesis
  report" format);
* :mod:`repro.hardware.estimator` — parametric per-entity resource models
  calibrated to the paper's figures and scaling claims (Tables 1-4);
* :mod:`repro.hardware.latency` — cycle-latency models (CORDIC 20 cycles,
  QRD 440 cycles, channel-estimation latency, burst latency);
* :mod:`repro.hardware.clock` — clocking/throughput model behind the 1 Gbps
  claim;
* :mod:`repro.hardware.memory` — behavioural models of the memory structures
  the architecture relies on (ROM, dual-port RAM, FIFO, ping-pong buffer,
  circular buffer);
* :mod:`repro.hardware.fsm` — a small finite-state-machine base used by the
  structural datapath models;
* :mod:`repro.hardware.jesd204` — the JESD204A-style converter interface
  framing model.
"""

from repro.hardware.clock import ClockDomain, ThroughputModel
from repro.hardware.estimator import (
    FpgaDevice,
    PAPER_CONFIG,
    ReceiverResourceModel,
    ResourceModelConfig,
    STRATIX_IV_DEVICE,
    TransmitterResourceModel,
    qrd_cordic_cell_count,
)
from repro.hardware.fsm import FiniteStateMachine
from repro.hardware.jesd204 import Jesd204Framer
from repro.hardware.latency import LatencyModel, ReceiverLatencyBreakdown
from repro.hardware.memory import (
    CircularBuffer,
    DualPortRam,
    Fifo,
    PingPongBuffer,
    Rom,
)
from repro.hardware.resources import ResourceReport, ResourceUsage

__all__ = [
    "ClockDomain",
    "ThroughputModel",
    "FpgaDevice",
    "PAPER_CONFIG",
    "ResourceModelConfig",
    "STRATIX_IV_DEVICE",
    "TransmitterResourceModel",
    "ReceiverResourceModel",
    "qrd_cordic_cell_count",
    "FiniteStateMachine",
    "Jesd204Framer",
    "LatencyModel",
    "ReceiverLatencyBreakdown",
    "CircularBuffer",
    "DualPortRam",
    "Fifo",
    "PingPongBuffer",
    "Rom",
    "ResourceReport",
    "ResourceUsage",
]

"""Behavioural models of the FPGA memory structures the architecture uses.

The paper's datapaths are organised around a handful of memory idioms:

* ROMs preloaded from memory-initialisation files (STS/LTS sequences, pilot
  tones, symbol-mapper look-up tables);
* dual-port RAMs (the cyclic-prefix double buffer, channel-estimate
  memories);
* ping-pong (double-buffer) memories (the block interleaver's "Mem A /
  Mem B" pair);
* FIFOs (OFDM data buffering while channel estimation completes);
* circular buffers (receiver input buffering to cover time-synchroniser
  latency).

These classes model the data movement and occupancy semantics (including the
"can only read a full block" and "write one half while reading the other"
behaviours) and report their size in memory bits for the resource model.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Generic, Iterable, List, Optional, Sequence, TypeVar

import numpy as np

T = TypeVar("T")


class Rom(Generic[T]):
    """Read-only memory preloaded with constant contents."""

    def __init__(self, contents: Sequence[T], word_bits: int) -> None:
        if word_bits <= 0:
            raise ValueError("word_bits must be positive")
        self._contents: List[T] = list(contents)
        self.word_bits = word_bits

    def __len__(self) -> int:
        return len(self._contents)

    def read(self, address: int) -> T:
        """Read one word; addresses outside the ROM raise ``IndexError``."""
        if not 0 <= address < len(self._contents):
            raise IndexError(f"ROM address {address} out of range")
        return self._contents[address]

    @property
    def memory_bits(self) -> int:
        """Total storage in bits."""
        return len(self._contents) * self.word_bits


class DualPortRam:
    """Simple dual-port RAM: simultaneous read and write at distinct addresses."""

    def __init__(self, depth: int, word_bits: int) -> None:
        if depth <= 0 or word_bits <= 0:
            raise ValueError("depth and word_bits must be positive")
        self.depth = depth
        self.word_bits = word_bits
        self._data: List[complex] = [0j] * depth

    def write(self, address: int, value: complex) -> None:
        """Write one word through the write port."""
        if not 0 <= address < self.depth:
            raise IndexError(f"RAM write address {address} out of range")
        self._data[address] = value

    def read(self, address: int) -> complex:
        """Read one word through the read port."""
        if not 0 <= address < self.depth:
            raise IndexError(f"RAM read address {address} out of range")
        return self._data[address]

    @property
    def memory_bits(self) -> int:
        """Total storage in bits."""
        return self.depth * self.word_bits


class PingPongBuffer:
    """Double-buffer (Mem A / Mem B) supporting continual streaming.

    One memory accepts writes while the other is read out; the roles swap
    when the writing memory fills.  This is the structure the paper's block
    interleaver and several other entities use so that data can stream
    without stalling.
    """

    def __init__(self, block_size: int, word_bits: int = 1) -> None:
        if block_size <= 0:
            raise ValueError("block_size must be positive")
        self.block_size = block_size
        self.word_bits = word_bits
        self._write_memory: List[float] = []
        self._read_memory: Optional[np.ndarray] = None
        self.swaps = 0

    @property
    def write_fill(self) -> int:
        """Number of words currently in the write-side memory."""
        return len(self._write_memory)

    @property
    def readable(self) -> bool:
        """True when a full block is available on the read side."""
        return self._read_memory is not None

    def push(self, value: float) -> bool:
        """Write one word; returns True if this write completed a block.

        Completing a block swaps the memories.  If the previous read block
        was never consumed it is overwritten (the hardware analogue of a
        downstream stall, which the control FSM is designed to avoid).
        """
        self._write_memory.append(value)
        if len(self._write_memory) < self.block_size:
            return False
        self._read_memory = np.array(self._write_memory, dtype=np.float64)
        self._write_memory = []
        self.swaps += 1
        return True

    def read_block(self) -> np.ndarray:
        """Read the completed block out of the read-side memory."""
        if self._read_memory is None:
            raise RuntimeError("no complete block available to read")
        block = self._read_memory
        self._read_memory = None
        return block

    @property
    def memory_bits(self) -> int:
        """Total storage of both memories in bits."""
        return 2 * self.block_size * self.word_bits


class Fifo:
    """First-in first-out buffer with a bounded depth."""

    def __init__(self, depth: int, word_bits: int = 32) -> None:
        if depth <= 0:
            raise ValueError("depth must be positive")
        self.depth = depth
        self.word_bits = word_bits
        self._queue: Deque[complex] = deque()

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def full(self) -> bool:
        """True when another push would overflow."""
        return len(self._queue) >= self.depth

    @property
    def empty(self) -> bool:
        """True when there is nothing to pop."""
        return not self._queue

    def push(self, value: complex) -> None:
        """Append one word; raises ``OverflowError`` when full."""
        if self.full:
            raise OverflowError("FIFO overflow")
        self._queue.append(value)

    def push_many(self, values: Iterable[complex]) -> None:
        """Append many words."""
        for value in values:
            self.push(value)

    def pop(self) -> complex:
        """Remove and return the oldest word; raises when empty."""
        if self.empty:
            raise IndexError("FIFO underflow")
        return self._queue.popleft()

    def pop_many(self, count: int) -> List[complex]:
        """Pop ``count`` words."""
        return [self.pop() for _ in range(count)]

    @property
    def memory_bits(self) -> int:
        """Total storage in bits."""
        return self.depth * self.word_bits


class CircularBuffer:
    """Fixed-size circular buffer retaining the most recent samples.

    The receiver input uses one per antenna, "large enough to handle time
    synchroniser latency", so that once the start of frame is located the
    LTS samples are still available to be replayed into the FFT.
    """

    def __init__(self, depth: int, word_bits: int = 32) -> None:
        if depth <= 0:
            raise ValueError("depth must be positive")
        self.depth = depth
        self.word_bits = word_bits
        self._data = np.zeros(depth, dtype=np.complex128)
        self._write_index = 0
        self._count = 0

    def push(self, value: complex) -> None:
        """Write one sample, overwriting the oldest when full."""
        self._data[self._write_index] = value
        self._write_index = (self._write_index + 1) % self.depth
        self._count = min(self._count + 1, self.depth)

    def push_many(self, values: Iterable[complex]) -> None:
        """Write many samples."""
        for value in values:
            self.push(value)

    def __len__(self) -> int:
        return self._count

    def latest(self, count: int) -> np.ndarray:
        """The most recent ``count`` samples, oldest first."""
        if count > self._count:
            raise ValueError(f"only {self._count} samples available, asked for {count}")
        end = self._write_index
        start = (end - count) % self.depth
        if start < end:
            return self._data[start:end].copy()
        return np.concatenate([self._data[start:], self._data[:end]])

    @property
    def memory_bits(self) -> int:
        """Total storage in bits."""
        return self.depth * self.word_bits

"""FPGA resource accounting types.

These classes are the "synthesis report" of the reproduction: every entity's
estimated ALUT / register / memory-bit / DSP usage is a
:class:`ResourceUsage`, and a :class:`ResourceReport` aggregates entities
into the tables published in the paper (Tables 1-4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional


@dataclass(frozen=True)
class ResourceUsage:
    """Resource usage of one hardware entity.

    Attributes mirror the columns of the paper's tables: adaptive look-up
    tables (ALUTs), flip-flop registers, embedded memory bits and 18-bit DSP
    multiplier blocks.
    """

    aluts: int = 0
    registers: int = 0
    memory_bits: int = 0
    dsp_blocks: int = 0

    def __post_init__(self) -> None:
        for name in ("aluts", "registers", "memory_bits", "dsp_blocks"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} cannot be negative")

    def __add__(self, other: "ResourceUsage") -> "ResourceUsage":
        if not isinstance(other, ResourceUsage):
            return NotImplemented
        return ResourceUsage(
            aluts=self.aluts + other.aluts,
            registers=self.registers + other.registers,
            memory_bits=self.memory_bits + other.memory_bits,
            dsp_blocks=self.dsp_blocks + other.dsp_blocks,
        )

    def scale(self, factor: int) -> "ResourceUsage":
        """Replicate this entity ``factor`` times (e.g. one per channel)."""
        if factor < 0:
            raise ValueError("factor cannot be negative")
        return ResourceUsage(
            aluts=self.aluts * factor,
            registers=self.registers * factor,
            memory_bits=self.memory_bits * factor,
            dsp_blocks=self.dsp_blocks * factor,
        )

    def as_dict(self) -> Dict[str, int]:
        """Dictionary form, keyed like the paper's table columns."""
        return {
            "aluts": self.aluts,
            "registers": self.registers,
            "memory_bits": self.memory_bits,
            "dsp_blocks": self.dsp_blocks,
        }


ZERO_USAGE = ResourceUsage()


@dataclass
class ResourceReport:
    """Aggregated per-entity resource usage for one subsystem (TX or RX).

    ``entities`` maps entity name (as used in Tables 2 and 4) to its usage;
    ``overhead`` captures control-path/glue logic not attributed to a named
    entity so the totals can match the paper's system-level tables.
    """

    name: str
    entities: Dict[str, ResourceUsage] = field(default_factory=dict)
    overhead: ResourceUsage = field(default_factory=ResourceUsage)

    def add_entity(self, entity_name: str, usage: ResourceUsage) -> None:
        """Add (or accumulate into) a named entity."""
        if entity_name in self.entities:
            self.entities[entity_name] = self.entities[entity_name] + usage
        else:
            self.entities[entity_name] = usage

    def total(self) -> ResourceUsage:
        """Total usage including the unattributed overhead."""
        total = self.overhead
        for usage in self.entities.values():
            total = total + usage
        return total

    def utilization(self, device: "FpgaDeviceLike") -> Dict[str, float]:
        """Percentage utilisation against a device's available resources."""
        total = self.total()
        return {
            "aluts": 100.0 * total.aluts / device.aluts,
            "registers": 100.0 * total.registers / device.registers,
            "memory_bits": 100.0 * total.memory_bits / device.memory_bits,
            "dsp_blocks": 100.0 * total.dsp_blocks / device.dsp_blocks,
        }

    def entity_share(self, entity_names: Iterable[str]) -> Dict[str, float]:
        """Fraction of each total resource consumed by the named entities.

        Used to reproduce the paper's claim that the channel-estimation and
        equalisation blocks account for 86 % of receiver ALUTs and 77 % of
        DSP multipliers.
        """
        selected = ZERO_USAGE
        for name in entity_names:
            if name not in self.entities:
                raise KeyError(f"unknown entity: {name}")
            selected = selected + self.entities[name]
        total = self.total()
        shares = {}
        for resource in ("aluts", "registers", "memory_bits", "dsp_blocks"):
            denominator = getattr(total, resource)
            numerator = getattr(selected, resource)
            shares[resource] = (numerator / denominator) if denominator else 0.0
        return shares

    def as_table(self) -> Dict[str, Dict[str, int]]:
        """Entity table in dictionary form (one row per entity)."""
        return {name: usage.as_dict() for name, usage in self.entities.items()}


class FpgaDeviceLike:
    """Protocol-ish base: anything with alut/register/memory/dsp capacities."""

    aluts: int
    registers: int
    memory_bits: int
    dsp_blocks: int

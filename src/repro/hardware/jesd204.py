"""JESD204A-style converter interface framing model.

The transmitter in Fig. 1 hands its 16-bit I/Q samples to the digital-IF /
converter stage over a JESD204A interface.  For the reproduction the
interface is modelled functionally: samples are quantised to the converter
word width, packed into frames of a configurable number of octets, and
unpacked back — enough to exercise the datapath interface and account for the
word widths, without modelling the serial line coding.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.dsp.fixedpoint import FixedPointFormat


@dataclass(frozen=True)
class Jesd204Frame:
    """One framed block of converter words."""

    lane: int
    octets: bytes

    def __len__(self) -> int:
        return len(self.octets)


class Jesd204Framer:
    """Pack complex baseband samples into JESD204A-style octet frames.

    Parameters
    ----------
    n_lanes:
        Number of serial lanes (one per antenna in the paper's 4x4 system).
    sample_format:
        Fixed-point format of each I or Q word (16-bit in the paper).
    octets_per_frame:
        Frame size in octets per lane.
    """

    def __init__(
        self,
        n_lanes: int = 4,
        sample_format: FixedPointFormat | None = None,
        octets_per_frame: int = 32,
    ) -> None:
        if n_lanes <= 0:
            raise ValueError("n_lanes must be positive")
        if octets_per_frame <= 0 or octets_per_frame % 4 != 0:
            raise ValueError("octets_per_frame must be a positive multiple of 4")
        self.n_lanes = n_lanes
        self.sample_format = (
            sample_format
            if sample_format is not None
            else FixedPointFormat(word_length=16, frac_bits=14)
        )
        if self.sample_format.word_length != 16:
            raise ValueError("the JESD204A model packs 16-bit converter words")
        self.octets_per_frame = octets_per_frame
        self.samples_per_frame = octets_per_frame // 4  # 2 octets I + 2 octets Q

    # ------------------------------------------------------------------
    def pack(self, samples: np.ndarray) -> List[List[Jesd204Frame]]:
        """Pack per-antenna samples into frames.

        Parameters
        ----------
        samples:
            Complex samples of shape ``(n_lanes, n_samples)``; ``n_samples``
            is zero-padded up to a whole number of frames.

        Returns
        -------
        A list per lane of :class:`Jesd204Frame` objects.
        """
        x = np.asarray(samples, dtype=np.complex128)
        if x.ndim != 2 or x.shape[0] != self.n_lanes:
            raise ValueError(f"expected shape ({self.n_lanes}, n_samples), got {x.shape}")
        n_samples = x.shape[1]
        per_frame = self.samples_per_frame
        n_frames = -(-n_samples // per_frame) if n_samples else 0
        padded = np.zeros((self.n_lanes, n_frames * per_frame), dtype=np.complex128)
        padded[:, :n_samples] = x
        quantised = self.sample_format.quantize_complex(padded)
        scale = 1.0 / self.sample_format.resolution
        i_words = np.round(quantised.real * scale).astype(np.int32)
        q_words = np.round(quantised.imag * scale).astype(np.int32)

        lanes: List[List[Jesd204Frame]] = []
        for lane in range(self.n_lanes):
            frames: List[Jesd204Frame] = []
            for f in range(n_frames):
                start = f * per_frame
                octets = bytearray()
                for s in range(start, start + per_frame):
                    octets += int(i_words[lane, s] & 0xFFFF).to_bytes(2, "big")
                    octets += int(q_words[lane, s] & 0xFFFF).to_bytes(2, "big")
                frames.append(Jesd204Frame(lane=lane, octets=bytes(octets)))
            lanes.append(frames)
        return lanes

    # ------------------------------------------------------------------
    def unpack(self, framed: List[List[Jesd204Frame]]) -> np.ndarray:
        """Reverse :meth:`pack`, returning quantised complex samples per lane."""
        if len(framed) != self.n_lanes:
            raise ValueError(f"expected {self.n_lanes} lanes, got {len(framed)}")
        n_frames = len(framed[0]) if framed[0] else 0
        for lane_frames in framed:
            if len(lane_frames) != n_frames:
                raise ValueError("all lanes must carry the same number of frames")
        per_frame = self.samples_per_frame
        out = np.zeros((self.n_lanes, n_frames * per_frame), dtype=np.complex128)
        resolution = self.sample_format.resolution
        for lane, lane_frames in enumerate(framed):
            for f, frame in enumerate(lane_frames):
                if len(frame.octets) != self.octets_per_frame:
                    raise ValueError("frame has the wrong number of octets")
                for s in range(per_frame):
                    offset = s * 4
                    i_raw = int.from_bytes(frame.octets[offset:offset + 2], "big")
                    q_raw = int.from_bytes(frame.octets[offset + 2:offset + 4], "big")
                    if i_raw >= 0x8000:
                        i_raw -= 0x10000
                    if q_raw >= 0x8000:
                        q_raw -= 0x10000
                    out[lane, f * per_frame + s] = complex(
                        i_raw * resolution, q_raw * resolution
                    )
        return out

    def line_rate_bps(self, sample_rate_hz: float, encoding_overhead: float = 1.25) -> float:
        """Serial line rate per lane (16-bit I + 16-bit Q per sample, 8b/10b)."""
        if sample_rate_hz <= 0:
            raise ValueError("sample_rate_hz must be positive")
        return sample_rate_hz * 32 * encoding_overhead

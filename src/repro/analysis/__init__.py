"""Link-level analysis utilities (extension).

Shannon-capacity and spectral-efficiency helpers used to put the paper's
1 Gbps headline in context: how many bits/s/Hz the 4x4 MIMO-OFDM air
interface actually needs, and at what SNR a 4x4 Rayleigh channel offers that
much capacity.
"""

from repro.analysis.capacity import (
    ergodic_mimo_capacity,
    mimo_capacity,
    required_snr_for_rate,
    spectral_efficiency,
)

__all__ = [
    "mimo_capacity",
    "ergodic_mimo_capacity",
    "spectral_efficiency",
    "required_snr_for_rate",
]

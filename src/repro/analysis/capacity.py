"""MIMO channel capacity and spectral-efficiency analysis.

The paper motivates MIMO with the channel-capacity limit of single-antenna
transmission ("data transmission rate is limited by channel capacity").
These helpers quantify that argument for the reproduced system:

* :func:`mimo_capacity` — Shannon capacity of one channel matrix with equal
  power allocation (no water-filling, matching a transmitter that has no
  channel state information — the paper's open-loop design);
* :func:`ergodic_mimo_capacity` — its average over i.i.d. Rayleigh draws;
* :func:`spectral_efficiency` — the bits/s/Hz the configured air interface
  actually delivers (information rate over the occupied sample rate);
* :func:`required_snr_for_rate` — the SNR at which the ergodic capacity
  first reaches a target spectral efficiency, i.e. where the 1 Gbps
  operating point becomes information-theoretically feasible;
* :func:`ergodic_capacity_curve` — a whole capacity-vs-SNR curve, batched
  over realizations (one stacked ``slogdet`` instead of a Python loop) and
  memoised point by point through the same sharded result store the
  :mod:`repro.sim` sweep engine uses, so analysis notebooks re-plot for
  free and denser grids reuse every previously computed SNR.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Union

import numpy as np
import numpy.typing as npt

from repro.core.config import TransceiverConfig
from repro.core.throughput import throughput_for_config
from repro.mimo.matrix import hermitian
from repro.utils.rng import SeedLike, make_rng
from repro.utils.units import db_to_linear


def mimo_capacity(channel_matrix: npt.ArrayLike, snr_db: float) -> float:
    """Capacity (bits/s/Hz) of one MIMO channel with equal power allocation.

    ``C = log2 det(I + (SNR / n_tx) * H H^H)`` — the open-loop capacity of a
    channel unknown at the transmitter.
    """
    h = np.asarray(channel_matrix, dtype=np.complex128)
    if h.ndim != 2:
        raise ValueError("channel matrix must be 2-D")
    n_rx, n_tx = h.shape
    snr_linear = db_to_linear(snr_db)
    gram = np.eye(n_rx) + (snr_linear / n_tx) * (h @ hermitian(h))
    sign, logdet = np.linalg.slogdet(gram)
    if sign <= 0:
        raise ValueError("capacity computation produced a non-positive determinant")
    return float(logdet / np.log(2.0))


def ergodic_mimo_capacity(
    n_rx: int = 4,
    n_tx: int = 4,
    snr_db: float = 20.0,
    n_realizations: int = 200,
    rng: SeedLike = None,
) -> float:
    """Average capacity over i.i.d. unit-power Rayleigh channel draws.

    All realizations are drawn and evaluated in one batch: a single stacked
    ``slogdet`` over ``(n_realizations, n_rx, n_rx)`` Gram matrices replaces
    the per-draw Python loop.
    """
    if n_realizations <= 0:
        raise ValueError("n_realizations must be positive")
    generator = make_rng(rng)
    h = (
        generator.normal(size=(n_realizations, n_rx, n_tx))
        + 1j * generator.normal(size=(n_realizations, n_rx, n_tx))
    ) / np.sqrt(2.0)
    snr_linear = db_to_linear(snr_db)
    h_conj = np.conj(np.swapaxes(h, -1, -2))  # stacked Hermitian transpose
    gram = np.eye(n_rx)[None] + (snr_linear / n_tx) * (h @ h_conj)
    signs, logdets = np.linalg.slogdet(gram)
    if np.any(signs <= 0):
        raise ValueError("capacity computation produced a non-positive determinant")
    return float(logdets.mean() / np.log(2.0))


def spectral_efficiency(config: Optional[TransceiverConfig] = None) -> float:
    """Delivered spectral efficiency (information bits/s/Hz) of a configuration.

    The occupied bandwidth of the complex-baseband OFDM signal equals the
    sample rate (the paper clocks one sample per 100 MHz cycle), so the
    spectral efficiency is the information rate divided by the clock.
    """
    cfg = config if config is not None else TransceiverConfig()
    model = throughput_for_config(cfg)
    return model.info_bit_rate_bps / cfg.clock_hz


def ergodic_capacity_curve(
    snr_grid_db: Sequence[float],
    n_rx: int = 4,
    n_tx: int = 4,
    n_realizations: int = 200,
    rng: int = 0,
    cache: Union[None, bool, str] = True,
) -> Dict[float, float]:
    """Ergodic capacity (bits/s/Hz) at every SNR of a grid, memoised per point.

    Each SNR point is an independent record in the sharded
    :class:`~repro.sim.store.ResultStore` the sweep engine uses, keyed by
    the point's parameters alone — not the grid it appeared in.  The
    channel draw behind each point is seeded from that same content key, so
    a denser or re-ordered grid reuses every previously computed point
    verbatim and only the new SNRs cost a ``slogdet`` batch.  ``rng`` must
    be an integer seed (not a generator) — the record key has to determine
    the draw.

    Parameters
    ----------
    cache:
        ``True`` (default) uses the shared store directory; a string/path
        selects a specific directory; ``None``/``False`` disables
        memoisation.
    """
    grid = tuple(float(snr) for snr in snr_grid_db)
    store = None
    keys: Dict[float, str] = {}
    curve: Dict[float, float] = {}

    def point_payload(snr: float) -> dict:
        return {
            "record": "ergodic-capacity",
            "n_rx": n_rx,
            "n_tx": n_tx,
            "n_realizations": n_realizations,
            "rng": rng,
            "snr_db": snr,
        }

    if cache:
        from repro.sim.cache import content_key
        from repro.sim.store import ResultStore

        store = ResultStore(None if cache is True else cache)
        keys = {snr: content_key(point_payload(snr), prefix="cap-") for snr in grid}
        found = store.get_many(keys.values())
        for snr in grid:
            payload = found.get(keys[snr])
            if payload is not None and isinstance(payload.get("capacity"), float):
                curve[snr] = payload["capacity"]

    for snr in grid:
        if snr in curve:
            continue
        from repro.sim.cache import content_key

        # Seed from the point's own content so the draw is a pure function
        # of the point — grids of any shape agree on every shared SNR.
        entropy = int(content_key(point_payload(snr)), 16)
        generator = make_rng(np.random.SeedSequence(entropy))
        capacity = ergodic_mimo_capacity(n_rx, n_tx, snr, n_realizations, rng=generator)
        curve[snr] = capacity
        if store is not None:
            store.put(keys[snr], {**point_payload(snr), "capacity": capacity})
    return {snr: curve[snr] for snr in grid}


def required_snr_for_rate(
    target_bits_per_hz: float,
    n_rx: int = 4,
    n_tx: int = 4,
    n_realizations: int = 100,
    rng: SeedLike = 0,
    snr_grid_db: Optional[np.ndarray] = None,
) -> float:
    """Smallest SNR (dB) at which the ergodic capacity reaches a target.

    Returns ``inf`` when no grid point reaches the target.
    """
    if target_bits_per_hz <= 0:
        raise ValueError("target_bits_per_hz must be positive")
    grid = (
        np.asarray(snr_grid_db, dtype=np.float64)
        if snr_grid_db is not None
        else np.arange(0.0, 41.0, 2.0)
    )
    generator = make_rng(rng)
    for snr_db in grid:
        capacity = ergodic_mimo_capacity(
            n_rx, n_tx, float(snr_db), n_realizations, rng=generator
        )
        if capacity >= target_bits_per_hz:
            return float(snr_db)
    return float("inf")

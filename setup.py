"""Setuptools shim.

The canonical project metadata lives in ``pyproject.toml``; this file exists
so the package can be installed in editable mode on offline machines that
lack the ``wheel`` package (``pip install -e . --no-use-pep517`` falls back
to the legacy ``setup.py develop`` path, which needs this shim).
"""

from setuptools import setup

setup()

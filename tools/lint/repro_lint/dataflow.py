"""Lightweight intraprocedural dataflow over array facts.

The shape/dtype/unit rules (SHAPE001, DTYPE001, UNIT001) all need the same
thing: an approximation of what each local variable holds — its array
*shape* (a tuple of literal ints and symbolic dimension names), its complex
*dtype* (``complex64``/``complex128``, or the polymorphic ``backend`` dtype
produced by the :class:`repro.dsp.backend.DspBackend` seam), and its power
*unit* domain (``db`` vs ``linear``).  This module computes those facts
with a forward pass over each function body — assignments, calls,
``einsum``/``reshape``/``transpose``, subscripts, branches — and records
every interesting intermediate step as an *event* the rules pattern-match.

Design constraints, in order:

1. **No false certainty.**  Whenever two branches disagree, a call is not
   understood, or indexing is advanced, the fact degrades to *unknown*
   (``None``).  Rules only fire on facts the pass actually proved.
2. **Module-local summaries.**  A call to a function defined in the same
   module (``self._modulate_block(...)``) uses that function's analysed
   return fact, so a backend-produced dtype survives one hop of
   refactoring into helpers.  Nothing crosses module boundaries.
3. **One pass per file.**  The analysis runs once per module and caches
   its event log on the :class:`~repro_lint.core.FileContext`; every rule
   reads the same log.

Shape contracts are declared with the runtime
:func:`repro.contracts.shaped` decorator; this module re-implements the
small contract grammar (``"(n_rx, n_symbols, fft_size)"`` with ``_``
single-dim wildcards, ``...`` rank wildcards and ``|`` alternatives) so
fixtures can be linted without importing the runtime package — a test
asserts the two parsers agree.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro_lint.names import ImportMap, dotted_name, resolve

# A dimension is a literal int, a symbolic name (the source text of the
# expression that produced it), or None (unknown).
Dim = Union[int, str, None]
# A shape is a tuple of dims, or None when even the rank is unknown.
Shape = Optional[Tuple[Dim, ...]]


@dataclass(frozen=True)
class Fact:
    """What the pass knows about one value.  ``None`` fields mean unknown."""

    shape: Shape = None
    #: "complex64" | "complex128" | "backend" (seam-produced, polymorphic)
    #: | "backend_obj" (a DspBackend instance itself) | None.
    dtype: Optional[str] = None
    #: "db" | "linear" | None.
    unit: Optional[str] = None

    @property
    def rank(self) -> Optional[int]:
        return None if self.shape is None else len(self.shape)

    def merged(self, other: "Fact") -> "Fact":
        """Join of two control-flow paths: keep only what both agree on."""
        return Fact(
            shape=self.shape if self.shape == other.shape else None,
            dtype=self.dtype if self.dtype == other.dtype else None,
            unit=self.unit if self.unit == other.unit else None,
        )


UNKNOWN = Fact()
SCALAR = Fact(shape=())


# ----------------------------------------------------------------------
# Shape-contract grammar (mirrors repro.contracts.parse_contract)
# ----------------------------------------------------------------------

#: One parsed alternative: a tuple of dims where ``None`` is the ``_``
#: wildcard and ``Ellipsis`` matches any run of dimensions.
ContractAlternative = Tuple[object, ...]


def parse_contract(text: str) -> Tuple[ContractAlternative, ...]:
    """Parse a shape-contract string into its alternatives.

    ``"(n_rx, fft_size)"`` -> one alternative; ``"(a,) | (a, b)"`` -> two.
    Raises ``ValueError`` on malformed contracts (the runtime decorator
    raises the same way, so a bad contract fails loudly in both worlds).
    """
    alternatives = []
    for part in text.split("|"):
        part = part.strip()
        if not (part.startswith("(") and part.endswith(")")):
            raise ValueError(f"shape contract {text!r}: alternative {part!r} "
                             "must be parenthesised, e.g. '(n_rx, n_samples)'")
        inner = part[1:-1].strip()
        dims: List[object] = []
        if inner:
            for token in inner.split(","):
                token = token.strip()
                if not token:
                    continue
                if token == "...":
                    dims.append(Ellipsis)
                elif token == "_":
                    dims.append(None)
                elif token.lstrip("+-").isdigit():
                    dims.append(int(token))
                elif token.isidentifier():
                    dims.append(token)
                else:
                    raise ValueError(
                        f"shape contract {text!r}: bad dimension {token!r}"
                    )
        if dims.count(Ellipsis) > 1:
            raise ValueError(f"shape contract {text!r}: at most one '...'")
        alternatives.append(tuple(dims))
    if not alternatives:
        raise ValueError(f"shape contract {text!r} declares no alternative")
    return tuple(alternatives)


@dataclass(frozen=True)
class ShapeContract:
    """The parsed ``@shaped`` contract of one function."""

    qualname: str
    #: parameter name -> alternatives (the special key "return" holds the
    #: declared return contract, when any).
    params: Dict[str, Tuple[ContractAlternative, ...]]
    #: The FunctionDef's positional parameter names (without self/cls).
    arg_names: Tuple[str, ...]
    node: ast.AST = field(compare=False, default=None)


def _contract_from_decorator(call: ast.Call) -> Dict[str, Tuple[ContractAlternative, ...]]:
    """Extract ``{param: alternatives}`` from a ``@shaped(...)`` call node."""
    contracts: Dict[str, Tuple[ContractAlternative, ...]] = {}
    if call.args:
        first = call.args[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            contracts["return"] = parse_contract(first.value)
    for keyword in call.keywords:
        if keyword.arg is None:
            continue
        value = keyword.value
        if isinstance(value, ast.Constant) and isinstance(value.value, str):
            key = "return" if keyword.arg == "returns" else keyword.arg
            contracts[key] = parse_contract(value.value)
    return contracts


def _is_shaped_decorator(node: ast.AST) -> Optional[ast.Call]:
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        if name and name.split(".")[-1] == "shaped":
            return node
    return None


def match_alternative(
    alternative: ContractAlternative,
    shape: Tuple[Dim, ...],
    bindings: Dict[str, Dim],
) -> Optional[str]:
    """Match one contract alternative against a known shape.

    Returns ``None`` on success (updating ``bindings`` with newly-bound
    contract names) or a human-readable reason string on mismatch.
    Symbolic fact dims are compatible with anything except a conflicting
    *literal* binding — the pass never guesses that two different symbols
    are unequal.
    """
    if Ellipsis in alternative:
        cut = alternative.index(Ellipsis)
        head, tail = alternative[:cut], alternative[cut + 1:]
        if len(shape) < len(head) + len(tail):
            return (
                f"rank {len(shape)} is smaller than the contract's "
                f"{len(head) + len(tail)} fixed dimensions"
            )
        pairs = list(zip(head, shape[: len(head)]))
        if tail:
            pairs += list(zip(tail, shape[-len(tail):]))
    else:
        if len(shape) != len(alternative):
            return f"rank {len(shape)} != contract rank {len(alternative)}"
        pairs = list(zip(alternative, shape))
    for spec, dim in pairs:
        if spec is None:
            continue
        if isinstance(spec, int):
            if isinstance(dim, int) and dim != spec:
                return f"dimension {dim} != contract literal {spec}"
            continue
        # A named contract dimension: bind on first sight, then require
        # later sights to be consistent with the binding where decidable.
        bound = bindings.get(spec)
        if bound is None:
            if dim is not None:
                bindings[spec] = dim
        elif (
            isinstance(bound, int)
            and isinstance(dim, int)
            and bound != dim
        ):
            return (
                f"contract dimension '{spec}' bound to both {bound} and {dim}"
            )
    return None


def match_contract(
    alternatives: Tuple[ContractAlternative, ...],
    shape: Tuple[Dim, ...],
    bindings: Dict[str, Dim],
) -> Optional[str]:
    """Match a shape against any alternative; None on success."""
    reasons = []
    for alternative in alternatives:
        trial = dict(bindings)
        reason = match_alternative(alternative, shape, trial)
        if reason is None:
            bindings.update(trial)
            return None
        reasons.append(reason)
    return "; ".join(reasons)


def format_alternatives(alternatives: Tuple[ContractAlternative, ...]) -> str:
    def one(alt: ContractAlternative) -> str:
        parts = []
        for dim in alt:
            if dim is Ellipsis:
                parts.append("...")
            elif dim is None:
                parts.append("_")
            else:
                parts.append(str(dim))
        return "(" + ", ".join(parts) + ")"

    return " | ".join(one(alt) for alt in alternatives)


# ----------------------------------------------------------------------
# Event log
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class BinOpEvent:
    node: ast.BinOp
    left: Fact
    right: Fact
    func: str


@dataclass(frozen=True)
class StoreEvent:
    """A subscript assignment ``target[...] = value``."""

    node: ast.AST
    target: Fact
    value: Fact
    func: str


@dataclass(frozen=True)
class CallEvent:
    node: ast.Call
    canonical: Optional[str]
    arg_facts: Tuple[Fact, ...]
    kw_facts: Dict[str, Fact]
    func: str


@dataclass(frozen=True)
class ConcatEvent:
    """``np.concatenate``/``np.stack``-family call with element facts."""

    node: ast.Call
    elements: Tuple[Fact, ...]
    func: str


@dataclass(frozen=True)
class EinsumEvent:
    node: ast.Call
    spec: str
    operands: Tuple[Fact, ...]
    func: str


@dataclass(frozen=True)
class ShapedCallEvent:
    """A call to a function carrying a ``@shaped`` contract."""

    node: ast.Call
    contract: ShapeContract
    #: parameter name -> (argument node, fact) for arguments we could bind.
    bound: Dict[str, Tuple[ast.AST, Fact]]
    func: str


@dataclass(frozen=True)
class ReturnSetEvent:
    """All return-statement facts of one analysed function."""

    node: ast.AST  # the FunctionDef
    qualname: str
    facts: Tuple[Tuple[ast.AST, Fact], ...]


@dataclass(frozen=True)
class UnpackEvent:
    """``a, b, c = x.shape`` — arity vs the known rank of ``x``."""

    node: ast.AST
    n_targets: int
    fact: Fact
    func: str


@dataclass
class EventLog:
    binops: List[BinOpEvent] = field(default_factory=list)
    stores: List[StoreEvent] = field(default_factory=list)
    calls: List[CallEvent] = field(default_factory=list)
    concats: List[ConcatEvent] = field(default_factory=list)
    einsums: List[EinsumEvent] = field(default_factory=list)
    shaped_calls: List[ShapedCallEvent] = field(default_factory=list)
    return_sets: List[ReturnSetEvent] = field(default_factory=list)
    unpacks: List[UnpackEvent] = field(default_factory=list)


# ----------------------------------------------------------------------
# Naming conventions (the unit domain is carried by names)
# ----------------------------------------------------------------------

#: Names that denote linear-domain power quantities without a suffix.
LINEAR_NAMES = frozenset(
    {
        "noise_variance",
        "noise_power",
        "signal_power",
        "variance",
        "power",
        "snr_linear",
    }
)

#: Sanctioned conversion callables (matched on the last dotted segment).
DB_TO_LINEAR_CONVERTERS = frozenset({"db_to_linear", "amplitude_db_to_gain"})
LINEAR_TO_DB_CONVERTERS = frozenset({"linear_to_db"})
#: Calls producing a linear-domain quantity by construction.
LINEAR_PRODUCERS = frozenset({"noise_variance_for_snr", "occupied_power"})


def unit_from_name(name: str) -> Optional[str]:
    """The unit domain a bare name advertises, if any."""
    if name.endswith("_db"):
        return "db"
    if name.endswith("_linear") or name in LINEAR_NAMES:
        return "linear"
    return None


#: numpy constructors whose first argument is the shape.
_SHAPE_CTORS = frozenset({"numpy.zeros", "numpy.ones", "numpy.empty", "numpy.full"})
#: numpy functions that preserve their first argument's fact wholesale.
_ELEMENTWISE = frozenset(
    {
        "numpy.exp",
        "numpy.conj",
        "numpy.conjugate",
        "numpy.sqrt",
        "numpy.ascontiguousarray",
        "numpy.copy",
    }
)
_CONCAT_FUNCS = frozenset(
    {"numpy.concatenate", "numpy.stack", "numpy.vstack", "numpy.hstack"}
)
_COMPLEX_DTYPES = {
    "numpy.complex64": "complex64",
    "numpy.complex128": "complex128",
    "complex64": "complex64",
    "complex128": "complex128",
}
#: DspBackend methods that produce arrays in the backend's working dtype.
_BACKEND_PRODUCERS = frozenset({"fft", "ifft", "asarray", "zeros"})


def _dim_of(node: ast.AST) -> Dim:
    """A shape-tuple element as a dim: literal int, symbol, or unknown."""
    if isinstance(node, ast.Constant) and isinstance(node.value, int):
        return node.value
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        inner = _dim_of(node.operand)
        return -inner if isinstance(inner, int) else None
    if isinstance(node, (ast.Name, ast.Attribute)):
        name = dotted_name(node)
        return name
    return None


def _shape_from_arg(node: ast.AST) -> Shape:
    """Shape from a constructor's shape argument (tuple/list/scalar)."""
    if isinstance(node, (ast.Tuple, ast.List)):
        return tuple(_dim_of(element) for element in node.elts)
    dim = _dim_of(node)
    if dim is None:
        return None
    return (dim,)


def _dtype_from_node(node: ast.AST, imports: ImportMap) -> Optional[str]:
    """Complex dtype named by a ``dtype=`` argument, if recognisable."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return _COMPLEX_DTYPES.get(node.value)
    canonical = resolve(node, imports)
    if canonical is not None:
        return _COMPLEX_DTYPES.get(canonical)
    return None


def _dtype_from_annotation(node: ast.AST, imports: ImportMap) -> Optional[str]:
    """Complex dtype of an ``NDArray[np.complex64]``-style annotation."""
    # Annotations may be strings under `from __future__ import annotations`
    # at runtime, but in the AST they are ordinary subscript expressions.
    if isinstance(node, ast.Subscript):
        base = resolve(node.value, imports)
        if base and base.split(".")[-1] == "NDArray":
            return _dtype_from_node(node.slice, imports)
    return None


def _broadcast(left: Shape, right: Shape) -> Shape:
    if left is None or right is None:
        return None
    if len(left) < len(right):
        left, right = right, left
    offset = len(left) - len(right)
    dims: List[Dim] = list(left[:offset])
    for a, b in zip(left[offset:], right):
        if a == b:
            dims.append(a)
        elif b == 1:
            dims.append(a)
        elif a == 1:
            dims.append(b)
        elif isinstance(a, int) and isinstance(b, int):
            # Incompatible literal dims: broadcasting would raise at
            # runtime.  Degrade to unknown; SHAPE001 reports via events.
            dims.append(None)
        else:
            dims.append(None)
    return tuple(dims)


def _promote_dtype(left: Optional[str], right: Optional[str]) -> Optional[str]:
    if left == right:
        return left
    pair = {left, right}
    if pair == {"complex64", "complex128"}:
        return "complex128"
    if "backend" in pair and ("complex128" in pair or "complex64" in pair):
        # The hard-coded side wins under numpy promotion when it is the
        # wider double dtype; the result is no longer backend-polymorphic.
        return "complex128" if "complex128" in pair else None
    return None


def _combine_unit(op: ast.operator, left: Optional[str], right: Optional[str]) -> Optional[str]:
    if isinstance(op, (ast.Add, ast.Sub)):
        if left == right:
            return left
        if left is None:
            return right
        if right is None:
            return left
        return None
    if isinstance(op, (ast.Mult, ast.Div)):
        if left == "linear" and right in (None, "linear"):
            return "linear" if right == "linear" else None
        return None
    return None


# ----------------------------------------------------------------------
# The analysis itself
# ----------------------------------------------------------------------

class ModuleDataflow:
    """One module's forward dataflow pass and its event log."""

    def __init__(self, tree: ast.AST, imports: Optional[ImportMap] = None) -> None:
        self.tree = tree
        self.imports = imports if imports is not None else ImportMap(tree)
        self.events = EventLog()
        #: (class or "", function name) -> FunctionDef
        self.functions: Dict[Tuple[str, str], ast.AST] = {}
        #: (class or "", function name) -> ShapeContract
        self.contracts: Dict[Tuple[str, str], ShapeContract] = {}
        self._summaries: Dict[Tuple[str, str], Fact] = {}
        self._in_progress: set = set()
        self._collect()

    # -- collection ----------------------------------------------------

    def _collect(self) -> None:
        def visit(node: ast.AST, classname: str) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.ClassDef):
                    visit(child, child.name)
                elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    key = (classname, child.name)
                    self.functions[key] = child
                    contract = self._contract_of(child, classname)
                    if contract is not None:
                        self.contracts[key] = contract
                    # Nested defs are analysed standalone, without outer env.
                    visit(child, classname)
                else:
                    visit(child, classname)

        visit(self.tree, "")

    def _contract_of(self, func: ast.AST, classname: str) -> Optional[ShapeContract]:
        for decorator in func.decorator_list:
            call = _is_shaped_decorator(decorator)
            if call is None:
                continue
            try:
                params = _contract_from_decorator(call)
            except ValueError:
                return None  # malformed contracts fail at runtime import
            args = [a.arg for a in func.args.posonlyargs + func.args.args]
            if classname and args and args[0] in ("self", "cls"):
                args = args[1:]
            qual = f"{classname}.{func.name}" if classname else func.name
            return ShapeContract(
                qualname=qual, params=params, arg_names=tuple(args), node=func
            )
        return None

    # -- public driver -------------------------------------------------

    def run(self) -> EventLog:
        """Analyse every function (plus module level) once; return events."""
        for key in list(self.functions):
            self._summary(key)
        env: Dict[str, Fact] = {}
        self._exec_block(list(ast.iter_child_nodes(self.tree)), env, "<module>")
        return self.events

    # -- function summaries --------------------------------------------

    def _summary(self, key: Tuple[str, str]) -> Fact:
        if key in self._summaries:
            return self._summaries[key]
        if key in self._in_progress:
            return UNKNOWN  # recursion: no summary
        func = self.functions.get(key)
        if func is None:
            return UNKNOWN
        self._in_progress.add(key)
        try:
            fact = self._analyze_function(key, func)
        finally:
            self._in_progress.discard(key)
        self._summaries[key] = fact
        return fact

    def _param_fact(self, name: str, annotation: Optional[ast.AST],
                    contract: Optional[ShapeContract]) -> Fact:
        shape: Shape = None
        if contract is not None and name in contract.params:
            alternatives = contract.params[name]
            if len(alternatives) == 1 and Ellipsis not in alternatives[0]:
                shape = tuple(
                    dim if isinstance(dim, int) else
                    (dim if isinstance(dim, str) else None)
                    for dim in alternatives[0]
                )
        dtype = None
        if annotation is not None:
            dtype = _dtype_from_annotation(annotation, self.imports)
        return Fact(shape=shape, dtype=dtype, unit=unit_from_name(name))

    def _analyze_function(self, key: Tuple[str, str], func: ast.AST) -> Fact:
        classname, name = key
        qual = f"{classname}.{name}" if classname else name
        contract = self.contracts.get(key)
        env: Dict[str, Fact] = {}
        args = func.args
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            if arg.arg in ("self", "cls"):
                continue
            env[arg.arg] = self._param_fact(arg.arg, arg.annotation, contract)
        # Lazy summaries may re-enter here for a callee mid-analysis;
        # save and restore the per-function state around the body walk.
        prev_returns = getattr(self, "_returns", None)
        prev_classname = getattr(self, "_classname", "")
        self._returns: List[Tuple[ast.AST, Fact]] = []
        self._classname = classname
        try:
            self._exec_block(func.body, env, qual)
            facts = tuple(self._returns)
        finally:
            self._classname = prev_classname
            if prev_returns is None:
                delattr(self, "_returns")
            else:
                self._returns = prev_returns
        if facts:
            self.events.return_sets.append(
                ReturnSetEvent(node=func, qualname=qual, facts=facts)
            )
        summary = UNKNOWN
        if facts:
            summary = facts[0][1]
            for _, fact in facts[1:]:
                summary = summary.merged(fact)
        # The declared return contract beats the body analysis for shape.
        if contract is not None and "return" in contract.params:
            alternatives = contract.params["return"]
            if len(alternatives) == 1 and Ellipsis not in alternatives[0]:
                shape = tuple(
                    dim if isinstance(dim, (int, str)) else None
                    for dim in alternatives[0]
                )
                summary = Fact(shape=shape, dtype=summary.dtype, unit=summary.unit)
        return summary

    # -- statements ----------------------------------------------------

    def _exec_block(self, stmts: Sequence[ast.stmt], env: Dict[str, Fact],
                    funcname: str) -> None:
        for stmt in stmts:
            self._exec_stmt(stmt, env, funcname)

    def _exec_stmt(self, stmt: ast.stmt, env: Dict[str, Fact], funcname: str) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # analysed separately
        if isinstance(stmt, ast.Assign):
            fact = self._eval(stmt.value, env, funcname)
            for target in stmt.targets:
                self._assign(target, stmt.value, fact, env, funcname)
        elif isinstance(stmt, ast.AnnAssign):
            fact = UNKNOWN
            if stmt.value is not None:
                fact = self._eval(stmt.value, env, funcname)
            dtype = _dtype_from_annotation(stmt.annotation, self.imports)
            if dtype is not None:
                fact = Fact(shape=fact.shape, dtype=dtype, unit=fact.unit)
            if isinstance(stmt.target, ast.Name):
                env[stmt.target.id] = fact
        elif isinstance(stmt, ast.AugAssign):
            left = self._eval(stmt.target, env, funcname)
            right = self._eval(stmt.value, env, funcname)
            binop = ast.BinOp(left=stmt.target, op=stmt.op, right=stmt.value)
            ast.copy_location(binop, stmt)
            self.events.binops.append(
                BinOpEvent(node=binop, left=left, right=right, func=funcname)
            )
            if isinstance(stmt.target, ast.Name):
                # In-place updates keep the buffer's dtype; only join the
                # unit/shape information.
                env[stmt.target.id] = Fact(
                    shape=_broadcast(left.shape, right.shape),
                    dtype=left.dtype,
                    unit=_combine_unit(stmt.op, left.unit, right.unit),
                )
        elif isinstance(stmt, ast.Return):
            fact = UNKNOWN
            if stmt.value is not None:
                fact = self._eval(stmt.value, env, funcname)
            if hasattr(self, "_returns"):
                self._returns.append((stmt, fact))
        elif isinstance(stmt, ast.Expr):
            self._eval(stmt.value, env, funcname)
        elif isinstance(stmt, ast.If):
            self._eval(stmt.test, env, funcname)
            then_env = dict(env)
            self._exec_block(stmt.body, then_env, funcname)
            else_env = dict(env)
            self._exec_block(stmt.orelse, else_env, funcname)
            self._merge_into(env, then_env, else_env)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._eval(stmt.iter, env, funcname)
            body_env = dict(env)
            for name in _names_of(stmt.target):
                body_env[name] = UNKNOWN
            self._exec_block(stmt.body, body_env, funcname)
            self._exec_block(stmt.orelse, body_env, funcname)
            self._merge_into(env, env, body_env)
        elif isinstance(stmt, ast.While):
            self._eval(stmt.test, env, funcname)
            body_env = dict(env)
            self._exec_block(stmt.body, body_env, funcname)
            self._exec_block(stmt.orelse, body_env, funcname)
            self._merge_into(env, env, body_env)
        elif isinstance(stmt, ast.Try):
            body_env = dict(env)
            self._exec_block(stmt.body, body_env, funcname)
            merged = dict(env)
            self._merge_into(merged, env, body_env)
            for handler in stmt.handlers:
                handler_env = dict(merged)
                self._exec_block(handler.body, handler_env, funcname)
                self._merge_into(merged, merged, handler_env)
            env.clear()
            env.update(merged)
            self._exec_block(stmt.orelse, env, funcname)
            self._exec_block(stmt.finalbody, env, funcname)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._eval(item.context_expr, env, funcname)
                if item.optional_vars is not None:
                    for name in _names_of(item.optional_vars):
                        env[name] = UNKNOWN
            self._exec_block(stmt.body, env, funcname)
        elif isinstance(stmt, ast.Assert):
            self._eval(stmt.test, env, funcname)
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self._eval(stmt.exc, env, funcname)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    env.pop(target.id, None)
        elif isinstance(stmt, (ast.Global, ast.Nonlocal)):
            for name in stmt.names:
                env[name] = UNKNOWN

    @staticmethod
    def _merge_into(env: Dict[str, Fact], a: Dict[str, Fact], b: Dict[str, Fact]) -> None:
        merged = {}
        for name in set(a) | set(b):
            merged[name] = a.get(name, UNKNOWN).merged(b.get(name, UNKNOWN))
        env.clear()
        env.update(merged)

    def _assign(self, target: ast.AST, value_node: ast.AST, fact: Fact,
                env: Dict[str, Fact], funcname: str) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = fact
        elif isinstance(target, ast.Subscript):
            target_fact = self._eval(target.value, env, funcname)
            self.events.stores.append(
                StoreEvent(node=target, target=target_fact, value=fact, func=funcname)
            )
        elif isinstance(target, (ast.Tuple, ast.List)):
            # ``a, b, c = x.shape`` — the load-bearing unpack: it both
            # checks a known rank and *infers* an unknown one.
            if (
                isinstance(value_node, ast.Attribute)
                and value_node.attr == "shape"
            ):
                source = self._eval(value_node.value, env, funcname)
                n = len(target.elts)
                if source.shape is not None and len(source.shape) != n:
                    self.events.unpacks.append(
                        UnpackEvent(node=target, n_targets=n, fact=source,
                                    func=funcname)
                    )
                elif source.shape is None and isinstance(value_node.value, ast.Name):
                    names = tuple(
                        element.id if isinstance(element, ast.Name) else None
                        for element in target.elts
                    )
                    env[value_node.value.id] = Fact(
                        shape=names, dtype=source.dtype, unit=source.unit
                    )
                for element in target.elts:
                    if isinstance(element, ast.Name):
                        env[element.id] = SCALAR
                return
            if isinstance(value_node, (ast.Tuple, ast.List)) and len(
                value_node.elts
            ) == len(target.elts):
                for element, val in zip(target.elts, value_node.elts):
                    self._assign(element, val, self._eval(val, env, funcname),
                                 env, funcname)
                return
            for name in _names_of(target):
                env[name] = UNKNOWN
        elif isinstance(target, ast.Starred):
            self._assign(target.value, value_node, UNKNOWN, env, funcname)
        # Attribute targets (self.x = ...) are out of scope.

    # -- expressions ---------------------------------------------------

    def _eval(self, node: ast.AST, env: Dict[str, Fact], funcname: str) -> Fact:
        if isinstance(node, ast.Name):
            if node.id in env:
                return env[node.id]
            return Fact(unit=unit_from_name(node.id))
        if isinstance(node, ast.Constant):
            if isinstance(node.value, (int, float, complex)) and not isinstance(
                node.value, bool
            ):
                return SCALAR
            return UNKNOWN
        if isinstance(node, ast.Attribute):
            base = self._eval(node.value, env, funcname)
            if node.attr == "T":
                shape = None if base.shape is None else tuple(reversed(base.shape))
                return Fact(shape=shape, dtype=base.dtype, unit=base.unit)
            if node.attr in ("real", "imag"):
                return Fact(shape=base.shape, dtype=None, unit=base.unit)
            return Fact(unit=unit_from_name(node.attr))
        if isinstance(node, ast.BinOp):
            left = self._eval(node.left, env, funcname)
            right = self._eval(node.right, env, funcname)
            self.events.binops.append(
                BinOpEvent(node=node, left=left, right=right, func=funcname)
            )
            return Fact(
                shape=_broadcast(left.shape, right.shape),
                dtype=_promote_dtype(left.dtype, right.dtype),
                unit=_combine_unit(node.op, left.unit, right.unit),
            )
        if isinstance(node, ast.UnaryOp):
            return self._eval(node.operand, env, funcname)
        if isinstance(node, ast.Call):
            return self._eval_call(node, env, funcname)
        if isinstance(node, ast.Subscript):
            return self._eval_subscript(node, env, funcname)
        if isinstance(node, ast.IfExp):
            self._eval(node.test, env, funcname)
            return self._eval(node.body, env, funcname).merged(
                self._eval(node.orelse, env, funcname)
            )
        if isinstance(node, (ast.Tuple, ast.List, ast.Set, ast.Dict)):
            for child in ast.iter_child_nodes(node):
                self._eval(child, env, funcname)
            return UNKNOWN
        if isinstance(node, (ast.BoolOp, ast.Compare)):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    self._eval(child, env, funcname)
            return UNKNOWN
        if isinstance(node, ast.Starred):
            return self._eval(node.value, env, funcname)
        return UNKNOWN

    def _method_call_base(self, func: ast.AST) -> Optional[Tuple[ast.AST, str]]:
        """(base expression, method name) of an ``x.m(...)`` call."""
        if isinstance(func, ast.Attribute):
            return func.value, func.attr
        return None

    def _resolve_local(self, func: ast.AST) -> Optional[Tuple[str, str]]:
        """Key of a same-module function this call targets, if any."""
        if isinstance(func, ast.Name):
            key = ("", func.id)
            if key in self.functions:
                return key
            # An unqualified reference to a method of the enclosing class
            # (rare) is not resolved.
            return None
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            if func.value.id in ("self", "cls"):
                classname = getattr(self, "_classname", "")
                key = (classname, func.attr)
                if key in self.functions:
                    return key
        return None

    def _eval_call(self, node: ast.Call, env: Dict[str, Fact], funcname: str) -> Fact:
        arg_facts = tuple(self._eval(arg, env, funcname) for arg in node.args)
        kw_facts = {
            keyword.arg: self._eval(keyword.value, env, funcname)
            for keyword in node.keywords
            if keyword.arg is not None
        }
        canonical = resolve(node.func, self.imports)
        self.events.calls.append(
            CallEvent(node=node, canonical=canonical, arg_facts=arg_facts,
                      kw_facts=kw_facts, func=funcname)
        )

        # Same-module functions: shaped-contract call sites + summaries.
        local = self._resolve_local(node.func)
        if local is not None:
            contract = self.contracts.get(local)
            if contract is not None:
                bound: Dict[str, Tuple[ast.AST, Fact]] = {}
                for position, arg in enumerate(node.args):
                    if position < len(contract.arg_names):
                        bound[contract.arg_names[position]] = (
                            arg, arg_facts[position]
                        )
                for keyword in node.keywords:
                    if keyword.arg is not None:
                        bound[keyword.arg] = (
                            keyword.value, kw_facts[keyword.arg]
                        )
                self.events.shaped_calls.append(
                    ShapedCallEvent(node=node, contract=contract, bound=bound,
                                    func=funcname)
                )
            return self._summary(local)

        # Backend seam: method calls on a DspBackend value.
        method = self._method_call_base(node.func)
        if method is not None:
            base_node, attr = method
            base_fact = self._eval(base_node, env, funcname)
            base_name = dotted_name(base_node) or ""
            is_backend = base_fact.dtype == "backend_obj" or (
                base_name.split(".")[-1] in ("backend", "_backend")
            )
            if is_backend and attr in _BACKEND_PRODUCERS:
                shape = None
                if attr == "zeros" and node.args:
                    shape = _shape_from_arg(node.args[0])
                elif attr in ("fft", "ifft", "asarray") and arg_facts:
                    shape = arg_facts[0].shape
                return Fact(shape=shape, dtype="backend")
            if attr == "astype" and node.args:
                dtype = _dtype_from_node(node.args[0], self.imports)
                base = self._eval(base_node, env, funcname)
                return Fact(shape=base.shape, dtype=dtype, unit=base.unit)
            if attr == "reshape":
                base = self._eval(base_node, env, funcname)
                if len(node.args) == 1:
                    shape = _shape_from_arg(node.args[0])
                else:
                    shape = tuple(_dim_of(arg) for arg in node.args)
                shape = _normalise_reshape(shape)
                return Fact(shape=shape, dtype=base.dtype, unit=base.unit)
            if attr == "transpose":
                base = self._eval(base_node, env, funcname)
                return Fact(shape=_transpose_shape(base.shape, node.args),
                            dtype=base.dtype, unit=base.unit)
            if attr in ("copy", "conj", "conjugate"):
                return self._eval(base_node, env, funcname)
            if attr in ("ravel", "flatten"):
                base = self._eval(base_node, env, funcname)
                return Fact(shape=(None,), dtype=base.dtype, unit=base.unit)

        if canonical is None:
            return UNKNOWN
        tail = canonical.split(".")[-1]

        # Unit-domain producers and converters.
        if tail in DB_TO_LINEAR_CONVERTERS or tail in LINEAR_PRODUCERS:
            shape = arg_facts[0].shape if arg_facts else None
            return Fact(shape=shape, unit="linear")
        if tail in LINEAR_TO_DB_CONVERTERS:
            shape = arg_facts[0].shape if arg_facts else None
            return Fact(shape=shape, unit="db")

        # Backend factories.
        if canonical.endswith("get_backend") or canonical.endswith("default_backend"):
            return Fact(dtype="backend_obj")

        # numpy surface.
        if canonical in _SHAPE_CTORS and node.args:
            shape = _shape_from_arg(node.args[0])
            dtype = None
            for keyword in node.keywords:
                if keyword.arg == "dtype":
                    dtype = _dtype_from_node(keyword.value, self.imports)
            return Fact(shape=shape, dtype=dtype)
        if canonical in ("numpy.asarray", "numpy.array") and node.args:
            inner = arg_facts[0]
            dtype = inner.dtype
            for keyword in node.keywords:
                if keyword.arg == "dtype":
                    dtype = _dtype_from_node(keyword.value, self.imports) or None
            return Fact(shape=inner.shape, dtype=dtype, unit=inner.unit)
        if canonical == "numpy.reshape" and node.args:
            inner = arg_facts[0]
            shape = _shape_from_arg(node.args[1]) if len(node.args) > 1 else None
            return Fact(shape=_normalise_reshape(shape), dtype=inner.dtype,
                        unit=inner.unit)
        if canonical == "numpy.transpose" and node.args:
            inner = arg_facts[0]
            return Fact(shape=_transpose_shape(inner.shape, node.args[1:]),
                        dtype=inner.dtype, unit=inner.unit)
        if canonical == "numpy.broadcast_to" and len(node.args) > 1:
            return Fact(shape=_shape_from_arg(node.args[1]),
                        dtype=arg_facts[0].dtype)
        if canonical == "numpy.eye":
            dim = _dim_of(node.args[0]) if node.args else None
            return Fact(shape=(dim, dim))
        if canonical == "numpy.arange":
            return Fact(shape=(None,))
        if canonical in _ELEMENTWISE and arg_facts:
            return arg_facts[0]
        if canonical == "numpy.abs" and arg_facts:
            return Fact(shape=arg_facts[0].shape, unit=arg_facts[0].unit)
        if canonical in _CONCAT_FUNCS and node.args:
            first = node.args[0]
            if isinstance(first, (ast.List, ast.Tuple)):
                elements = tuple(
                    self._eval(element, env, funcname) for element in first.elts
                )
                self.events.concats.append(
                    ConcatEvent(node=node, elements=elements, func=funcname)
                )
                dtype = None
                if elements:
                    dtype = elements[0].dtype
                    for element in elements[1:]:
                        dtype = _promote_dtype(dtype, element.dtype)
                return Fact(dtype=dtype)
            return UNKNOWN
        if canonical == "numpy.einsum" and node.args:
            spec_node = node.args[0]
            if isinstance(spec_node, ast.Constant) and isinstance(
                spec_node.value, str
            ):
                operands = arg_facts[1:]
                self.events.einsums.append(
                    EinsumEvent(node=node, spec=spec_node.value,
                                operands=operands, func=funcname)
                )
                return Fact(shape=_einsum_output_shape(spec_node.value, operands))
            return UNKNOWN
        return UNKNOWN

    def _eval_subscript(self, node: ast.Subscript, env: Dict[str, Fact],
                        funcname: str) -> Fact:
        # ``x.shape[i]`` is a scalar dimension.
        if isinstance(node.value, ast.Attribute) and node.value.attr == "shape":
            self._eval(node.value.value, env, funcname)
            return SCALAR
        base = self._eval(node.value, env, funcname)
        index = node.slice
        index_fact = self._eval(index, env, funcname)
        if base.shape is None:
            return Fact(dtype=base.dtype, unit=base.unit)
        items = list(index.elts) if isinstance(index, ast.Tuple) else [index]
        dims: List[Dim] = list(base.shape)
        out: List[Dim] = []
        advanced = False
        saw_ellipsis = False
        position = 0
        for item in items:
            if isinstance(item, ast.Slice):
                if position < len(dims):
                    out.append(None)  # sliced extent unknown in general
                    position += 1
            elif isinstance(item, ast.Constant) and item.value is Ellipsis:
                saw_ellipsis = True
                remaining = len(dims) - position - sum(
                    1 for rest in items[items.index(item) + 1:]
                    if not (isinstance(rest, ast.Constant) and rest.value is None)
                )
                while position < remaining:
                    out.append(dims[position])
                    position += 1
            elif isinstance(item, ast.Constant) and isinstance(item.value, int):
                position += 1  # integer index drops the axis
            else:
                fact = self._eval(item, env, funcname)
                if fact.shape == () or (
                    isinstance(item, ast.Name) and fact.shape is None
                ):
                    position += 1  # scalar-ish index drops the axis
                else:
                    advanced = True
                    position += 1
        if advanced or saw_ellipsis and position > len(dims):
            return Fact(dtype=base.dtype, unit=base.unit)
        out.extend(dims[position:])
        return Fact(shape=tuple(out), dtype=base.dtype, unit=base.unit)


def _normalise_reshape(shape: Shape) -> Shape:
    if shape is None:
        return None
    return tuple(None if dim == -1 else dim for dim in shape)


def _transpose_shape(shape: Shape, axis_args: Sequence[ast.AST]) -> Shape:
    if shape is None:
        return None
    if not axis_args:
        return tuple(reversed(shape))
    if len(axis_args) == 1 and isinstance(axis_args[0], (ast.Tuple, ast.List)):
        axes = [_dim_of(element) for element in axis_args[0].elts]
    else:
        axes = [_dim_of(arg) for arg in axis_args]
    if len(axes) != len(shape) or any(not isinstance(a, int) for a in axes):
        return None
    try:
        return tuple(shape[a] for a in axes)
    except IndexError:
        return None


def parse_einsum_spec(spec: str) -> Optional[Tuple[List[str], Optional[str]]]:
    """Split an explicit einsum subscript into (input groups, output).

    Implicit-output or ellipsis specs return ``None`` — the pass only
    reasons about the fully explicit form.
    """
    if "..." in spec:
        return None
    spec = spec.replace(" ", "")
    if "->" in spec:
        inputs, output = spec.split("->", 1)
    else:
        inputs, output = spec, None
    groups = inputs.split(",")
    if any(not group.isalpha() for group in groups if group != ""):
        return None
    return groups, output


def _einsum_output_shape(spec: str, operands: Tuple[Fact, ...]) -> Shape:
    parsed = parse_einsum_spec(spec)
    if parsed is None:
        return None
    groups, output = parsed
    if output is None or len(groups) != len(operands):
        return None
    bindings: Dict[str, Dim] = {}
    for group, operand in zip(groups, operands):
        if operand.shape is None or len(operand.shape) != len(group):
            continue
        for letter, dim in zip(group, operand.shape):
            if bindings.get(letter) is None:
                bindings[letter] = dim
    return tuple(bindings.get(letter) for letter in output)


def _names_of(target: ast.AST) -> List[str]:
    names = []
    for node in ast.walk(target):
        if isinstance(node, ast.Name):
            names.append(node.id)
    return names


def analysis_of(ctx) -> EventLog:
    """The module's cached event log (runs the pass on first request)."""
    cached = getattr(ctx, "_dataflow_events", None)
    if cached is None:
        flow = ModuleDataflow(ctx.tree)
        cached = flow.run()
        ctx._dataflow_events = cached
    return cached

"""EXC001/EXC002 — failure discipline of the pooled datapath.

The sweep engine runs bursts in worker pools and *counts* receiver
give-ups: a hot-path failure must surface as
:class:`repro.exceptions.DecodingError` so ``simulate_batch`` folds it
into the loss statistics instead of the whole sweep dying (or worse,
the failure being swallowed and the burst counted as clean).

EXC001 bans the swallowing end: bare ``except:`` and
``except Exception: pass`` hide programming errors and make loss
accounting a lie.  EXC002 guards the raising end: the ``np.linalg``
solvers that can throw ``LinAlgError`` (singular Gram matrices deep in
the noise are a property of the burst, not a bug) must run inside a
``try`` that catches it — the established idiom translates it to
``DecodingError`` (see ``repro/mimo/detector.py``).
"""

from __future__ import annotations

import ast
from typing import List, Set

from repro_lint.core import FileContext, Rule, Violation, register
from repro_lint.names import ImportMap, resolve

#: ``numpy.linalg`` / ``scipy.linalg`` callables that raise ``LinAlgError``
#: on rank-deficient or non-converging inputs.
_RAISING_SOLVERS = {
    "solve",
    "inv",
    "pinv",
    "lstsq",
    "cholesky",
    "qr",
    "svd",
    "eig",
    "eigh",
    "tensorsolve",
    "tensorinv",
    "matrix_power",
}

#: Exception names that count as handling ``LinAlgError`` when they appear
#: in an ``except`` clause guarding a solver call.
_HANDLING_NAMES = {"LinAlgError", "Exception", "BaseException"}


def _handler_names(handler: ast.ExceptHandler) -> Set[str]:
    """Terminal names of the exception classes one handler catches."""
    names: Set[str] = set()
    node = handler.type
    nodes = node.elts if isinstance(node, ast.Tuple) else [node]
    for item in nodes:
        if isinstance(item, ast.Attribute):
            names.add(item.attr)
        elif isinstance(item, ast.Name):
            names.add(item.id)
    return names


def _swallows_everything(handler: ast.ExceptHandler) -> bool:
    """True when the handler body is only ``pass``/``...`` (no re-raise)."""
    for stmt in handler.body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue  # a docstring or bare ``...``
        return False
    return True


@register
class ExceptionDisciplineRule(Rule):
    rule_id = "EXC001"
    name = "no-swallowed-exceptions"
    description = (
        "no bare 'except:' and no 'except Exception: pass' — failures must "
        "be handled, translated or re-raised, never silently swallowed"
    )

    # Applies everywhere make lint looks (src, tools, examples): swallowed
    # errors are poison in analysis scripts too.

    def check(self, ctx: FileContext) -> List[Violation]:
        violations: List[Violation] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                violations.append(
                    self.violation(
                        ctx,
                        node,
                        "bare 'except:' catches SystemExit/KeyboardInterrupt "
                        "too; name the exceptions this code can actually "
                        "handle",
                    )
                )
            elif (
                _handler_names(node) & {"Exception", "BaseException"}
                and _swallows_everything(node)
            ):
                violations.append(
                    self.violation(
                        ctx,
                        node,
                        "'except Exception: pass' silently swallows every "
                        "failure; handle it, translate it to DecodingError, "
                        "or let it propagate",
                    )
                )
        return violations


@register
class LinAlgEscapeRule(Rule):
    rule_id = "EXC002"
    name = "no-raw-linalg-error"
    description = (
        "raising np.linalg solvers in datapath code must sit inside a try "
        "that catches LinAlgError (translate it to DecodingError so pooled "
        "sweeps count a lost frame)"
    )

    def applies_to(self, relpath: str) -> bool:
        return relpath.startswith("src/repro/")

    def check(self, ctx: FileContext) -> List[Violation]:
        imports = ImportMap(ctx.tree)
        violations: List[Violation] = []
        self._walk(ctx, ctx.tree, imports, protected=False, out=violations)
        return violations

    def _walk(
        self,
        ctx: FileContext,
        node: ast.AST,
        imports: ImportMap,
        protected: bool,
        out: List[Violation],
    ) -> None:
        if isinstance(node, ast.Try):
            guards = any(
                handler.type is not None and _handler_names(handler) & _HANDLING_NAMES
                for handler in node.handlers
            )
            for child in node.body:
                self._walk(ctx, child, imports, protected or guards, out)
            # Handlers/else/finally bodies are NOT guarded by this try.
            for handler in node.handlers:
                for child in handler.body:
                    self._walk(ctx, child, imports, protected, out)
            for child in node.orelse + node.finalbody:
                self._walk(ctx, child, imports, protected, out)
            return
        if isinstance(node, ast.Call):
            canonical = resolve(node.func, imports)
            if canonical is not None:
                for namespace in ("numpy.linalg.", "scipy.linalg."):
                    if canonical.startswith(namespace):
                        attr = canonical[len(namespace):]
                        if attr in _RAISING_SOLVERS and not protected:
                            out.append(
                                self.violation(
                                    ctx,
                                    node,
                                    f"{canonical} can raise LinAlgError; wrap "
                                    "it in try/except LinAlgError and raise "
                                    "DecodingError so the sweep engine counts "
                                    "a lost frame",
                                )
                            )
        for child in ast.iter_child_nodes(node):
            self._walk(ctx, child, imports, protected, out)

"""DTYPE001 — no silent complex-precision mixing across the backend seam.

PR 7 made the transform arithmetic a backend decision: the ``"numpy32"``
backend runs the burst datapaths in complex64 precisely so the transform
stages move half the memory.  That property is fragile — numpy silently
*upcasts* whenever a complex64 array meets a complex128 one, so a single
hard-coded ``dtype=np.complex128`` buffer downstream of a backend call
quietly turns the single-precision path back into double precision (or,
on the store side, quietly truncates doubles to singles) while every test
stays green.

This rule uses the dataflow pass to flag, in engine code outside
``repro/dsp`` (the seam may convert; nobody else may):

* arithmetic mixing a complex64 fact with a complex128 fact;
* arithmetic or ``np.concatenate``/``np.stack`` combining a
  *backend-dtype* value (produced by ``DspBackend.fft/ifft/asarray/zeros``)
  with a hard-coded complex dtype;
* subscript stores of a backend-dtype value into a hard-coded complex
  buffer (``buf[...] = backend.ifft(...)`` — the classic silent upcast);
* functions that return a backend-dtype value on one path and a
  hard-coded complex dtype on another, splitting the seam contract.

The sanctioned spellings are ``backend.asarray``/``backend.zeros`` (stay
in the backend dtype) or an explicit, commented conversion at a declared
boundary with a justified suppression.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro_lint.core import FileContext, Rule, Violation, register
from repro_lint.dataflow import Fact, analysis_of

_HARD = ("complex64", "complex128")


def _mix(left: Optional[str], right: Optional[str]) -> Optional[str]:
    """A message when the two dtypes must not meet, else None."""
    pair = {left, right}
    if pair == {"complex64", "complex128"}:
        return (
            "complex64 meets complex128 here; numpy silently upcasts to "
            "complex128 — pick one precision or convert explicitly"
        )
    if "backend" in pair and (pair & set(_HARD)):
        hard = (pair & set(_HARD)).pop()
        return (
            f"backend-dtype value meets hard-coded {hard}; under the "
            "\"numpy32\" backend this silently changes precision — use "
            "backend.asarray/backend.zeros to stay in the backend dtype"
        )
    return None


@register
class DtypeSeamRule(Rule):
    rule_id = "DTYPE001"
    name = "dtype-seam-purity"
    description = (
        "no complex64/complex128 mixing, and no hard-coded complex dtype "
        "meeting a DspBackend-produced value, outside repro/dsp"
    )

    def applies_to(self, relpath: str) -> bool:
        return relpath.startswith("src/repro/") and not relpath.startswith(
            "src/repro/dsp/"
        )

    def check(self, ctx: FileContext) -> List[Violation]:
        events = analysis_of(ctx)
        violations: List[Violation] = []

        for event in events.binops:
            message = _mix(event.left.dtype, event.right.dtype)
            if message is not None:
                violations.append(self.violation(ctx, event.node, message))

        for event in events.stores:
            if event.value.dtype == "backend" and event.target.dtype in _HARD:
                violations.append(
                    self.violation(
                        ctx,
                        event.node,
                        "backend-dtype value stored into a hard-coded "
                        f"{event.target.dtype} buffer; the store casts "
                        "silently and the buffer pins the precision — "
                        "allocate the buffer with backend.zeros instead",
                    )
                )
            elif (
                event.value.dtype in _HARD
                and event.target.dtype == "backend"
            ):
                violations.append(
                    self.violation(
                        ctx,
                        event.node,
                        f"hard-coded {event.value.dtype} value stored into a "
                        "backend-dtype buffer casts silently under the "
                        "\"numpy32\" backend — produce the value via "
                        "backend.asarray",
                    )
                )

        for event in events.concats:
            dtypes = {element.dtype for element in event.elements}
            message = None
            if {"complex64", "complex128"} <= dtypes:
                message = (
                    "concatenating complex64 with complex128 silently "
                    "upcasts the result to complex128"
                )
            elif "backend" in dtypes and (dtypes & set(_HARD)):
                hard = (dtypes & set(_HARD)).pop()
                message = (
                    f"concatenating a backend-dtype value with hard-coded "
                    f"{hard} defeats the \"numpy32\" backend — build the "
                    "companion array with backend.zeros/backend.asarray"
                )
            if message is not None:
                violations.append(self.violation(ctx, event.node, message))

        for event in events.return_sets:
            conflict = _return_conflict(event.facts)
            if conflict is not None:
                node, dtypes = conflict
                violations.append(
                    self.violation(
                        ctx,
                        node,
                        f"{event.qualname} returns {dtypes[0]} on one path "
                        f"and {dtypes[1]} on another; callers get a "
                        "backend-dependent precision surprise — make every "
                        "return path produce the backend dtype",
                    )
                )
        return violations


def _return_conflict(facts) -> Optional[Tuple[object, Tuple[str, str]]]:
    """First return whose dtype splits the seam contract, if any."""
    seen_backend = None
    seen_hard = None
    for node, fact in facts:
        if fact.dtype == "backend":
            seen_backend = (node, fact)
        elif fact.dtype in _HARD:
            seen_hard = (node, fact)
    if seen_backend is not None and seen_hard is not None:
        # Anchor on the hard-coded return — that is the line to fix.
        return seen_hard[0], (seen_hard[1].dtype, "the backend dtype")
    return None

"""SHAPE001 — declared shape contracts must hold where shapes are static.

The datapath is a chain of fixed-shape tensor stages, and the costliest
historical bugs were *shape* mistakes that no unit test saw until a sweep
ran (the sample-delay length bug, the truncated-FFT-window clamp).  The
runtime :func:`repro.contracts.shaped` decorator turns a stage's shape
expectations into a declaration::

    @shaped(streams="(n_rx, n_samples)")
    def equalize_burst(self, streams, ...): ...

This rule checks those declarations statically wherever the dataflow pass
(:mod:`repro_lint.dataflow`) can prove what a call site passes — a rank
mismatch, a violated literal dimension, or one contract name bound to two
different literal sizes all fire.  Independent of decorators it also
checks the shape contracts the code states *inline*:

* explicit ``np.einsum`` subscripts — operand count, output letters that
  never appear in an input, operand rank vs subscript arity, and one
  letter bound to two different literal dimensions;
* tuple unpacks of ``x.shape`` whose arity contradicts the known rank;
* broadcasting two known literal dimensions that can never broadcast.

Everything the pass cannot prove stays silent — symbolic dimensions are
only compared when both sides are literals.
"""

from __future__ import annotations

import ast
from typing import List

from repro_lint.core import FileContext, Rule, Violation, register
from repro_lint.dataflow import (
    Fact,
    analysis_of,
    format_alternatives,
    match_contract,
    parse_einsum_spec,
)


@register
class ShapeContractRule(Rule):
    rule_id = "SHAPE001"
    name = "shape-contracts"
    description = (
        "declared @shaped contracts, einsum subscripts and shape unpacks "
        "must hold wherever dimensions are statically known"
    )

    def applies_to(self, relpath: str) -> bool:
        return True

    def check(self, ctx: FileContext) -> List[Violation]:
        events = analysis_of(ctx)
        violations: List[Violation] = []

        # 1. @shaped contracts at statically-known call sites.
        for event in events.shaped_calls:
            bindings: dict = {}
            for param, alternatives in event.contract.params.items():
                if param == "return":
                    continue
                if param not in event.bound:
                    continue
                arg_node, fact = event.bound[param]
                # Rank-0 facts are plain Python scalars as far as this
                # pass can tell, and the runtime decorator skips
                # non-array arguments entirely — matching them here
                # would flag calls the runtime deliberately tolerates.
                if fact.shape is None or fact.shape == ():
                    continue
                reason = match_contract(alternatives, fact.shape, bindings)
                if reason is not None:
                    violations.append(
                        self.violation(
                            ctx,
                            arg_node,
                            f"argument '{param}' of {event.contract.qualname} "
                            f"violates its shape contract "
                            f"{format_alternatives(alternatives)}: {reason}",
                        )
                    )

        # 2. Explicit einsum subscripts.
        for event in events.einsums:
            parsed = parse_einsum_spec(event.spec)
            if parsed is None:
                continue
            groups, output = parsed
            if len(groups) != len(event.operands):
                violations.append(
                    self.violation(
                        ctx,
                        event.node,
                        f"einsum {event.spec!r} names {len(groups)} operand "
                        f"group(s) but receives {len(event.operands)}",
                    )
                )
                continue
            input_letters = set("".join(groups))
            if output is not None:
                missing = [c for c in output if c not in input_letters]
                if missing:
                    violations.append(
                        self.violation(
                            ctx,
                            event.node,
                            f"einsum {event.spec!r} output uses "
                            f"{', '.join(repr(c) for c in missing)} which "
                            "appears in no input subscript",
                        )
                    )
            bound: dict = {}
            for index, (group, operand) in enumerate(
                zip(groups, event.operands)
            ):
                if operand.shape is None:
                    continue
                if len(operand.shape) != len(group):
                    violations.append(
                        self.violation(
                            ctx,
                            event.node,
                            f"einsum {event.spec!r} operand {index} has rank "
                            f"{len(operand.shape)} but subscript "
                            f"{group!r} demands rank {len(group)}",
                        )
                    )
                    continue
                for letter, dim in zip(group, operand.shape):
                    if not isinstance(dim, int):
                        continue
                    previous = bound.get(letter)
                    if previous is None:
                        bound[letter] = dim
                    elif previous != dim:
                        violations.append(
                            self.violation(
                                ctx,
                                event.node,
                                f"einsum {event.spec!r} binds '{letter}' to "
                                f"both {previous} and {dim}",
                            )
                        )

        # 3. Shape unpacks with the wrong arity.
        for event in events.unpacks:
            violations.append(
                self.violation(
                    ctx,
                    event.node,
                    f"unpacking .shape into {event.n_targets} name(s) but the "
                    f"value has rank {len(event.fact.shape)}",
                )
            )

        # 4. Broadcasting two incompatible literal dimensions.
        for event in events.binops:
            conflict = _broadcast_conflict(event.left, event.right)
            if conflict is not None:
                violations.append(
                    self.violation(
                        ctx,
                        event.node,
                        "operands can never broadcast: trailing dimensions "
                        f"{conflict[0]} and {conflict[1]} are incompatible",
                    )
                )
        return violations


def _broadcast_conflict(left: Fact, right: Fact):
    if left.shape is None or right.shape is None:
        return None
    a, b = left.shape, right.shape
    for dim_a, dim_b in zip(reversed(a), reversed(b)):
        if (
            isinstance(dim_a, int)
            and isinstance(dim_b, int)
            and dim_a != dim_b
            and 1 not in (dim_a, dim_b)
        ):
            return dim_a, dim_b
    return None

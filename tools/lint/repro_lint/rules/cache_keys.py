"""KEY001 — cache-key completeness of the sweep spec serializations.

The append-only result store trusts three hand-written serializations:
``SweepSpec.spec_hash`` (the whole-sweep cache key),
``SweepPoint.seed_payload`` (the physics identity every burst's RNG
stream derives from) and ``SweepPoint.content_key`` (the per-point store
key).  A field added to the dataclasses but forgotten in one of those
payloads would make *different* operating points hash to the *same* key
— cached results silently aliased, the exact failure mode this repo's
caching design exists to prevent.

This rule machine-checks completeness by *perturbation*, which is
stronger than matching key names: for every dataclass field it builds a
variant spec/point with that one field changed and asserts the derived
key actually moves.  It also asserts the documented *stability*
contracts — the grid ``index`` and the budget knobs must NOT move
``seed_payload`` (grid-shape independence and budget extension are what
let overlapping sweeps share stored points).

The checks import ``repro.sim.spec`` at lint time (the analyzer runs
with ``src/`` on ``sys.path``); they run once per invocation, not per
file.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import Callable, Dict, List, Sequence, Tuple

from repro_lint.core import ProjectContext, ProjectRule, Violation, register

#: SweepPoint fields that must NOT perturb ``seed_payload``: the grid
#: index (content-keyed seeding is grid-shape independent) and the
#: detector (ZF and MMSE are compared over identical noise realisations).
SEED_PAYLOAD_EXEMPT_POINT_FIELDS = frozenset({"index", "detector"})

#: SweepSpec fields that must NOT perturb ``seed_payload``: budget knobs
#: (a bigger budget extends the same burst stream) and receiver-side
#: processing choices, plus the axis tuples themselves (their *values*
#: reach the payload through the expanded SweepPoint, not the spec).
SEED_PAYLOAD_EXEMPT_SPEC_FIELDS = frozenset(
    {
        "n_bursts",
        "target_errors",
        "soft_decision",
        "snr_db",
        "modulations",
        "code_rates",
        "stream_counts",
        "channels",
        "detectors",
        "impairments",
    }
)

#: SweepSpec axis fields whose values reach ``content_key`` via the
#: expanded point rather than the spec itself.
CONTENT_KEY_EXEMPT_SPEC_FIELDS = frozenset(
    {
        "snr_db",
        "modulations",
        "code_rates",
        "stream_counts",
        "channels",
        "detectors",
        "impairments",
    }
)


def perturbed_field_value(name: str, value):
    """A *valid, different* value for one dataclass field.

    Axis tuples get a duplicated element (always valid, always a
    different serialized tuple); scalars move by type.  ``None``-able
    fields switch to a concrete non-default instance.
    """
    # Lazy import keeps `repro` off the import path until a project rule runs.
    from repro.dsp.fixedpoint import SAMPLE_FORMAT_16BIT
    from repro.sim.spec import ImpairmentSpec

    if name == "impairments":
        return tuple(value) + (ImpairmentSpec(cfo_normalized=1.25e-4),)
    if name == "impairment":
        return ImpairmentSpec(cfo_normalized=1.25e-4)
    if name in {"tx_format", "rx_format", "rx_multiplier_format"}:
        return SAMPLE_FORMAT_16BIT if value is None else None
    if isinstance(value, tuple):
        return tuple(value) + (value[0],)
    if isinstance(value, bool):
        return not value
    if isinstance(value, int) and not isinstance(value, bool):
        return value + 1
    if isinstance(value, float):
        return value + 1.0
    if isinstance(value, str):
        if name == "modulation":
            return "qpsk" if value != "qpsk" else "bpsk"
        if name == "channel":
            return "ideal" if value != "ideal" else "flat_rayleigh"
        if name == "detector":
            return "mmse" if value != "mmse" else "zf"
        if name == "code_rate":
            return "3/4" if value != "3/4" else "2/3"
        return value + "x"
    if value is None:
        return 1  # Optional[int] fields (target_errors)
    raise TypeError(f"no perturbation strategy for field {name}={value!r}")


def insensitive_fields(
    cls,
    base,
    serialize: Callable[[object], object],
    exempt: frozenset = frozenset(),
) -> List[str]:
    """Fields whose perturbation does NOT change ``serialize(base)``.

    The generic engine behind KEY001: any field name returned here is
    missing from the serialization and would alias cache records.
    """
    baseline = serialize(base)
    missing = []
    for f in dataclasses.fields(cls):
        if f.name in exempt:
            continue
        variant = dataclasses.replace(
            base, **{f.name: perturbed_field_value(f.name, getattr(base, f.name))}
        )
        if serialize(variant) == baseline:
            missing.append(f.name)
    return missing


def sensitive_fields(
    cls,
    base,
    serialize: Callable[[object], object],
    only: frozenset,
) -> List[str]:
    """Fields in ``only`` whose perturbation DOES change the serialization.

    The stability twin of :func:`insensitive_fields`: these fields are
    contractually absent from the payload, so any of them moving it
    breaks cross-grid sharing or budget extension.
    """
    baseline = serialize(base)
    moved = []
    for f in dataclasses.fields(cls):
        if f.name not in only:
            continue
        variant = dataclasses.replace(
            base, **{f.name: perturbed_field_value(f.name, getattr(base, f.name))}
        )
        if serialize(variant) != baseline:
            moved.append(f.name)
    return moved


def _def_line(path: Path, needle: str) -> int:
    """Line number of a ``def``/``class`` statement, for anchoring."""
    if path.is_file():
        for number, text in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
            if needle in text:
                return number
    return 1


def run_checks() -> List[Tuple[str, str]]:
    """All completeness/stability findings as (anchor, message) pairs.

    ``anchor`` names the serialization method the finding belongs to so
    the violation lands on its ``def`` line.
    """
    from repro.sim.spec import ImpairmentSpec, SweepSpec

    findings: List[Tuple[str, str]] = []
    spec = SweepSpec()
    point = spec.points()[0]

    # --- to_dict key coverage (round-trip completeness) ----------------
    for cls, instance, anchor in (
        (SweepSpec, spec, "def to_dict"),
        (ImpairmentSpec, ImpairmentSpec(), "def to_dict"),
        (type(point), point, "def to_dict"),
    ):
        field_names = {f.name for f in dataclasses.fields(cls)}
        dict_keys = set(instance.to_dict().keys())
        for name in sorted(field_names - dict_keys):
            findings.append(
                (
                    anchor,
                    f"{cls.__name__}.{name} is missing from to_dict(); "
                    "from_dict round-trips would drop it",
                )
            )

    # --- spec_hash completeness ----------------------------------------
    for name in insensitive_fields(SweepSpec, spec, lambda s: s.spec_hash()):
        findings.append(
            (
                "def spec_hash",
                f"SweepSpec.{name} does not perturb spec_hash(); two sweeps "
                "differing only in it would alias one cache entry",
            )
        )

    # --- seed_payload completeness + stability -------------------------
    def point_seed(p):
        return p.seed_payload(spec)

    for name in insensitive_fields(
        type(point), point, point_seed, SEED_PAYLOAD_EXEMPT_POINT_FIELDS
    ):
        findings.append(
            (
                "def seed_payload",
                f"SweepPoint.{name} does not perturb seed_payload(); two "
                "physically different cells would draw identical bursts",
            )
        )
    for name in sensitive_fields(
        type(point), point, point_seed, SEED_PAYLOAD_EXEMPT_POINT_FIELDS
    ):
        findings.append(
            (
                "def seed_payload",
                f"SweepPoint.{name} perturbs seed_payload() but is "
                "contractually absent from the physics identity; this breaks "
                "cross-grid sharing of stored points",
            )
        )

    def spec_seed(s):
        return point.seed_payload(s)

    for name in insensitive_fields(
        SweepSpec, spec, spec_seed, SEED_PAYLOAD_EXEMPT_SPEC_FIELDS
    ):
        findings.append(
            (
                "def seed_payload",
                f"SweepSpec.{name} does not perturb seed_payload(); bursts "
                "would be drawn identically for different physics",
            )
        )
    for name in sensitive_fields(
        SweepSpec,
        spec,
        spec_seed,
        frozenset({"n_bursts", "target_errors", "soft_decision"}),
    ):
        findings.append(
            (
                "def seed_payload",
                f"SweepSpec.{name} perturbs seed_payload() but budget/"
                "receiver knobs must extend the same burst stream, not "
                "re-roll it",
            )
        )

    # --- content_key completeness --------------------------------------
    def point_key(p):
        return p.content_key(spec)

    for name in insensitive_fields(
        type(point), point, point_key, frozenset({"index"})
    ):
        findings.append(
            (
                "def content_key",
                f"SweepPoint.{name} does not perturb content_key(); two "
                "different cells would share one store record",
            )
        )
    for name in sensitive_fields(type(point), point, point_key, frozenset({"index"})):
        findings.append(
            (
                "def content_key",
                f"SweepPoint.{name} perturbs content_key(); the store key "
                "must be grid-shape independent or overlapping sweeps stop "
                "sharing records",
            )
        )
    for name in insensitive_fields(
        SweepSpec, spec, lambda s: point.content_key(s), CONTENT_KEY_EXEMPT_SPEC_FIELDS
    ):
        findings.append(
            (
                "def content_key",
                f"SweepSpec.{name} does not perturb content_key(); records "
                "for different budgets/physics would alias in the store",
            )
        )

    # --- ImpairmentSpec completeness (through the point key) ------------
    impaired = dataclasses.replace(point, impairment=ImpairmentSpec())
    for name in insensitive_fields(
        ImpairmentSpec,
        ImpairmentSpec(),
        lambda imp: dataclasses.replace(impaired, impairment=imp).content_key(spec),
    ):
        findings.append(
            (
                "def content_key",
                f"ImpairmentSpec.{name} does not perturb the point "
                "content_key(); two front-end conditions would share one "
                "store record",
            )
        )
    return findings


@register
class CacheKeyCompletenessRule(ProjectRule):
    rule_id = "KEY001"
    name = "cache-key-completeness"
    description = (
        "every SweepSpec/ImpairmentSpec/SweepPoint field must perturb "
        "spec_hash/seed_payload/content_key/to_dict (and the contractual "
        "absences must stay absent)"
    )

    def check(self, project: ProjectContext) -> List[Violation]:
        spec_path = project.root / "src" / "repro" / "sim" / "spec.py"
        relpath = "src/repro/sim/spec.py"
        try:
            findings = run_checks()
        except Exception as error:  # pragma: no cover - defensive surface
            return [
                Violation(
                    rule=self.rule_id,
                    path=relpath,
                    line=1,
                    col=1,
                    message=f"completeness checks could not run: {error!r}",
                )
            ]
        anchors: Dict[str, int] = {}
        violations = []
        for anchor, message in findings:
            if anchor not in anchors:
                anchors[anchor] = _def_line(spec_path, anchor)
            violations.append(
                Violation(
                    rule=self.rule_id,
                    path=relpath,
                    line=anchors[anchor],
                    col=1,
                    message=message,
                )
            )
        return violations

"""VER001 — semantics drift must be acknowledged by an ENGINE_VERSION bump.

The result store is append-only and keyed by ``(ENGINE_VERSION,
point_key)``: records written by engine version N are served forever as
version-N facts.  That is only safe while the convention "bump
``ENGINE_VERSION`` whenever simulation semantics change" actually holds —
and conventions drift.  This rule machine-enforces it: the
semantics-bearing modules are fingerprinted into a committed manifest
(``tools/lint/engine_manifest.json``), and any change to their *code*
without either an ``ENGINE_VERSION`` bump or an explicit manifest refresh
fails the gate.

The fingerprint hashes each module's **AST with docstrings stripped**, so
comment, docstring and formatting edits never trip the gate — only code
changes do.  A code change that provably does not alter simulated
statistics (a pure refactor, a new helper) is acknowledged by refreshing
the manifest alone (``python -m repro_lint --refresh-manifest``); the
manifest diff then records the judgement call for review.  A change that
*does* alter statistics gets an ``ENGINE_VERSION`` bump first, then the
refresh records the new version.
"""

from __future__ import annotations

import ast
import hashlib
import json
from pathlib import Path
from typing import Dict, List, Optional

from repro_lint.core import ProjectContext, ProjectRule, Violation, register

#: Default manifest location, relative to the repo root.
MANIFEST_RELPATH = "tools/lint/engine_manifest.json"

#: Directories under ``src/repro`` whose modules bear simulation
#: semantics: anything here changes what number a stored record means.
SEMANTIC_DIRS = (
    "core",
    "channel",
    "coding",
    "modulation",
    "dsp",
    "mimo",
    "sync",
    "utils",
)

#: Individual semantics-bearing modules outside those directories.  The
#: rest of ``sim/`` (store, queue) is storage/transport: it moves records
#: around without changing what they mean.  ``stream/``, ``hardware/``,
#: ``rtl/`` and ``analysis/`` are not consulted by the pooled sweep
#: engine's statistics.
SEMANTIC_FILES = (
    "exceptions.py",
    "sim/engine.py",
    "sim/spec.py",
    "sim/runner.py",
    "sim/stats.py",
    "sim/cache.py",
)


def semantic_paths(root: Path) -> List[Path]:
    """Every semantics-bearing module below ``root``, sorted."""
    package = root / "src" / "repro"
    paths: List[Path] = []
    for name in SEMANTIC_DIRS:
        directory = package / name
        if directory.is_dir():
            paths.extend(p for p in directory.rglob("*.py") if "__pycache__" not in p.parts)
    for name in SEMANTIC_FILES:
        path = package / name
        if path.is_file():
            paths.append(path)
    return sorted(set(paths))


class _DocstringStripper(ast.NodeTransformer):
    """Remove module/class/function docstrings before fingerprinting."""

    def _strip(self, node):
        self.generic_visit(node)
        if (
            node.body
            and isinstance(node.body[0], ast.Expr)
            and isinstance(node.body[0].value, ast.Constant)
            and isinstance(node.body[0].value.value, str)
        ):
            node.body = node.body[1:] or [ast.Pass()]
        return node

    visit_Module = _strip
    visit_ClassDef = _strip
    visit_FunctionDef = _strip
    visit_AsyncFunctionDef = _strip


def module_digest(source: str) -> str:
    """Digest of one module's semantics (AST, docstrings stripped).

    Falls back to hashing the raw text when the file does not parse, so
    a syntactically broken module still registers as changed.
    """
    try:
        tree = ast.parse(source)
    except SyntaxError:
        payload = source
    else:
        payload = ast.dump(_DocstringStripper().visit(tree))
    return "sha256:" + hashlib.sha256(payload.encode("utf-8")).hexdigest()


def current_digests(root: Path) -> Dict[str, str]:
    """Repo-relative path -> semantics digest of every semantic module."""
    return {
        path.relative_to(root).as_posix(): module_digest(
            path.read_text(encoding="utf-8")
        )
        for path in semantic_paths(root)
    }


def tree_fingerprint(digests: Dict[str, str]) -> str:
    """One digest over the whole per-file digest table."""
    lines = "\n".join(f"{path}:{digest}" for path, digest in sorted(digests.items()))
    return "sha256:" + hashlib.sha256(lines.encode("utf-8")).hexdigest()


def build_manifest(digests: Dict[str, str], engine_version: int) -> dict:
    """Manifest payload recording one (version, fingerprint) state."""
    return {
        "comment": (
            "Committed fingerprint of the semantics-bearing modules. "
            "Refresh with 'python -m repro_lint --refresh-manifest' after "
            "bumping ENGINE_VERSION (or after a provably non-semantic "
            "refactor). Never edit by hand."
        ),
        "engine_version": int(engine_version),
        "fingerprint": tree_fingerprint(digests),
        "files": dict(sorted(digests.items())),
    }


def check_manifest(
    manifest: Optional[dict],
    digests: Dict[str, str],
    engine_version: int,
) -> List[str]:
    """Drift findings between a manifest and the current tree.

    Pure function of its inputs so tests can simulate edits and version
    bumps without touching the filesystem.
    """
    if manifest is None:
        return [
            "engine-version manifest is missing; run "
            "'python -m repro_lint --refresh-manifest' and commit it"
        ]
    problems: List[str] = []
    recorded_version = manifest.get("engine_version")
    if recorded_version != engine_version:
        problems.append(
            f"ENGINE_VERSION is {engine_version} but the manifest records "
            f"{recorded_version}; run 'python -m repro_lint "
            "--refresh-manifest' to acknowledge the bump"
        )
        return problems  # File-level drift is expected alongside a bump.
    if tree_fingerprint(digests) == manifest.get("fingerprint"):
        return []
    recorded_files = manifest.get("files", {})
    changed = sorted(
        path
        for path in digests.keys() & recorded_files.keys()
        if digests[path] != recorded_files[path]
    )
    added = sorted(digests.keys() - recorded_files.keys())
    removed = sorted(recorded_files.keys() - digests.keys())
    details = "; ".join(
        f"{label}: {', '.join(paths)}"
        for label, paths in (("changed", changed), ("added", added), ("removed", removed))
        if paths
    )
    problems.append(
        "semantics-bearing modules changed without an ENGINE_VERSION bump "
        f"({details}) — if simulated statistics change, bump ENGINE_VERSION "
        "in src/repro/sim/spec.py; either way refresh the manifest "
        "('python -m repro_lint --refresh-manifest') so the diff records "
        "the judgement"
    )
    return problems


def load_manifest(path: Path) -> Optional[dict]:
    """Parse the committed manifest; ``None`` when absent or unreadable."""
    if not path.is_file():
        return None
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return None
    return payload if isinstance(payload, dict) else None


def refresh_manifest(root: Path, manifest_path: Optional[Path] = None) -> Path:
    """Rewrite the manifest from the current tree + ENGINE_VERSION."""
    from repro.sim.spec import ENGINE_VERSION

    target = manifest_path or root / MANIFEST_RELPATH
    payload = build_manifest(current_digests(root), ENGINE_VERSION)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return target


@register
class EngineVersionDriftRule(ProjectRule):
    rule_id = "VER001"
    name = "engine-version-drift"
    description = (
        "semantics-bearing modules are fingerprinted into a committed "
        "manifest; code changes require an ENGINE_VERSION bump or an "
        "explicit manifest refresh"
    )

    def check(self, project: ProjectContext) -> List[Violation]:
        from repro.sim.spec import ENGINE_VERSION

        manifest_path = Path(
            project.options.get("manifest", project.root / MANIFEST_RELPATH)
        )
        manifest = load_manifest(manifest_path)
        digests = current_digests(project.root)
        try:
            relpath = manifest_path.resolve().relative_to(
                project.root.resolve()
            ).as_posix()
        except ValueError:
            relpath = manifest_path.as_posix()
        return [
            Violation(rule=self.rule_id, path=relpath, line=1, col=1, message=message)
            for message in check_manifest(manifest, digests, ENGINE_VERSION)
        ]

"""DET001/DET002 — engine code must be reproducible by construction.

The sweep engine's contract is that results are a pure function of the
spec: every burst's RNG streams derive from
``SeedSequence([content_hash(seed_payload), burst_index])`` and nothing
else.  Global-state randomness (``np.random.<sampler>``, the stdlib
``random`` module, an unseeded ``default_rng()``) or wall-clock reads
(``time.time``, ``datetime.now``) inside ``src/repro/`` would break that
contract invisibly — results would vary across runs while the result
store kept serving them as if they were deterministic facts.

DET001 flags global/unseeded randomness; DET002 flags wall-clock reads.
Explicit seeding stays legal: ``default_rng(seed)``,
``SeedSequence([...])`` and generator *types* in annotations are all
fine, as are the monotonic timers (``time.perf_counter``) the runner
uses to report elapsed wall time — they never feed the simulated
physics.
"""

from __future__ import annotations

import ast
from typing import List

from repro_lint.core import FileContext, Rule, Violation, register
from repro_lint.names import ImportMap, resolve

#: ``numpy.random`` attributes that are legal to *call* in engine code:
#: explicit construction of seeded streams and the type names used in
#: annotations/isinstance checks.
_ALLOWED_NP_RANDOM = {
    "default_rng",
    "Generator",
    "BitGenerator",
    "SeedSequence",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "SFC64",
}

#: Wall-clock callables whose value depends on when the process runs.
_WALL_CLOCK = {
    "time.time",
    "time.time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}


def _is_unseeded_default_rng(call: ast.Call) -> bool:
    """True for ``default_rng()`` / ``default_rng(None)`` — OS entropy."""
    if call.keywords:
        return False
    if not call.args:
        return True
    return len(call.args) == 1 and (
        isinstance(call.args[0], ast.Constant) and call.args[0].value is None
    )


@register
class GlobalRngRule(Rule):
    rule_id = "DET001"
    name = "no-global-rng"
    description = (
        "no global-state randomness in engine code: np.random.<sampler>, "
        "the random module, or unseeded default_rng()"
    )

    def applies_to(self, relpath: str) -> bool:
        return relpath.startswith("src/repro/")

    def check(self, ctx: FileContext) -> List[Violation]:
        imports = ImportMap(ctx.tree)
        violations: List[Violation] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            canonical = resolve(node.func, imports)
            if canonical is None:
                continue
            if canonical.startswith("numpy.random."):
                attr = canonical[len("numpy.random."):]
                if attr == "default_rng" and _is_unseeded_default_rng(node):
                    violations.append(
                        self.violation(
                            ctx,
                            node,
                            "unseeded default_rng() draws OS entropy; derive "
                            "the generator from the point's seed tree "
                            "(burst_seed / SeedSequence) instead",
                        )
                    )
                elif "." not in attr and attr not in _ALLOWED_NP_RANDOM:
                    violations.append(
                        self.violation(
                            ctx,
                            node,
                            f"numpy.random.{attr} uses the global RNG state; "
                            "thread a seeded np.random.Generator through "
                            "instead",
                        )
                    )
            elif canonical.startswith("random."):
                violations.append(
                    self.violation(
                        ctx,
                        node,
                        f"stdlib {canonical} uses process-global RNG state; "
                        "engine code must draw from a seeded "
                        "np.random.Generator",
                    )
                )
        return violations


@register
class WallClockRule(Rule):
    rule_id = "DET002"
    name = "no-wall-clock"
    description = (
        "no wall-clock reads (time.time, datetime.now) in engine code; "
        "monotonic timers for elapsed-time reporting are fine"
    )

    def applies_to(self, relpath: str) -> bool:
        return relpath.startswith("src/repro/")

    def check(self, ctx: FileContext) -> List[Violation]:
        imports = ImportMap(ctx.tree)
        violations: List[Violation] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            canonical = resolve(node.func, imports)
            if canonical in _WALL_CLOCK:
                violations.append(
                    self.violation(
                        ctx,
                        node,
                        f"{canonical} makes results depend on when the run "
                        "happened; use time.perf_counter for elapsed-time "
                        "reporting, or make the timestamp an explicit input",
                    )
                )
        return violations

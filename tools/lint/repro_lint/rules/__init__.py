"""Shipped rule modules — importing this package registers every rule."""

from __future__ import annotations

from repro_lint.rules import (  # noqa: F401  (import-for-side-effect)
    cache_keys,
    determinism,
    dtypes,
    engine_version,
    exceptions,
    seam,
    shapes,
    units,
)

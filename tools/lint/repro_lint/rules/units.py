"""UNIT001 — dB and linear power domains never meet without a conversion.

The dB-vs-linear SNR miscalibration fixed in PR 7 is the archetypal unit
bug: both domains are plain floats, so nothing in the type system stops
``snr_db`` from leaking into linear arithmetic — the numbers are simply
wrong by orders of magnitude.  The repo's convention makes the domain
visible in the *name* (``*_db`` vs ``*_linear`` / ``noise_variance`` /
``signal_power`` / ``power``), and :mod:`repro.utils.units` owns the two
sanctioned crossings: :func:`~repro.utils.units.db_to_linear` /
:func:`~repro.utils.units.amplitude_db_to_gain` and
:func:`~repro.utils.units.linear_to_db`.

Backed by the dataflow pass (which propagates the domain through
assignments and sanctioned conversion calls), this rule flags:

* arithmetic (``+ - * /``) mixing a dB-domain fact with a linear-domain
  fact — ``snr_db * noise_variance`` is never a power;
* the inline conversion idioms ``10 ** (x_db / 10)``, ``10 ** (x_db / 20)``
  and ``10 * log10(...)`` / ``20 * log10(...)`` outside
  ``repro/utils/units.py`` — they are correct but unnameable; routing
  them through the helpers is what lets this rule (and readers) reason
  about the domain at all;
* a keyword argument whose name declares one domain receiving a value the
  pass proved belongs to the other (``noise_variance=snr_db``).
"""

from __future__ import annotations

import ast
from typing import List, Optional

from repro_lint.core import FileContext, Rule, Violation, register
from repro_lint.dataflow import analysis_of, unit_from_name

#: The one module allowed to spell conversions inline: it implements them.
_UNITS_MODULE = "src/repro/utils/units.py"


def _constant_value(node: ast.AST) -> Optional[float]:
    if isinstance(node, ast.Constant) and isinstance(node.value, (int, float)):
        return float(node.value)
    return None


def _is_log10(node: ast.AST) -> bool:
    if isinstance(node, ast.Call):
        func = node.func
        name = func.attr if isinstance(func, ast.Attribute) else getattr(
            func, "id", None
        )
        return name == "log10"
    return False


@register
class UnitDomainRule(Rule):
    rule_id = "UNIT001"
    name = "db-linear-domains"
    description = (
        "dB and linear power values must only meet through "
        "repro.utils.units (db_to_linear / linear_to_db / "
        "amplitude_db_to_gain); inline 10**(x/10) and 10*log10 idioms are "
        "flagged"
    )

    def applies_to(self, relpath: str) -> bool:
        if relpath == _UNITS_MODULE:
            return False
        return relpath.startswith("src/repro/") or relpath.startswith(
            "examples/"
        )

    def check(self, ctx: FileContext) -> List[Violation]:
        events = analysis_of(ctx)
        violations: List[Violation] = []

        for event in events.binops:
            node = event.node
            # Inline dB -> linear: 10 ** (x / 10) or 10 ** (x / 20).
            if isinstance(node.op, ast.Pow) and _constant_value(
                node.left
            ) == 10.0:
                exponent = node.right
                divisor = None
                if isinstance(exponent, ast.BinOp) and isinstance(
                    exponent.op, ast.Div
                ):
                    divisor = _constant_value(exponent.right)
                if divisor in (10.0, 20.0) or event.right.unit == "db":
                    helper = (
                        "amplitude_db_to_gain" if divisor == 20.0
                        else "db_to_linear"
                    )
                    violations.append(
                        self.violation(
                            ctx,
                            node,
                            "inline dB-to-linear conversion; use "
                            f"repro.utils.units.{helper} so the domain "
                            "crossing is visible to readers and checkers",
                        )
                    )
                    continue
            # Inline linear -> dB: 10 * log10(...) or 20 * log10(...).
            if isinstance(node.op, ast.Mult) and any(
                _constant_value(scale) in (10.0, 20.0) and _is_log10(log)
                for scale, log in (
                    (node.left, node.right),
                    (node.right, node.left),
                )
            ):
                violations.append(
                    self.violation(
                        ctx,
                        node,
                        "inline linear-to-dB conversion; use "
                        "repro.utils.units.linear_to_db so the domain "
                        "crossing is visible to readers and checkers",
                    )
                )
                continue
            # Cross-domain arithmetic.
            if isinstance(node.op, (ast.Add, ast.Sub, ast.Mult, ast.Div)):
                units = {event.left.unit, event.right.unit}
                if units == {"db", "linear"}:
                    violations.append(
                        self.violation(
                            ctx,
                            node,
                            "dB-domain value meets linear-domain value in "
                            "arithmetic without a conversion; route one side "
                            "through repro.utils.units.db_to_linear / "
                            "linear_to_db first",
                        )
                    )

        # Keyword arguments crossing domains by name.
        for event in events.calls:
            for keyword in event.node.keywords:
                if keyword.arg is None:
                    continue
                declared = unit_from_name(keyword.arg)
                if declared is None:
                    continue
                fact = event.kw_facts.get(keyword.arg)
                if fact is None or fact.unit is None:
                    continue
                if fact.unit != declared:
                    violations.append(
                        self.violation(
                            ctx,
                            keyword.value,
                            f"keyword '{keyword.arg}' declares the "
                            f"{declared} domain but receives a "
                            f"{fact.unit}-domain value; convert with "
                            "repro.utils.units first",
                        )
                    )
        return violations

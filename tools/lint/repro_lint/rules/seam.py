"""SEAM001 — transform arithmetic must route through the DSP backend seam.

PR 7 put every FFT/IFFT of the burst datapaths behind ``repro.dsp``
(:func:`repro.dsp.fft.get_plan` and the :class:`repro.dsp.backend.DspBackend`
registry) so precision and kernel choices are a backend decision, the
backend name participates in ``spec_hash``, and cached results can never
alias across arithmetics.  A direct ``np.fft``/``scipy.fft`` call anywhere
else in ``src/repro/`` silently bypasses all of that: it always runs
double-precision pocketfft no matter which backend the sweep declared it
used.  This rule bans the bypass everywhere outside ``repro/dsp`` itself
(the one package allowed to *implement* transforms).
"""

from __future__ import annotations

import ast
from typing import List

from repro_lint.core import FileContext, Rule, Violation, register
from repro_lint.names import ImportMap, resolve

#: Module prefixes that constitute going around the seam.
_FORBIDDEN_PREFIXES = (
    "numpy.fft",
    "scipy.fft",
    "scipy.fftpack",
)


@register
class SeamPurityRule(Rule):
    rule_id = "SEAM001"
    name = "seam-purity"
    description = (
        "no np.fft/scipy.fft outside repro/dsp — route transforms through "
        "repro.dsp.fft.get_plan or the DspBackend seam"
    )

    def applies_to(self, relpath: str) -> bool:
        return relpath.startswith("src/repro/") and not relpath.startswith(
            "src/repro/dsp/"
        )

    def check(self, ctx: FileContext) -> List[Violation]:
        imports = ImportMap(ctx.tree)
        violations: List[Violation] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.Attribute, ast.Name)):
                continue
            canonical = resolve(node, imports)
            if canonical is None:
                continue
            if any(
                canonical == prefix or canonical.startswith(prefix + ".")
                for prefix in _FORBIDDEN_PREFIXES
            ):
                # Report the outermost expression once, not every inner
                # Attribute of the same chain: anchor on Attribute nodes
                # whose parent chain we are the head of is handled by only
                # flagging nodes that resolve *exactly* into the forbidden
                # namespace at call/use sites.
                violations.append(
                    self.violation(
                        ctx,
                        node,
                        f"{canonical} bypasses the DSP backend seam; route "
                        "the transform through repro.dsp (get_plan / "
                        "DspBackend.fft/ifft)",
                    )
                )
        return _dedupe_chains(violations)


def _dedupe_chains(violations: List[Violation]) -> List[Violation]:
    """Collapse nested Attribute hits at one location into one finding.

    ``np.fft.fft(x)`` resolves for both the ``np.fft.fft`` chain and its
    inner ``np.fft`` node; they share (line, col) once the chain walk
    reaches the head, so keep the most specific (longest) message per
    location.
    """
    best = {}
    for violation in violations:
        key = (violation.path, violation.line, violation.col)
        kept = best.get(key)
        if kept is None or len(violation.message) > len(kept.message):
            best[key] = violation
    return sorted(best.values(), key=lambda v: (v.line, v.col))

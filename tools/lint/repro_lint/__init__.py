"""reprolint — an AST-based invariant checker for the repro engine.

The repo's correctness rests on a handful of hand-enforced contracts:
deterministic content-keyed seeding, ``ENGINE_VERSION`` bumps whenever
simulation semantics change, all transform arithmetic routed through the
``repro.dsp`` backend seam, and hot-path failures surfacing as
``DecodingError`` so pooled sweeps count lost frames instead of dying.
``repro_lint`` machine-enforces those contracts as static-analysis rules:

========  ==============================================================
SEAM001   no ``np.fft``/``scipy.fft`` outside ``repro/dsp`` — transforms
          go through ``get_plan`` / the ``DspBackend`` seam
DET001    no global-state RNG (``np.random.<sampler>``, the ``random``
          module, unseeded ``default_rng()``) in engine/datapath code
DET002    no wall-clock reads (``time.time``, ``datetime.now``) in
          engine/datapath code
KEY001    every ``SweepSpec``/``ImpairmentSpec``/``SweepPoint`` field
          must perturb ``spec_hash``/``seed_payload``/``content_key``/
          ``to_dict`` — a new axis can never silently alias cached points
VER001    the semantics-bearing modules are fingerprinted into a
          committed manifest; changing them without an ``ENGINE_VERSION``
          bump or a manifest refresh fails the gate
EXC001    no bare ``except:`` and no silently-swallowed ``Exception``
EXC002    raising ``np.linalg`` solvers in datapath code must translate
          ``LinAlgError`` into ``DecodingError``
SHAPE001  declared ``@shaped`` contracts, einsum subscripts and shape
          unpacks must hold wherever dimensions are statically known
DTYPE001  no complex64/complex128 mixing, and no hard-coded complex
          dtype meeting a ``DspBackend``-produced value, outside
          ``repro/dsp``
UNIT001   dB and linear power domains only meet through
          ``repro.utils.units`` conversions
LINT001   suppression comments must carry a written justification
LINT002   suppression comments must actually suppress something
========  ==============================================================

Findings are suppressed per line with a justified comment::

    y = np.fft.fft(x)  # reprolint: disable=SEAM001 -- ground truth only

Run it as ``python -m repro_lint src tools examples tests`` (or ``make lint``);
see ``docs/linting.md`` for the full catalog and the manifest-refresh
workflow.
"""

from __future__ import annotations

from repro_lint.core import (
    FileContext,
    ProjectContext,
    ProjectRule,
    Rule,
    Violation,
    all_rules,
    file_rules,
    lint_project,
    lint_source,
    project_rules,
    register,
)

# Importing the rule modules registers every shipped rule.
from repro_lint import rules as _rules  # noqa: F401  (import-for-side-effect)

__all__ = [
    "FileContext",
    "ProjectContext",
    "ProjectRule",
    "Rule",
    "Violation",
    "all_rules",
    "file_rules",
    "lint_project",
    "lint_source",
    "project_rules",
    "register",
]

"""Command-line front end: discovery, reporting, manifest refresh.

Usage (also wired as ``make lint``)::

    python -m repro_lint src tools examples tests  # text report, exit 1 on findings
    python -m repro_lint --format json src          # machine-readable report
    python -m repro_lint --list-rules               # rule catalog
    python -m repro_lint --refresh-manifest         # rewrite the engine manifest

Exit codes: 0 clean, 1 violations found, 2 usage/internal error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro_lint import core
from repro_lint.core import META_RULES, Violation
from repro_lint.rules.engine_version import MANIFEST_RELPATH, refresh_manifest

#: Repo root inferred from this file's location
#: (``tools/lint/repro_lint/cli.py`` -> three parents up).
DEFAULT_ROOT = Path(__file__).resolve().parents[3]


def _ensure_repro_importable(root: Path) -> None:
    """Put ``<root>/src`` on ``sys.path`` for the project-wide rules."""
    src = str(root / "src")
    if src not in sys.path:
        sys.path.insert(0, src)


def _select(rules, selected: Optional[str]):
    if not selected:
        return rules
    wanted = {rule_id.strip() for rule_id in selected.split(",") if rule_id.strip()}
    return tuple(rule for rule in rules if rule.rule_id in wanted)


def _report_text(violations: List[Violation], n_files: int) -> None:
    for violation in violations:
        print(violation.format())
    n_rules = len(core.all_rules())
    if violations:
        print(
            f"repro_lint: {len(violations)} violation(s) "
            f"({n_files} files scanned, {n_rules} rules)"
        )
    else:
        print(f"repro_lint: OK ({n_files} files scanned, {n_rules} rules)")


def _report_json(violations: List[Violation], n_files: int) -> None:
    print(
        json.dumps(
            {
                "violations": [violation.to_dict() for violation in violations],
                "summary": {
                    "n_violations": len(violations),
                    "n_files": n_files,
                    "n_rules": len(core.all_rules()),
                    "ok": not violations,
                },
            },
            indent=2,
        )
    )


def _list_rules() -> None:
    for rule in core.all_rules():
        kind = "project" if isinstance(rule, core.ProjectRule) else "file"
        print(f"{rule.rule_id}  [{kind}]  {rule.name}")
        print(f"    {rule.description}")
    for rule_id, description in sorted(META_RULES.items()):
        print(f"{rule_id}  [meta]  {description}")


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro_lint",
        description="AST-based invariant checker for the repro engine",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: src tools examples tests)",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=DEFAULT_ROOT,
        help="repository root used for rule scoping and the manifest",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text", dest="fmt"
    )
    parser.add_argument(
        "--select",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--manifest",
        type=Path,
        help=f"engine-version manifest path (default: <root>/{MANIFEST_RELPATH})",
    )
    parser.add_argument(
        "--no-project-rules",
        action="store_true",
        help="skip the repository-wide rules (KEY001, VER001)",
    )
    parser.add_argument(
        "--refresh-manifest",
        action="store_true",
        help="rewrite the engine-version manifest from the current tree",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog"
    )
    args = parser.parse_args(argv)

    root = args.root.resolve()
    if args.list_rules:
        _list_rules()
        return 0

    _ensure_repro_importable(root)
    if args.refresh_manifest:
        target = refresh_manifest(root, args.manifest)
        print(f"repro_lint: manifest refreshed at {target}")
        return 0

    targets = [Path(p) for p in args.paths] or [
        root / "src", root / "tools", root / "examples", root / "tests"
    ]
    missing = [str(t) for t in targets if not t.exists()]
    if missing:
        print(f"repro_lint: no such path(s): {', '.join(missing)}", file=sys.stderr)
        return 2

    files = core.discover_files(targets)
    violations = core.lint_files(
        root, files, rules=_select(core.file_rules(), args.select)
    )
    if not args.no_project_rules:
        options = {}
        if args.manifest:
            options["manifest"] = args.manifest
        violations.extend(
            core.lint_project(
                root, options, rules=_select(core.project_rules(), args.select)
            )
        )
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    if args.fmt == "json":
        _report_json(violations, len(files))
    else:
        _report_text(violations, len(files))
    return 1 if violations else 0

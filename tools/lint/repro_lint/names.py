"""Import-alias resolution for dotted-name matching.

The path-scoped rules all reduce to "does this expression refer to
``numpy.fft.fft`` / ``numpy.random.normal`` / ``time.time`` under whatever
alias the module imported it as?".  :class:`ImportMap` records the aliases
one module establishes (``import numpy as np``, ``from numpy import fft``,
``from numpy.fft import fft as nfft``) and :func:`resolve` canonicalises an
``ast.Attribute``/``ast.Name`` chain against them, so rules match the
*canonical* dotted name instead of guessing at spellings.
"""

from __future__ import annotations

import ast
from typing import Dict, Optional

#: Spelling aliases collapsed before rule matching: ``np.fft`` and
#: ``numpy.fft`` are the same library.
_CANONICAL_ROOTS = {"np": "numpy", "sp": "scipy"}


class ImportMap:
    """Alias table of one module's imports."""

    def __init__(self, tree: ast.AST) -> None:
        self.aliases: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for name in node.names:
                    self.aliases[name.asname or name.name.split(".")[0]] = (
                        name.name if name.asname else name.name.split(".")[0]
                    )
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for name in node.names:
                    if name.name == "*":
                        continue
                    self.aliases[name.asname or name.name] = (
                        f"{node.module}.{name.name}"
                    )

    def canonical(self, dotted: str) -> str:
        """Expand the leading alias of ``dotted`` to its imported name."""
        head, _, rest = dotted.partition(".")
        head = self.aliases.get(head, head)
        head = _CANONICAL_ROOTS.get(head, head)
        # Aliases may themselves start with a shorthand root module.
        first, _, tail = head.partition(".")
        first = _CANONICAL_ROOTS.get(first, first)
        head = f"{first}.{tail}" if tail else first
        return f"{head}.{rest}" if rest else head


def dotted_name(node: ast.AST) -> Optional[str]:
    """The ``a.b.c`` chain of a Name/Attribute expression, else ``None``."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def resolve(node: ast.AST, imports: ImportMap) -> Optional[str]:
    """Canonical dotted name of an expression, resolved through imports."""
    dotted = dotted_name(node)
    if dotted is None:
        return None
    return imports.canonical(dotted)

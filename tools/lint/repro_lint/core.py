"""Rule framework: violations, registry, suppressions, lint drivers.

A *file rule* (:class:`Rule`) sees one parsed module at a time through a
:class:`FileContext` and reports :class:`Violation` objects.  A *project
rule* (:class:`ProjectRule`) sees the whole repository through a
:class:`ProjectContext` and enforces cross-file contracts (cache-key
completeness, the engine-version manifest).

Rules register themselves with the :func:`register` decorator; the CLI and
the test suite both consume the same registry.  Per-line suppressions are
handled here so every rule gets them for free::

    offending_call()  # reprolint: disable=RULE001 -- why this is safe

A suppression must name the rule ids it silences and must carry a written
justification after ``--``; an unjustified suppression is itself a
violation (LINT001), as is one that silences nothing (LINT002) — dead
suppressions rot into false confidence.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: Matches the tail of a suppression comment.  Group 1: comma-separated
#: rule ids; group 2: the justification (text after ``--``), if any.
_SUPPRESSION_RE = re.compile(
    r"#\s*reprolint:\s*disable=([A-Za-z0-9_,\s-]+?)\s*(?:--\s*(.*?))?\s*$"
)

#: Pseudo-rule ids emitted by the framework itself (documented alongside
#: the real rules so ``--list-rules`` shows the complete surface).
META_RULES = {
    "PARSE001": "file could not be parsed as Python",
    "LINT001": "suppression comment has no written justification",
    "LINT002": "suppression comment silences nothing on its line",
}


@dataclass(frozen=True)
class Violation:
    """One finding: a rule, a location and a human-readable message."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def format(self) -> str:
        """The canonical single-line rendering used by the text reporter."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_dict(self) -> dict:
        """Plain-JSON representation for the ``--format json`` reporter."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


@dataclass(frozen=True)
class Suppression:
    """One parsed ``# reprolint: disable=...`` comment."""

    line: int
    rule_ids: Tuple[str, ...]
    justification: str


@dataclass
class FileContext:
    """Everything a file rule may inspect about one module."""

    #: Repo-relative posix path used for rule scoping (tests may pass a
    #: *virtual* path so fixture files exercise path-scoped rules).
    relpath: str
    source: str
    tree: ast.AST

    @property
    def in_engine(self) -> bool:
        """True for engine/datapath code (everything under ``src/repro/``)."""
        return self.relpath.startswith("src/repro/")

    @property
    def in_dsp_seam(self) -> bool:
        """True inside the DSP package, where transform arithmetic lives."""
        return self.relpath.startswith("src/repro/dsp/")


@dataclass
class ProjectContext:
    """Repository handle for project-wide rules."""

    root: Path
    #: Extra options forwarded from the CLI (e.g. manifest path override).
    options: Dict[str, object] = field(default_factory=dict)


class Rule:
    """Base class of per-file AST rules."""

    rule_id: str = "RULE000"
    name: str = "abstract"
    description: str = ""

    def applies_to(self, relpath: str) -> bool:
        """Whether this rule scans the module at ``relpath`` at all."""
        return True

    def check(self, ctx: FileContext) -> List[Violation]:
        raise NotImplementedError

    def violation(
        self, ctx: FileContext, node: ast.AST, message: str
    ) -> Violation:
        """Violation anchored at ``node`` in ``ctx``'s module."""
        return Violation(
            rule=self.rule_id,
            path=ctx.relpath,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )


class ProjectRule:
    """Base class of repository-wide rules."""

    rule_id: str = "RULE000"
    name: str = "abstract"
    description: str = ""

    def check(self, project: ProjectContext) -> List[Violation]:
        raise NotImplementedError


_FILE_RULES: Dict[str, Rule] = {}
_PROJECT_RULES: Dict[str, ProjectRule] = {}


def register(rule_cls):
    """Class decorator adding a rule to the registry (instantiates it)."""
    instance = rule_cls()
    if issubclass(rule_cls, Rule):
        _FILE_RULES[instance.rule_id] = instance
    elif issubclass(rule_cls, ProjectRule):
        _PROJECT_RULES[instance.rule_id] = instance
    else:
        raise TypeError(f"{rule_cls!r} is neither a Rule nor a ProjectRule")
    return rule_cls


def file_rules() -> Tuple[Rule, ...]:
    """Registered per-file rules, ordered by rule id."""
    return tuple(_FILE_RULES[k] for k in sorted(_FILE_RULES))


def project_rules() -> Tuple[ProjectRule, ...]:
    """Registered project-wide rules, ordered by rule id."""
    return tuple(_PROJECT_RULES[k] for k in sorted(_PROJECT_RULES))


def all_rules() -> Tuple[object, ...]:
    """Every registered rule, file rules first."""
    return file_rules() + project_rules()


# ----------------------------------------------------------------------
# Suppressions
# ----------------------------------------------------------------------

def parse_suppressions(source: str) -> List[Suppression]:
    """Extract every ``# reprolint: disable=...`` comment with its line.

    Uses :mod:`tokenize` so string literals that merely *contain* the
    marker text are never mistaken for comments.
    """
    suppressions: List[Suppression] = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _SUPPRESSION_RE.search(token.string)
            if not match:
                continue
            ids = tuple(
                part.strip() for part in match.group(1).split(",") if part.strip()
            )
            suppressions.append(
                Suppression(
                    line=token.start[0],
                    rule_ids=ids,
                    justification=(match.group(2) or "").strip(),
                )
            )
    except tokenize.TokenError:
        # A tokenizer failure surfaces as PARSE001 via ast.parse; no
        # suppression data is better than wrong suppression data.
        return []
    return suppressions


def apply_suppressions(
    relpath: str,
    violations: List[Violation],
    suppressions: List[Suppression],
    active_rules: Optional[frozenset] = None,
) -> List[Violation]:
    """Filter ``violations`` through the file's suppression comments.

    Returns the surviving violations plus the framework's meta-findings:
    LINT001 for a suppression with no justification (the silenced finding
    stays silenced, but the gate still fails until the *why* is written
    down) and LINT002 for a suppression whose rules never fired on its
    line.  ``active_rules`` names the rule ids that actually ran on this
    file; a suppression naming a rule that was not run (``--select``
    subsets, path scoping) is never reported as useless.
    """
    by_line: Dict[int, List[Suppression]] = {}
    for suppression in suppressions:
        by_line.setdefault(suppression.line, []).append(suppression)

    used: Dict[Tuple[int, str], bool] = {}
    kept: List[Violation] = []
    for violation in violations:
        matched = None
        for suppression in by_line.get(violation.line, []):
            if violation.rule in suppression.rule_ids:
                matched = suppression
                break
        if matched is None:
            kept.append(violation)
        else:
            used[(matched.line, ",".join(matched.rule_ids))] = True

    for suppression in suppressions:
        key = (suppression.line, ",".join(suppression.rule_ids))
        all_rules_ran = active_rules is None or all(
            rule_id in active_rules for rule_id in suppression.rule_ids
        )
        if not used.get(key, False) and not all_rules_ran:
            continue
        if not used.get(key, False):
            kept.append(
                Violation(
                    rule="LINT002",
                    path=relpath,
                    line=suppression.line,
                    col=1,
                    message=(
                        "useless suppression: "
                        f"{', '.join(suppression.rule_ids)} did not fire on "
                        "this line — delete the comment or fix its placement"
                    ),
                )
            )
        elif not suppression.justification:
            kept.append(
                Violation(
                    rule="LINT001",
                    path=relpath,
                    line=suppression.line,
                    col=1,
                    message=(
                        "suppression without justification: write why after "
                        "'--', e.g. '# reprolint: disable="
                        f"{suppression.rule_ids[0]} -- <reason>'"
                    ),
                )
            )
    return kept


# ----------------------------------------------------------------------
# Drivers
# ----------------------------------------------------------------------

def lint_source(
    source: str,
    relpath: str,
    rules: Optional[Sequence[Rule]] = None,
) -> List[Violation]:
    """Lint one module's source text under the path ``relpath``.

    This is the unit both the CLI and the fixture tests drive: tests pass
    a *virtual* ``relpath`` (e.g. ``src/repro/channel/fixture.py``) so
    path-scoped rules behave exactly as they would in-tree.
    """
    try:
        tree = ast.parse(source, filename=relpath)
    except SyntaxError as error:
        return [
            Violation(
                rule="PARSE001",
                path=relpath,
                line=error.lineno or 1,
                col=(error.offset or 0) + 1,
                message=f"syntax error: {error.msg}",
            )
        ]
    ctx = FileContext(relpath=relpath, source=source, tree=tree)
    selected = file_rules() if rules is None else tuple(rules)
    raw: List[Violation] = []
    active = set()
    for rule in selected:
        if rule.applies_to(relpath):
            raw.extend(rule.check(ctx))
            active.add(rule.rule_id)
    raw.sort(key=lambda v: (v.line, v.col, v.rule))
    return apply_suppressions(
        relpath, raw, parse_suppressions(source), frozenset(active)
    )


def lint_files(
    root: Path,
    paths: Iterable[Path],
    rules: Optional[Sequence[Rule]] = None,
) -> List[Violation]:
    """Lint concrete files, scoping each by its path relative to ``root``."""
    violations: List[Violation] = []
    for path in paths:
        try:
            relpath = path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            relpath = path.as_posix()
        source = path.read_text(encoding="utf-8")
        violations.extend(lint_source(source, relpath, rules=rules))
    return violations


def lint_project(
    root: Path,
    options: Optional[Dict[str, object]] = None,
    rules: Optional[Sequence[ProjectRule]] = None,
) -> List[Violation]:
    """Run every project-wide rule against the repository at ``root``."""
    ctx = ProjectContext(root=root, options=dict(options or {}))
    violations: List[Violation] = []
    for rule in project_rules() if rules is None else tuple(rules):
        violations.extend(rule.check(ctx))
    return violations


def discover_files(targets: Iterable[Path]) -> List[Path]:
    """Expand files/directories into the sorted list of ``.py`` files."""
    found: List[Path] = []
    for target in targets:
        if target.is_dir():
            found.extend(
                p
                for p in sorted(target.rglob("*.py"))
                if "__pycache__" not in p.parts
                # The lint fixtures violate rules on purpose; they are
                # exercised by tests/test_repro_lint.py under virtual
                # paths, never linted as part of the tree.
                and "lint_fixtures" not in p.parts
            )
        elif target.suffix == ".py":
            found.append(target)
    return found

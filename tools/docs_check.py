#!/usr/bin/env python
"""Documentation gate: every public module in ``src/repro`` needs a docstring.

Walks the package tree, AST-parses each ``.py`` file whose name (and whose
parent packages' names) do not start with an underscore, and fails with a
listing of the offenders when any module-level docstring is missing or
empty.  Run via ``make docs-check``.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

PACKAGE_ROOT = Path(__file__).resolve().parent.parent / "src" / "repro"


def public_modules(root: Path) -> list[Path]:
    """Every ``.py`` file in the tree that is part of the public surface.

    ``__init__.py`` files are public (they document the package); any other
    name starting with an underscore is private and exempt.
    """
    modules = []
    for path in sorted(root.rglob("*.py")):
        parts = path.relative_to(root).parts
        private = any(
            part.startswith("_") and part != "__init__.py" for part in parts
        )
        if not private:
            modules.append(path)
    return modules


def missing_docstrings(modules: list[Path]) -> list[Path]:
    """Modules whose AST has no (or an empty) module docstring."""
    offenders = []
    for path in modules:
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
        docstring = ast.get_docstring(tree)
        if not docstring or not docstring.strip():
            offenders.append(path)
    return offenders


def main() -> int:
    if not PACKAGE_ROOT.is_dir():
        print(f"docs-check: package root {PACKAGE_ROOT} not found", file=sys.stderr)
        return 2
    modules = public_modules(PACKAGE_ROOT)
    offenders = missing_docstrings(modules)
    if offenders:
        print("docs-check: modules missing a module docstring:", file=sys.stderr)
        for path in offenders:
            print(f"  {path.relative_to(PACKAGE_ROOT.parent.parent)}", file=sys.stderr)
        return 1
    print(f"docs-check: OK ({len(modules)} public modules documented)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

#!/usr/bin/env python
"""Documentation gate: module docstrings plus the required doc pages.

Two checks, run via ``make docs-check``:

1. every public module in ``src/repro`` carries a non-empty module
   docstring (the tree is walked and AST-parsed; files whose name or
   parent package starts with an underscore are exempt);
2. every page in ``REQUIRED_DOCS`` exists under ``docs/``, is non-empty,
   is linked from the README (a guide nobody can find is as good as
   missing), and contains the section headings ``REQUIRED_SECTIONS``
   promises for it (a page that silently drops its batched-datapath or
   backend-seam section would leave the code undocumented while the
   gate stays green).
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
PACKAGE_ROOT = REPO_ROOT / "src" / "repro"

#: Doc pages the repo promises: each must exist, be non-empty and be
#: linked from README.md.
REQUIRED_DOCS = (
    "docs/simulation.md",
    "docs/streaming.md",
    "docs/linting.md",
)

#: Section headings each doc page promises (matched as substrings of the
#: page text, so heading levels can move without breaking the gate).
REQUIRED_SECTIONS: dict[str, tuple[str, ...]] = {
    "docs/simulation.md": (
        "The batched transmit path and the DSP backend seam",
        "The per-point result store",
        "Adaptive refinement and confidence intervals",
    ),
    "docs/streaming.md": (
        "Air-interface cost",
    ),
    "docs/linting.md": (
        "Rule catalog",
        "Suppressing a finding",
        "Refreshing the engine-version manifest",
        "The dataflow contract rules",
        "SHAPE001 — declared shape contracts",
        "DTYPE001 — backend dtype purity",
        "UNIT001 — dB vs linear power domains",
        "Typing policy and `make typecheck`",
    ),
}


def public_modules(root: Path) -> list[Path]:
    """Every ``.py`` file in the tree that is part of the public surface.

    ``__init__.py`` files are public (they document the package); any other
    name starting with an underscore is private and exempt.
    """
    modules = []
    for path in sorted(root.rglob("*.py")):
        parts = path.relative_to(root).parts
        private = any(
            part.startswith("_") and part != "__init__.py" for part in parts
        )
        if not private:
            modules.append(path)
    return modules


def missing_docstrings(modules: list[Path]) -> list[Path]:
    """Modules whose AST has no (or an empty) module docstring."""
    offenders = []
    for path in modules:
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
        docstring = ast.get_docstring(tree)
        if not docstring or not docstring.strip():
            offenders.append(path)
    return offenders


def missing_required_docs() -> list[str]:
    """Problems with the promised doc pages (empty list when all is well)."""
    problems = []
    readme = REPO_ROOT / "README.md"
    readme_text = readme.read_text(encoding="utf-8") if readme.is_file() else ""
    for relative in REQUIRED_DOCS:
        page = REPO_ROOT / relative
        if not page.is_file():
            problems.append(f"{relative}: missing")
            continue
        text = page.read_text(encoding="utf-8")
        if not text.strip():
            problems.append(f"{relative}: empty")
            continue
        if relative not in readme_text:
            problems.append(f"{relative}: not linked from README.md")
        for section in REQUIRED_SECTIONS.get(relative, ()):
            if section not in text:
                problems.append(f"{relative}: missing section {section!r}")
    return problems


def main() -> int:
    if not PACKAGE_ROOT.is_dir():
        print(f"docs-check: package root {PACKAGE_ROOT} not found", file=sys.stderr)
        return 2
    modules = public_modules(PACKAGE_ROOT)
    offenders = missing_docstrings(modules)
    if offenders:
        print("docs-check: modules missing a module docstring:", file=sys.stderr)
        for path in offenders:
            print(f"  {path.relative_to(PACKAGE_ROOT.parent.parent)}", file=sys.stderr)
        return 1
    doc_problems = missing_required_docs()
    if doc_problems:
        print("docs-check: required doc pages have problems:", file=sys.stderr)
        for problem in doc_problems:
            print(f"  {problem}", file=sys.stderr)
        return 1
    print(
        f"docs-check: OK ({len(modules)} public modules documented, "
        f"{len(REQUIRED_DOCS)} required doc pages present and linked)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

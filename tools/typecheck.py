"""Typecheck driver: mypy over ``src/repro`` with a machine-readable report.

``make typecheck`` runs this next to ``make lint`` as a ``make test``
prerequisite.  The policy (configured under ``[tool.mypy]`` in
``pyproject.toml``) is strict-on-annotated gradual typing: annotated
public APIs are held to their signatures; unannotated internals stay
unchecked until they grow annotations.

Mirrors the ruff pattern of the lint target: when mypy is not installed
the pass is *skipped with a warning* and exits 0 — the repro_lint
dataflow rules (SHAPE001/DTYPE001/UNIT001) still gate the contracts that
matter most, and offline containers must not fail the build for a
missing optional tool.

Always writes a JSON report artifact (default ``build/typecheck_report.json``)
recording the outcome::

    {"tool": "mypy", "skipped": true, "reason": "mypy not installed"}
    {"tool": "mypy", "skipped": false, "exit_status": 0,
     "errors": 0, "warnings": 0, "notes": [...first 200 lines...]}

Exit codes: 0 clean or skipped, 1 type errors, 2 driver failure.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path
from typing import List, Optional

REPO_ROOT = Path(__file__).resolve().parents[1]
DEFAULT_REPORT = REPO_ROOT / "build" / "typecheck_report.json"
#: Lines of mypy output preserved verbatim in the JSON artifact.
MAX_REPORT_LINES = 200


def _mypy_command() -> Optional[List[str]]:
    """The mypy invocation to use, or None when mypy is unavailable."""
    try:
        import mypy  # noqa: F401
    except ImportError:
        return None
    return [sys.executable, "-m", "mypy", "--config-file", "pyproject.toml"]


def _write_report(path: Path, payload: dict) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--report",
        type=Path,
        default=DEFAULT_REPORT,
        help=f"JSON report artifact path (default: {DEFAULT_REPORT})",
    )
    args = parser.parse_args(argv)

    command = _mypy_command()
    if command is None:
        print(
            "typecheck: mypy not installed; skipping static type pass "
            "(repro_lint dataflow rules already gate shape/dtype/unit "
            "contracts)",
            file=sys.stderr,
        )
        _write_report(
            args.report,
            {"tool": "mypy", "skipped": True, "reason": "mypy not installed"},
        )
        return 0

    try:
        completed = subprocess.run(
            command,
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
        )
    except OSError as error:
        print(f"typecheck: failed to launch mypy: {error}", file=sys.stderr)
        _write_report(
            args.report,
            {"tool": "mypy", "skipped": True, "reason": f"launch failure: {error}"},
        )
        return 2

    output = (completed.stdout or "") + (completed.stderr or "")
    lines = [line for line in output.splitlines() if line.strip()]
    errors = sum(1 for line in lines if ": error:" in line)
    warnings = sum(1 for line in lines if ": warning:" in line)
    _write_report(
        args.report,
        {
            "tool": "mypy",
            "skipped": False,
            "exit_status": completed.returncode,
            "errors": errors,
            "warnings": warnings,
            "notes": lines[:MAX_REPORT_LINES],
        },
    )
    sys.stdout.write(completed.stdout or "")
    sys.stderr.write(completed.stderr or "")
    if completed.returncode not in (0, 1):
        # mypy crashed (2) — a driver/config problem, not a type error.
        return 2
    return 0 if completed.returncode == 0 and errors == 0 else 1


if __name__ == "__main__":
    raise SystemExit(main())

"""Tests for repro.utils.rng."""

import numpy as np

from repro.utils.rng import make_rng


def test_seed_produces_reproducible_stream():
    a = make_rng(42).integers(0, 100, 10)
    b = make_rng(42).integers(0, 100, 10)
    np.testing.assert_array_equal(a, b)


def test_existing_generator_is_passed_through():
    generator = np.random.default_rng(1)
    assert make_rng(generator) is generator


def test_none_returns_generator():
    assert isinstance(make_rng(None), np.random.Generator)

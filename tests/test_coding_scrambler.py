"""Tests for repro.coding.scrambler."""

import numpy as np
import pytest

from repro.coding.scrambler import Scrambler, pilot_polarity_sequence
from repro.utils.bits import random_bits


class TestScrambler:
    def test_scramble_descramble_roundtrip(self):
        rng = np.random.default_rng(0)
        bits = random_bits(500, rng)
        scrambler = Scrambler()
        scrambled = scrambler.process(bits)
        descrambled = Scrambler().process(scrambled)
        np.testing.assert_array_equal(descrambled, bits)

    def test_scrambling_changes_the_data(self):
        bits = np.zeros(128, dtype=np.uint8)
        scrambled = Scrambler().process(bits)
        assert scrambled.sum() > 0

    def test_sequence_period_is_127(self):
        scrambler = Scrambler(seed=0b1111111)
        sequence = scrambler.sequence(254)
        np.testing.assert_array_equal(sequence[:127], sequence[127:])

    def test_sequence_is_balanced(self):
        # A maximal-length 7-bit LFSR produces 64 ones and 63 zeros per period.
        sequence = Scrambler(seed=0b1111111).sequence(127)
        assert int(sequence.sum()) == 64

    def test_different_seeds_differ(self):
        bits = np.zeros(64, dtype=np.uint8)
        a = Scrambler(seed=0b1011101).process(bits)
        b = Scrambler(seed=0b0000001).process(bits)
        assert not np.array_equal(a, b)

    def test_invalid_seed_rejected(self):
        with pytest.raises(ValueError):
            Scrambler(seed=0)
        with pytest.raises(ValueError):
            Scrambler(seed=200)
        with pytest.raises(ValueError):
            Scrambler().reset(seed=0)

    def test_known_80211a_prefix(self):
        # With the all-ones seed the 802.11a scrambler starts 0000111011110010...
        sequence = Scrambler(seed=0b1111111).sequence(16)
        np.testing.assert_array_equal(
            sequence, [0, 0, 0, 0, 1, 1, 1, 0, 1, 1, 1, 1, 0, 0, 1, 0]
        )


class TestPilotPolarity:
    def test_values_are_plus_minus_one(self):
        polarity = pilot_polarity_sequence(127)
        assert set(np.unique(polarity)) == {-1.0, 1.0}

    def test_first_symbol_polarity_is_positive(self):
        # p_0 = +1 in 802.11a.
        assert pilot_polarity_sequence(1)[0] == 1.0

    def test_periodic_extension(self):
        long_sequence = pilot_polarity_sequence(300)
        np.testing.assert_array_equal(long_sequence[:127], long_sequence[127:254])

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            pilot_polarity_sequence(0)

"""Tests for repro.rtl.scheduler — the channel-matrix read scheduler."""

import numpy as np
import pytest

from repro.rtl.scheduler import ChannelMatrixScheduler


class TestSchedulerStructure:
    def test_memory_count(self):
        assert ChannelMatrixScheduler().n_memories == 16

    def test_validate_passes_for_default(self):
        ChannelMatrixScheduler(n_antennas=4, n_subcarriers=52, burst_length=20).validate()

    def test_validate_passes_for_non_multiple_subcarriers(self):
        # 52 occupied subcarriers is not a multiple of the burst length 20;
        # the final pass is simply shorter.
        ChannelMatrixScheduler(n_subcarriers=52).validate()
        ChannelMatrixScheduler(n_subcarriers=64).validate()

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ChannelMatrixScheduler(n_antennas=0)
        with pytest.raises(ValueError):
            ChannelMatrixScheduler(n_subcarriers=0)
        with pytest.raises(ValueError):
            ChannelMatrixScheduler(burst_length=0)


class TestColumnSchedules:
    def test_first_reads_follow_paper_description(self):
        # "Initially data is only read from H00 memory and input to the first
        #  column of the QRD array. The first 20 addresses are read in..."
        scheduler = ChannelMatrixScheduler(n_subcarriers=64)
        reads = list(scheduler.column_schedule(0))[:21]
        for read in reads[:20]:
            assert (read.memory_row, read.memory_col) == (0, 0)
        assert reads[0].subcarrier == 0
        assert reads[19].subcarrier == 19
        # On the next access the column moves to H01.
        assert (reads[20].memory_row, reads[20].memory_col) == (0, 1)

    def test_column_one_starts_one_cycle_later_on_h10(self):
        scheduler = ChannelMatrixScheduler(n_subcarriers=64)
        column1 = list(scheduler.column_schedule(1))
        assert column1[0].cycle == 1
        assert (column1[0].memory_row, column1[0].memory_col) == (1, 0)

    def test_init_pulse_on_wraparound(self):
        scheduler = ChannelMatrixScheduler(n_subcarriers=64)
        reads = list(scheduler.column_schedule(0))
        init_reads = [read for read in reads if read.init]
        # One init per pass (every time the column wraps back to its first memory).
        assert len(init_reads) == scheduler._passes_per_column()
        assert init_reads[0].cycle == 0
        # The second init happens after all 16 memories streamed 20 addresses.
        assert init_reads[1].cycle == 16 * 20

    def test_every_word_read_exactly_once(self):
        scheduler = ChannelMatrixScheduler(n_antennas=4, n_subcarriers=52)
        for column in range(4):
            words = [(r.memory_row, r.memory_col, r.subcarrier) for r in scheduler.column_schedule(column)]
            assert len(words) == len(set(words)) == 16 * 52

    def test_out_of_range_column(self):
        with pytest.raises(ValueError):
            list(ChannelMatrixScheduler().column_schedule(4))


class TestFullSchedule:
    def test_sorted_by_cycle(self):
        scheduler = ChannelMatrixScheduler(n_subcarriers=40)
        schedule = scheduler.full_schedule()
        cycles = [read.cycle for read in schedule]
        assert cycles == sorted(cycles)

    def test_total_cycles_accounts_for_column_stagger(self):
        scheduler = ChannelMatrixScheduler(n_subcarriers=64)
        single_column_reads = 16 * 20 * scheduler._passes_per_column()
        assert scheduler.total_schedule_cycles() == single_column_reads + 3

    def test_no_more_than_n_reads_per_cycle(self):
        scheduler = ChannelMatrixScheduler(n_subcarriers=40)
        schedule = scheduler.full_schedule()
        cycles = np.array([read.cycle for read in schedule])
        _, counts = np.unique(cycles, return_counts=True)
        assert counts.max() <= 4

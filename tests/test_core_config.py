"""Tests for repro.core.config."""

import numpy as np
import pytest

from repro.coding.convolutional import CodeRate
from repro.core.config import OfdmNumerology, TransceiverConfig
from repro.exceptions import ConfigurationError
from repro.modulation.constellations import Modulation


class TestOfdmNumerology64:
    def test_80211a_allocation(self):
        numerology = OfdmNumerology.for_fft_size(64)
        assert numerology.n_data_subcarriers == 48
        assert numerology.n_pilots == 4
        assert numerology.pilot_logical == (-21, -7, 7, 21)

    def test_pilot_bins_are_fft_indices(self):
        numerology = OfdmNumerology.for_fft_size(64)
        assert set(numerology.pilot_bins) == {64 - 21, 64 - 7, 7, 21}

    def test_dc_and_guards_unused(self):
        numerology = OfdmNumerology.for_fft_size(64)
        active = set(numerology.active_bins)
        assert 0 not in active  # DC null
        for guard in range(27, 38):
            assert guard not in active

    def test_active_mask(self):
        numerology = OfdmNumerology.for_fft_size(64)
        mask = numerology.active_mask()
        assert mask.sum() == 52
        assert not mask[0]

    def test_pilot_values_last_pilot_negative(self):
        numerology = OfdmNumerology.for_fft_size(64)
        assert numerology.pilot_values[-1] == -1
        assert all(v == 1 for v in numerology.pilot_values[:-1])


class TestOfdmNumerology512:
    def test_scaled_allocation(self):
        numerology = OfdmNumerology.for_fft_size(512)
        assert numerology.n_data_subcarriers == 384
        assert numerology.n_pilots == 32
        assert numerology.fft_size == 512

    def test_coded_bits_multiple_of_16_for_all_modulations(self):
        numerology = OfdmNumerology.for_fft_size(512)
        for modulation in Modulation:
            assert (numerology.n_data_subcarriers * modulation.bits_per_symbol) % 16 == 0

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ConfigurationError):
            OfdmNumerology.for_fft_size(48)
        with pytest.raises(ConfigurationError):
            OfdmNumerology.for_fft_size(96)


class TestTransceiverConfig:
    def test_paper_default(self):
        config = TransceiverConfig.paper_default()
        assert config.n_antennas == 4
        assert config.fft_size == 64
        assert config.modulation is Modulation.QAM16
        assert config.code_rate is CodeRate.RATE_1_2
        assert config.cyclic_prefix_length == 16
        assert config.samples_per_symbol == 80
        assert config.coded_bits_per_symbol == 192
        assert config.data_bits_per_symbol == 96

    def test_gigabit_configuration(self):
        config = TransceiverConfig.gigabit()
        assert config.modulation is Modulation.QAM64
        assert config.code_rate is CodeRate.RATE_3_4
        assert config.coded_bits_per_symbol == 288
        assert config.data_bits_per_symbol == 216

    def test_string_arguments_accepted(self):
        config = TransceiverConfig(modulation="64qam", code_rate="3/4")
        assert config.modulation is Modulation.QAM64
        assert config.code_rate is CodeRate.RATE_3_4

    def test_symbol_duration(self):
        assert TransceiverConfig().symbol_duration_s() == pytest.approx(800e-9)

    def test_512_point_configuration(self):
        config = TransceiverConfig(fft_size=512)
        assert config.cyclic_prefix_length == 128
        assert config.numerology.n_data_subcarriers == 384

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TransceiverConfig(n_antennas=0)
        with pytest.raises(ConfigurationError):
            TransceiverConfig(fft_size=100)
        with pytest.raises(ConfigurationError):
            TransceiverConfig(cyclic_prefix_ratio=1.5)
        with pytest.raises(ConfigurationError):
            TransceiverConfig(clock_hz=0)
        with pytest.raises(ValueError):
            TransceiverConfig(modulation="1024qam")

    def test_frozen(self):
        config = TransceiverConfig()
        with pytest.raises(AttributeError):
            config.fft_size = 128

"""Tests for repro.mimo.detector."""

import numpy as np
import pytest

from repro.exceptions import DecodingError
from repro.mimo.channel_estimation import ChannelEstimate, invert_channel_matrices
from repro.mimo.detector import MmseDetector, ZeroForcingDetector, zf_detect


def _make_estimate(fft_size=16, seed=0):
    rng = np.random.default_rng(seed)
    matrices = rng.normal(size=(fft_size, 4, 4)) + 1j * rng.normal(size=(fft_size, 4, 4))
    inverses = invert_channel_matrices(matrices)
    mask = np.ones(fft_size, dtype=bool)
    return ChannelEstimate(matrices=matrices, inverses=inverses, active_mask=mask), rng


class TestZfDetect:
    def test_recovers_transmitted_vectors_noiselessly(self):
        estimate, rng = _make_estimate()
        x = rng.normal(size=(4, 16)) + 1j * rng.normal(size=(4, 16))
        y = np.einsum("kij,jk->ik", estimate.matrices, x)
        recovered = zf_detect(y, estimate.inverses)
        np.testing.assert_allclose(recovered, x, atol=1e-9)

    def test_shape_validation(self):
        estimate, _ = _make_estimate()
        with pytest.raises(ValueError):
            zf_detect(np.zeros((4, 8)), estimate.inverses)
        with pytest.raises(ValueError):
            zf_detect(np.zeros(16), estimate.inverses)

    def test_detector_class_wraps_estimate(self):
        estimate, rng = _make_estimate(seed=1)
        detector = ZeroForcingDetector(estimate)
        x = rng.normal(size=(4, 16)) + 1j * rng.normal(size=(4, 16))
        y = np.einsum("kij,jk->ik", estimate.matrices, x)
        np.testing.assert_allclose(detector.detect(y), x, atol=1e-9)

    def test_noise_enhancement_positive_on_active_subcarriers(self):
        estimate, _ = _make_estimate(seed=2)
        enhancement = ZeroForcingDetector(estimate).noise_enhancement()
        assert enhancement.shape == (16,)
        assert np.all(enhancement > 0)

    def test_noise_enhancement_is_one_for_identity_channel(self):
        matrices = np.broadcast_to(np.eye(4, dtype=complex), (8, 4, 4)).copy()
        estimate = ChannelEstimate(
            matrices=matrices,
            inverses=matrices.copy(),
            active_mask=np.ones(8, dtype=bool),
        )
        enhancement = ZeroForcingDetector(estimate).noise_enhancement()
        np.testing.assert_allclose(enhancement, 1.0)


class TestMmseDetector:
    def test_reduces_to_zf_at_zero_noise(self):
        estimate, rng = _make_estimate(seed=3)
        x = rng.normal(size=(4, 16)) + 1j * rng.normal(size=(4, 16))
        y = np.einsum("kij,jk->ik", estimate.matrices, x)
        mmse = MmseDetector(estimate, noise_variance=0.0)
        np.testing.assert_allclose(mmse.detect(y), x, atol=1e-8)

    def test_lower_mse_than_zf_at_low_snr(self):
        estimate, rng = _make_estimate(seed=4)
        noise_variance = 0.5
        x = (rng.integers(0, 2, size=(4, 16)) * 2 - 1).astype(complex)
        noise = np.sqrt(noise_variance / 2) * (
            rng.normal(size=(4, 16)) + 1j * rng.normal(size=(4, 16))
        )
        y = np.einsum("kij,jk->ik", estimate.matrices, x) + noise
        zf_error = np.mean(np.abs(ZeroForcingDetector(estimate).detect(y) - x) ** 2)
        mmse_error = np.mean(
            np.abs(MmseDetector(estimate, noise_variance).detect(y) - x) ** 2
        )
        assert mmse_error < zf_error

    def test_negative_noise_variance_rejected(self):
        estimate, _ = _make_estimate(seed=5)
        with pytest.raises(ValueError):
            MmseDetector(estimate, noise_variance=-1.0)

    def test_shape_validation(self):
        estimate, _ = _make_estimate(seed=6)
        detector = MmseDetector(estimate, noise_variance=0.1)
        with pytest.raises(ValueError):
            detector.detect(np.zeros((4, 8)))

    def test_singular_gram_raises_decoding_error(self):
        # Regression: with noise_variance == 0 a rank-deficient channel
        # estimate makes the Gram matrix exactly singular; the raw
        # LinAlgError used to escape and kill a whole pooled sweep batch.
        matrices = np.zeros((8, 4, 4), dtype=np.complex128)
        matrices[:] = np.eye(4)
        matrices[:, :, 3] = matrices[:, :, 2]  # two identical columns
        estimate = ChannelEstimate(
            matrices=matrices,
            inverses=np.zeros_like(matrices),
            active_mask=np.ones(8, dtype=bool),
        )
        with pytest.raises(DecodingError):
            MmseDetector(estimate, noise_variance=0.0)


class TestBatchedDetection:
    """Whole-burst (n_rx, n_symbols, fft_size) detection agrees with per-symbol calls."""

    def test_zf_batched_equals_per_symbol(self):
        estimate, rng = _make_estimate(seed=7)
        block = rng.normal(size=(4, 6, 16)) + 1j * rng.normal(size=(4, 6, 16))
        batched = zf_detect(block, estimate.inverses)
        assert batched.shape == (4, 6, 16)
        for n in range(6):
            np.testing.assert_array_equal(
                batched[:, n], zf_detect(block[:, n], estimate.inverses)
            )

    def test_mmse_batched_equals_per_symbol(self):
        estimate, rng = _make_estimate(seed=8)
        detector = MmseDetector(estimate, noise_variance=0.2)
        block = rng.normal(size=(4, 5, 16)) + 1j * rng.normal(size=(4, 5, 16))
        batched = detector.detect(block)
        assert batched.shape == (4, 5, 16)
        for n in range(5):
            np.testing.assert_array_equal(batched[:, n], detector.detect(block[:, n]))

    def test_bad_rank_rejected(self):
        estimate, _ = _make_estimate(seed=9)
        with pytest.raises(ValueError):
            zf_detect(np.zeros((2, 3, 4, 16)), estimate.inverses)
        with pytest.raises(ValueError):
            zf_detect(np.zeros((4, 6, 8)), estimate.inverses)

"""Chunk-boundary correctness of the streaming receive pipeline.

The acceptance test of `repro.stream`: a concatenated multi-frame stream
fed through ``StreamFrameDetector`` + ``StreamingReceiver`` in chunks of
1, 7 and 4096 samples must decode the *identical* payload bits as the
offline ``MimoTransceiver`` receive path — every frame, bit for bit,
including the frames that straddle chunk boundaries (at chunk size 1,
every frame straddles ~1056 of them).
"""

import numpy as np
import pytest

from repro.channel.fading import FlatRayleighChannel
from repro.channel.model import MimoChannel
from repro.core.transceiver import MimoTransceiver
from repro.stream import StreamingReceiver

N_INFO_BITS = 256
N_FRAMES = 3
SNR_DB = 30.0


@pytest.fixture(scope="module")
def stream_and_reference():
    """A 3-frame continuous stream plus the offline receive-path decodes."""
    transceiver = MimoTransceiver()
    config = transceiver.config
    frames = []
    references = []
    rng = np.random.default_rng(1234)
    for index in range(N_FRAMES):
        burst = transceiver.transmitter.transmit_random(N_INFO_BITS, rng=rng)
        channel = MimoChannel(
            fading=FlatRayleighChannel(
                config.n_antennas, config.n_antennas, rng=rng.integers(0, 2**31)
            ),
            snr_db=SNR_DB,
            rng=rng.integers(0, 2**31),
        )
        frames.append(channel.transmit(burst.samples).samples)
        references.append(burst.info_bits)
    stream = np.concatenate(frames, axis=1)

    offline = []
    for received in frames:
        result = transceiver.receiver.receive(received, N_INFO_BITS)
        offline.append([s.decoded_bits for s in result.streams])
    return stream, frames, offline, references


def _decode_in_chunks(stream, chunk_size):
    pipeline = StreamingReceiver(n_info_bits=N_INFO_BITS)
    decoded = []
    for offset in range(0, stream.shape[1], chunk_size):
        decoded.extend(pipeline.push(stream[:, offset : offset + chunk_size]))
    decoded.extend(pipeline.flush())
    return decoded, pipeline


@pytest.mark.parametrize("chunk_size", [1, 7, 4096])
def test_chunked_decode_is_bit_exact_against_offline(
    stream_and_reference, chunk_size
):
    stream, frames, offline, references = stream_and_reference
    decoded, pipeline = _decode_in_chunks(stream, chunk_size)

    assert len(decoded) == N_FRAMES
    assert pipeline.frames_decoded == N_FRAMES
    assert pipeline.frames_lost == 0
    frame_length = frames[0].shape[1]
    for index, frame in enumerate(decoded):
        assert frame.ok
        # Frames are back to back, so frame i starts exactly where the
        # offline burst i was placed in the stream.
        assert frame.window.start == index * frame_length
        for stream_index, bits in enumerate(frame.decoded_bits()):
            np.testing.assert_array_equal(bits, offline[index][stream_index])


def test_all_chunkings_agree_with_each_other(stream_and_reference):
    stream, _, _, _ = stream_and_reference
    outcomes = {}
    for chunk_size in (1, 7, 4096):
        decoded, _ = _decode_in_chunks(stream, chunk_size)
        outcomes[chunk_size] = [
            (frame.window.start, frame.window.lts_start, frame.window.peak_metric)
            for frame in decoded
        ]
    assert outcomes[1] == outcomes[7] == outcomes[4096]


def test_clean_stream_payloads_roundtrip(stream_and_reference):
    # At 30 dB the payloads themselves should come back intact, which makes
    # the bit-exactness above a statement about *correct* decodes, not about
    # two paths failing identically.
    stream, _, offline, references = stream_and_reference
    for frame_reference, frame_offline in zip(references, offline):
        for reference, bits in zip(frame_reference, frame_offline):
            np.testing.assert_array_equal(reference, bits)

"""Tests for repro.dsp.fft."""

import numpy as np
import pytest

from repro.dsp.fft import (
    Fft,
    FftPlan,
    bit_reverse_indices,
    fft,
    fixed_point_fft,
    get_plan,
    ifft,
    ofdm_demodulate,
    ofdm_modulate,
)
from repro.dsp.fixedpoint import FixedPointFormat


class TestBitReverse:
    def test_known_permutation_8(self):
        np.testing.assert_array_equal(
            bit_reverse_indices(8), [0, 4, 2, 6, 1, 5, 3, 7]
        )

    def test_is_a_permutation(self):
        for n in (16, 64, 256):
            indices = bit_reverse_indices(n)
            assert sorted(indices.tolist()) == list(range(n))

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            bit_reverse_indices(12)


class TestFftCorrectness:
    @pytest.mark.parametrize("n", [4, 16, 64, 512])
    def test_matches_numpy_forward(self, n):
        rng = np.random.default_rng(n)
        x = rng.normal(size=n) + 1j * rng.normal(size=n)
        np.testing.assert_allclose(fft(x), np.fft.fft(x), atol=1e-9)

    @pytest.mark.parametrize("n", [4, 64, 256])
    def test_matches_numpy_inverse(self, n):
        rng = np.random.default_rng(n + 1)
        x = rng.normal(size=n) + 1j * rng.normal(size=n)
        np.testing.assert_allclose(ifft(x), np.fft.ifft(x), atol=1e-9)

    def test_roundtrip(self):
        rng = np.random.default_rng(9)
        x = rng.normal(size=64) + 1j * rng.normal(size=64)
        np.testing.assert_allclose(ifft(fft(x)), x, atol=1e-9)

    def test_multidimensional_input_last_axis(self):
        rng = np.random.default_rng(10)
        x = rng.normal(size=(4, 64)) + 1j * rng.normal(size=(4, 64))
        np.testing.assert_allclose(fft(x), np.fft.fft(x, axis=-1), atol=1e-9)

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            fft(np.ones(10))

    def test_parseval(self):
        rng = np.random.default_rng(11)
        x = rng.normal(size=128) + 1j * rng.normal(size=128)
        freq = fft(x)
        assert np.sum(np.abs(x) ** 2) == pytest.approx(np.sum(np.abs(freq) ** 2) / 128)


class TestFixedPointFft:
    def test_close_to_float_reference(self):
        fmt = FixedPointFormat(word_length=16, frac_bits=14)
        rng = np.random.default_rng(12)
        x = (rng.normal(size=64) + 1j * rng.normal(size=64)) * 0.05
        fixed = fixed_point_fft(x, fmt) * 64
        np.testing.assert_allclose(fixed, np.fft.fft(x), atol=2e-2)

    def test_inverse_mode(self):
        fmt = FixedPointFormat(word_length=18, frac_bits=16)
        rng = np.random.default_rng(13)
        x = (rng.normal(size=64) + 1j * rng.normal(size=64)) * 0.05
        fixed = fixed_point_fft(x, fmt, inverse=True)
        np.testing.assert_allclose(fixed, np.fft.ifft(x), atol=1e-3)

    def test_batched_input_matches_per_row_calls(self):
        # Regression: the fixed-point path used to crash with ValueError on
        # batched input while the float path accepted it; both now batch
        # over leading axes identically.
        fmt = FixedPointFormat(word_length=16, frac_bits=14)
        rng = np.random.default_rng(21)
        block = (rng.normal(size=(3, 5, 64)) + 1j * rng.normal(size=(3, 5, 64))) * 0.05
        for inverse in (False, True):
            batched = fixed_point_fft(block, fmt, inverse=inverse)
            assert batched.shape == block.shape
            for i in range(3):
                for j in range(5):
                    np.testing.assert_array_equal(
                        batched[i, j], fixed_point_fft(block[i, j], fmt, inverse=inverse)
                    )

    def test_batched_fixed_point_engine_matches_float_shapes(self):
        fmt = FixedPointFormat(word_length=18, frac_bits=16)
        engine = Fft(64, fixed_format=fmt)
        rng = np.random.default_rng(22)
        block = (rng.normal(size=(4, 7, 64)) + 1j * rng.normal(size=(4, 7, 64))) * 0.05
        assert engine.forward(block).shape == block.shape
        assert engine.inverse(block).shape == block.shape

    def test_rejects_non_power_of_two(self):
        fmt = FixedPointFormat(word_length=16, frac_bits=14)
        with pytest.raises(ValueError):
            fixed_point_fft(np.ones(10, dtype=complex), fmt)


class TestFftPlan:
    def test_get_plan_is_cached_per_size(self):
        assert get_plan(64) is get_plan(64)
        assert get_plan(64) is not get_plan(128)

    def test_plan_tables_cover_every_stage(self):
        plan = get_plan(64)
        assert plan.stages == 6
        assert len(plan.forward_twiddles) == 6
        assert len(plan.inverse_twiddles) == 6
        for stage, twiddles in enumerate(plan.forward_twiddles, start=1):
            assert twiddles.size == (1 << stage) // 2
        np.testing.assert_array_equal(plan.bit_reverse, bit_reverse_indices(64))

    def test_plan_forward_matches_module_fft(self):
        rng = np.random.default_rng(23)
        x = rng.normal(size=(2, 64)) + 1j * rng.normal(size=(2, 64))
        np.testing.assert_array_equal(FftPlan(64).forward(x), fft(x))
        np.testing.assert_array_equal(FftPlan(64).inverse(x), ifft(x))

    def test_plan_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            get_plan(64).forward(np.ones(32, dtype=complex))
        with pytest.raises(ValueError):
            FftPlan(12)


class TestFftEngine:
    def test_forward_inverse_roundtrip(self):
        engine = Fft(64)
        rng = np.random.default_rng(14)
        x = rng.normal(size=64) + 1j * rng.normal(size=64)
        np.testing.assert_allclose(engine.inverse(engine.forward(x)), x, atol=1e-9)

    def test_stage_count_and_latency(self):
        engine = Fft(64)
        assert engine.stages == 6
        assert engine.latency_cycles == 64 + 6 * Fft.PIPELINE_DEPTH_PER_STAGE

    def test_512_point_latency_larger(self):
        assert Fft(512).latency_cycles > Fft(64).latency_cycles

    def test_wrong_block_length_rejected(self):
        engine = Fft(64)
        with pytest.raises(ValueError):
            engine.forward(np.ones(32, dtype=complex))

    def test_fixed_point_engine(self):
        fmt = FixedPointFormat(word_length=16, frac_bits=14)
        engine = Fft(64, fixed_format=fmt)
        rng = np.random.default_rng(15)
        x = (rng.normal(size=64) + 1j * rng.normal(size=64)) * 0.05
        np.testing.assert_allclose(engine.forward(x), np.fft.fft(x), atol=2e-2)


class TestOfdmModulation:
    def test_cyclic_prefix_is_tail_copy(self):
        rng = np.random.default_rng(16)
        freq = rng.normal(size=64) + 1j * rng.normal(size=64)
        symbol = ofdm_modulate(freq, 16)
        assert symbol.size == 80
        np.testing.assert_allclose(symbol[:16], symbol[64:], atol=1e-12)

    def test_roundtrip_through_demodulation(self):
        rng = np.random.default_rng(17)
        freq = rng.normal(size=64) + 1j * rng.normal(size=64)
        symbol = ofdm_modulate(freq, 16)
        np.testing.assert_allclose(ofdm_demodulate(symbol, 64, 16), freq, atol=1e-9)

    def test_zero_prefix(self):
        freq = np.ones(64, dtype=complex)
        assert ofdm_modulate(freq, 0).size == 64

    def test_invalid_prefix_length(self):
        with pytest.raises(ValueError):
            ofdm_modulate(np.ones(64, dtype=complex), 65)

    def test_demodulate_length_check(self):
        with pytest.raises(ValueError):
            ofdm_demodulate(np.ones(70, dtype=complex), 64, 16)

"""Tests for repro.hardware.memory."""

import numpy as np
import pytest

from repro.hardware.memory import CircularBuffer, DualPortRam, Fifo, PingPongBuffer, Rom


class TestRom:
    def test_read_contents(self):
        rom = Rom([1 + 1j, 2 - 2j, 3j], word_bits=32)
        assert rom.read(1) == 2 - 2j
        assert len(rom) == 3

    def test_out_of_range(self):
        rom = Rom([0], word_bits=8)
        with pytest.raises(IndexError):
            rom.read(1)

    def test_memory_bits(self):
        assert Rom([0] * 64, word_bits=32).memory_bits == 2048

    def test_invalid_word_bits(self):
        with pytest.raises(ValueError):
            Rom([0], word_bits=0)


class TestDualPortRam:
    def test_write_then_read(self):
        ram = DualPortRam(depth=16, word_bits=32)
        ram.write(5, 1 - 1j)
        assert ram.read(5) == 1 - 1j

    def test_unwritten_locations_zero(self):
        assert DualPortRam(4, 8).read(0) == 0

    def test_address_checks(self):
        ram = DualPortRam(4, 8)
        with pytest.raises(IndexError):
            ram.write(4, 0)
        with pytest.raises(IndexError):
            ram.read(-1)

    def test_memory_bits(self):
        assert DualPortRam(depth=128, word_bits=32).memory_bits == 4096


class TestPingPongBuffer:
    def test_block_available_only_when_full(self):
        buffer = PingPongBuffer(block_size=4)
        assert not buffer.push(1)
        assert not buffer.push(0)
        assert not buffer.push(1)
        assert buffer.push(1)
        assert buffer.readable
        np.testing.assert_array_equal(buffer.read_block(), [1, 0, 1, 1])
        assert not buffer.readable

    def test_continuous_streaming_swaps(self):
        buffer = PingPongBuffer(block_size=2)
        buffer.push(1)
        buffer.push(2)
        first = buffer.read_block()
        buffer.push(3)
        buffer.push(4)
        second = buffer.read_block()
        np.testing.assert_array_equal(first, [1, 2])
        np.testing.assert_array_equal(second, [3, 4])
        assert buffer.swaps == 2

    def test_read_without_block_raises(self):
        with pytest.raises(RuntimeError):
            PingPongBuffer(2).read_block()

    def test_memory_bits_counts_both_memories(self):
        assert PingPongBuffer(block_size=192, word_bits=1).memory_bits == 384

    def test_invalid_block_size(self):
        with pytest.raises(ValueError):
            PingPongBuffer(0)


class TestFifo:
    def test_fifo_order(self):
        fifo = Fifo(depth=8)
        fifo.push_many([1, 2, 3])
        assert fifo.pop_many(3) == [1, 2, 3]

    def test_overflow(self):
        fifo = Fifo(depth=2)
        fifo.push_many([1, 2])
        assert fifo.full
        with pytest.raises(OverflowError):
            fifo.push(3)

    def test_underflow(self):
        with pytest.raises(IndexError):
            Fifo(2).pop()

    def test_len_and_empty(self):
        fifo = Fifo(4)
        assert fifo.empty
        fifo.push(1)
        assert len(fifo) == 1

    def test_memory_bits(self):
        assert Fifo(depth=1024, word_bits=32).memory_bits == 32768


class TestCircularBuffer:
    def test_latest_returns_most_recent(self):
        buffer = CircularBuffer(depth=8)
        buffer.push_many(range(10))
        np.testing.assert_allclose(buffer.latest(3), [7, 8, 9])

    def test_wraparound(self):
        buffer = CircularBuffer(depth=4)
        buffer.push_many([1, 2, 3, 4, 5, 6])
        np.testing.assert_allclose(buffer.latest(4), [3, 4, 5, 6])

    def test_requesting_too_many_raises(self):
        buffer = CircularBuffer(depth=4)
        buffer.push(1)
        with pytest.raises(ValueError):
            buffer.latest(2)

    def test_len_saturates_at_depth(self):
        buffer = CircularBuffer(depth=3)
        buffer.push_many(range(10))
        assert len(buffer) == 3

    def test_memory_bits(self):
        assert CircularBuffer(depth=800, word_bits=32).memory_bits == 25600

"""Tests for repro.channel.awgn."""

import numpy as np
import pytest

from repro.channel.awgn import (
    add_awgn,
    awgn_noise,
    noise_variance_for_snr,
    occupied_power,
)


class TestNoiseVariance:
    def test_zero_db(self):
        assert noise_variance_for_snr(0.0, 1.0) == pytest.approx(1.0)

    def test_ten_db(self):
        assert noise_variance_for_snr(10.0, 1.0) == pytest.approx(0.1)

    def test_scales_with_signal_power(self):
        assert noise_variance_for_snr(10.0, 4.0) == pytest.approx(0.4)

    def test_rejects_non_positive_power(self):
        with pytest.raises(ValueError):
            noise_variance_for_snr(10.0, 0.0)


class TestAwgnNoise:
    def test_variance_matches_request(self):
        noise = awgn_noise(200_000, 0.25, rng=0)
        assert np.mean(np.abs(noise) ** 2) == pytest.approx(0.25, rel=0.02)

    def test_circular_symmetry(self):
        noise = awgn_noise(200_000, 1.0, rng=1)
        assert np.mean(noise.real ** 2) == pytest.approx(0.5, rel=0.05)
        assert np.mean(noise.imag ** 2) == pytest.approx(0.5, rel=0.05)
        assert abs(np.mean(noise.real * noise.imag)) < 0.01

    def test_shape(self):
        assert awgn_noise((4, 100), 1.0, rng=2).shape == (4, 100)

    def test_negative_variance_rejected(self):
        with pytest.raises(ValueError):
            awgn_noise(10, -1.0)


class TestOccupiedPower:
    def test_matches_plain_mean_when_fully_occupied(self):
        rng = np.random.default_rng(20)
        signal = rng.normal(size=1000) + 1j * rng.normal(size=1000)
        assert occupied_power(signal) == pytest.approx(np.mean(np.abs(signal) ** 2))

    def test_zero_padding_does_not_dilute(self):
        signal = np.ones(100, dtype=complex)
        padded = np.concatenate([np.zeros(400, dtype=complex), signal, np.zeros(500, dtype=complex)])
        assert occupied_power(padded) == pytest.approx(1.0)
        assert occupied_power(signal) == occupied_power(padded)

    def test_multi_antenna_column_occupancy(self):
        # A staggered-preamble instant where only one antenna radiates is
        # still occupied air time: the column counts with its full power
        # (including the silent antennas' zeros), only all-silent columns
        # are excluded.
        x = np.zeros((2, 4), dtype=complex)
        x[0, 1] = 2.0  # only antenna 0 active at instant 1
        x[:, 2] = 1.0  # both antennas active at instant 2
        # Occupied columns: 1 and 2 -> mean over 2 antennas * 2 instants.
        assert occupied_power(x) == pytest.approx((4.0 + 0.0 + 1.0 + 1.0) / 4.0)

    def test_silent_and_empty_signals(self):
        assert occupied_power(np.zeros(16, dtype=complex)) == 0.0
        assert occupied_power(np.zeros((4, 0), dtype=complex)) == 0.0


class TestAddAwgn:
    def test_achieved_snr(self):
        rng = np.random.default_rng(3)
        signal = np.exp(1j * rng.uniform(0, 2 * np.pi, 100_000))
        noisy = add_awgn(signal, 15.0, rng=4)
        noise_power = np.mean(np.abs(noisy - signal) ** 2)
        achieved = 10 * np.log10(1.0 / noise_power)
        assert achieved == pytest.approx(15.0, abs=0.2)

    def test_reproducible_with_seed(self):
        signal = np.ones(100, dtype=complex)
        a = add_awgn(signal, 10.0, rng=5)
        b = add_awgn(signal, 10.0, rng=5)
        np.testing.assert_array_equal(a, b)

    def test_zero_signal_returned_unchanged(self):
        signal = np.zeros(16, dtype=complex)
        np.testing.assert_array_equal(add_awgn(signal, 10.0, rng=6), signal)

    def test_empty_signal(self):
        assert add_awgn(np.zeros(0, dtype=complex), 10.0).size == 0

    def test_unit_power_assumption(self):
        rng = np.random.default_rng(7)
        signal = 0.1 * np.exp(1j * rng.uniform(0, 2 * np.pi, 50_000))
        noisy = add_awgn(signal, 20.0, rng=8, measure_power=False)
        noise_power = np.mean(np.abs(noisy - signal) ** 2)
        # Noise sized for unit signal power -> variance 0.01 regardless of
        # the actual (weaker) signal.
        assert noise_power == pytest.approx(0.01, rel=0.05)

    def test_explicit_signal_power_overrides_measurement(self):
        signal = 0.1 * np.ones(50_000, dtype=complex)
        noisy = add_awgn(signal, 20.0, rng=9, signal_power=4.0)
        noise_power = np.mean(np.abs(noisy - signal) ** 2)
        assert noise_power == pytest.approx(0.04, rel=0.05)

    def test_delivered_snr_invariant_to_zero_padding(self):
        # Regression: the signal power used to be averaged over the whole
        # window, so a sample_delay zero pad or an idle tail quietly raised
        # the delivered SNR.  The occupied-sample measurement makes the
        # injected noise variance identical with and without the padding.
        rng = np.random.default_rng(21)
        signal = np.exp(1j * rng.uniform(0, 2 * np.pi, 20_000))
        padded = np.concatenate(
            [np.zeros(5_000, dtype=complex), signal, np.zeros(5_000, dtype=complex)]
        )
        plain_noisy = add_awgn(signal, 12.0, rng=22)
        padded_noisy = add_awgn(padded, 12.0, rng=23)
        plain_var = np.mean(np.abs(plain_noisy - signal) ** 2)
        padded_var = np.mean(np.abs(padded_noisy - padded) ** 2)
        assert padded_var == pytest.approx(plain_var, rel=0.05)
        achieved = 10 * np.log10(1.0 / padded_var)
        assert achieved == pytest.approx(12.0, abs=0.2)

"""Tests for repro.channel.awgn."""

import numpy as np
import pytest

from repro.channel.awgn import add_awgn, awgn_noise, noise_variance_for_snr


class TestNoiseVariance:
    def test_zero_db(self):
        assert noise_variance_for_snr(0.0, 1.0) == pytest.approx(1.0)

    def test_ten_db(self):
        assert noise_variance_for_snr(10.0, 1.0) == pytest.approx(0.1)

    def test_scales_with_signal_power(self):
        assert noise_variance_for_snr(10.0, 4.0) == pytest.approx(0.4)

    def test_rejects_non_positive_power(self):
        with pytest.raises(ValueError):
            noise_variance_for_snr(10.0, 0.0)


class TestAwgnNoise:
    def test_variance_matches_request(self):
        noise = awgn_noise(200_000, 0.25, rng=0)
        assert np.mean(np.abs(noise) ** 2) == pytest.approx(0.25, rel=0.02)

    def test_circular_symmetry(self):
        noise = awgn_noise(200_000, 1.0, rng=1)
        assert np.mean(noise.real ** 2) == pytest.approx(0.5, rel=0.05)
        assert np.mean(noise.imag ** 2) == pytest.approx(0.5, rel=0.05)
        assert abs(np.mean(noise.real * noise.imag)) < 0.01

    def test_shape(self):
        assert awgn_noise((4, 100), 1.0, rng=2).shape == (4, 100)

    def test_negative_variance_rejected(self):
        with pytest.raises(ValueError):
            awgn_noise(10, -1.0)


class TestAddAwgn:
    def test_achieved_snr(self):
        rng = np.random.default_rng(3)
        signal = np.exp(1j * rng.uniform(0, 2 * np.pi, 100_000))
        noisy = add_awgn(signal, 15.0, rng=4)
        noise_power = np.mean(np.abs(noisy - signal) ** 2)
        achieved = 10 * np.log10(1.0 / noise_power)
        assert achieved == pytest.approx(15.0, abs=0.2)

    def test_reproducible_with_seed(self):
        signal = np.ones(100, dtype=complex)
        a = add_awgn(signal, 10.0, rng=5)
        b = add_awgn(signal, 10.0, rng=5)
        np.testing.assert_array_equal(a, b)

    def test_zero_signal_returned_unchanged(self):
        signal = np.zeros(16, dtype=complex)
        np.testing.assert_array_equal(add_awgn(signal, 10.0, rng=6), signal)

    def test_empty_signal(self):
        assert add_awgn(np.zeros(0, dtype=complex), 10.0).size == 0

    def test_unit_power_assumption(self):
        rng = np.random.default_rng(7)
        signal = 0.1 * np.exp(1j * rng.uniform(0, 2 * np.pi, 50_000))
        noisy = add_awgn(signal, 20.0, rng=8, measure_power=False)
        noise_power = np.mean(np.abs(noisy - signal) ** 2)
        # Noise sized for unit signal power -> variance 0.01 regardless of
        # the actual (weaker) signal.
        assert noise_power == pytest.approx(0.01, rel=0.05)

"""Tests for repro.rtl.tx_datapath and repro.rtl.rx_datapath."""

import numpy as np
import pytest

from repro.core.config import TransceiverConfig
from repro.core.transmitter import MimoTransmitter
from repro.exceptions import SynchronizationError
from repro.rtl.rx_datapath import RxFrontEnd
from repro.rtl.tx_datapath import TxStreamDatapath


@pytest.fixture
def burst(paper_config):
    transmitter = MimoTransmitter(paper_config)
    return transmitter.transmit_random(200, rng=np.random.default_rng(42))


class TestTxStreamDatapath:
    def test_waveform_matches_functional_transmitter(self, paper_config, burst):
        datapath = TxStreamDatapath(paper_config)
        samples, report = datapath.stream(burst.coded_bits[0])
        functional = burst.samples[0, burst.layout.total_length :]
        np.testing.assert_allclose(samples, functional[: samples.size], atol=1e-9)
        assert report.ofdm_symbols == burst.n_ofdm_symbols

    def test_partial_block_not_emitted(self, paper_config):
        datapath = TxStreamDatapath(paper_config)
        samples, report = datapath.stream(np.zeros(100, dtype=np.uint8))
        assert samples.size == 0
        assert report.ofdm_symbols == 0
        assert datapath.interleaver_memory.write_fill == 100

    def test_cycle_accounting(self, paper_config):
        datapath = TxStreamDatapath(paper_config)
        coded = np.zeros(192, dtype=np.uint8)
        _, report = datapath.stream(coded)
        # One cycle per input bit plus one per output sample.
        assert report.cycles_consumed == 192 + 80
        assert report.samples_per_symbol == 80

    def test_reset(self, paper_config):
        datapath = TxStreamDatapath(paper_config)
        datapath.stream(np.zeros(10, dtype=np.uint8))
        datapath.reset()
        assert datapath.cycles == 0
        assert datapath.interleaver_memory.write_fill == 0

    def test_cp_memory_sized_for_double_buffering(self, paper_config):
        datapath = TxStreamDatapath(paper_config)
        assert datapath.cp_memory.depth == 2 * paper_config.fft_size

    def test_different_modulation(self):
        config = TransceiverConfig(modulation="qpsk")
        transmitter = MimoTransmitter(config)
        burst = transmitter.transmit_random(80, rng=np.random.default_rng(1))
        datapath = TxStreamDatapath(config)
        samples, _ = datapath.stream(burst.coded_bits[2])
        functional = burst.samples[2, burst.layout.total_length :]
        np.testing.assert_allclose(samples, functional[: samples.size], atol=1e-9)


class TestRxFrontEnd:
    def test_sync_and_replay_match_direct_slicing(self, paper_config, burst):
        front_end = RxFrontEnd(paper_config)
        report = front_end.ingest(burst.samples)
        assert report.lts_start == burst.layout.sts_length
        assert report.locked
        replayed = front_end.replay_lts(report, burst.samples.shape[1])
        direct = burst.samples[:, report.lts_start : report.lts_start + replayed.shape[1]]
        np.testing.assert_allclose(replayed, direct, atol=1e-12)

    def test_buffer_depth_covers_preamble(self, paper_config):
        front_end = RxFrontEnd(paper_config, buffer_margin=64)
        assert front_end.buffers[0].depth == 800 + 64

    def test_shape_validation(self, paper_config):
        front_end = RxFrontEnd(paper_config)
        with pytest.raises(ValueError):
            front_end.ingest(np.zeros((2, 100), dtype=complex))

    def test_sync_failure_on_noise_only_stream(self, paper_config):
        front_end = RxFrontEnd(paper_config)
        rng = np.random.default_rng(3)
        noise = 1e-6 * (rng.normal(size=(4, 1000)) + 1j * rng.normal(size=(4, 1000)))
        # Peak mode always finds *some* peak; but replay must fail if the
        # "LTS" has not been fully ingested (peak near the stream end).
        report = front_end.ingest(noise)
        with pytest.raises(ValueError):
            front_end.replay_lts(report, total_ingested=report.lts_start + 10)

    def test_replay_requires_enough_history(self, paper_config, burst):
        front_end = RxFrontEnd(paper_config, buffer_margin=0)
        # Ingest the burst twice so the circular buffer has wrapped well past
        # the first preamble; replaying the original position must fail.
        front_end.ingest(burst.samples)
        report = front_end.ingest(burst.samples)
        with pytest.raises(ValueError):
            front_end.replay_lts(report, total_ingested=2 * burst.samples.shape[1])

"""Tests for repro.dsp.backend — the pluggable transform-arithmetic seam."""

import numpy as np
import pytest

from repro.dsp.backend import (
    DspBackend,
    NumpyBackend,
    SinglePrecisionBackend,
    available_backends,
    default_backend,
    get_backend,
    register_backend,
)
from repro.dsp.fft import fft, ifft


class TestRegistry:
    def test_default_is_numpy(self):
        assert get_backend(None).name == "numpy"
        assert default_backend().name == "numpy"

    def test_lookup_by_name(self):
        assert isinstance(get_backend("numpy"), NumpyBackend)
        assert isinstance(get_backend("numpy32"), SinglePrecisionBackend)

    def test_instance_passes_through(self):
        backend = NumpyBackend()
        assert get_backend(backend) is backend

    def test_unknown_name_lists_choices(self):
        with pytest.raises(ValueError, match="numpy"):
            get_backend("does-not-exist")

    def test_available_backends(self):
        names = available_backends()
        assert "numpy" in names
        assert "numpy32" in names

    def test_register_custom_backend(self):
        class Custom(NumpyBackend):
            name = "custom-for-test"

        try:
            register_backend(Custom())
            assert get_backend("custom-for-test").name == "custom-for-test"
        finally:
            available = available_backends()
            if "custom-for-test" in available:
                from repro.dsp import backend as backend_module

                del backend_module._BACKENDS["custom-for-test"]

    def test_env_var_selects_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_DSP_BACKEND", "numpy32")
        assert default_backend().name == "numpy32"

    def test_abstract_backend_rejects_transforms(self):
        backend = DspBackend()
        with pytest.raises(NotImplementedError):
            backend.fft(np.zeros(8, dtype=complex))
        with pytest.raises(NotImplementedError):
            backend.ifft(np.zeros(8, dtype=complex))


class TestNumpyBackend:
    def test_bit_identical_to_module_transforms(self):
        rng = np.random.default_rng(40)
        backend = NumpyBackend()
        for shape in [(64,), (5, 64), (4, 7, 128)]:
            x = rng.normal(size=shape) + 1j * rng.normal(size=shape)
            rows = x.reshape(-1, shape[-1])
            expected_fft = np.stack([fft(row) for row in rows]).reshape(shape)
            expected_ifft = np.stack([ifft(row) for row in rows]).reshape(shape)
            np.testing.assert_array_equal(backend.fft(x), expected_fft)
            np.testing.assert_array_equal(backend.ifft(x), expected_ifft)

    def test_round_trip(self):
        rng = np.random.default_rng(41)
        x = rng.normal(size=(3, 64)) + 1j * rng.normal(size=(3, 64))
        backend = NumpyBackend()
        np.testing.assert_allclose(backend.ifft(backend.fft(x)), x, atol=1e-12)


class TestSinglePrecisionBackend:
    def test_dtype_is_complex64(self):
        backend = SinglePrecisionBackend()
        x = np.ones((2, 64), dtype=np.complex128)
        assert backend.fft(x).dtype == np.complex64
        assert backend.ifft(x).dtype == np.complex64

    def test_close_to_double_precision(self):
        rng = np.random.default_rng(42)
        x = rng.normal(size=(4, 9, 64)) + 1j * rng.normal(size=(4, 9, 64))
        double = NumpyBackend()
        single = SinglePrecisionBackend()
        np.testing.assert_allclose(single.fft(x), double.fft(x), atol=1e-4)
        np.testing.assert_allclose(single.ifft(x), double.ifft(x), atol=1e-6)

    def test_round_trip(self):
        rng = np.random.default_rng(43)
        x = rng.normal(size=(2, 128)) + 1j * rng.normal(size=(2, 128))
        backend = SinglePrecisionBackend()
        np.testing.assert_allclose(backend.ifft(backend.fft(x)), x, atol=1e-4)


class TestTransmitterThroughBackends:
    def test_numpy32_burst_close_but_not_exact(self):
        from repro.core.config import TransceiverConfig
        from repro.core.transmitter import MimoTransmitter

        config = TransceiverConfig()
        rng = np.random.default_rng(44)
        bits = [
            rng.integers(0, 2, size=480, dtype=np.uint8)
            for _ in range(config.n_streams)
        ]
        reference = MimoTransmitter(config).transmit(bits)
        single = MimoTransmitter(config, backend="numpy32").transmit(bits)
        assert not np.array_equal(single.samples, reference.samples)
        np.testing.assert_allclose(single.samples, reference.samples, atol=1e-5)

"""Tests for repro.coding.interleaver."""

import numpy as np
import pytest

from repro.coding.interleaver import (
    BlockDeinterleaver,
    BlockInterleaver,
    deinterleave,
    deinterleaver_permutation,
    interleave,
    interleaver_permutation,
)
from repro.utils.bits import random_bits


class TestPermutation:
    @pytest.mark.parametrize(
        "n_cbps,n_bpsc", [(48, 1), (96, 2), (192, 4), (288, 6), (1536, 4)]
    )
    def test_is_a_permutation(self, n_cbps, n_bpsc):
        perm = interleaver_permutation(n_cbps, n_bpsc)
        assert sorted(perm.tolist()) == list(range(n_cbps))

    def test_inverse_permutation(self):
        perm = interleaver_permutation(192, 4)
        inverse = deinterleaver_permutation(192, 4)
        np.testing.assert_array_equal(perm[inverse], np.arange(192))

    def test_known_80211a_first_entries(self):
        # For N_CBPS=48, BPSK: bit k goes to position (3*(k mod 16) + k//16).
        perm = interleaver_permutation(48, 1)
        expected_first = [3 * (k % 16) + k // 16 for k in range(48)]
        np.testing.assert_array_equal(perm, expected_first)

    def test_adjacent_bits_spread_apart(self):
        # Adjacent coded bits must not land on adjacent output positions
        # (the whole point of the interleaver).
        perm = interleaver_permutation(192, 4)
        gaps = np.abs(np.diff(perm.astype(int)))
        assert gaps.min() >= 4

    def test_rejects_bad_block_size(self):
        with pytest.raises(ValueError):
            interleaver_permutation(50, 1)
        with pytest.raises(ValueError):
            interleaver_permutation(0, 1)
        with pytest.raises(ValueError):
            interleaver_permutation(48, 0)


class TestBatchInterleaving:
    def test_roundtrip(self):
        rng = np.random.default_rng(0)
        bits = random_bits(192 * 3, rng)
        np.testing.assert_array_equal(
            deinterleave(interleave(bits, 192, 4), 192, 4), bits
        )

    def test_roundtrip_soft_values(self):
        rng = np.random.default_rng(1)
        llrs = rng.normal(size=288)
        np.testing.assert_allclose(
            deinterleave(interleave(llrs, 288, 6), 288, 6), llrs
        )

    def test_interleave_requires_whole_blocks(self):
        with pytest.raises(ValueError):
            interleave(np.zeros(100), 192, 4)
        with pytest.raises(ValueError):
            deinterleave(np.zeros(100), 192, 4)

    def test_single_block_is_permutation_of_input(self):
        rng = np.random.default_rng(2)
        bits = random_bits(96, rng)
        out = interleave(bits, 96, 2)
        assert sorted(out.tolist()) == sorted(bits.tolist())
        assert not np.array_equal(out, bits)


class TestStreamingInterleaver:
    def test_streaming_matches_batch(self):
        rng = np.random.default_rng(3)
        bits = random_bits(192 * 2, rng)
        interleaver = BlockInterleaver(192, 4)
        blocks = interleaver.push_block(bits)
        assert len(blocks) == 2
        batch = interleave(bits, 192, 4).reshape(2, 192)
        np.testing.assert_array_equal(np.vstack(blocks), batch)

    def test_no_output_until_block_full(self):
        interleaver = BlockInterleaver(48, 1)
        for _ in range(47):
            assert interleaver.push(1) is None
        assert interleaver.push(0) is not None
        assert interleaver.blocks_processed == 1

    def test_fill_level_and_reset(self):
        interleaver = BlockInterleaver(48, 1)
        interleaver.push_block(np.ones(30, dtype=np.uint8))
        assert interleaver.fill_level == 30
        interleaver.reset()
        assert interleaver.fill_level == 0

    def test_rejects_non_binary_input(self):
        with pytest.raises(ValueError):
            BlockInterleaver(48, 1).push(3)

    def test_streaming_deinterleaver_roundtrip(self):
        rng = np.random.default_rng(4)
        bits = random_bits(192, rng)
        interleaved = interleave(bits, 192, 4)
        deinterleaver = BlockDeinterleaver(192, 4)
        blocks = deinterleaver.push_block(interleaved.astype(np.float64))
        assert len(blocks) == 1
        np.testing.assert_array_equal(blocks[0].astype(np.uint8), bits)

    def test_deinterleaver_handles_soft_values(self):
        rng = np.random.default_rng(5)
        llrs = rng.normal(size=192)
        interleaved = interleave(llrs, 192, 4)
        deinterleaver = BlockDeinterleaver(192, 4)
        blocks = deinterleaver.push_block(interleaved)
        np.testing.assert_allclose(blocks[0], llrs)

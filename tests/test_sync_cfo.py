"""Tests for repro.sync.cfo — the preamble-based CFO estimator extension."""

import numpy as np
import pytest

from repro.channel.awgn import add_awgn
from repro.channel.impairments import apply_carrier_frequency_offset
from repro.core.config import TransceiverConfig
from repro.core.preamble import PreambleGenerator
from repro.core.transceiver import simulate_link
from repro.channel.fading import FlatRayleighChannel
from repro.channel.model import MimoChannel
from repro.dsp.fixedpoint import SAMPLE_FORMAT_16BIT
from repro.exceptions import SynchronizationError
from repro.sync.cfo import (
    CfoEstimator,
    apply_cfo_correction,
    estimate_cfo_from_repetition,
)


@pytest.fixture
def preamble_waveform():
    return PreambleGenerator(64).mimo_preamble(4)


class TestRepetitionEstimator:
    def test_zero_cfo(self, preamble_waveform):
        cfo = estimate_cfo_from_repetition(preamble_waveform[0], period=16, start=16, n_periods=8)
        assert cfo == pytest.approx(0.0, abs=1e-12)

    @pytest.mark.parametrize("true_cfo", [-0.02, -0.005, 0.001, 0.01, 0.025])
    def test_recovers_applied_cfo_from_sts(self, preamble_waveform, true_cfo):
        shifted = apply_carrier_frequency_offset(preamble_waveform, true_cfo)
        measured = estimate_cfo_from_repetition(shifted[0], period=16, start=16, n_periods=8)
        assert measured == pytest.approx(true_cfo, abs=1e-6)

    def test_multi_antenna_combining(self, preamble_waveform):
        shifted = apply_carrier_frequency_offset(preamble_waveform, 0.003)
        measured = estimate_cfo_from_repetition(shifted, period=64, start=192, n_periods=2)
        assert measured == pytest.approx(0.003, abs=1e-6)

    def test_bounds_checked(self, preamble_waveform):
        with pytest.raises(SynchronizationError):
            estimate_cfo_from_repetition(preamble_waveform[0], period=64, start=700, n_periods=4)
        with pytest.raises(ValueError):
            estimate_cfo_from_repetition(preamble_waveform[0], period=0, start=0, n_periods=2)
        with pytest.raises(ValueError):
            estimate_cfo_from_repetition(preamble_waveform[0], period=16, start=0, n_periods=1)

    def test_zero_signal_returns_zero(self):
        assert estimate_cfo_from_repetition(np.zeros(200, dtype=complex), 16, 0, 4) == 0.0


class TestCfoEstimator:
    @pytest.mark.parametrize("true_cfo", [1e-4, 1e-3, 5e-3, 1.5e-2])
    def test_combined_estimate_accuracy(self, preamble_waveform, true_cfo):
        estimator = CfoEstimator(64)
        shifted = apply_carrier_frequency_offset(preamble_waveform, true_cfo)
        estimate = estimator.estimate(shifted, lts_start=160)
        assert estimate.combined == pytest.approx(true_cfo, abs=1e-5)

    def test_accuracy_with_noise(self, preamble_waveform):
        estimator = CfoEstimator(64)
        shifted = apply_carrier_frequency_offset(preamble_waveform, 2e-3)
        noisy = add_awgn(shifted, 20.0, rng=1)
        estimate = estimator.estimate(noisy, lts_start=160)
        assert estimate.combined == pytest.approx(2e-3, abs=2e-4)

    def test_ranges(self):
        estimator = CfoEstimator(64)
        assert estimator.coarse_range == pytest.approx(1 / 32)
        assert estimator.fine_range == pytest.approx(1 / 128)
        assert estimator.coarse_range > estimator.fine_range

    def test_correction_restores_waveform(self, preamble_waveform):
        estimator = CfoEstimator(64)
        shifted = apply_carrier_frequency_offset(preamble_waveform, 4e-3)
        estimate = estimator.estimate(shifted, lts_start=160)
        corrected = estimator.correct(shifted, estimate)
        np.testing.assert_allclose(corrected, preamble_waveform, atol=1e-6)

    def test_in_hertz(self):
        estimator = CfoEstimator(64)
        shifted = apply_carrier_frequency_offset(PreambleGenerator(64).mimo_preamble(4), 1e-3)
        estimate = estimator.estimate(shifted, lts_start=160)
        assert estimate.in_hertz(100e6) == pytest.approx(100e3, rel=1e-3)

    def test_apply_cfo_correction_inverse_of_impairment(self):
        rng = np.random.default_rng(2)
        samples = rng.normal(size=(4, 100)) + 1j * rng.normal(size=(4, 100))
        shifted = apply_carrier_frequency_offset(samples, 0.007)
        np.testing.assert_allclose(apply_cfo_correction(shifted, 0.007), samples, atol=1e-12)

    @pytest.mark.parametrize("sign", [1.0, -1.0])
    def test_fine_ambiguity_boundary_unwrapped_by_coarse(self, preamble_waveform, sign):
        # At |CFO| = 1/(2*fft_size) the LTS repetition phase is exactly pi,
        # so the raw fine estimate can come back with either sign; the
        # coarse estimate must pick the right 1/fft_size multiple.
        estimator = CfoEstimator(64)
        true_cfo = sign * estimator.fine_range
        shifted = apply_carrier_frequency_offset(preamble_waveform, true_cfo)
        estimate = estimator.estimate(shifted, lts_start=160)
        assert abs(estimate.fine) <= estimator.fine_range + 1e-9
        assert estimate.combined == pytest.approx(true_cfo, abs=1e-5)

    def test_cfo_beyond_fine_range_recovered_by_unwrap(self, preamble_waveform):
        # 15 % past the fine ambiguity boundary: the fine estimate wraps to
        # the other side of zero and only the coarse unwrap recovers it.
        estimator = CfoEstimator(64)
        true_cfo = 1.15 * estimator.fine_range
        shifted = apply_carrier_frequency_offset(preamble_waveform, true_cfo)
        estimate = estimator.estimate(shifted, lts_start=160)
        assert estimate.fine != pytest.approx(true_cfo, abs=1e-4)
        assert estimate.combined == pytest.approx(true_cfo, abs=1e-5)

    def test_sts_start_negative_falls_back_to_fine_only(self, preamble_waveform):
        # When the stream starts mid-STS (lts_start < STS length) the coarse
        # stage has nothing to correlate and must drop out as 0.0 instead of
        # reading before the start of the buffer.
        estimator = CfoEstimator(64)
        true_cfo = 3e-3
        shifted = apply_carrier_frequency_offset(preamble_waveform, true_cfo)
        truncated = shifted[:, 120:]  # LTS slot 0 now starts at sample 40.
        estimate = estimator.estimate(truncated, lts_start=40)
        assert estimate.coarse == 0.0
        assert estimate.combined == pytest.approx(true_cfo, abs=1e-5)


class TestReceiverIntegration:
    def test_large_cfo_breaks_uncorrected_link(self):
        channel = MimoChannel(
            FlatRayleighChannel(rng=26), snr_db=35.0, rng=27, cfo_normalized=5e-3
        )
        stats = simulate_link(
            TransceiverConfig(correct_cfo=False), channel, n_info_bits=200, n_bursts=1, rng=1
        )
        assert stats["bit_error_rate"] > 0.1

    def test_cfo_correction_repairs_the_link(self):
        channel = MimoChannel(
            FlatRayleighChannel(rng=26), snr_db=35.0, rng=27, cfo_normalized=5e-3
        )
        stats = simulate_link(
            TransceiverConfig(correct_cfo=True), channel, n_info_bits=200, n_bursts=1, rng=1
        )
        assert stats["bit_error_rate"] == 0.0

    def test_estimated_cfo_reported_in_diagnostics(self):
        from repro.core.transceiver import MimoTransceiver

        channel = MimoChannel(snr_db=35.0, rng=28, cfo_normalized=3e-3)
        transceiver = MimoTransceiver(TransceiverConfig(correct_cfo=True), channel=channel)
        result = transceiver.run_burst(150, rng=2)
        assert result.receive_result.diagnostics["estimated_cfo"] == pytest.approx(3e-3, abs=2e-4)
        assert result.bit_errors == 0

    def test_burst_recovery_with_cfo_iq_and_quantization_together(self):
        # The paper's front-end conditions combined: CFO, mixer IQ
        # imbalance and 16-bit DAC/ADC quantisation on a faded link.  The
        # CFO estimator runs on already-quantised samples and the link must
        # still decode cleanly at high SNR.
        channel = MimoChannel(
            FlatRayleighChannel(rng=26),
            snr_db=35.0,
            rng=27,
            cfo_normalized=2e-3,
            iq_amplitude_db=0.2,
            iq_phase_deg=1.0,
            tx_quantization=SAMPLE_FORMAT_16BIT,
        )
        config = TransceiverConfig(
            correct_cfo=True, rx_sample_format=SAMPLE_FORMAT_16BIT
        )
        stats = simulate_link(config, channel, n_info_bits=200, n_bursts=1, rng=1)
        assert stats["bit_error_rate"] == 0.0

"""Tests for repro.dsp.correlation."""

import numpy as np
import pytest

from repro.dsp.correlation import SlidingWindowCorrelator, cross_correlate


class TestCrossCorrelate:
    def test_output_length(self):
        out = cross_correlate(np.ones(100, dtype=complex), np.ones(32, dtype=complex))
        assert out.size == 100 - 32 + 1

    def test_peak_at_embedded_reference(self):
        rng = np.random.default_rng(1)
        reference = rng.normal(size=32) + 1j * rng.normal(size=32)
        noise = 0.01 * (rng.normal(size=200) + 1j * rng.normal(size=200))
        stream = noise.copy()
        stream[77:109] += np.conj(reference)  # conjugate so the product sums coherently
        correlation = cross_correlate(stream, reference)
        assert int(np.argmax(np.abs(correlation))) == 77

    def test_matches_manual_sum(self):
        x = np.arange(10, dtype=complex)
        ref = np.array([1 + 1j, 2 - 1j, 0.5j])
        correlation = cross_correlate(x, ref)
        manual = sum(x[3 + i] * ref[i] for i in range(3))
        assert correlation[3] == pytest.approx(manual)

    def test_empty_reference_rejected(self):
        with pytest.raises(ValueError):
            cross_correlate(np.ones(5, dtype=complex), np.array([], dtype=complex))

    def test_short_stream_rejected(self):
        with pytest.raises(ValueError):
            cross_correlate(np.ones(5, dtype=complex), np.ones(6, dtype=complex))


class TestSlidingWindowCorrelator:
    def test_streaming_matches_batch(self):
        rng = np.random.default_rng(2)
        reference = rng.normal(size=16) + 1j * rng.normal(size=16)
        stream = rng.normal(size=60) + 1j * rng.normal(size=60)
        correlator = SlidingWindowCorrelator(reference)
        streamed = np.array(correlator.process(stream))
        batch = cross_correlate(stream, reference)
        np.testing.assert_allclose(streamed, batch, atol=1e-12)

    def test_no_output_before_window_full(self):
        correlator = SlidingWindowCorrelator(np.ones(8, dtype=complex))
        for i in range(7):
            assert correlator.push(1.0) is None
        assert correlator.push(1.0) is not None

    def test_multiplier_counts_match_paper(self):
        # 32 complex taps -> 128 real multipliers, as stated in the paper.
        correlator = SlidingWindowCorrelator(np.ones(32, dtype=complex))
        assert correlator.multiplier_count == 32
        assert correlator.real_multiplier_count == 128

    def test_reset_clears_window(self):
        correlator = SlidingWindowCorrelator(np.ones(4, dtype=complex))
        correlator.process(np.ones(4))
        correlator.reset()
        assert correlator.push(1.0) is None

    def test_empty_reference_rejected(self):
        with pytest.raises(ValueError):
            SlidingWindowCorrelator(np.array([], dtype=complex))

"""Integration tests: full transmit -> channel -> receive chains.

These tests exercise the complete system the way the benchmarks do, across
configurations and impairments, and cross-check the functional and
structural models against each other.
"""

import numpy as np
import pytest

from repro.channel.fading import FlatRayleighChannel, FrequencySelectiveChannel
from repro.channel.model import MimoChannel
from repro.core.config import TransceiverConfig
from repro.core.receiver import MimoReceiver
from repro.core.transceiver import MimoTransceiver, simulate_link
from repro.core.transmitter import MimoTransmitter
from repro.hardware.jesd204 import Jesd204Framer
from repro.mimo.detector import MmseDetector
from repro.utils.metrics import error_vector_magnitude


class TestEndToEndConfigurations:
    @pytest.mark.parametrize(
        "modulation,code_rate",
        [("bpsk", "1/2"), ("qpsk", "3/4"), ("16qam", "2/3"), ("64qam", "3/4")],
    )
    def test_modulation_rate_matrix_over_fading(self, modulation, code_rate):
        config = TransceiverConfig(modulation=modulation, code_rate=code_rate)
        channel = MimoChannel(FlatRayleighChannel(rng=100), snr_db=40.0, rng=101)
        stats = simulate_link(config, channel, n_info_bits=150, n_bursts=1, rng=102)
        assert stats["bit_error_rate"] == 0.0

    def test_soft_decision_link_over_fading(self):
        config = TransceiverConfig(soft_decision=True)
        channel = MimoChannel(FlatRayleighChannel(rng=103), snr_db=30.0, rng=104)
        stats = simulate_link(config, channel, n_info_bits=150, n_bursts=1, rng=105)
        assert stats["bit_error_rate"] == 0.0

    def test_multiple_bursts_independent_payloads(self):
        config = TransceiverConfig()
        transceiver = MimoTransceiver(config)
        first = transceiver.run_burst(100, rng=1)
        second = transceiver.run_burst(100, rng=2)
        assert not np.array_equal(first.burst.info_bits[0], second.burst.info_bits[0])
        assert first.bit_errors == 0 and second.bit_errors == 0

    def test_cordic_channel_inversion_end_to_end(self):
        config = TransceiverConfig(use_cordic_channel_inversion=True)
        channel = MimoChannel(FlatRayleighChannel(rng=106), snr_db=35.0, rng=107)
        stats = simulate_link(config, channel, n_info_bits=100, n_bursts=1, rng=108)
        assert stats["bit_error_rate"] == 0.0


class TestImpairments:
    def test_combined_delay_and_fading(self):
        config = TransceiverConfig()
        channel = MimoChannel(
            FrequencySelectiveChannel(n_taps=3, rng=110), snr_db=35.0, rng=111, sample_delay=29
        )
        stats = simulate_link(config, channel, n_info_bits=150, n_bursts=1, rng=112)
        assert stats["bit_error_rate"] == 0.0

    def test_small_cfo_tolerated(self):
        # A small residual CFO is absorbed by the per-symbol pilot phase
        # correction.
        config = TransceiverConfig()
        channel = MimoChannel(snr_db=35.0, rng=113, cfo_normalized=2e-5)
        stats = simulate_link(config, channel, n_info_bits=150, n_bursts=1, rng=114)
        assert stats["bit_error_rate"] == 0.0

    def test_snr_degradation_monotone(self):
        # BER must not improve as SNR drops (coarse sanity of the whole chain).
        config = TransceiverConfig()
        bers = []
        for snr in (25.0, 10.0, 3.0):
            channel = MimoChannel(FlatRayleighChannel(rng=115), snr_db=snr, rng=116)
            stats = simulate_link(config, channel, n_info_bits=200, n_bursts=2, rng=117)
            bers.append(stats["bit_error_rate"])
        assert bers[0] <= bers[1] <= bers[2]
        assert bers[2] > 0


class TestEvmAndDetectors:
    def test_equalized_evm_small_at_high_snr(self):
        config = TransceiverConfig()
        transmitter = MimoTransmitter(config)
        receiver = MimoReceiver(config)
        burst = transmitter.transmit_random(200, rng=np.random.default_rng(200))
        channel = MimoChannel(FlatRayleighChannel(rng=201), snr_db=35.0, rng=202)
        received = channel.transmit(burst.samples).samples
        result = receiver.receive(received, n_info_bits=200, reference_bits=burst.info_bits)
        data_bins = list(receiver.numerology.data_bins)
        for stream in range(4):
            reference = burst.frequency_symbols[stream][:, data_bins]
            evm = error_vector_magnitude(reference, result.streams[stream].equalized_symbols)
            assert evm < 0.2

    def test_mmse_detector_usable_with_receiver_estimate(self):
        config = TransceiverConfig()
        transmitter = MimoTransmitter(config)
        receiver = MimoReceiver(config)
        burst = transmitter.transmit_random(100, rng=np.random.default_rng(203))
        channel = MimoChannel(FlatRayleighChannel(rng=204), snr_db=25.0, rng=205)
        received = channel.transmit(burst.samples).samples
        estimate = receiver.estimate_channel(received, lts_start=160)
        detector = MmseDetector(estimate, noise_variance=1e-2)
        # Equalise the first data symbol and confirm finite, bounded output.
        from repro.dsp.fft import fft

        start = 800 + 16 - receiver.timing_advance
        frequency = fft(received[:, start : start + 64])
        detected = detector.detect(frequency)
        assert detected.shape == (4, 64)
        assert np.all(np.isfinite(detected))


class TestJesdInterfaceIntegration:
    def test_burst_survives_converter_framing(self):
        # Pass the transmit burst through the JESD204A framing model (16-bit
        # quantisation) before the channel; the link must still close.
        config = TransceiverConfig()
        transmitter = MimoTransmitter(config)
        receiver = MimoReceiver(config)
        burst = transmitter.transmit_random(150, rng=np.random.default_rng(300))
        framer = Jesd204Framer(n_lanes=4)
        framed = framer.pack(burst.samples)
        quantised = framer.unpack(framed)[:, : burst.samples.shape[1]]
        channel = MimoChannel(FlatRayleighChannel(rng=301), snr_db=35.0, rng=302)
        received = channel.transmit(quantised).samples
        result = receiver.receive(received, n_info_bits=150, reference_bits=burst.info_bits)
        assert result.total_bit_errors(burst.info_bits) == 0

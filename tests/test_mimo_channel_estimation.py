"""Tests for repro.mimo.channel_estimation."""

import numpy as np
import pytest

from repro.exceptions import ChannelEstimationError
from repro.mimo.channel_estimation import (
    ChannelEstimator,
    estimate_channel_from_lts,
    invert_channel_matrices,
)


def _reference_lts(fft_size=64, n_active=52, rng_seed=0):
    rng = np.random.default_rng(rng_seed)
    lts = np.zeros(fft_size, dtype=np.complex128)
    active = np.concatenate(
        [np.arange(1, n_active // 2 + 1), np.arange(fft_size - n_active // 2, fft_size)]
    )
    lts[active] = rng.integers(0, 2, size=active.size) * 2.0 - 1.0
    return lts


def _received_from_channel(channel, lts):
    """Synthesize the staggered-LTS observations for a known channel."""
    fft_size, n_rx, n_tx = channel.shape
    received = np.zeros((n_tx, n_rx, fft_size), dtype=np.complex128)
    for k in range(fft_size):
        for tx in range(n_tx):
            received[tx, :, k] = channel[k, :, tx] * lts[k]
    return received


class TestEstimateFromLts:
    def test_perfect_estimation_without_noise(self):
        rng = np.random.default_rng(1)
        lts = _reference_lts()
        true_channel = np.zeros((64, 4, 4), dtype=np.complex128)
        active = np.abs(lts) > 0
        true_channel[active] = (
            rng.normal(size=(active.sum(), 4, 4)) + 1j * rng.normal(size=(active.sum(), 4, 4))
        )
        received = _received_from_channel(true_channel, lts)
        estimate = estimate_channel_from_lts(received, lts)
        np.testing.assert_allclose(estimate[active], true_channel[active], atol=1e-12)

    def test_inactive_subcarriers_left_zero(self):
        lts = _reference_lts()
        received = np.zeros((4, 4, 64), dtype=np.complex128)
        estimate = estimate_channel_from_lts(received, lts)
        inactive = np.abs(lts) == 0
        assert np.all(estimate[inactive] == 0)

    def test_shape_validation(self):
        lts = _reference_lts()
        with pytest.raises(ValueError):
            estimate_channel_from_lts(np.zeros((4, 64)), lts)
        with pytest.raises(ValueError):
            estimate_channel_from_lts(np.zeros((4, 4, 32)), lts)

    def test_active_mask_with_zero_reference_rejected(self):
        lts = _reference_lts()
        mask = np.ones(64, dtype=bool)  # marks DC active although LTS(0) == 0
        with pytest.raises(ChannelEstimationError):
            estimate_channel_from_lts(np.ones((4, 4, 64), dtype=complex), lts, mask)


class TestInvertChannelMatrices:
    def test_inverses_are_correct(self):
        rng = np.random.default_rng(2)
        channel = np.zeros((16, 4, 4), dtype=np.complex128)
        channel[:] = rng.normal(size=(16, 4, 4)) + 1j * rng.normal(size=(16, 4, 4))
        inverses = invert_channel_matrices(channel)
        for k in range(16):
            np.testing.assert_allclose(inverses[k] @ channel[k], np.eye(4), atol=1e-9)

    def test_active_mask_respected(self):
        rng = np.random.default_rng(3)
        channel = rng.normal(size=(8, 4, 4)) + 1j * rng.normal(size=(8, 4, 4))
        mask = np.zeros(8, dtype=bool)
        mask[2] = True
        inverses = invert_channel_matrices(channel, mask)
        assert np.all(inverses[0] == 0)
        np.testing.assert_allclose(inverses[2] @ channel[2], np.eye(4), atol=1e-9)

    def test_cordic_path_close_to_float(self):
        rng = np.random.default_rng(4)
        channel = rng.normal(size=(4, 4, 4)) + 1j * rng.normal(size=(4, 4, 4))
        float_inv = invert_channel_matrices(channel)
        cordic_inv = invert_channel_matrices(channel, use_cordic=True, cordic_iterations=20)
        np.testing.assert_allclose(cordic_inv, float_inv, atol=1e-3)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            invert_channel_matrices(np.zeros((4, 4, 3)))
        with pytest.raises(ValueError):
            invert_channel_matrices(np.zeros((4, 4, 4)), np.ones(3, dtype=bool))


class TestChannelEstimator:
    def test_end_to_end_estimate(self):
        rng = np.random.default_rng(5)
        lts = _reference_lts()
        active = np.abs(lts) > 0
        true_channel = np.zeros((64, 4, 4), dtype=np.complex128)
        true_channel[active] = (
            rng.normal(size=(active.sum(), 4, 4)) + 1j * rng.normal(size=(active.sum(), 4, 4))
        )
        estimator = ChannelEstimator(lts)
        estimate = estimator.estimate(_received_from_channel(true_channel, lts))
        assert estimate.fft_size == 64
        assert estimate.n_rx == 4 and estimate.n_tx == 4
        assert estimate.estimation_error(true_channel) < 1e-12
        for k in np.nonzero(active)[0]:
            np.testing.assert_allclose(
                estimate.inverses[k] @ true_channel[k], np.eye(4), atol=1e-8
            )

    def test_estimation_error_metric_nonzero_with_noise(self):
        rng = np.random.default_rng(6)
        lts = _reference_lts()
        active = np.abs(lts) > 0
        true_channel = np.zeros((64, 4, 4), dtype=np.complex128)
        true_channel[active] = (
            rng.normal(size=(active.sum(), 4, 4)) + 1j * rng.normal(size=(active.sum(), 4, 4))
        )
        received = _received_from_channel(true_channel, lts)
        received += 0.01 * (
            rng.normal(size=received.shape) + 1j * rng.normal(size=received.shape)
        )
        estimate = ChannelEstimator(lts).estimate(received)
        error = estimate.estimation_error(true_channel)
        assert 0 < error < 0.05

    def test_empty_reference_rejected(self):
        with pytest.raises(ValueError):
            ChannelEstimator(np.array([]))

    def test_estimation_error_shape_check(self):
        lts = _reference_lts()
        estimator = ChannelEstimator(lts)
        # Identity channel: every receive antenna hears its own transmitter.
        identity_channel = np.broadcast_to(np.eye(4, dtype=complex), (64, 4, 4)).copy()
        estimate = estimator.estimate(_received_from_channel(identity_channel, lts))
        with pytest.raises(ValueError):
            estimate.estimation_error(np.zeros((32, 4, 4)))

    def test_singular_channel_raises(self):
        lts = _reference_lts()
        estimator = ChannelEstimator(lts)
        with pytest.raises(ChannelEstimationError):
            estimator.estimate(np.zeros((4, 4, 64), dtype=complex))

"""Tests for repro.rtl.systolic_qrd — the structural QRD array model."""

import numpy as np
import pytest

from repro.mimo.matrix import frobenius_error, hermitian, is_unitary, is_upper_triangular
from repro.mimo.qr import qr_decompose_givens
from repro.mimo.rinv import invert_upper_triangular
from repro.rtl.systolic_qrd import QrdCellKind, SystolicQrdArray


def _random_matrix(n, seed):
    rng = np.random.default_rng(seed)
    return (rng.normal(size=(n, n)) + 1j * rng.normal(size=(n, n))) / np.sqrt(2)


@pytest.fixture
def array() -> SystolicQrdArray:
    return SystolicQrdArray(n=4, cordic_iterations=24)


class TestArrayStructure:
    def test_cell_counts_match_paper(self, array):
        # "This array consists of four boundary cells and six internal cells"
        # (R array); the Q array adds a 4x4 grid of internal cells.
        assert array.boundary_cell_count == 4
        assert array.r_array_internal_cell_count == 6
        assert array.internal_cell_count == 6 + 16

    def test_cordic_counts_per_cell(self, array):
        for cell in array.cells:
            if cell.kind is QrdCellKind.BOUNDARY:
                assert cell.cordic_count == 2
            else:
                assert cell.cordic_count == 3

    def test_total_cordic_count(self, array):
        assert array.total_cordic_count == 4 * 2 + 6 * 3 + 16 * 3

    def test_datapath_latency_matches_paper(self, array):
        # "The QRD circuit therefore has a data-path latency of 440 clock cycles."
        assert array.datapath_latency_cycles == 440

    def test_throughput_one_matrix_per_n_cycles(self, array):
        assert array.throughput_matrices_per_cycle() == pytest.approx(0.25)

    def test_smaller_array(self):
        array2 = SystolicQrdArray(n=2)
        assert array2.boundary_cell_count == 2
        assert array2.r_array_internal_cell_count == 1
        assert array2.datapath_latency_cycles < 440

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            SystolicQrdArray(n=0)


class TestArrayNumerics:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_reconstruction(self, array, seed):
        h = _random_matrix(4, seed)
        assert frobenius_error(array.reconstruct(h), h) < 1e-5

    def test_outputs_are_r_and_q_hermitian(self, array):
        h = _random_matrix(4, 10)
        r, q_hermitian = array.process(h)
        assert is_upper_triangular(r, tolerance=1e-6)
        assert is_unitary(hermitian(q_hermitian), tolerance=1e-4)
        diag = np.diagonal(r)
        assert np.all(np.abs(diag.imag) < 1e-6)
        assert np.all(diag.real >= -1e-9)

    def test_agrees_with_functional_givens_qr(self, array):
        h = _random_matrix(4, 11)
        r_structural, qh_structural = array.process(h)
        q_functional, r_functional, _ = qr_decompose_givens(h)
        assert frobenius_error(r_structural, r_functional) < 1e-4
        assert frobenius_error(hermitian(qh_structural), q_functional) < 1e-4

    def test_feeds_matrix_inversion(self, array):
        h = _random_matrix(4, 12)
        r, q_hermitian = array.process(h)
        h_inverse = invert_upper_triangular(r) @ q_hermitian
        assert frobenius_error(h_inverse @ h, np.eye(4)) < 1e-4

    def test_wrong_shape_rejected(self, array):
        with pytest.raises(ValueError):
            array.process(np.ones((3, 3), dtype=complex))

    def test_identity_matrix(self, array):
        r, q_hermitian = array.process(np.eye(4, dtype=complex))
        assert frobenius_error(r, np.eye(4)) < 1e-5
        assert frobenius_error(q_hermitian, np.eye(4)) < 1e-5

"""The runtime shape-contract decorator and its linter-twin parser.

``repro.contracts.parse_contract`` and ``repro_lint.dataflow.parse_contract``
are deliberately duplicated (the runtime package must not import the lint
tree and vice versa); the agreement tests here hold the two grammars
bit-identical so a contract accepted by one can never be rejected by the
other.  The remaining tests pin the runtime semantics of ``@shaped``:
shared name bindings across parameters and return, wildcards, alternatives,
the non-array skip, and the ``REPRO_SHAPE_CHECKS=0`` escape hatch.
"""

import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.contracts import (
    ShapeContractError,
    format_alternatives,
    parse_contract,
    shape_checks_enabled,
    shaped,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools" / "lint"))

from repro_lint import dataflow  # noqa: E402


# ----------------------------------------------------------------------
# Parser agreement: the runtime and the linter share one grammar
# ----------------------------------------------------------------------

VALID_CONTRACTS = [
    "(n_rx, n_samples)",
    "(n_rx, fft_size) | (n_rx, n_symbols, fft_size)",
    "(4, 2)",
    "(_, n)",
    "(..., fft_size)",
    "(n_streams, ...)",
    "()",
    "(n,)",
    "( n_rx , n_tx )",
    "(a, _, 8) | (a,) | (...,)",
]

MALFORMED_CONTRACTS = [
    "n_rx, n_samples",          # not parenthesised
    "(n rx, 4)",                # bad identifier
    "(a, ..., b, ...)",         # two rank wildcards
    "",                         # no alternative at all
    "(a) | b,",                 # second alternative unparenthesised
    "(3.5,)",                   # non-integer literal
]


@pytest.mark.parametrize("text", VALID_CONTRACTS)
def test_parsers_agree_on_valid_contracts(text):
    assert parse_contract(text) == dataflow.parse_contract(text)


@pytest.mark.parametrize("text", MALFORMED_CONTRACTS)
def test_parsers_agree_on_malformed_contracts(text):
    with pytest.raises(ValueError):
        parse_contract(text)
    with pytest.raises(ValueError):
        dataflow.parse_contract(text)


def test_parsed_structure_uses_the_shared_encoding():
    (alt,) = parse_contract("(_, 4, ..., n)")
    assert alt == (None, 4, Ellipsis, "n")
    assert dataflow.parse_contract("(_, 4, ..., n)") == (alt,)


def test_format_alternatives_round_trips_through_both_parsers():
    text = "(n_rx, fft_size) | (n_rx, n_symbols, fft_size)"
    rendered = format_alternatives(parse_contract(text))
    assert parse_contract(rendered) == parse_contract(text)
    assert dataflow.parse_contract(rendered) == dataflow.parse_contract(text)


# ----------------------------------------------------------------------
# Runtime semantics of @shaped
# ----------------------------------------------------------------------

def test_matching_call_passes_and_contract_is_introspectable():
    @shaped("(n, m)", block="(n, m)")
    def identity(block):
        return block

    x = np.zeros((3, 5))
    assert identity(x) is x
    assert set(identity.__shape_contract__) == {"block", "return"}


def test_rank_mismatch_raises_with_a_readable_message():
    @shaped(block="(n_streams, n_symbols, fft_size)")
    def modulate(block):
        return block

    with pytest.raises(ShapeContractError) as excinfo:
        modulate(np.zeros((4, 64)))  # reprolint: disable=SHAPE001 -- intentional violation; this test asserts the raise
    message = str(excinfo.value)
    assert "modulate" in message
    assert "(4, 64)" in message
    assert "(n_streams, n_symbols, fft_size)" in message


def test_bindings_are_shared_across_parameters():
    @shaped(received="(n_rx, k)", weights="(k, n_rx)")
    def combine(received, weights):
        return received

    combine(np.zeros((2, 8)), np.zeros((8, 2)))
    with pytest.raises(ShapeContractError):
        combine(np.zeros((2, 8)), np.zeros((8, 3)))  # n_rx rebound 2 -> 3  # reprolint: disable=SHAPE001 -- intentional violation; this test asserts the raise


def test_bindings_are_shared_with_the_return_contract():
    @shaped("(n, n)", block="(n, m)")
    def gram(block):
        return np.zeros((block.shape[1], block.shape[1]))

    with pytest.raises(ShapeContractError):
        gram(np.zeros((3, 5)))  # returns (5, 5) but n is bound to 3
    assert gram(np.zeros((4, 4))).shape == (4, 4)


def test_alternatives_wildcards_and_ellipsis():
    @shaped(x="(n_rx, fft_size) | (n_rx, _, fft_size)")
    def flexible(x):
        return x

    flexible(np.zeros((2, 64)))
    flexible(np.zeros((2, 7, 64)))
    with pytest.raises(ShapeContractError):
        flexible(np.zeros((2, 3, 7, 64)))  # reprolint: disable=SHAPE001 -- intentional violation; this test asserts the raise

    @shaped(x="(..., fft_size)")
    def tail(x):
        return x

    tail(np.zeros(64))
    tail(np.zeros((9, 2, 64)))


def test_non_array_arguments_are_skipped():
    @shaped(x="(n, m)")
    def tolerant(x):
        return x

    assert tolerant(None) is None
    assert tolerant(3.0) == 3.0


def test_shaped_rejects_unknown_parameter_at_decoration_time():
    with pytest.raises(TypeError):

        @shaped(nonexistent="(n,)")
        def f(x):
            return x


def test_shape_contract_error_is_a_value_error():
    # Stages used to hand-roll `raise ValueError` for shape validation;
    # callers catching ValueError must keep working under contracts.
    assert issubclass(ShapeContractError, ValueError)


def test_env_var_disables_runtime_checks():
    env = dict(os.environ)
    env["REPRO_SHAPE_CHECKS"] = "0"
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO_ROOT / "src")]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    script = (
        "import numpy as np\n"
        "from repro.contracts import shaped, shape_checks_enabled\n"
        "assert not shape_checks_enabled()\n"
        "@shaped(x='(n, m)')\n"
        "def f(x):\n"
        "    return x\n"
        "f(np.zeros(5))  # rank violation, but checks are off\n"
        "print('ok')\n"
    )
    result = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO_ROOT,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip() == "ok"
    # In this process (checks on by default) the same call must raise.
    assert shape_checks_enabled()

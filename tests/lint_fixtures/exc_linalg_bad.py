"""Fixture: a raising linalg solver escaping a datapath entry point."""

import numpy as np


def mmse_weights(gram, h):
    return np.linalg.solve(gram, h)


def reference_inverse(h):
    q, r = np.linalg.qr(h)
    return np.linalg.inv(r) @ np.conj(q).T

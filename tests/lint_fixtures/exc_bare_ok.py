"""Fixture: disciplined exception handling (named, translated, logged)."""


class DecodingError(RuntimeError):
    pass


def translate(work):
    try:
        return work()
    except ValueError as error:
        raise DecodingError("burst undecodable") from error


def tolerate(work, failures):
    try:
        return work()
    except Exception as error:
        failures.append(error)
        raise

"""Fixture: dB and linear power domains meeting without a conversion."""

import numpy as np


def inline_db_to_linear(snr_db, signal_power):
    snr_linear = 10.0 ** (snr_db / 10.0)  # inline conversion idiom
    return signal_power / snr_linear


def cross_domain_arithmetic(snr_db, noise_variance):
    return snr_db * noise_variance  # dB times linear is never a power


def inline_linear_to_db(signal_power, noise_power):
    return 10.0 * np.log10(signal_power / noise_power)


def helper(noise_variance=1.0):
    return noise_variance


def keyword_crossing_domains(snr_db):
    return helper(noise_variance=snr_db)  # keyword declares linear, gets dB

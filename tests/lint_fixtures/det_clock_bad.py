"""Fixture: wall-clock reads feeding engine state."""

import time
from datetime import datetime


def stamp_record(record):
    record["created_at"] = time.time()
    record["day"] = datetime.now().isoformat()
    return record

"""Fixture: a suppression that silences nothing (LINT002)."""


def harmless(x):
    return x + 1  # reprolint: disable=SEAM001 -- left behind after a refactor

"""Fixture: the same shape contracts, satisfied — nothing may fire."""

import numpy as np

from repro.contracts import shaped


@shaped(block="(n_streams, n_symbols, fft_size)")
def modulate(block):
    return block


def call_with_matching_rank():
    block = np.zeros((4, 12, 64), dtype=np.complex128)
    return modulate(block)


def einsum_with_matching_ranks():
    weights = np.zeros((64, 4, 4), dtype=np.complex128)
    received = np.zeros((4, 12, 64), dtype=np.complex128)
    return np.einsum("kij,jnk->ink", weights, received)


def unpack_with_matching_arity():
    x = np.zeros((4, 64), dtype=np.complex128)
    n_rx, fft_size = x.shape
    return n_rx + fft_size

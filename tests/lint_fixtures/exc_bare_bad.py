"""Fixture: swallowed exceptions."""


def swallow_everything(work):
    try:
        return work()
    except:
        return None


def swallow_silently(work):
    try:
        return work()
    except Exception:
        pass

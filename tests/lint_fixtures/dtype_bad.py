"""Fixture: complex-precision mixing across the backend seam."""

import numpy as np

from repro.dsp.backend import get_backend

backend = get_backend("numpy32")


def mix_hard_precisions():
    single = np.zeros(64, dtype=np.complex64)
    double = np.zeros(64, dtype=np.complex128)
    return single + double  # silently upcasts to complex128


def store_backend_into_hard_buffer(block):
    out = np.zeros((4, 64), dtype=np.complex128)
    out[:] = backend.ifft(block)  # silent cast pins the precision
    return out


def concatenate_backend_with_hard(block):
    head = np.zeros(16, dtype=np.complex128)
    return np.concatenate([head, backend.fft(block)])


def split_return_dtypes(block, empty):
    if empty:
        return np.zeros((4, 0), dtype=np.complex128)
    return backend.ifft(block)

"""Fixture: linalg failures translated to the pooled-sweep loss path."""

import numpy as np


class DecodingError(RuntimeError):
    pass


def mmse_weights(gram, h):
    try:
        return np.linalg.solve(gram, h)
    except np.linalg.LinAlgError as error:
        raise DecodingError("singular Gram matrix") from error

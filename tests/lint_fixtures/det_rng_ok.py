"""Fixture: explicitly seeded randomness (the legal forms)."""

import numpy as np


def noisy(samples, seed):
    root = np.random.SeedSequence([seed, 7])
    rng = np.random.default_rng(root)
    return samples + rng.normal(size=samples.shape)


def typed(rng: np.random.Generator) -> np.random.Generator:
    return rng

"""Fixture: every domain crossing routed through repro.utils.units."""

from repro.utils.units import db_to_linear, linear_to_db


def noise_variance_from_snr(snr_db, signal_power):
    snr_linear = db_to_linear(snr_db)
    return signal_power / snr_linear


def snr_in_db(signal_power, noise_power):
    return linear_to_db(signal_power / noise_power)


def helper(noise_variance=1.0):
    return noise_variance


def keyword_in_matching_domain(snr_db):
    return helper(noise_variance=db_to_linear(snr_db))

"""Fixture: a justified suppression silences its finding cleanly."""

import numpy as np


def ground_truth(taps, fft_size):
    return np.fft.fft(taps, fft_size)  # reprolint: disable=SEAM001 -- pocketfft ground truth an agreement test compares the seam against

"""Fixture: the backend dtype kept pure end to end — nothing may fire."""

import numpy as np

from repro.dsp.backend import get_backend

backend = get_backend("numpy32")


def stay_in_one_precision():
    a = np.zeros(64, dtype=np.complex128)
    b = np.zeros(64, dtype=np.complex128)
    return a + b


def store_backend_into_backend_buffer(block):
    out = backend.zeros((4, 64))
    out[:] = backend.ifft(block)
    return out


def concatenate_backend_with_backend(block):
    head = backend.zeros(16)
    return np.concatenate([head, backend.fft(block)])


def consistent_return_dtypes(block, empty):
    if empty:
        return backend.zeros((4, 0))
    return backend.ifft(block)

"""Fixture: global-state and unseeded randomness in engine code."""

import random

import numpy as np


def noisy(samples):
    np.random.seed(1234)
    noise = np.random.normal(size=samples.shape)
    jitter = random.random()
    fallback = np.random.default_rng()
    return samples + noise * jitter + fallback.normal()

"""Fixture: monotonic timers for elapsed-time reporting (legal)."""

import time


def timed(work):
    start = time.perf_counter()
    result = work()
    return result, time.perf_counter() - start

"""Fixture: transform arithmetic bypassing the DSP backend seam."""

import numpy as np
from numpy.fft import ifft as np_ifft


def spectrum(taps, fft_size):
    padded = np.zeros(fft_size, dtype=np.complex128)
    padded[: len(taps)] = taps
    return np.fft.fft(padded)


def waveform(symbols):
    return np_ifft(symbols)

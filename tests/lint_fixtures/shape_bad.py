"""Fixture: shape-contract violations the dataflow pass can prove."""

import numpy as np

from repro.contracts import shaped


@shaped(block="(n_streams, n_symbols, fft_size)")
def modulate(block):
    return block


def call_with_wrong_rank():
    flat = np.zeros((4, 64), dtype=np.complex128)
    return modulate(flat)  # rank 2 against a rank-3 contract


def einsum_with_wrong_operand_rank():
    weights = np.zeros((64, 4, 4), dtype=np.complex128)
    received = np.zeros((4, 64), dtype=np.complex128)
    # 'jnk' demands rank 3 but the operand is rank 2.
    return np.einsum("kij,jnk->ink", weights, received)


def unpack_with_wrong_arity():
    x = np.zeros((4, 64), dtype=np.complex128)
    n_rx, n_symbols, fft_size = x.shape  # rank 2 unpacked into 3 names
    return n_rx + n_symbols + fft_size

"""Fixture: the same transforms routed through the repro.dsp seam."""

import numpy as np

from repro.dsp.backend import get_backend
from repro.dsp.fft import get_plan


def spectrum(taps, fft_size):
    padded = np.zeros(fft_size, dtype=np.complex128)
    padded[: len(taps)] = taps
    return get_plan(fft_size).forward(padded)


def waveform(symbols):
    return get_backend().ifft(symbols)

"""Fixture: a suppression without a written justification (LINT001)."""

import numpy as np


def ground_truth(taps, fft_size):
    return np.fft.fft(taps, fft_size)  # reprolint: disable=SEAM001

"""Tests for repro.core.pilots."""

import numpy as np
import pytest

from repro.coding.scrambler import pilot_polarity_sequence
from repro.core.config import OfdmNumerology
from repro.core.pilots import PilotProcessor


@pytest.fixture
def processor() -> PilotProcessor:
    return PilotProcessor(OfdmNumerology.for_fft_size(64))


def _symbol_with_pilots(processor, symbol_index=0):
    """A frequency-domain symbol carrying pilots and random data."""
    rng = np.random.default_rng(symbol_index + 1)
    symbol = np.zeros(64, dtype=np.complex128)
    data_bins = list(processor.numerology.data_bins)
    symbol[data_bins] = np.exp(1j * rng.uniform(0, 2 * np.pi, len(data_bins)))
    return processor.insert(symbol, symbol_index)


class TestPilotInsertion:
    def test_pilot_polarity_follows_scrambler_sequence(self, processor):
        polarity = pilot_polarity_sequence(10)
        for n in range(10):
            assert processor.polarity(n) == polarity[n]

    def test_insert_writes_pilot_bins(self, processor):
        symbol = processor.insert(np.zeros(64, dtype=complex), 0)
        pilots = symbol[list(processor.numerology.pilot_bins)]
        np.testing.assert_allclose(np.abs(pilots), 1.0)

    def test_insert_preserves_data_bins(self, processor):
        symbol = np.zeros(64, dtype=complex)
        symbol[1] = 0.5 + 0.5j
        inserted = processor.insert(symbol, 0)
        assert inserted[1] == 0.5 + 0.5j

    def test_insert_length_check(self, processor):
        with pytest.raises(ValueError):
            processor.insert(np.zeros(32, dtype=complex), 0)

    def test_extract_reads_pilot_bins(self, processor):
        symbol = _symbol_with_pilots(processor, 3)
        pilots = processor.extract(symbol)
        np.testing.assert_allclose(pilots, processor.pilot_values(3))


class TestPhaseCorrection:
    def test_identity_when_no_impairment(self, processor):
        symbol = _symbol_with_pilots(processor, 0)
        corrected, diagnostics = processor.correct(symbol, 0)
        np.testing.assert_allclose(corrected, symbol, atol=1e-9)
        assert diagnostics.common_phase == pytest.approx(0.0, abs=1e-9)
        assert diagnostics.tau == pytest.approx(0.0, abs=1e-9)

    @pytest.mark.parametrize("phase", [-1.2, -0.3, 0.4, 1.0, 2.5])
    def test_removes_common_phase(self, processor, phase):
        symbol = _symbol_with_pilots(processor, 1)
        rotated = symbol * np.exp(1j * phase)
        corrected, diagnostics = processor.correct(rotated, 1)
        np.testing.assert_allclose(corrected, symbol, atol=1e-6)
        assert diagnostics.common_phase == pytest.approx(phase, abs=1e-6)

    def test_removes_timing_phase_ramp(self, processor):
        symbol = _symbol_with_pilots(processor, 2)
        tau = 0.01
        logical = np.arange(64, dtype=float)
        logical[logical > 32] -= 64
        ramped = symbol * np.exp(1j * tau * logical)
        corrected, diagnostics = processor.correct(ramped, 2)
        np.testing.assert_allclose(corrected, symbol, atol=1e-3)
        assert diagnostics.tau == pytest.approx(tau, abs=1e-3)

    def test_combined_phase_and_timing(self, processor):
        symbol = _symbol_with_pilots(processor, 5)
        logical = np.arange(64, dtype=float)
        logical[logical > 32] -= 64
        impaired = symbol * np.exp(1j * (0.7 + 0.02 * logical))
        corrected, _ = processor.correct(impaired, 5)
        np.testing.assert_allclose(corrected, symbol, atol=1e-2)

    def test_zero_pilots_returns_unchanged(self, processor):
        symbol = np.zeros(64, dtype=complex)
        corrected, diagnostics = processor.correct(symbol, 0)
        np.testing.assert_allclose(corrected, symbol)
        assert diagnostics.pilot_magnitude == 0.0

    def test_wrong_symbol_length_rejected(self, processor):
        with pytest.raises(ValueError):
            processor.correct(np.zeros(32, dtype=complex), 0)

    def test_polarity_scrambled_pilots_still_corrected(self, processor):
        # Symbol index with negative polarity must still correct properly.
        negative_indices = [n for n in range(20) if processor.polarity(n) < 0]
        index = negative_indices[0]
        symbol = _symbol_with_pilots(processor, index)
        rotated = symbol * np.exp(1j * 0.9)
        corrected, diagnostics = processor.correct(rotated, index)
        np.testing.assert_allclose(corrected, symbol, atol=1e-6)
        assert diagnostics.common_phase == pytest.approx(0.9, abs=1e-6)

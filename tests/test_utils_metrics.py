"""Tests for repro.utils.metrics."""

import numpy as np
import pytest

from repro.utils.metrics import (
    bit_error_rate,
    error_vector_magnitude,
    packet_error_rate,
    signal_to_noise_ratio_db,
    symbol_error_rate,
)


class TestBitErrorRate:
    def test_half_errors(self):
        assert bit_error_rate([0, 0, 1, 1], [0, 1, 1, 0]) == 0.5

    def test_zero_errors(self):
        assert bit_error_rate([1, 0, 1], [1, 0, 1]) == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bit_error_rate([], [])


class TestSymbolErrorRate:
    def test_counts_symbol_mismatches(self):
        assert symbol_error_rate([3, 1, 2], [3, 0, 2]) == pytest.approx(1 / 3)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            symbol_error_rate([1, 2], [1])


class TestPacketErrorRate:
    def test_fraction_of_true_flags(self):
        assert packet_error_rate([True, False, False, True]) == 0.5

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            packet_error_rate([])


class TestEvm:
    def test_zero_for_identical_constellations(self):
        symbols = np.array([1 + 1j, -1 - 1j, 1 - 1j])
        assert error_vector_magnitude(symbols, symbols) == 0.0

    def test_known_offset(self):
        ref = np.array([1.0 + 0j, -1.0 + 0j])
        rec = ref + 0.1
        assert error_vector_magnitude(ref, rec) == pytest.approx(0.1)

    def test_zero_power_reference_rejected(self):
        with pytest.raises(ValueError):
            error_vector_magnitude(np.zeros(4, dtype=complex), np.ones(4, dtype=complex))

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            error_vector_magnitude(np.ones(3, dtype=complex), np.ones(4, dtype=complex))


class TestSnrEstimate:
    def test_infinite_for_identical(self):
        signal = np.array([1 + 1j, 2 - 1j, -1 + 0.5j])
        assert signal_to_noise_ratio_db(signal, signal) == float("inf")

    def test_matches_known_snr(self):
        rng = np.random.default_rng(0)
        signal = np.exp(1j * rng.uniform(0, 2 * np.pi, 200_0))
        noise = (rng.normal(size=signal.size) + 1j * rng.normal(size=signal.size)) * np.sqrt(
            0.005
        )
        estimated = signal_to_noise_ratio_db(signal, signal + noise)
        assert estimated == pytest.approx(20.0, abs=0.5)

"""dB-vs-linear unit-domain regression tests for the SNR calibration.

UNIT001 guards the *source* against cross-domain arithmetic; these tests
guard the *behaviour*, independently of the linter: if someone ever mixed
``snr_db`` into linear power arithmetic without a conversion, the delivered
noise variance would be wrong by orders of magnitude, and every assertion
here is chosen so that the most likely wrong formulas (``power / snr_db``,
``power * snr_db``, ``10 ** snr_db``) fail loudly.
"""

import numpy as np
import pytest

from repro.channel.awgn import (
    add_awgn,
    noise_variance_for_snr,
    occupied_power,
)
from repro.channel.model import IdealChannel, MimoChannel
from repro.utils.units import amplitude_db_to_gain, db_to_linear, linear_to_db


# ----------------------------------------------------------------------
# The converters themselves
# ----------------------------------------------------------------------

def test_converters_are_exact_inverses_at_reference_points():
    # Power domain: every 10 dB is exactly a factor of 10.
    assert db_to_linear(0.0) == 1.0
    assert db_to_linear(10.0) == 10.0
    assert db_to_linear(20.0) == 100.0
    assert db_to_linear(-10.0) == pytest.approx(0.1)
    assert linear_to_db(1.0) == 0.0
    assert linear_to_db(100.0) == pytest.approx(20.0)
    # Amplitude domain: every 20 dB is a factor of 10 in gain.
    assert amplitude_db_to_gain(0.0) == 1.0
    assert amplitude_db_to_gain(20.0) == pytest.approx(10.0)


def test_converters_round_trip():
    for value_db in np.linspace(-40.0, 40.0, 17):
        assert linear_to_db(db_to_linear(value_db)) == pytest.approx(value_db)


def test_converters_match_the_inline_idiom_bit_for_bit():
    # The day-one UNIT001 fixes replaced inline ``10 ** (x / 10)`` with
    # these helpers; the sweep cache is only valid if they are
    # bit-identical to the expressions they replaced.
    for value_db in (-35.0, -3.0, 0.0, 12.5, 35.0):
        assert db_to_linear(value_db) == 10.0 ** (value_db / 10.0)
        assert linear_to_db(value_db + 50.0) == 10.0 * np.log10(value_db + 50.0)
        assert amplitude_db_to_gain(value_db) == 10.0 ** (value_db / 20.0)


# ----------------------------------------------------------------------
# noise_variance_for_snr stays in the right domain
# ----------------------------------------------------------------------

def test_noise_variance_is_power_over_linear_snr():
    for snr_db in (-10.0, 0.0, 7.0, 35.0):
        for power in (0.25, 1.0, 3.7):
            assert noise_variance_for_snr(snr_db, power) == (
                power / db_to_linear(snr_db)
            )


def test_noise_variance_metamorphic_10_db_is_a_factor_of_10():
    # The defining property of the dB scale — any formula that uses
    # snr_db linearly (power / snr_db, power * snr_db, ...) breaks it.
    base = noise_variance_for_snr(5.0, signal_power=2.0)
    assert noise_variance_for_snr(15.0, signal_power=2.0) == pytest.approx(
        base / 10.0
    )
    assert noise_variance_for_snr(-5.0, signal_power=2.0) == pytest.approx(
        base * 10.0
    )


def test_noise_variance_at_zero_db_equals_signal_power():
    # 0 dB means noise power == signal power; a formula that divides by
    # snr_db would blow up here instead.
    assert noise_variance_for_snr(0.0, signal_power=0.5) == 0.5


def test_noise_variance_scales_linearly_with_signal_power():
    assert noise_variance_for_snr(8.0, 4.0) == pytest.approx(
        4.0 * noise_variance_for_snr(8.0, 1.0)
    )


# ----------------------------------------------------------------------
# End-to-end: the delivered SNR matches the requested one
# ----------------------------------------------------------------------

def test_add_awgn_delivers_the_requested_snr():
    rng = np.random.default_rng(7)
    signal = np.exp(2j * np.pi * rng.random(200_000))  # unit power
    for snr_db in (0.0, 10.0, 20.0):
        noisy = add_awgn(signal, snr_db, rng=rng)
        measured = float(np.mean(np.abs(noisy - signal) ** 2))
        expected = db_to_linear(-snr_db)  # unit signal power
        assert measured == pytest.approx(expected, rel=0.05)


def test_channel_noise_variance_calibrated_against_occupied_power():
    # A burst padded with silence: the calibration must divide the
    # *occupied* power (not the diluted whole-window mean) by the
    # *linear* SNR.
    rng = np.random.default_rng(21)
    burst = np.zeros((4, 1024), dtype=np.complex128)
    burst[:, 256:768] = (
        rng.normal(size=(4, 512)) + 1j * rng.normal(size=(4, 512))
    ) / np.sqrt(2.0)

    snr_db = 12.0
    channel = MimoChannel(IdealChannel(), snr_db=snr_db, rng=5)
    output = channel.transmit(burst)

    power = occupied_power(burst)
    assert output.noise_variance == pytest.approx(
        power / db_to_linear(snr_db)
    )
    # Guard the guard: the wrong-domain and diluted-power variants are
    # all far away from the delivered value.
    assert output.noise_variance != pytest.approx(power / snr_db, rel=0.2)
    whole_window = float(np.mean(np.abs(burst) ** 2))
    assert output.noise_variance != pytest.approx(
        whole_window / db_to_linear(snr_db), rel=0.2
    )


def test_channel_output_echoes_snr_in_db():
    channel = MimoChannel(IdealChannel(), snr_db=17.0, rng=3)
    output = channel.transmit(np.ones((4, 64), dtype=np.complex128))
    assert output.snr_db == 17.0
    assert output.noise_variance is not None
    # snr_db is a label in dB; noise_variance is linear power — they
    # only agree through the converter.
    assert output.noise_variance == pytest.approx(
        occupied_power(np.ones((4, 64))) / db_to_linear(17.0)
    )

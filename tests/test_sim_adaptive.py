"""Tests for adaptive refinement and the repro.sim.stats interval math."""

import math

import pytest

from repro.sim import ResultStore, SweepRunner, SweepSpec
from repro.sim.stats import (
    allocate_bursts,
    ber_interval,
    clopper_pearson_interval,
    wilson_interval,
)


class TestWilsonInterval:
    def test_brackets_the_point_estimate(self):
        low, high = wilson_interval(30, 1000)
        assert low < 30 / 1000 < high

    def test_zero_errors_has_positive_upper_bound(self):
        # The property that makes Wilson the right default for BER sweeps:
        # a clean high-SNR point still reports genuine uncertainty.
        low, high = wilson_interval(0, 500)
        assert low == pytest.approx(0.0, abs=1e-12)
        assert 0.001 < high < 0.02

    def test_all_errors_mirror(self):
        low0, high0 = wilson_interval(0, 200)
        low1, high1 = wilson_interval(200, 200)
        assert low1 == pytest.approx(1.0 - high0, abs=1e-12)
        assert high1 == 1.0

    def test_width_shrinks_with_trials(self):
        wide = wilson_interval(10, 100)
        narrow = wilson_interval(100, 1000)
        assert (narrow[1] - narrow[0]) < (wide[1] - wide[0])

    def test_width_grows_with_confidence(self):
        w95 = wilson_interval(10, 100, confidence=0.95)
        w99 = wilson_interval(10, 100, confidence=0.99)
        assert (w99[1] - w99[0]) > (w95[1] - w95[0])

    def test_matches_normal_quantile_at_half(self):
        # At p-hat = 0.5 and large n the Wilson interval converges to the
        # Wald interval: +/- z * sqrt(p(1-p)/n).
        n = 100_000
        low, high = wilson_interval(n // 2, n)
        expected_half = 1.959963985 * math.sqrt(0.25 / n)
        assert (high - low) / 2 == pytest.approx(expected_half, rel=1e-3)

    def test_no_information(self):
        assert wilson_interval(0, 0) == (0.0, 1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            wilson_interval(5, 3)
        with pytest.raises(ValueError):
            wilson_interval(-1, 3)
        with pytest.raises(ValueError):
            wilson_interval(1, 10, confidence=1.0)


class TestClopperPearson:
    def test_wider_than_wilson_at_interior_points(self):
        # Clopper-Pearson is exact and therefore conservative: away from
        # the k = 0 / k = n closures it is wider than the approximate
        # Wilson interval (the endpoints need not strictly nest, but the
        # two-sided width does).
        for errors, trials in [(3, 100), (10, 200), (40, 80)]:
            w = wilson_interval(errors, trials)
            cp = clopper_pearson_interval(errors, trials)
            assert (cp[1] - cp[0]) > (w[1] - w[0])
            assert cp[0] < errors / trials < cp[1]  # brackets p-hat

    def test_closures_at_the_edges(self):
        low, high = clopper_pearson_interval(0, 100)
        assert low == 0.0 and 0.0 < high < 0.1
        low, high = clopper_pearson_interval(100, 100)
        assert 0.9 < low < 1.0 and high == 1.0

    def test_dispatch(self):
        assert ber_interval(5, 100, method="wilson") == wilson_interval(5, 100)
        assert ber_interval(5, 100, method="clopper-pearson") == (
            clopper_pearson_interval(5, 100)
        )
        with pytest.raises(ValueError):
            ber_interval(5, 100, method="wald")


class TestAllocateBursts:
    def test_widest_point_gets_the_budget(self):
        allocation = allocate_bursts(
            widths={0: 0.10, 1: 0.001},
            observations={0: 1000, 1: 1000},
            per_burst={0: 100, 1: 100},
            budget=4,
        )
        assert allocation == {0: 4}

    def test_equal_widths_split_evenly(self):
        allocation = allocate_bursts(
            widths={0: 0.05, 1: 0.05},
            observations={0: 1000, 1: 1000},
            per_burst={0: 100, 1: 100},
            budget=6,
        )
        assert allocation == {0: 3, 1: 3}

    def test_zero_width_points_get_nothing(self):
        allocation = allocate_bursts(
            widths={0: 0.0, 1: 0.0},
            observations={0: 10, 1: 10},
            per_burst={0: 10, 1: 10},
            budget=5,
        )
        assert allocation == {}

    def test_deterministic_tie_break_on_lowest_index(self):
        allocation = allocate_bursts(
            widths={2: 0.05, 7: 0.05},
            observations={2: 100, 7: 100},
            per_burst={2: 10, 7: 10},
            budget=1,
        )
        assert allocation == {2: 1}

    def test_validation(self):
        with pytest.raises(ValueError):
            allocate_bursts({0: 0.1}, {1: 10}, {0: 5}, budget=1)
        with pytest.raises(ValueError):
            allocate_bursts({0: 0.1}, {0: 10}, {0: 5}, budget=-1)


def adaptive_spec() -> SweepSpec:
    """Two QPSK points with wildly different BERs (~0.32 vs ~0.11)."""
    return SweepSpec(
        snr_db=(8.0, 12.0),
        modulations=("qpsk",),
        stream_counts=(2,),
        n_info_bits=64,
        n_bursts=4,
        target_errors=None,
        base_seed=5,
    )


class TestRunAdaptive:
    def test_refinement_targets_the_wide_interval(self, tmp_path):
        spec = adaptive_spec()
        base = SweepRunner(spec, n_workers=1, cache=None).run()
        base_widths = [p.ber_interval_width() for p in base.points]
        assert base_widths[0] > base_widths[1]  # 8 dB is the wide point

        refined = SweepRunner(spec, n_workers=1, cache=None).run_adaptive(
            extra_bursts=24, rounds=4
        )
        extra = [
            refined.points[i].n_bursts - base.points[i].n_bursts for i in range(2)
        ]
        assert sum(extra) == 24
        # The wide-CI point receives at least twice the bursts of the other.
        assert extra[0] >= 2 * extra[1]
        # Refinement equalises precision: final widths within a factor of 2.
        widths = [p.ber_interval_width() for p in refined.points]
        assert max(widths) <= 2 * min(widths)
        # And strictly improves on the base widths wherever bursts landed.
        assert widths[0] < base_widths[0]

    def test_refined_points_extend_the_base_stream(self):
        # The extension bursts are the exact bursts a bigger base budget
        # would have drawn: refined statistics equal a single run with the
        # refined budget.
        spec = adaptive_spec()
        refined = SweepRunner(spec, n_workers=1, cache=None).run_adaptive(
            extra_bursts=24, rounds=4
        )
        for point_result in refined.points:
            straight = SweepRunner(
                spec.subset(n_bursts=point_result.n_bursts, target_errors=None),
                n_workers=1,
                cache=None,
            ).run()
            match = [
                p
                for p in straight.points
                if p.point.snr_db == point_result.point.snr_db
            ][0]
            assert (point_result.bit_errors, point_result.total_bits) == (
                match.bit_errors,
                match.total_bits,
            )

    def test_warm_adaptive_rerun_replays_from_the_store(self, tmp_path):
        spec = adaptive_spec()
        store = ResultStore(tmp_path / "points")
        first = SweepRunner(spec, n_workers=1, cache=store).run_adaptive(
            extra_bursts=24, rounds=4
        )
        assert first.n_bursts_simulated > 0
        second = SweepRunner(spec, n_workers=1, cache=store).run_adaptive(
            extra_bursts=24, rounds=4
        )
        # The deterministic allocator replays the same refinement path, so
        # every refined record is a store hit.
        assert second.from_cache
        assert second.n_bursts_simulated == 0
        assert [
            (p.bit_errors, p.total_bits, p.n_bursts) for p in second.points
        ] == [(p.bit_errors, p.total_bits, p.n_bursts) for p in first.points]

    def test_pooled_adaptive_matches_serial(self):
        spec = adaptive_spec()
        serial = SweepRunner(spec, n_workers=1, cache=None).run_adaptive(
            extra_bursts=8, rounds=2
        )
        pooled = SweepRunner(spec, n_workers=2, cache=None).run_adaptive(
            extra_bursts=8, rounds=2
        )
        assert [
            (p.bit_errors, p.total_bits, p.n_bursts) for p in serial.points
        ] == [(p.bit_errors, p.total_bits, p.n_bursts) for p in pooled.points]

    def test_validation(self):
        spec = adaptive_spec()
        runner = SweepRunner(spec, n_workers=1, cache=None)
        with pytest.raises(ValueError):
            runner.run_adaptive(extra_bursts=0)
        with pytest.raises(ValueError):
            runner.run_adaptive(extra_bursts=4, rounds=0)

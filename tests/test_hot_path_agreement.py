"""Bit-exact agreement between the vectorised hot paths and their scalar references.

The :mod:`repro.sim` engine leans on the vectorised inner loops — the
Viterbi add-compare-select in :mod:`repro.coding.viterbi`, the batched
symbol demapper in :mod:`repro.modulation.demapper`, the whole-burst
receive chain in :mod:`repro.core.receiver` (planned FFT gather, batched
ZF/MMSE detection and block pilot correction), the whole-burst transmit
chain in :mod:`repro.core.transmitter` (block interleave/map, block pilot
insertion, one planned IFFT, strided cyclic-prefix gather) and the fused
channel pipeline in :mod:`repro.channel.model`.  Each keeps its original
scalar/stage-at-a-time implementation around precisely so these
property-style tests can assert exact equality across random codewords,
constellations, noise levels, puncturing patterns, impairment combinations
and full transceiver configurations.
"""

import numpy as np
import pytest

from repro.channel.fading import FlatRayleighChannel, FrequencySelectiveChannel
from repro.channel.model import MimoChannel
from repro.coding.convolutional import CodeRate, ConvolutionalCode, ConvolutionalEncoder
from repro.coding.viterbi import ViterbiDecoder
from repro.core.config import TransceiverConfig
from repro.core.pilots import PilotProcessor
from repro.core.receiver import MimoReceiver
from repro.core.transmitter import MimoTransmitter
from repro.dsp.fixedpoint import MULTIPLIER_FORMAT_18BIT
from repro.modulation.constellations import Modulation
from repro.modulation.demapper import SymbolDemapper

ALL_RATES = [CodeRate.RATE_1_2, CodeRate.RATE_2_3, CodeRate.RATE_3_4]
ALL_MODULATIONS = [
    Modulation.BPSK,
    Modulation.QPSK,
    Modulation.QAM16,
    Modulation.QAM64,
]


class TestViterbiAcsAgreement:
    """Vectorised vs scalar add-compare-select across the code grid."""

    @pytest.mark.parametrize("rate", ALL_RATES)
    @pytest.mark.parametrize("decision", ["hard", "soft"])
    def test_random_codewords_decode_identically(self, rate, decision):
        rng = np.random.default_rng(hash((rate.value, decision)) % 2**32)
        code = ConvolutionalCode.ieee80211a(rate)
        encoder = ConvolutionalEncoder(code)
        vectorized = ViterbiDecoder(code, decision=decision)
        scalar = ViterbiDecoder(code, decision=decision, vectorized=False)
        assert vectorized._predecessors is not None

        for _ in range(12):
            n_bits = int(rng.integers(4, 240))
            info = rng.integers(0, 2, n_bits).astype(np.uint8)
            coded = encoder.encode(info, terminate=True).astype(np.float64)
            if decision == "hard":
                # Flip a random fraction of the coded bits.
                flips = rng.random(coded.size) < rng.uniform(0.0, 0.12)
                received = np.where(flips, 1.0 - coded, coded)
            else:
                # Noisy LLRs around the +-1 antipodal mapping (0 -> +1).
                received = (1.0 - 2.0 * coded) + rng.normal(
                    0.0, rng.uniform(0.3, 1.2), coded.size
                )
            out_vec = vectorized.decode(received, n_info_bits=n_bits, terminated=True)
            out_sca = scalar.decode(received, n_info_bits=n_bits, terminated=True)
            np.testing.assert_array_equal(out_vec, out_sca)

    @pytest.mark.parametrize("rate", ALL_RATES)
    def test_unterminated_blocks_decode_identically(self, rate):
        rng = np.random.default_rng(99)
        code = ConvolutionalCode.ieee80211a(rate)
        encoder = ConvolutionalEncoder(code)
        vectorized = ViterbiDecoder(code)
        scalar = ViterbiDecoder(code, vectorized=False)
        for _ in range(6):
            n_bits = int(rng.integers(8, 120))
            info = rng.integers(0, 2, n_bits).astype(np.uint8)
            coded = encoder.encode(info, terminate=False).astype(np.float64)
            flips = rng.random(coded.size) < 0.05
            received = np.where(flips, 1.0 - coded, coded)
            np.testing.assert_array_equal(
                vectorized.decode(received, n_info_bits=n_bits, terminated=False),
                scalar.decode(received, n_info_bits=n_bits, terminated=False),
            )

    def test_tie_break_matches_on_degenerate_input(self):
        # An all-zero received block produces many equal path metrics; the
        # vectorised argmin must resolve every tie exactly like the scalar
        # stable sort does.
        code = ConvolutionalCode.ieee80211a()
        vectorized = ViterbiDecoder(code)
        scalar = ViterbiDecoder(code, vectorized=False)
        received = np.zeros(2 * 40, dtype=np.float64)
        np.testing.assert_array_equal(
            vectorized.decode(received, n_info_bits=34, terminated=True),
            scalar.decode(received, n_info_bits=34, terminated=True),
        )

    @pytest.mark.parametrize("rate", ALL_RATES)
    def test_depuncture_matches_serial_reference(self, rate):
        decoder = ViterbiDecoder(ConvolutionalCode.ieee80211a(rate))
        code = decoder.code
        rng = np.random.default_rng(7)
        for _ in range(5):
            n_steps = int(rng.integers(code.puncture_period, 60))
            # Serial reference: walk the puncture pattern bit by bit.
            kept = [
                (step, out)
                for step in range(n_steps)
                for out in range(code.n_outputs)
                if code.puncture_pattern[out, step % code.puncture_period]
            ]
            values = rng.normal(size=len(kept))
            expected_full = np.zeros((n_steps, code.n_outputs))
            expected_mask = np.zeros((n_steps, code.n_outputs))
            for value, (step, out) in zip(values, kept):
                expected_full[step, out] = value
                expected_mask[step, out] = 1.0
            full, mask = decoder.depuncture(values, n_steps)
            np.testing.assert_array_equal(full, expected_full)
            np.testing.assert_array_equal(mask, expected_mask)

    def test_depuncture_length_validation(self):
        decoder = ViterbiDecoder(ConvolutionalCode.ieee80211a(CodeRate.RATE_3_4))
        with pytest.raises(ValueError):
            decoder.depuncture(np.zeros(3), 6)
        with pytest.raises(ValueError):
            decoder.depuncture(np.zeros(100), 6)


class TestDemapperBatchAgreement:
    """Batched demapping vs the per-symbol scalar reference."""

    @pytest.mark.parametrize("modulation", ALL_MODULATIONS)
    def test_hard_decisions_agree(self, modulation):
        rng = np.random.default_rng(modulation.bits_per_symbol)
        demapper = SymbolDemapper(modulation)
        for _ in range(8):
            n_symbols = int(rng.integers(1, 200))
            symbols = rng.normal(size=n_symbols) + 1j * rng.normal(size=n_symbols)
            np.testing.assert_array_equal(
                demapper.hard_decisions(symbols),
                demapper.hard_decisions_scalar(symbols),
            )

    @pytest.mark.parametrize("modulation", ALL_MODULATIONS)
    def test_soft_decisions_agree(self, modulation):
        rng = np.random.default_rng(100 + modulation.bits_per_symbol)
        demapper = SymbolDemapper(modulation)
        for _ in range(8):
            n_symbols = int(rng.integers(1, 120))
            noise_variance = float(rng.uniform(0.05, 2.0))
            symbols = rng.normal(size=n_symbols) + 1j * rng.normal(size=n_symbols)
            np.testing.assert_array_equal(
                demapper.soft_decisions(symbols, noise_variance=noise_variance),
                demapper.soft_decisions_scalar(symbols, noise_variance=noise_variance),
            )

    @pytest.mark.parametrize("modulation", ALL_MODULATIONS)
    def test_2d_block_demap_equals_per_symbol_loop(self, modulation):
        # The receiver hands the demapper a whole (n_symbols, n_subcarriers)
        # block; the result must equal demapping row by row and concatenating.
        rng = np.random.default_rng(17)
        demapper = SymbolDemapper(modulation)
        block = rng.normal(size=(5, 12)) + 1j * rng.normal(size=(5, 12))
        for soft in (False, True):
            batched = demapper.demap(block, soft=soft, noise_variance=0.5)
            rowwise = np.concatenate(
                [demapper.demap(row, soft=soft, noise_variance=0.5) for row in block]
            )
            np.testing.assert_array_equal(batched, rowwise)

    def test_empty_input(self):
        demapper = SymbolDemapper("qpsk")
        assert demapper.hard_decisions(np.zeros(0)).size == 0
        assert demapper.hard_decisions_scalar(np.zeros(0)).size == 0
        assert demapper.soft_decisions(np.zeros(0)).size == 0


def _receive_both_ways(config, channel, n_info_bits=360, seed=0, noise_variance=0.05):
    """Decode one faded burst with the batched and the per-symbol receivers."""
    transmitter = MimoTransmitter(config)
    burst = transmitter.transmit_random(n_info_bits, rng=np.random.default_rng(seed))
    samples = channel.transmit(burst.samples).samples if channel is not None else burst.samples
    results = []
    for vectorized in (True, False):
        receiver = MimoReceiver(config, vectorized=vectorized)
        results.append(
            receiver.receive(
                samples, n_info_bits=n_info_bits, noise_variance=noise_variance
            )
        )
    return results


def _assert_results_identical(batched, scalar):
    assert batched.lts_start == scalar.lts_start
    assert batched.diagnostics == scalar.diagnostics
    np.testing.assert_array_equal(
        batched.channel_estimate.matrices, scalar.channel_estimate.matrices
    )
    np.testing.assert_array_equal(
        batched.channel_estimate.inverses, scalar.channel_estimate.inverses
    )
    for stream_b, stream_s in zip(batched.streams, scalar.streams):
        np.testing.assert_array_equal(
            stream_b.equalized_symbols, stream_s.equalized_symbols
        )
        np.testing.assert_array_equal(stream_b.decoded_bits, stream_s.decoded_bits)


class TestReceiverBatchAgreement:
    """Whole-burst receive chain vs the retained per-symbol reference.

    The full matrix the tentpole claims: hard and soft decisions, ZF and
    MMSE detection, with and without the 18-bit multiplier quantisation
    between the FFT and the detector — every decoded bit, equalised symbol,
    channel-estimate entry and diagnostic must be bit-identical.
    """

    @pytest.mark.parametrize("detector", ["zf", "mmse"])
    @pytest.mark.parametrize("soft_decision", [False, True])
    @pytest.mark.parametrize("quantized", [False, True])
    def test_full_matrix_agrees_bit_exactly(self, detector, soft_decision, quantized):
        config = TransceiverConfig(
            detector=detector,
            soft_decision=soft_decision,
            rx_multiplier_format=MULTIPLIER_FORMAT_18BIT if quantized else None,
        )
        # Deterministic per-cell seed (hash() is randomised per process).
        seed = (
            400 * int(detector == "mmse")
            + 200 * int(soft_decision)
            + 100 * int(quantized)
            + 80
        )
        channel = MimoChannel(
            FlatRayleighChannel(rng=seed), snr_db=14.0, rng=seed + 1
        )
        batched, scalar = _receive_both_ways(config, channel, seed=seed + 2)
        _assert_results_identical(batched, scalar)

    def test_frequency_selective_channel_agrees(self):
        config = TransceiverConfig(soft_decision=True)
        channel = MimoChannel(
            FrequencySelectiveChannel(n_taps=4, rng=50), snr_db=20.0, rng=51
        )
        batched, scalar = _receive_both_ways(config, channel, seed=52)
        _assert_results_identical(batched, scalar)

    def test_ideal_channel_agrees(self):
        config = TransceiverConfig()
        batched, scalar = _receive_both_ways(config, channel=None, seed=53)
        _assert_results_identical(batched, scalar)
        assert all(s.bit_errors in (None, 0) for s in batched.streams)

    @pytest.mark.parametrize("n_streams", [2, 4])
    def test_channel_estimation_agrees(self, n_streams):
        config = TransceiverConfig(n_antennas=n_streams)
        transmitter = MimoTransmitter(config)
        burst = transmitter.transmit_random(120, rng=np.random.default_rng(60))
        channel = MimoChannel(
            FlatRayleighChannel(n_streams, n_streams, rng=61), snr_db=25.0, rng=62
        )
        samples = channel.transmit(burst.samples).samples
        batched = MimoReceiver(config, vectorized=True)
        scalar = MimoReceiver(config, vectorized=False)
        lts_start = batched.synchronize(samples)
        est_b = batched.estimate_channel(samples, lts_start)
        est_s = scalar.estimate_channel(samples, lts_start)
        np.testing.assert_array_equal(est_b.matrices, est_s.matrices)
        np.testing.assert_array_equal(est_b.inverses, est_s.inverses)


class TestTransmitterBatchAgreement:
    """Whole-burst transmit chain vs the retained per-symbol reference."""

    @pytest.mark.parametrize("rate", ALL_RATES)
    @pytest.mark.parametrize("modulation", ALL_MODULATIONS)
    def test_bursts_identical_across_the_code_grid(self, modulation, rate):
        config = TransceiverConfig(modulation=modulation, code_rate=rate)
        seed = 1000 + 10 * modulation.bits_per_symbol + ALL_RATES.index(rate)
        rng = np.random.default_rng(seed)
        bits = [
            rng.integers(0, 2, size=int(rng.integers(40, 700)), dtype=np.uint8)
            for _ in range(config.n_streams)
        ]
        batched = MimoTransmitter(config, vectorized=True).transmit(bits)
        scalar = MimoTransmitter(config, vectorized=False).transmit(bits)
        np.testing.assert_array_equal(batched.samples, scalar.samples)
        np.testing.assert_array_equal(
            batched.frequency_symbols, scalar.frequency_symbols
        )
        for coded_b, coded_s in zip(batched.coded_bits, scalar.coded_bits):
            np.testing.assert_array_equal(coded_b, coded_s)

    @pytest.mark.parametrize("n_streams", [2, 4])
    def test_antenna_counts_agree(self, n_streams):
        config = TransceiverConfig(n_antennas=n_streams)
        rng = np.random.default_rng(90 + n_streams)
        bits = [
            rng.integers(0, 2, size=300, dtype=np.uint8) for _ in range(n_streams)
        ]
        batched = MimoTransmitter(config, vectorized=True).transmit(bits)
        scalar = MimoTransmitter(config, vectorized=False).transmit(bits)
        np.testing.assert_array_equal(batched.samples, scalar.samples)

    def test_pilot_insert_block_matches_per_symbol_insert(self):
        numerology = TransceiverConfig().numerology
        processor = PilotProcessor(numerology)
        rng = np.random.default_rng(91)
        block = rng.normal(size=(4, 7, 64)) + 1j * rng.normal(size=(4, 7, 64))
        inserted = processor.insert_block(block, start_index=3)
        for stream in range(4):
            for n in range(7):
                np.testing.assert_array_equal(
                    inserted[stream, n], processor.insert(block[stream, n], 3 + n)
                )

    @pytest.mark.parametrize("detector", ["zf", "mmse"])
    @pytest.mark.parametrize("soft_decision", [False, True])
    @pytest.mark.parametrize("quantized", [False, True])
    def test_full_link_matrix_decodes_identically(
        self, detector, soft_decision, quantized
    ):
        # The transmit path is the only knob: both bursts cross the same
        # channel realisation and the same (batched) receiver, so every
        # decoded bit and equalised symbol must be bit-identical.
        config = TransceiverConfig(
            detector=detector,
            soft_decision=soft_decision,
            rx_multiplier_format=MULTIPLIER_FORMAT_18BIT if quantized else None,
        )
        seed = (
            800 * int(detector == "mmse")
            + 400 * int(soft_decision)
            + 200 * int(quantized)
            + 3000
        )
        rng = np.random.default_rng(seed)
        bits = [
            rng.integers(0, 2, size=360, dtype=np.uint8)
            for _ in range(config.n_streams)
        ]
        receiver = MimoReceiver(config)
        results = []
        for vectorized in (True, False):
            burst = MimoTransmitter(config, vectorized=vectorized).transmit(bits)
            channel = MimoChannel(
                FlatRayleighChannel(rng=seed + 1), snr_db=16.0, rng=seed + 2
            )
            output = channel.transmit(burst.samples)
            results.append(
                receiver.receive(
                    output.samples,
                    n_info_bits=360,
                    noise_variance=output.noise_variance,
                )
            )
        _assert_results_identical(*results)


CHANNEL_IMPAIRMENT_CASES = [
    {},
    {"snr_db": 12.0},
    {"cfo_normalized": 2e-4},
    {"sample_delay": 23},
    {"iq_amplitude_db": 0.5, "iq_phase_deg": 2.0},
    {"snr_db": 8.0, "sample_delay": 11, "iq_amplitude_db": 0.3, "iq_phase_deg": -3.0},
    {
        "snr_db": 15.0,
        "cfo_normalized": 1e-4,
        "sample_delay": 17,
        "iq_amplitude_db": 1.0,
        "iq_phase_deg": 4.0,
    },
]


class TestChannelFusedAgreement:
    """Fused whole-burst channel pipeline vs the stage-at-a-time reference.

    Noise consumes the generator, so each compared path gets a freshly
    seeded channel — identical seeds, identical draws.
    """

    @pytest.mark.parametrize("case", CHANNEL_IMPAIRMENT_CASES)
    @pytest.mark.parametrize("fading", ["ideal", "flat", "selective"])
    def test_every_impairment_combination_agrees(self, fading, case):
        from repro.dsp.fixedpoint import SAMPLE_FORMAT_16BIT

        rng = np.random.default_rng(5000)
        x = rng.normal(size=(4, 1500)) + 1j * rng.normal(size=(4, 1500))
        kwargs = dict(case)
        kwargs["tx_quantization"] = SAMPLE_FORMAT_16BIT
        kwargs["rx_quantization"] = SAMPLE_FORMAT_16BIT

        def build(vectorized):
            if fading == "flat":
                model = FlatRayleighChannel(4, 4, rng=np.random.default_rng(5001))
            elif fading == "selective":
                model = FrequencySelectiveChannel(4, 4, rng=np.random.default_rng(5001))
            else:
                model = None
            return MimoChannel(
                model,
                rng=np.random.default_rng(5002),
                vectorized=vectorized,
                **kwargs,
            )

        fused = build(True).transmit(x)
        staged = build(False).transmit(x)
        np.testing.assert_array_equal(fused.samples, staged.samples)
        assert fused.noise_variance == staged.noise_variance


class TestPilotBlockAgreement:
    """PilotProcessor.correct_block vs per-symbol correct."""

    def test_random_blocks_agree(self):
        numerology = TransceiverConfig().numerology
        processor = PilotProcessor(numerology)
        rng = np.random.default_rng(70)
        block = rng.normal(size=(4, 9, 64)) + 1j * rng.normal(size=(4, 9, 64))
        corrected, diag = processor.correct_block(block)
        for stream in range(4):
            for n in range(9):
                expected, expected_diag = processor.correct(block[stream, n], n)
                np.testing.assert_array_equal(corrected[stream, n], expected)
                assert diag.common_phase[stream, n] == expected_diag.common_phase
                assert diag.tau[stream, n] == expected_diag.tau
                assert diag.pilot_magnitude[stream, n] == expected_diag.pilot_magnitude

    def test_start_index_selects_polarity(self):
        numerology = TransceiverConfig().numerology
        processor = PilotProcessor(numerology)
        rng = np.random.default_rng(71)
        block = rng.normal(size=(2, 3, 64)) + 1j * rng.normal(size=(2, 3, 64))
        corrected, _ = processor.correct_block(block, start_index=5)
        for stream in range(2):
            for n in range(3):
                expected, _ = processor.correct(block[stream, n], 5 + n)
                np.testing.assert_array_equal(corrected[stream, n], expected)

    def test_zero_pilot_symbol_left_untouched(self):
        # A symbol whose pilot correlation is exactly zero takes the scalar
        # early-return; the block path must reproduce it with zeroed
        # diagnostics and unchanged data values.
        numerology = TransceiverConfig().numerology
        processor = PilotProcessor(numerology)
        rng = np.random.default_rng(72)
        block = rng.normal(size=(1, 2, 64)) + 1j * rng.normal(size=(1, 2, 64))
        block[0, 1, list(numerology.pilot_bins)] = 0.0
        corrected, diag = processor.correct_block(block)
        expected, expected_diag = processor.correct(block[0, 1], 1)
        np.testing.assert_array_equal(corrected[0, 1], expected)
        assert diag.common_phase[0, 1] == expected_diag.common_phase == 0.0
        assert diag.tau[0, 1] == expected_diag.tau == 0.0
        assert diag.pilot_magnitude[0, 1] == expected_diag.pilot_magnitude == 0.0

    def test_shape_validation(self):
        processor = PilotProcessor(TransceiverConfig().numerology)
        with pytest.raises(ValueError):
            processor.correct_block(np.zeros(64, dtype=complex))
        with pytest.raises(ValueError):
            processor.correct_block(np.zeros((3, 32), dtype=complex))


class TestShapeContractsOnTheHotPath:
    """The batched hot path carries declared ``@shaped`` contracts.

    The agreement tests above prove the batched and per-symbol paths are
    bit-identical; these prove the *shape contracts* guarding that hot
    path are actually attached and enforced at runtime, so a refactor
    that silently drops a decorator (or reorders burst axes) fails here
    rather than in a sweep.
    """

    def test_equalize_burst_declares_its_burst_layout(self):
        contract = MimoReceiver.equalize_burst.__shape_contract__
        assert "streams" in contract

    def test_block_tx_path_declares_its_block_layout(self):
        assert "return" in MimoTransmitter._map_block.__shape_contract__
        assert (
            "frequency_block"
            in MimoTransmitter._modulate_block.__shape_contract__
        )

    def test_equalize_burst_rejects_a_transposed_burst(self, paper_config):
        receiver = MimoReceiver(paper_config)
        from repro.contracts import ShapeContractError

        with pytest.raises(ShapeContractError):
            # rank-3 where the contract demands (n_rx, n_samples); the
            # contract rejects the burst before the body ever runs, so
            # the placeholder estimate is never touched.
            receiver.equalize_burst(
                np.zeros((4, 2, 64), dtype=np.complex128),
                estimate=None,
                data_start=0,
                n_symbols=1,
            )

    def test_modulate_block_rejects_a_flattened_block(self, paper_config):
        transmitter = MimoTransmitter(paper_config)
        from repro.contracts import ShapeContractError

        with pytest.raises(ShapeContractError):
            # rank-2 where the contract demands (n_streams, n_symbols, fft_size)
            transmitter._modulate_block(
                np.zeros((4, 64), dtype=np.complex128)
            )

"""Bit-exact agreement between the vectorised hot paths and their scalar references.

The :mod:`repro.sim` engine leans on two vectorised inner loops — the
Viterbi add-compare-select in :mod:`repro.coding.viterbi` and the batched
symbol demapper in :mod:`repro.modulation.demapper`.  Both keep their
original scalar implementations around precisely so these property-style
tests can assert exact equality across random codewords, constellations,
noise levels and puncturing patterns.
"""

import numpy as np
import pytest

from repro.coding.convolutional import CodeRate, ConvolutionalCode, ConvolutionalEncoder
from repro.coding.viterbi import ViterbiDecoder
from repro.modulation.constellations import Modulation
from repro.modulation.demapper import SymbolDemapper

ALL_RATES = [CodeRate.RATE_1_2, CodeRate.RATE_2_3, CodeRate.RATE_3_4]
ALL_MODULATIONS = [
    Modulation.BPSK,
    Modulation.QPSK,
    Modulation.QAM16,
    Modulation.QAM64,
]


class TestViterbiAcsAgreement:
    """Vectorised vs scalar add-compare-select across the code grid."""

    @pytest.mark.parametrize("rate", ALL_RATES)
    @pytest.mark.parametrize("decision", ["hard", "soft"])
    def test_random_codewords_decode_identically(self, rate, decision):
        rng = np.random.default_rng(hash((rate.value, decision)) % 2**32)
        code = ConvolutionalCode.ieee80211a(rate)
        encoder = ConvolutionalEncoder(code)
        vectorized = ViterbiDecoder(code, decision=decision)
        scalar = ViterbiDecoder(code, decision=decision, vectorized=False)
        assert vectorized._predecessors is not None

        for _ in range(12):
            n_bits = int(rng.integers(4, 240))
            info = rng.integers(0, 2, n_bits).astype(np.uint8)
            coded = encoder.encode(info, terminate=True).astype(np.float64)
            if decision == "hard":
                # Flip a random fraction of the coded bits.
                flips = rng.random(coded.size) < rng.uniform(0.0, 0.12)
                received = np.where(flips, 1.0 - coded, coded)
            else:
                # Noisy LLRs around the +-1 antipodal mapping (0 -> +1).
                received = (1.0 - 2.0 * coded) + rng.normal(
                    0.0, rng.uniform(0.3, 1.2), coded.size
                )
            out_vec = vectorized.decode(received, n_info_bits=n_bits, terminated=True)
            out_sca = scalar.decode(received, n_info_bits=n_bits, terminated=True)
            np.testing.assert_array_equal(out_vec, out_sca)

    @pytest.mark.parametrize("rate", ALL_RATES)
    def test_unterminated_blocks_decode_identically(self, rate):
        rng = np.random.default_rng(99)
        code = ConvolutionalCode.ieee80211a(rate)
        encoder = ConvolutionalEncoder(code)
        vectorized = ViterbiDecoder(code)
        scalar = ViterbiDecoder(code, vectorized=False)
        for _ in range(6):
            n_bits = int(rng.integers(8, 120))
            info = rng.integers(0, 2, n_bits).astype(np.uint8)
            coded = encoder.encode(info, terminate=False).astype(np.float64)
            flips = rng.random(coded.size) < 0.05
            received = np.where(flips, 1.0 - coded, coded)
            np.testing.assert_array_equal(
                vectorized.decode(received, n_info_bits=n_bits, terminated=False),
                scalar.decode(received, n_info_bits=n_bits, terminated=False),
            )

    def test_tie_break_matches_on_degenerate_input(self):
        # An all-zero received block produces many equal path metrics; the
        # vectorised argmin must resolve every tie exactly like the scalar
        # stable sort does.
        code = ConvolutionalCode.ieee80211a()
        vectorized = ViterbiDecoder(code)
        scalar = ViterbiDecoder(code, vectorized=False)
        received = np.zeros(2 * 40, dtype=np.float64)
        np.testing.assert_array_equal(
            vectorized.decode(received, n_info_bits=34, terminated=True),
            scalar.decode(received, n_info_bits=34, terminated=True),
        )

    @pytest.mark.parametrize("rate", ALL_RATES)
    def test_depuncture_matches_serial_reference(self, rate):
        decoder = ViterbiDecoder(ConvolutionalCode.ieee80211a(rate))
        code = decoder.code
        rng = np.random.default_rng(7)
        for _ in range(5):
            n_steps = int(rng.integers(code.puncture_period, 60))
            # Serial reference: walk the puncture pattern bit by bit.
            kept = [
                (step, out)
                for step in range(n_steps)
                for out in range(code.n_outputs)
                if code.puncture_pattern[out, step % code.puncture_period]
            ]
            values = rng.normal(size=len(kept))
            expected_full = np.zeros((n_steps, code.n_outputs))
            expected_mask = np.zeros((n_steps, code.n_outputs))
            for value, (step, out) in zip(values, kept):
                expected_full[step, out] = value
                expected_mask[step, out] = 1.0
            full, mask = decoder.depuncture(values, n_steps)
            np.testing.assert_array_equal(full, expected_full)
            np.testing.assert_array_equal(mask, expected_mask)

    def test_depuncture_length_validation(self):
        decoder = ViterbiDecoder(ConvolutionalCode.ieee80211a(CodeRate.RATE_3_4))
        with pytest.raises(ValueError):
            decoder.depuncture(np.zeros(3), 6)
        with pytest.raises(ValueError):
            decoder.depuncture(np.zeros(100), 6)


class TestDemapperBatchAgreement:
    """Batched demapping vs the per-symbol scalar reference."""

    @pytest.mark.parametrize("modulation", ALL_MODULATIONS)
    def test_hard_decisions_agree(self, modulation):
        rng = np.random.default_rng(modulation.bits_per_symbol)
        demapper = SymbolDemapper(modulation)
        for _ in range(8):
            n_symbols = int(rng.integers(1, 200))
            symbols = rng.normal(size=n_symbols) + 1j * rng.normal(size=n_symbols)
            np.testing.assert_array_equal(
                demapper.hard_decisions(symbols),
                demapper.hard_decisions_scalar(symbols),
            )

    @pytest.mark.parametrize("modulation", ALL_MODULATIONS)
    def test_soft_decisions_agree(self, modulation):
        rng = np.random.default_rng(100 + modulation.bits_per_symbol)
        demapper = SymbolDemapper(modulation)
        for _ in range(8):
            n_symbols = int(rng.integers(1, 120))
            noise_variance = float(rng.uniform(0.05, 2.0))
            symbols = rng.normal(size=n_symbols) + 1j * rng.normal(size=n_symbols)
            np.testing.assert_array_equal(
                demapper.soft_decisions(symbols, noise_variance=noise_variance),
                demapper.soft_decisions_scalar(symbols, noise_variance=noise_variance),
            )

    @pytest.mark.parametrize("modulation", ALL_MODULATIONS)
    def test_2d_block_demap_equals_per_symbol_loop(self, modulation):
        # The receiver hands the demapper a whole (n_symbols, n_subcarriers)
        # block; the result must equal demapping row by row and concatenating.
        rng = np.random.default_rng(17)
        demapper = SymbolDemapper(modulation)
        block = rng.normal(size=(5, 12)) + 1j * rng.normal(size=(5, 12))
        for soft in (False, True):
            batched = demapper.demap(block, soft=soft, noise_variance=0.5)
            rowwise = np.concatenate(
                [demapper.demap(row, soft=soft, noise_variance=0.5) for row in block]
            )
            np.testing.assert_array_equal(batched, rowwise)

    def test_empty_input(self):
        demapper = SymbolDemapper("qpsk")
        assert demapper.hard_decisions(np.zeros(0)).size == 0
        assert demapper.hard_decisions_scalar(np.zeros(0)).size == 0
        assert demapper.soft_decisions(np.zeros(0)).size == 0

"""Tests for repro.hardware.fsm and repro.hardware.clock."""

import pytest

from repro.hardware.clock import ClockDomain, PAPER_CLOCK_HZ, ThroughputModel
from repro.hardware.fsm import FiniteStateMachine


class TestFiniteStateMachine:
    def _fsm(self) -> FiniteStateMachine:
        return FiniteStateMachine(
            states=["idle", "preamble", "data"],
            initial="idle",
            transitions={
                ("idle", "start"): "preamble",
                ("preamble", "preamble_done"): "data",
                ("data", "burst_done"): "idle",
            },
        )

    def test_initial_state(self):
        assert self._fsm().state == "idle"

    def test_fire_walks_transitions(self):
        fsm = self._fsm()
        fsm.fire("start")
        fsm.fire("preamble_done")
        assert fsm.state == "data"
        assert fsm.history == ["idle", "preamble", "data"]

    def test_undefined_transition_raises(self):
        with pytest.raises(ValueError):
            self._fsm().fire("burst_done")

    def test_fire_if_possible(self):
        fsm = self._fsm()
        assert fsm.fire_if_possible("burst_done") is None
        assert fsm.fire_if_possible("start") == "preamble"

    def test_reset(self):
        fsm = self._fsm()
        fsm.fire("start")
        fsm.reset()
        assert fsm.state == "idle"
        assert fsm.history == ["idle"]

    def test_unknown_initial_state_rejected(self):
        with pytest.raises(ValueError):
            FiniteStateMachine(["a"], "b", {})

    def test_unknown_transition_state_rejected(self):
        with pytest.raises(ValueError):
            FiniteStateMachine(["a"], "a", {("a", "go"): "b"})


class TestClockDomain:
    def test_paper_clock(self):
        clock = ClockDomain()
        assert clock.frequency_hz == PAPER_CLOCK_HZ
        assert clock.period_s == pytest.approx(10e-9)

    def test_cycle_time_conversion(self):
        clock = ClockDomain(100e6)
        assert clock.cycles_to_seconds(440) == pytest.approx(4.4e-6)
        assert clock.seconds_to_cycles(1e-6) == 100

    def test_invalid_frequency(self):
        with pytest.raises(ValueError):
            ClockDomain(0)

    def test_negative_cycles_rejected(self):
        with pytest.raises(ValueError):
            ClockDomain().cycles_to_seconds(-1)


class TestThroughputModel:
    def test_paper_synthesised_configuration_is_480mbps(self):
        # 16-QAM, rate 1/2: 4 streams x 48 carriers x 4 bits x 1/2 / 800 ns.
        model = ThroughputModel(bits_per_subcarrier=4, code_rate=0.5)
        assert model.info_bit_rate_bps == pytest.approx(480e6)

    def test_gigabit_configuration(self):
        # 64-QAM, rate 3/4 reaches 1.08 Gbps -- the paper's headline.
        model = ThroughputModel(bits_per_subcarrier=6, code_rate=0.75)
        assert model.info_bit_rate_bps == pytest.approx(1.08e9)
        assert model.meets_gigabit_target()

    def test_uncoded_rate(self):
        model = ThroughputModel(bits_per_subcarrier=6, code_rate=1.0)
        assert model.coded_bit_rate_bps == model.info_bit_rate_bps

    def test_symbol_duration(self):
        model = ThroughputModel()
        assert model.symbol_duration_s == pytest.approx(800e-9)
        assert model.samples_per_symbol == 80

    def test_preamble_overhead_reduces_rate(self):
        model = ThroughputModel(bits_per_subcarrier=6, code_rate=0.75)
        with_preamble = model.info_bit_rate_with_preamble_bps(
            symbols_per_burst=100, preamble_samples=800
        )
        assert with_preamble < model.info_bit_rate_bps
        assert with_preamble == pytest.approx(
            model.info_bit_rate_bps * (100 * 80) / (100 * 80 + 800)
        )

    def test_512_point_keeps_gigabit(self):
        model = ThroughputModel(
            bits_per_subcarrier=6,
            code_rate=0.75,
            fft_size=512,
            cyclic_prefix_length=128,
            n_data_subcarriers=384,
        )
        assert model.info_bit_rate_bps >= 1e9

    def test_validation(self):
        with pytest.raises(ValueError):
            ThroughputModel(n_streams=0)
        with pytest.raises(ValueError):
            ThroughputModel(n_data_subcarriers=0)
        with pytest.raises(ValueError):
            ThroughputModel(code_rate=0.0)
        with pytest.raises(ValueError):
            ThroughputModel(cyclic_prefix_length=-1)
        with pytest.raises(ValueError):
            ThroughputModel(n_data_subcarriers=100, fft_size=64)

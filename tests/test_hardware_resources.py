"""Tests for repro.hardware.resources."""

import pytest

from repro.hardware.estimator import STRATIX_IV_DEVICE
from repro.hardware.resources import ResourceReport, ResourceUsage


class TestResourceUsage:
    def test_addition(self):
        total = ResourceUsage(aluts=10, registers=20) + ResourceUsage(
            aluts=5, memory_bits=100, dsp_blocks=2
        )
        assert total == ResourceUsage(aluts=15, registers=20, memory_bits=100, dsp_blocks=2)

    def test_scale(self):
        scaled = ResourceUsage(aluts=3, registers=4, memory_bits=5, dsp_blocks=6).scale(4)
        assert scaled == ResourceUsage(aluts=12, registers=16, memory_bits=20, dsp_blocks=24)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ResourceUsage(aluts=-1)

    def test_negative_scale_rejected(self):
        with pytest.raises(ValueError):
            ResourceUsage(aluts=1).scale(-1)

    def test_as_dict(self):
        usage = ResourceUsage(aluts=1, registers=2, memory_bits=3, dsp_blocks=4)
        assert usage.as_dict() == {
            "aluts": 1,
            "registers": 2,
            "memory_bits": 3,
            "dsp_blocks": 4,
        }


class TestResourceReport:
    def _report(self) -> ResourceReport:
        report = ResourceReport(name="test")
        report.add_entity("fft", ResourceUsage(aluts=100, dsp_blocks=8))
        report.add_entity("viterbi", ResourceUsage(aluts=50, memory_bits=1000))
        report.overhead = ResourceUsage(aluts=10)
        return report

    def test_total_includes_overhead(self):
        assert self._report().total().aluts == 160

    def test_add_entity_accumulates(self):
        report = self._report()
        report.add_entity("fft", ResourceUsage(aluts=100))
        assert report.entities["fft"].aluts == 200

    def test_utilization_percentages(self):
        report = self._report()
        utilization = report.utilization(STRATIX_IV_DEVICE)
        assert utilization["aluts"] == pytest.approx(100.0 * 160 / STRATIX_IV_DEVICE.aluts)

    def test_entity_share(self):
        report = self._report()
        share = report.entity_share(["fft"])
        assert share["aluts"] == pytest.approx(100 / 160)
        assert share["dsp_blocks"] == pytest.approx(1.0)

    def test_entity_share_unknown_entity(self):
        with pytest.raises(KeyError):
            self._report().entity_share(["unknown"])

    def test_as_table(self):
        table = self._report().as_table()
        assert set(table.keys()) == {"fft", "viterbi"}
        assert table["viterbi"]["memory_bits"] == 1000

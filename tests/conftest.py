"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.channel.fading import FlatRayleighChannel
from repro.channel.model import MimoChannel
from repro.core.config import TransceiverConfig


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic generator shared by tests that need randomness."""
    return np.random.default_rng(0xC0FFEE)


@pytest.fixture
def paper_config() -> TransceiverConfig:
    """The paper's synthesised configuration (4x4, 16-QAM, 64-pt, rate 1/2)."""
    return TransceiverConfig.paper_default()


@pytest.fixture
def gigabit_config() -> TransceiverConfig:
    """The 1 Gbps configuration (64-QAM, rate 3/4)."""
    return TransceiverConfig.gigabit()


@pytest.fixture
def random_channel_matrix(rng: np.random.Generator) -> np.ndarray:
    """A well-conditioned random 4x4 complex channel matrix."""
    return (rng.normal(size=(4, 4)) + 1j * rng.normal(size=(4, 4))) / np.sqrt(2.0)


@pytest.fixture
def flat_fading_channel() -> MimoChannel:
    """A reproducible flat-Rayleigh channel with 35 dB SNR."""
    return MimoChannel(FlatRayleighChannel(rng=11), snr_db=35.0, rng=12)

"""Tests for repro.modulation.constellations."""

import numpy as np
import pytest

from repro.modulation.constellations import Constellation, Modulation, get_constellation


class TestModulationEnum:
    def test_bits_per_symbol(self):
        assert Modulation.BPSK.bits_per_symbol == 1
        assert Modulation.QPSK.bits_per_symbol == 2
        assert Modulation.QAM16.bits_per_symbol == 4
        assert Modulation.QAM64.bits_per_symbol == 6

    @pytest.mark.parametrize(
        "alias,expected",
        [
            ("bpsk", Modulation.BPSK),
            ("QPSK", Modulation.QPSK),
            ("16-QAM", Modulation.QAM16),
            ("qam64", Modulation.QAM64),
            (Modulation.QAM16, Modulation.QAM16),
        ],
    )
    def test_from_any(self, alias, expected):
        assert Modulation.from_any(alias) is expected

    def test_from_any_rejects_unknown(self):
        with pytest.raises(ValueError):
            Modulation.from_any("256qam")


class TestConstellationTables:
    @pytest.mark.parametrize("modulation", list(Modulation))
    def test_unit_average_power(self, modulation):
        constellation = get_constellation(modulation)
        assert constellation.average_power() == pytest.approx(1.0, abs=1e-12)

    @pytest.mark.parametrize("modulation", list(Modulation))
    def test_lut_size_matches_address_width(self, modulation):
        constellation = get_constellation(modulation)
        assert constellation.size == 2 ** constellation.bits_per_symbol

    @pytest.mark.parametrize("modulation", list(Modulation))
    def test_all_points_distinct(self, modulation):
        points = get_constellation(modulation).points
        assert len(set(np.round(points, 12))) == points.size

    def test_bpsk_points(self):
        points = get_constellation(Modulation.BPSK).points
        np.testing.assert_allclose(points, [-1.0, 1.0])

    def test_qpsk_normalisation(self):
        points = get_constellation(Modulation.QPSK).points
        np.testing.assert_allclose(np.abs(points), np.ones(4))

    def test_16qam_gray_mapping_adjacent_points_differ_by_one_bit(self):
        constellation = get_constellation(Modulation.QAM16)
        points = constellation.points
        bits = constellation.bit_table()
        # Find pairs of points at the minimum distance and check Hamming
        # distance of their labels is exactly 1 (Gray property).
        min_distance = np.inf
        for i in range(points.size):
            for j in range(i + 1, points.size):
                min_distance = min(min_distance, abs(points[i] - points[j]))
        for i in range(points.size):
            for j in range(i + 1, points.size):
                if abs(points[i] - points[j]) <= min_distance * 1.001:
                    hamming = int(np.sum(bits[i] != bits[j]))
                    assert hamming == 1

    def test_64qam_gray_mapping(self):
        constellation = get_constellation(Modulation.QAM64)
        points = constellation.points
        bits = constellation.bit_table()
        min_distance = 2.0 / np.sqrt(42.0)
        for i in range(points.size):
            for j in range(i + 1, points.size):
                if abs(points[i] - points[j]) <= min_distance * 1.001:
                    assert int(np.sum(bits[i] != bits[j])) == 1

    def test_normalization_factors(self):
        assert get_constellation(Modulation.QAM16).normalization == pytest.approx(
            1 / np.sqrt(10)
        )
        assert get_constellation(Modulation.QAM64).normalization == pytest.approx(
            1 / np.sqrt(42)
        )

    def test_bit_table_shape(self):
        table = get_constellation(Modulation.QAM64).bit_table()
        assert table.shape == (64, 6)
        assert table.max() == 1

"""Tests for repro.hardware.latency."""

import pytest

from repro.dsp.cordic import CORDIC_PIPELINE_LATENCY
from repro.hardware.latency import (
    LatencyModel,
    PAPER_QRD_LATENCY_CYCLES,
    qrd_critical_path_cordics,
)


class TestQrdCriticalPath:
    def test_paper_value_for_4x4(self):
        assert qrd_critical_path_cordics(4) * CORDIC_PIPELINE_LATENCY == PAPER_QRD_LATENCY_CYCLES

    def test_grows_with_matrix_size(self):
        assert qrd_critical_path_cordics(8) > qrd_critical_path_cordics(4)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            qrd_critical_path_cordics(0)


class TestLatencyModel:
    def test_qrd_latency_matches_paper(self):
        assert LatencyModel().qrd_cycles == 440

    def test_time_sync_latency_includes_window_and_cordic(self):
        model = LatencyModel()
        assert model.time_sync_cycles >= 32 + CORDIC_PIPELINE_LATENCY

    def test_fft_latency_scales_with_size(self):
        assert LatencyModel(fft_size=512).fft_cycles > LatencyModel(fft_size=64).fft_cycles

    def test_channel_estimation_dominated_by_streaming(self):
        model = LatencyModel()
        # Streaming 64 subcarriers of 16 matrix entries each = 1024 cycles,
        # which exceeds the 440-cycle QRD flush.
        assert model.channel_estimation_cycles > model.qrd_cycles

    def test_channel_estimation_scales_with_fft_size(self):
        small = LatencyModel(fft_size=64).channel_estimation_cycles
        large = LatencyModel(fft_size=512).channel_estimation_cycles
        assert large > 4 * small

    def test_total_is_sum_of_stages(self):
        model = LatencyModel()
        breakdown = model.breakdown()
        assert breakdown.total_cycles == model.total_cycles
        assert breakdown.qrd_cycles == 440

    def test_fifo_depth_covers_estimation_latency(self):
        model = LatencyModel()
        assert model.required_data_fifo_depth() == model.channel_estimation_cycles

    def test_latency_in_seconds_at_100mhz(self):
        model = LatencyModel()
        assert model.latency_seconds() == pytest.approx(model.total_cycles * 10e-9)

    def test_breakdown_as_dict(self):
        d = LatencyModel().breakdown().as_dict()
        assert d["qrd_cycles"] == 440
        assert set(d) >= {"time_sync_cycles", "fft_cycles", "total_cycles"}

"""Unit tests for the rolling-buffer stream frame detector."""

import numpy as np
import pytest

from repro.core.preamble import PreambleGenerator
from repro.core.transmitter import MimoTransmitter
from repro.stream import StreamFrameDetector

N_INFO_BITS = 256


@pytest.fixture(scope="module")
def preamble():
    return PreambleGenerator(64)


@pytest.fixture(scope="module")
def clean_frames(preamble):
    """Two clean back-to-back 4x4 bursts and their common frame length."""
    transmitter = MimoTransmitter()
    rng = np.random.default_rng(99)
    bursts = [
        transmitter.transmit_random(N_INFO_BITS, rng=rng).samples
        for _ in range(2)
    ]
    return bursts, bursts[0].shape[1]


def _detector(preamble, frame_length, **kwargs):
    return StreamFrameDetector(
        preamble=preamble,
        n_rx=4,
        frame_length=frame_length,
        estimate_cfo=False,
        **kwargs,
    )


class TestDetection:
    def test_single_frame_single_push(self, preamble, clean_frames):
        bursts, frame_length = clean_frames
        detector = _detector(preamble, frame_length)
        windows = detector.push(bursts[0])
        assert len(windows) == 1
        window = windows[0]
        assert window.start == 0
        assert window.lts_start == preamble.sts_time().size
        assert window.lts_offset == preamble.sts_time().size
        assert window.samples.shape == (4, frame_length)
        np.testing.assert_array_equal(window.samples, bursts[0])
        assert window.peak_metric == pytest.approx(1.0, abs=0.05)

    def test_frame_straddling_many_pushes(self, preamble, clean_frames):
        bursts, frame_length = clean_frames
        stream = np.concatenate(bursts, axis=1)
        detector = _detector(preamble, frame_length)
        windows = []
        for offset in range(0, stream.shape[1], 100):
            windows.extend(detector.push(stream[:, offset : offset + 100]))
        windows.extend(detector.flush())
        assert [w.start for w in windows] == [0, frame_length]
        for window, burst in zip(windows, bursts):
            np.testing.assert_array_equal(window.samples, burst)

    def test_idle_gap_between_frames(self, preamble, clean_frames):
        bursts, frame_length = clean_frames
        gap = np.zeros((4, 500), dtype=np.complex128)
        detector = _detector(preamble, frame_length)
        windows = detector.push(np.concatenate([bursts[0], gap, bursts[1]], axis=1))
        windows += detector.flush()
        assert [w.start for w in windows] == [0, frame_length + 500]

    def test_delayed_frame_start(self, preamble, clean_frames):
        bursts, frame_length = clean_frames
        delay = 777
        lead_in = np.zeros((4, delay), dtype=np.complex128)
        detector = _detector(preamble, frame_length)
        windows = detector.push(np.concatenate([lead_in, bursts[0]], axis=1))
        windows += detector.flush()
        assert len(windows) == 1
        assert windows[0].start == delay
        np.testing.assert_array_equal(windows[0].samples, bursts[0])

    def test_noise_only_stream_detects_nothing(self, preamble, clean_frames):
        _, frame_length = clean_frames
        rng = np.random.default_rng(3)
        noise = 0.1 * (
            rng.normal(size=(4, 6000)) + 1j * rng.normal(size=(4, 6000))
        )
        detector = _detector(preamble, frame_length)
        assert detector.push(noise) == []
        assert detector.flush() == []
        assert detector.frames_emitted == 0

    def test_truncated_tail_frame_is_counted_not_emitted(
        self, preamble, clean_frames
    ):
        bursts, frame_length = clean_frames
        detector = _detector(preamble, frame_length)
        windows = detector.push(bursts[0][:, : frame_length - 200])
        windows += detector.flush()
        assert windows == []
        assert detector.truncated_frames == 1

    def test_reset_restarts_stream_positions(self, preamble, clean_frames):
        bursts, frame_length = clean_frames
        detector = _detector(preamble, frame_length)
        assert detector.push(bursts[0])[0].start == 0
        detector.reset()
        assert detector.samples_in == 0
        assert detector.push(bursts[1])[0].start == 0

    def test_coarse_cfo_attached_when_requested(self, preamble, clean_frames):
        bursts, frame_length = clean_frames
        cfo = 2e-4
        rotation = np.exp(2j * np.pi * cfo * np.arange(frame_length))
        detector = StreamFrameDetector(
            preamble=preamble, n_rx=4, frame_length=frame_length
        )
        windows = detector.push(bursts[0] * rotation)
        assert len(windows) == 1
        assert windows[0].cfo_coarse == pytest.approx(cfo, abs=2e-5)


class TestValidation:
    def test_chunk_shape_mismatch_rejected(self, preamble, clean_frames):
        _, frame_length = clean_frames
        detector = _detector(preamble, frame_length)
        with pytest.raises(ValueError):
            detector.push(np.zeros((3, 10), dtype=complex))

    def test_frame_shorter_than_preamble_rejected(self, preamble):
        with pytest.raises(ValueError):
            _detector(preamble, frame_length=100)

    def test_single_antenna_accepts_1d_chunks(self, preamble):
        layout_length = preamble.layout(1).total_length
        detector = StreamFrameDetector(
            preamble=preamble,
            n_rx=1,
            n_tx=1,
            frame_length=layout_length + 80,
            estimate_cfo=False,
        )
        samples = np.concatenate(
            [preamble.mimo_preamble(1)[0], np.zeros(200, dtype=complex)]
        )
        windows = detector.push(samples)
        windows += detector.flush()
        assert len(windows) == 1
        assert windows[0].lts_start == preamble.sts_time().size

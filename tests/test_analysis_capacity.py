"""Tests for repro.analysis.capacity."""

import numpy as np
import pytest

from repro.analysis.capacity import (
    ergodic_mimo_capacity,
    mimo_capacity,
    required_snr_for_rate,
    spectral_efficiency,
)
from repro.core.config import TransceiverConfig


class TestMimoCapacity:
    def test_identity_channel_matches_parallel_awgn(self):
        # H = I: four parallel channels each with SNR/4.
        snr_db = 20.0
        capacity = mimo_capacity(np.eye(4), snr_db)
        expected = 4 * np.log2(1 + 100.0 / 4)
        assert capacity == pytest.approx(expected, rel=1e-9)

    def test_siso_capacity(self):
        assert mimo_capacity(np.eye(1), 10.0) == pytest.approx(np.log2(11.0))

    def test_capacity_increases_with_snr(self):
        rng = np.random.default_rng(0)
        h = rng.normal(size=(4, 4)) + 1j * rng.normal(size=(4, 4))
        assert mimo_capacity(h, 25.0) > mimo_capacity(h, 10.0)

    def test_capacity_increases_with_antennas_at_high_snr(self):
        assert ergodic_mimo_capacity(4, 4, 20.0, 100, rng=1) > ergodic_mimo_capacity(
            1, 1, 20.0, 100, rng=1
        )

    def test_rank_deficient_channel_has_lower_capacity(self):
        full_rank = np.eye(4)
        rank_one = np.ones((4, 4)) / 2.0
        assert mimo_capacity(rank_one, 20.0) < mimo_capacity(full_rank, 20.0)

    def test_input_validation(self):
        with pytest.raises(ValueError):
            mimo_capacity(np.ones(4), 10.0)
        with pytest.raises(ValueError):
            ergodic_mimo_capacity(n_realizations=0)


class TestSpectralEfficiency:
    def test_paper_configuration(self):
        # 480 Mbps over 100 MHz -> 4.8 bits/s/Hz.
        assert spectral_efficiency(TransceiverConfig.paper_default()) == pytest.approx(4.8)

    def test_gigabit_configuration(self):
        # 1.08 Gbps over 100 MHz -> 10.8 bits/s/Hz.
        assert spectral_efficiency(TransceiverConfig.gigabit()) == pytest.approx(10.8)

    def test_scales_with_streams(self):
        siso = spectral_efficiency(TransceiverConfig(n_antennas=1))
        mimo = spectral_efficiency(TransceiverConfig(n_antennas=4))
        assert mimo == pytest.approx(4 * siso)


class TestRequiredSnr:
    def test_gigabit_point_is_feasible_below_30db(self):
        # The 10.8 bits/s/Hz needed for 1.08 Gbps is within the 4x4 ergodic
        # capacity at practical SNRs.
        required = required_snr_for_rate(10.8, n_realizations=50, rng=2)
        assert required <= 30.0

    def test_siso_cannot_reach_gigabit_efficiency_at_reasonable_snr(self):
        # The same 10.8 bits/s/Hz on a SISO link needs > 30 dB — the
        # motivation for MIMO in the paper's introduction.
        required = required_snr_for_rate(
            10.8, n_rx=1, n_tx=1, n_realizations=50, rng=3, snr_grid_db=np.arange(0.0, 31.0, 2.0)
        )
        assert required == float("inf") or required > 30.0

    def test_monotone_in_target(self):
        low = required_snr_for_rate(2.0, n_realizations=30, rng=4)
        high = required_snr_for_rate(12.0, n_realizations=30, rng=4)
        assert low <= high

    def test_validation(self):
        with pytest.raises(ValueError):
            required_snr_for_rate(0.0)

"""Tests for ``repro_lint`` — every shipped rule proven to fire and to stay
quiet, suppression handling, the engine-version drift gate, and the
tree-is-clean integration gate that makes ``make lint`` part of tier-1."""

from __future__ import annotations

import dataclasses
import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "tools" / "lint"))

from repro_lint import lint_project, lint_source  # noqa: E402
from repro_lint.core import parse_suppressions  # noqa: E402
from repro_lint.rules.cache_keys import (  # noqa: E402
    insensitive_fields,
    run_checks,
    sensitive_fields,
)
from repro_lint.rules.engine_version import (  # noqa: E402
    build_manifest,
    check_manifest,
    current_digests,
    load_manifest,
    module_digest,
)

FIXTURES = REPO_ROOT / "tests" / "lint_fixtures"


def lint_fixture(name: str, virtual_path: str):
    """Lint one fixture file under a virtual in-tree path."""
    source = (FIXTURES / name).read_text(encoding="utf-8")
    return lint_source(source, virtual_path)


# ----------------------------------------------------------------------
# Per-rule fixtures: one violating + one clean file per rule, plus the
# suppression cases.
# ----------------------------------------------------------------------

FIXTURE_CASES = [
    # (fixture, virtual path, expected rule -> count)
    ("seam_bad.py", "src/repro/channel/fixture.py", {"SEAM001": 2}),
    ("seam_bad.py", "src/repro/dsp/fixture.py", {}),  # the seam itself is exempt
    ("seam_ok.py", "src/repro/channel/fixture.py", {}),
    ("det_rng_bad.py", "src/repro/sim/fixture.py", {"DET001": 4}),
    ("det_rng_bad.py", "examples/fixture.py", {}),  # engine-scoped rule
    ("det_rng_ok.py", "src/repro/sim/fixture.py", {}),
    ("det_clock_bad.py", "src/repro/sim/fixture.py", {"DET002": 2}),
    ("det_clock_ok.py", "src/repro/sim/fixture.py", {}),
    ("exc_bare_bad.py", "examples/fixture.py", {"EXC001": 2}),
    ("exc_bare_bad.py", "src/repro/stream/fixture.py", {"EXC001": 2}),
    ("exc_bare_ok.py", "examples/fixture.py", {}),
    ("exc_linalg_bad.py", "src/repro/mimo/fixture.py", {"EXC002": 3}),
    ("exc_linalg_ok.py", "src/repro/mimo/fixture.py", {}),
    ("shape_bad.py", "src/repro/mimo/fixture.py", {"SHAPE001": 3}),
    ("shape_ok.py", "src/repro/mimo/fixture.py", {}),
    ("dtype_bad.py", "src/repro/core/fixture.py", {"DTYPE001": 4}),
    ("dtype_bad.py", "src/repro/dsp/fixture.py", {}),  # the seam itself is exempt
    ("dtype_ok.py", "src/repro/core/fixture.py", {}),
    ("unit_bad.py", "src/repro/channel/fixture.py", {"UNIT001": 4}),
    ("unit_bad.py", "src/repro/utils/units.py", {}),  # the converter module is exempt
    ("unit_ok.py", "src/repro/channel/fixture.py", {}),
    ("suppressed_ok.py", "src/repro/channel/fixture.py", {}),
    ("suppressed_unjustified.py", "src/repro/channel/fixture.py", {"LINT001": 1}),
    ("suppressed_unused.py", "src/repro/channel/fixture.py", {"LINT002": 1}),
]


@pytest.mark.parametrize(
    "fixture, virtual_path, expected",
    FIXTURE_CASES,
    ids=[f"{name}@{path.split('/')[-2]}-{i}" for i, (name, path, _) in enumerate(FIXTURE_CASES)],
)
def test_fixture_findings(fixture, virtual_path, expected):
    violations = lint_fixture(fixture, virtual_path)
    counts: dict = {}
    for violation in violations:
        counts[violation.rule] = counts.get(violation.rule, 0) + 1
    assert counts == expected, [v.format() for v in violations]


def test_violations_carry_location_and_message():
    violations = lint_fixture("seam_bad.py", "src/repro/channel/fixture.py")
    assert all(v.line > 0 and v.col > 0 for v in violations)
    assert any("numpy.fft.fft" in v.message for v in violations)
    assert any("numpy.fft.ifft" in v.message for v in violations)


# ----------------------------------------------------------------------
# Suppression parsing
# ----------------------------------------------------------------------

def test_suppression_parsing_reads_ids_and_justification():
    source = "x = 1  # reprolint: disable=SEAM001,DET001 -- because reasons\n"
    (suppression,) = parse_suppressions(source)
    assert suppression.line == 1
    assert suppression.rule_ids == ("SEAM001", "DET001")
    assert suppression.justification == "because reasons"


def test_suppression_marker_inside_string_is_not_a_suppression():
    source = 's = "# reprolint: disable=SEAM001 -- not a comment"\n'
    assert parse_suppressions(source) == []


def test_parse_error_reported_as_parse001():
    violations = lint_source("def broken(:\n", "src/repro/sim/fixture.py")
    assert [v.rule for v in violations] == ["PARSE001"]


def test_suppression_for_unselected_rule_is_not_flagged_useless():
    """A rule-subset run must not call other rules' suppressions useless.

    With ``--select VER001`` the DET001 suppressions in the tree never get
    a chance to fire; flagging them LINT002 would make every subset run
    red.  Only a suppression whose *executed* rules all stayed silent is
    a dead comment.
    """
    from repro_lint.rules.seam import SeamPurityRule

    source = (
        "import numpy as np\n"
        "x = np.random.normal()"
        "  # reprolint: disable=DET001 -- fixture justification\n"
    )
    relpath = "src/repro/sim/fixture.py"
    # DET001 not in the selected rule set: suppression silently ignored.
    only_seam = lint_source(source, relpath, rules=[SeamPurityRule()])
    assert only_seam == []
    # Full rule set: the suppression is used, so nothing is reported.
    assert lint_source(source, relpath) == []
    # A genuinely dead suppression still trips LINT002 under the full set.
    dead = lint_source(
        "x = 1  # reprolint: disable=DET001 -- nothing here\n", relpath
    )
    assert [v.rule for v in dead] == ["LINT002"]


@pytest.mark.parametrize(
    "rule_id, source",
    [
        (
            "SHAPE001",
            "import numpy as np\n"
            "n_rx, n_tx, extra = np.zeros((4, 4)).shape"
            "  # reprolint: disable=SHAPE001 -- fixture justification\n",
        ),
        (
            "DTYPE001",
            "import numpy as np\n"
            "x = np.zeros(4, dtype=np.complex64)"
            " + np.zeros(4, dtype=np.complex128)"
            "  # reprolint: disable=DTYPE001 -- fixture justification\n",
        ),
        (
            "UNIT001",
            "def f(snr_db):\n"
            "    return 10.0 ** (snr_db / 10.0)"
            "  # reprolint: disable=UNIT001 -- fixture justification\n",
        ),
    ],
)
def test_dataflow_rule_suppressions_respect_select_subsets(rule_id, source):
    """--select runs without a dataflow rule must not flag its suppressions.

    Mirrors ``test_suppression_for_unselected_rule_is_not_flagged_useless``
    for the three dataflow rules: a suppression that never got the chance
    to fire (rule unselected) is ignored, one that fires is consumed, and
    a dead one still trips LINT002 under the full set.
    """
    from repro_lint.rules.seam import SeamPurityRule

    relpath = "src/repro/channel/fixture.py"
    # Rule not in the selected set: the suppression is silently ignored.
    assert lint_source(source, relpath, rules=[SeamPurityRule()]) == []
    # Full rule set: the rule fires and the suppression absorbs it.
    assert lint_source(source, relpath) == []
    # A dead suppression for the same rule still trips LINT002.
    dead = lint_source(
        f"x = 1  # reprolint: disable={rule_id} -- nothing here\n", relpath
    )
    assert [v.rule for v in dead] == ["LINT002"]


# ----------------------------------------------------------------------
# KEY001 — cache-key completeness
# ----------------------------------------------------------------------

def test_key001_clean_on_the_real_spec():
    assert run_checks() == []


def test_key001_fires_on_a_dropped_field():
    from repro.sim.spec import SweepSpec

    spec = SweepSpec()

    def serializer_missing_fft_size(s):
        return {k: v for k, v in s.to_dict().items() if k != "fft_size"}

    missing = insensitive_fields(SweepSpec, spec, serializer_missing_fft_size)
    assert missing == ["fft_size"]


def test_key001_fires_on_a_toy_spec_with_a_forgotten_axis():
    @dataclasses.dataclass(frozen=True)
    class ToySpec:
        snr_db: float = 0.0
        new_axis: int = 0

        def spec_hash(self):
            return f"hash-{self.snr_db}"  # forgot new_axis

    missing = insensitive_fields(ToySpec, ToySpec(), lambda s: s.spec_hash())
    assert missing == ["new_axis"]


def test_key001_stability_detects_contract_breaks():
    from repro.sim.spec import SweepSpec

    spec = SweepSpec()
    point = spec.points()[0]

    # A serializer that wrongly includes the grid index would break
    # cross-grid sharing: the stability check must catch it.
    def leaky(p):
        return {**p.seed_payload(spec), "index": p.index}

    moved = sensitive_fields(type(point), point, leaky, frozenset({"index"}))
    assert moved == ["index"]
    # The real payload is index-stable.
    assert (
        sensitive_fields(
            type(point), point, lambda p: p.seed_payload(spec), frozenset({"index"})
        )
        == []
    )


# ----------------------------------------------------------------------
# VER001 — engine-version drift
# ----------------------------------------------------------------------

def test_ver001_simulated_semantics_edit_without_bump_fails():
    digests = {"src/repro/sim/engine.py": module_digest("X = 1\n")}
    manifest = build_manifest(digests, engine_version=4)
    assert check_manifest(manifest, digests, engine_version=4) == []

    edited = {"src/repro/sim/engine.py": module_digest("X = 2\n")}
    problems = check_manifest(manifest, edited, engine_version=4)
    assert len(problems) == 1
    assert "without an ENGINE_VERSION bump" in problems[0]
    assert "src/repro/sim/engine.py" in problems[0]


def test_ver001_bump_requires_manifest_refresh_then_passes():
    digests = {"src/repro/sim/spec.py": module_digest("ENGINE_VERSION = 4\n")}
    manifest = build_manifest(digests, engine_version=4)

    bumped = {"src/repro/sim/spec.py": module_digest("ENGINE_VERSION = 5\n")}
    problems = check_manifest(manifest, bumped, engine_version=5)
    assert len(problems) == 1
    assert "manifest records" in problems[0]

    refreshed = build_manifest(bumped, engine_version=5)
    assert check_manifest(refreshed, bumped, engine_version=5) == []


def test_ver001_missing_manifest_is_a_finding():
    problems = check_manifest(None, {}, engine_version=4)
    assert problems and "missing" in problems[0]


def test_ver001_fingerprint_ignores_comments_and_docstrings():
    assert module_digest("X = 1\n") == module_digest("X = 1  # a comment\n")
    assert module_digest("X = 1\n") == module_digest('"""Docstring."""\nX = 1\n')
    assert module_digest("X = 1\n") != module_digest("X = 2\n")


def test_ver001_real_manifest_matches_tree_and_detects_edits():
    manifest = load_manifest(REPO_ROOT / "tools" / "lint" / "engine_manifest.json")
    assert manifest is not None, "engine manifest must be committed"
    digests = current_digests(REPO_ROOT)
    from repro.sim.spec import ENGINE_VERSION

    assert check_manifest(manifest, digests, ENGINE_VERSION) == []

    # Simulate editing the sweep engine without bumping the version.
    edited = dict(digests)
    edited["src/repro/sim/engine.py"] = module_digest("X_TAMPERED = 1\n")
    problems = check_manifest(manifest, edited, ENGINE_VERSION)
    assert problems and "src/repro/sim/engine.py" in problems[0]


# ----------------------------------------------------------------------
# Integration: the tree is lint-clean (this is the tier-1 gate)
# ----------------------------------------------------------------------

def _lint_cli(*args: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO_ROOT / "src"), str(REPO_ROOT / "tools" / "lint")]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    return subprocess.run(
        [sys.executable, "-m", "repro_lint", *args],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )


def test_tree_is_lint_clean():
    result = _lint_cli("src", "tools", "examples", "tests")
    assert result.returncode == 0, result.stdout + result.stderr
    assert "OK" in result.stdout


def test_cli_json_report_shape():
    result = _lint_cli("--format", "json", "--no-project-rules", "src")
    payload = json.loads(result.stdout)
    assert payload["summary"]["ok"] is True
    assert payload["summary"]["n_files"] > 40
    assert payload["violations"] == []


def test_cli_exit_code_on_violation(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("try:\n    pass\nexcept:\n    pass\n", encoding="utf-8")
    result = _lint_cli("--no-project-rules", str(bad))
    assert result.returncode == 1
    assert "EXC001" in result.stdout


def test_project_rules_clean_via_api():
    violations = lint_project(REPO_ROOT)
    assert violations == [], [v.format() for v in violations]

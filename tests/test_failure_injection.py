"""Failure-injection tests: how the receiver behaves when things go wrong.

A reproduction that only exercises the happy path hides the error-handling
semantics a downstream user relies on; these tests pin them down: corrupted
or truncated bursts, mis-configured receivers, degenerate channels and
mis-timed synchronisation must either raise the documented exceptions or
degrade into bit errors — never return silently-wrong "successful" results.
"""

import numpy as np
import pytest

from repro.channel.fading import FlatRayleighChannel
from repro.channel.model import MimoChannel
from repro.core.config import TransceiverConfig
from repro.core.receiver import MimoReceiver
from repro.core.transmitter import MimoTransmitter
from repro.exceptions import (
    ChannelEstimationError,
    ConfigurationError,
    DecodingError,
    SynchronizationError,
)
from repro.sync.time_sync import TimeSynchronizer
from repro.core.preamble import PreambleGenerator


@pytest.fixture
def tx_rx(paper_config):
    return MimoTransmitter(paper_config), MimoReceiver(paper_config)


class TestDegenerateChannels:
    def test_rank_deficient_channel_raises_estimation_error(self, tx_rx):
        transmitter, receiver = tx_rx
        burst = transmitter.transmit_random(100, rng=np.random.default_rng(0))
        # Two receive antennas wired to the same signal -> singular channel.
        matrix = np.ones((4, 4), dtype=complex)
        channel = MimoChannel(FlatRayleighChannel(matrix=matrix))
        received = channel.transmit(burst.samples).samples
        with pytest.raises(ChannelEstimationError):
            receiver.receive(received, n_info_bits=100, lts_start=160)

    def test_dead_antenna_still_decodes_other_streams_or_errors(self, tx_rx):
        # Zeroing one receive antenna makes the 4x4 inversion singular.
        transmitter, receiver = tx_rx
        burst = transmitter.transmit_random(100, rng=np.random.default_rng(1))
        received = burst.samples.copy()
        received[2] = 0
        with pytest.raises(ChannelEstimationError):
            receiver.receive(received, n_info_bits=100, lts_start=160)


class TestCorruptedBursts:
    def test_wrong_lts_position_produces_errors_not_silence(self, tx_rx):
        transmitter, receiver = tx_rx
        burst = transmitter.transmit_random(200, rng=np.random.default_rng(2))
        channel = MimoChannel(FlatRayleighChannel(rng=3), snr_db=30.0, rng=4)
        received = channel.transmit(burst.samples).samples
        # Decode with a deliberately wrong timing hypothesis (one OFDM symbol
        # early, i.e. inside the preamble): the decoded bits must differ from
        # the transmitted ones rather than being silently "correct".
        result = receiver.receive(received, n_info_bits=200, lts_start=160 - 80)
        assert result.total_bit_errors(burst.info_bits) > 0

    def test_wrong_lts_position_past_burst_end_raises(self, tx_rx):
        transmitter, receiver = tx_rx
        burst = transmitter.transmit_random(200, rng=np.random.default_rng(2))
        # A hypothesis one OFDM symbol late leaves too few samples for the
        # claimed payload and must raise rather than decode a partial burst.
        with pytest.raises(DecodingError):
            receiver.receive(burst.samples, n_info_bits=200, lts_start=160 + 80)

    def test_truncated_burst_raises(self, tx_rx):
        transmitter, receiver = tx_rx
        burst = transmitter.transmit_random(200, rng=np.random.default_rng(5))
        with pytest.raises(DecodingError):
            receiver.receive(burst.samples[:, :700], n_info_bits=200, lts_start=160)

    def test_noise_only_input_does_not_return_clean_success(self, paper_config):
        receiver = MimoReceiver(paper_config)
        rng = np.random.default_rng(6)
        noise = rng.normal(size=(4, 2000)) + 1j * rng.normal(size=(4, 2000))
        # Whatever the sync locks onto, the result must either raise (burst
        # too short / singular estimate) or contain decoded bits -- in which
        # case they are meaningless but well-formed.
        try:
            result = receiver.receive(noise, n_info_bits=100)
        except (DecodingError, ChannelEstimationError, SynchronizationError):
            return
        assert all(stream.decoded_bits.size == 100 for stream in result.streams)

    def test_claiming_more_bits_than_transmitted_raises(self, tx_rx):
        transmitter, receiver = tx_rx
        burst = transmitter.transmit_random(96, rng=np.random.default_rng(7))
        with pytest.raises(DecodingError):
            receiver.receive(burst.samples, n_info_bits=5000, lts_start=160)


class TestConfigurationMismatches:
    def test_modulation_mismatch_causes_bit_errors(self):
        tx_config = TransceiverConfig(modulation="16qam")
        rx_config = TransceiverConfig(modulation="qpsk")
        transmitter = MimoTransmitter(tx_config)
        receiver = MimoReceiver(rx_config)
        # 42 information bits fit in a single OFDM symbol for both
        # modulations, so the mismatch shows up as wrong bits rather than a
        # burst-length error.
        burst = transmitter.transmit_random(42, rng=np.random.default_rng(8))
        result = receiver.receive(burst.samples, n_info_bits=42, lts_start=160)
        errors = sum(
            int(np.count_nonzero(stream.decoded_bits != burst.info_bits[i]))
            for i, stream in enumerate(result.streams)
        )
        assert errors > 0

    def test_antenna_count_mismatch_rejected(self):
        transmitter = MimoTransmitter(TransceiverConfig(n_antennas=4))
        receiver = MimoReceiver(TransceiverConfig(n_antennas=2))
        burst = transmitter.transmit_random(96, rng=np.random.default_rng(9))
        with pytest.raises(ConfigurationError):
            receiver.receive(burst.samples, n_info_bits=96)

    def test_invalid_timing_advance_rejected(self, paper_config):
        with pytest.raises(ConfigurationError):
            MimoReceiver(paper_config, timing_advance=100)
        with pytest.raises(ConfigurationError):
            MimoReceiver(paper_config, timing_advance=-1)


class TestSynchronizerFailureModes:
    def test_threshold_mode_reports_failure_cleanly(self):
        preamble = PreambleGenerator(64)
        synchronizer = TimeSynchronizer(
            sts_time=preamble.sts_time(),
            lts_time=preamble.lts_time(),
            mode="threshold",
        )
        rng = np.random.default_rng(10)
        noise = 0.001 * (rng.normal(size=500) + 1j * rng.normal(size=500))
        with pytest.raises(SynchronizationError):
            synchronizer.search(noise)

    def test_empty_stream_rejected(self):
        preamble = PreambleGenerator(64)
        synchronizer = TimeSynchronizer(
            sts_time=preamble.sts_time(), lts_time=preamble.lts_time()
        )
        with pytest.raises(SynchronizationError):
            synchronizer.search(np.zeros(0, dtype=complex))

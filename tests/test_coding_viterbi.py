"""Tests for repro.coding.viterbi."""

import numpy as np
import pytest

from repro.coding.convolutional import CodeRate, ConvolutionalCode, ConvolutionalEncoder
from repro.coding.viterbi import ViterbiDecoder
from repro.utils.bits import count_bit_errors, random_bits


def _encode(bits, rate=CodeRate.RATE_1_2):
    encoder = ConvolutionalEncoder(ConvolutionalCode.ieee80211a(rate))
    return encoder.encode(bits, terminate=True)


class TestHardDecisionDecoding:
    def test_error_free_roundtrip(self):
        rng = np.random.default_rng(0)
        bits = random_bits(120, rng)
        decoded = ViterbiDecoder().decode(_encode(bits), n_info_bits=120)
        np.testing.assert_array_equal(decoded, bits)

    def test_roundtrip_all_zero_and_all_one(self):
        decoder = ViterbiDecoder()
        zeros = np.zeros(40, dtype=np.uint8)
        ones = np.ones(40, dtype=np.uint8)
        np.testing.assert_array_equal(decoder.decode(_encode(zeros), 40), zeros)
        np.testing.assert_array_equal(decoder.decode(_encode(ones), 40), ones)

    def test_corrects_isolated_bit_errors(self):
        rng = np.random.default_rng(1)
        bits = random_bits(200, rng)
        coded = _encode(bits)
        corrupted = coded.copy()
        # Flip well-separated coded bits; K=7 corrects these easily.
        for position in (10, 90, 170, 250, 330):
            corrupted[position] ^= 1
        decoded = ViterbiDecoder().decode(corrupted, n_info_bits=200)
        np.testing.assert_array_equal(decoded, bits)

    def test_burst_of_errors_causes_failures(self):
        # A long error burst exceeds the code's correction ability; the
        # decoder should NOT silently return the transmitted bits.
        rng = np.random.default_rng(2)
        bits = random_bits(100, rng)
        coded = _encode(bits)
        corrupted = coded.copy()
        corrupted[40:80] ^= 1
        decoded = ViterbiDecoder().decode(corrupted, n_info_bits=100)
        assert count_bit_errors(decoded, bits) > 0

    def test_length_inference_for_unpunctured(self):
        rng = np.random.default_rng(3)
        bits = random_bits(64, rng)
        decoded = ViterbiDecoder().decode(_encode(bits))
        np.testing.assert_array_equal(decoded, bits)

    def test_unterminated_block(self):
        rng = np.random.default_rng(4)
        bits = random_bits(80, rng)
        encoder = ConvolutionalEncoder()
        coded = encoder.encode(bits, terminate=False)
        decoded = ViterbiDecoder().decode(coded, n_info_bits=80, terminated=False)
        # The tail of an unterminated block is weakly protected; allow a few
        # errors at the very end but require the bulk to be correct.
        np.testing.assert_array_equal(decoded[:70], bits[:70])

    def test_empty_block(self):
        decoded = ViterbiDecoder().decode(np.zeros(12), n_info_bits=0)
        assert decoded.size == 0


class TestPuncturedDecoding:
    @pytest.mark.parametrize("rate", [CodeRate.RATE_2_3, CodeRate.RATE_3_4])
    def test_error_free_roundtrip(self, rate):
        rng = np.random.default_rng(5)
        bits = random_bits(120, rng)
        code = ConvolutionalCode.ieee80211a(rate)
        decoder = ViterbiDecoder(code)
        decoded = decoder.decode(_encode(bits, rate), n_info_bits=120)
        np.testing.assert_array_equal(decoded, bits)

    @pytest.mark.parametrize("rate", [CodeRate.RATE_2_3, CodeRate.RATE_3_4])
    def test_corrects_sparse_errors(self, rate):
        rng = np.random.default_rng(6)
        bits = random_bits(150, rng)
        code = ConvolutionalCode.ieee80211a(rate)
        coded = _encode(bits, rate)
        corrupted = coded.copy()
        corrupted[15] ^= 1
        corrupted[130] ^= 1
        decoded = ViterbiDecoder(code).decode(corrupted, n_info_bits=150)
        np.testing.assert_array_equal(decoded, bits)

    def test_depuncture_shapes(self):
        code = ConvolutionalCode.ieee80211a(CodeRate.RATE_3_4)
        decoder = ViterbiDecoder(code)
        encoder = ConvolutionalEncoder(code)
        bits = random_bits(30, np.random.default_rng(7))
        coded = encoder.encode(bits, terminate=True)
        full, mask = decoder.depuncture(coded, n_input_bits=36)
        assert full.shape == (36, 2)
        assert mask.shape == (36, 2)
        # 3/4 puncturing keeps 4 of every 6 mother bits.
        assert mask.sum() == coded.size

    def test_depuncture_length_mismatch(self):
        decoder = ViterbiDecoder()
        with pytest.raises(ValueError):
            decoder.depuncture(np.zeros(11), n_input_bits=6)


class TestSoftDecisionDecoding:
    def test_error_free_roundtrip_with_llrs(self):
        rng = np.random.default_rng(8)
        bits = random_bits(100, rng)
        coded = _encode(bits).astype(np.float64)
        llrs = 4.0 * (1.0 - 2.0 * coded)  # bit 0 -> +4, bit 1 -> -4
        decoder = ViterbiDecoder(decision="soft")
        decoded = decoder.decode(llrs, n_info_bits=100)
        np.testing.assert_array_equal(decoded, bits)

    def test_soft_information_beats_hard_on_noisy_channel(self):
        rng = np.random.default_rng(9)
        n_info = 400
        bits = random_bits(n_info, rng)
        coded = _encode(bits).astype(np.float64)
        bpsk = 1.0 - 2.0 * coded
        noisy = bpsk + rng.normal(0.0, 0.9, size=bpsk.size)
        hard_bits = (noisy < 0).astype(np.uint8)
        hard_decoded = ViterbiDecoder(decision="hard").decode(hard_bits, n_info_bits=n_info)
        soft_decoded = ViterbiDecoder(decision="soft").decode(2 * noisy, n_info_bits=n_info)
        hard_errors = count_bit_errors(hard_decoded, bits)
        soft_errors = count_bit_errors(soft_decoded, bits)
        assert soft_errors <= hard_errors

    def test_invalid_decision_mode(self):
        with pytest.raises(ValueError):
            ViterbiDecoder(decision="fuzzy")

"""Tests for repro.sync.time_sync."""

import numpy as np
import pytest

from repro.channel.awgn import add_awgn
from repro.core.preamble import PreambleGenerator
from repro.exceptions import SynchronizationError
from repro.sync.time_sync import TimeSynchronizer


@pytest.fixture
def preamble() -> PreambleGenerator:
    return PreambleGenerator(64)


def _synchronizer(preamble, **kwargs) -> TimeSynchronizer:
    return TimeSynchronizer(
        sts_time=preamble.sts_time(), lts_time=preamble.lts_time(), **kwargs
    )


def _clean_burst(preamble, delay=0, n_data=200, rng_seed=0):
    """Antenna-0 style waveform: STS then LTS then random data, with delay."""
    rng = np.random.default_rng(rng_seed)
    data = 0.2 * (rng.normal(size=n_data) + 1j * rng.normal(size=n_data))
    burst = np.concatenate([preamble.sts_time(), preamble.lts_time(), data])
    return np.concatenate([np.zeros(delay, dtype=complex), burst])


class TestConstruction:
    def test_window_length_default_is_32(self, preamble):
        assert _synchronizer(preamble).window_length == 32

    def test_threshold_defaults_to_half_clean_peak(self, preamble):
        sync = _synchronizer(preamble)
        assert sync.threshold == pytest.approx(0.5 * sync.clean_peak)

    def test_invalid_mode(self, preamble):
        with pytest.raises(ValueError):
            _synchronizer(preamble, mode="magic")

    def test_window_longer_than_preamble_rejected(self, preamble):
        with pytest.raises(ValueError):
            TimeSynchronizer(
                sts_time=preamble.sts_time()[:8], lts_time=preamble.lts_time(), window_sts=16
            )


class TestDetection:
    def test_exact_position_no_delay(self, preamble):
        sync = _synchronizer(preamble)
        result = sync.search(_clean_burst(preamble))
        assert result.lts_start == preamble.sts_time().size

    @pytest.mark.parametrize("delay", [1, 13, 77, 200])
    def test_exact_position_with_delay(self, preamble, delay):
        sync = _synchronizer(preamble)
        result = sync.search(_clean_burst(preamble, delay=delay))
        assert result.lts_start == preamble.sts_time().size + delay

    def test_detection_with_noise(self, preamble):
        sync = _synchronizer(preamble)
        noisy = add_awgn(_clean_burst(preamble, delay=50), snr_db=15.0, rng=1)
        result = sync.search(noisy)
        assert abs(result.lts_start - (160 + 50)) <= 1

    def test_detection_with_complex_channel_gain(self, preamble):
        sync = _synchronizer(preamble)
        gain = 0.3 * np.exp(1j * 1.1)
        result = sync.search(gain * _clean_burst(preamble, delay=20))
        assert result.lts_start == 180

    def test_threshold_mode_finds_first_crossing(self, preamble):
        # A threshold tuned close to the clean transition peak (as the
        # hardware's pre-computed value is) locks on the exact transition.
        reference_peak = _synchronizer(preamble).clean_peak
        sync = _synchronizer(preamble, mode="threshold", threshold=0.9 * reference_peak)
        result = sync.search(_clean_burst(preamble))
        assert result.lts_start == 160

    def test_threshold_mode_raises_when_signal_too_weak(self, preamble):
        sync = _synchronizer(preamble, mode="threshold")
        weak = 0.01 * _clean_burst(preamble)
        with pytest.raises(SynchronizationError):
            sync.search(weak)

    def test_stream_shorter_than_window_rejected(self, preamble):
        with pytest.raises(SynchronizationError):
            _synchronizer(preamble).search(np.zeros(10, dtype=complex))

    def test_correlation_trace_returned(self, preamble):
        sync = _synchronizer(preamble)
        burst = _clean_burst(preamble)
        result = sync.search(burst)
        assert result.correlation_magnitude.size == burst.size - 32 + 1
        assert result.locked

    def test_cordic_magnitude_mode(self, preamble):
        sync = _synchronizer(preamble, use_cordic_magnitude=True, normalize=False)
        # Use a shorter stream to keep the CORDIC loop fast.
        burst = _clean_burst(preamble, n_data=20)
        result = sync.search(burst)
        assert abs(result.lts_start - 160) <= 1


class TestStructuredResult:
    """Both detection modes report the same result shape and quantities."""

    def test_both_modes_return_both_traces(self, preamble):
        burst = _clean_burst(preamble)
        for mode in ("peak", "threshold"):
            result = _synchronizer(preamble, mode=mode).search(burst)
            assert result.correlation_magnitude.size == burst.size - 32 + 1
            assert result.metric.shape == result.correlation_magnitude.shape

    def test_peak_magnitude_is_metric_at_peak_in_both_modes(self, preamble):
        burst = _clean_burst(preamble, delay=9)
        for mode in ("peak", "threshold"):
            result = _synchronizer(preamble, mode=mode).search(burst)
            assert result.peak_magnitude == result.metric[result.peak_index]

    def test_modes_report_comparable_metric(self, preamble):
        # The historical inconsistency: threshold mode reported the raw
        # correlation sum, peak mode the normalised metric.  Both now report
        # the normalised metric (~1.0 at a clean transition) so a single
        # acceptance test works across modes.
        burst = _clean_burst(preamble)
        peak = _synchronizer(preamble, mode="peak").search(burst)
        # A threshold tuned close to the clean transition peak (the
        # hardware's pre-computed value) locks on the same window.
        threshold = _synchronizer(
            preamble,
            mode="threshold",
            threshold=0.9 * _synchronizer(preamble).clean_peak,
        ).search(burst)
        assert peak.peak_magnitude == pytest.approx(1.0, abs=0.05)
        assert threshold.peak_index == peak.peak_index
        assert threshold.peak_magnitude == pytest.approx(
            peak.peak_magnitude, abs=0.05
        )

    def test_raw_trace_is_unnormalized_in_both_modes(self, preamble):
        gain = 5.0
        burst = _clean_burst(preamble)
        for mode in ("peak", "threshold"):
            sync = _synchronizer(preamble, mode=mode)
            small = sync.search(burst)
            large = sync.search(gain * burst)
            # Raw correlation scales with the signal; the metric does not.
            ratio = large.correlation_magnitude.max() / small.correlation_magnitude.max()
            assert ratio == pytest.approx(gain, rel=1e-9)
            assert large.peak_magnitude == pytest.approx(
                small.peak_magnitude, rel=1e-9
            )

    def test_normalized_metric_matches_search_trace(self, preamble):
        sync = _synchronizer(preamble)
        burst = _clean_burst(preamble)
        np.testing.assert_allclose(
            sync.normalized_metric(burst), sync.search(burst).metric
        )

    def test_normalized_metric_without_normalization_is_raw(self, preamble):
        sync = _synchronizer(preamble, normalize=False)
        burst = _clean_burst(preamble, n_data=50)
        np.testing.assert_array_equal(
            sync.normalized_metric(burst), sync.correlate(burst)
        )


class TestMimoPreambleDetection:
    def test_detection_on_full_mimo_preamble(self, preamble):
        # Antenna 0 carries STS followed immediately by its own LTS slot, so
        # the detector locks on the slot-0 boundary even in the 4-antenna
        # staggered preamble.
        waveform = preamble.mimo_preamble(4)[0]
        result = _synchronizer(preamble).search(waveform)
        assert result.lts_start == preamble.layout(4).lts_slot_start(0)

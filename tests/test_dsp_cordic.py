"""Tests for repro.dsp.cordic."""

import math

import numpy as np
import pytest

from repro.dsp.cordic import (
    CORDIC_PIPELINE_LATENCY,
    Cordic,
    cordic_gain,
    cordic_magnitude,
    cordic_rotate,
    cordic_vector,
)
from repro.dsp.fixedpoint import FixedPointFormat


class TestGain:
    def test_gain_converges_to_known_constant(self):
        # The asymptotic CORDIC gain is ~1.6468.
        assert cordic_gain(16) == pytest.approx(1.64676, abs=1e-4)

    def test_gain_monotone_in_iterations(self):
        assert cordic_gain(4) < cordic_gain(16)

    def test_gain_requires_positive_iterations(self):
        with pytest.raises(ValueError):
            cordic_gain(0)


class TestVectoringMode:
    @pytest.mark.parametrize(
        "x,y",
        [(1.0, 0.0), (0.5, 0.5), (0.0, 1.0), (-0.3, 0.7), (-0.5, -0.5), (0.9, -0.1)],
    )
    def test_magnitude_and_angle(self, x, y):
        result = cordic_vector(x, y)
        assert result.magnitude == pytest.approx(math.hypot(x, y), abs=1e-4)
        assert result.angle == pytest.approx(math.atan2(y, x), abs=1e-4)

    def test_y_driven_to_zero(self):
        result = cordic_vector(0.6, 0.8)
        assert abs(result.y) < 1e-4

    def test_latency_reported(self):
        assert cordic_vector(1.0, 1.0).latency_cycles == CORDIC_PIPELINE_LATENCY


class TestRotationMode:
    @pytest.mark.parametrize("angle", [-2.5, -1.0, -0.1, 0.0, 0.3, 1.2, 2.9])
    def test_matches_complex_rotation(self, angle):
        value = 0.4 - 0.6j
        result = cordic_rotate(value.real, value.imag, angle)
        expected = value * np.exp(1j * angle)
        assert result.x == pytest.approx(expected.real, abs=1e-4)
        assert result.y == pytest.approx(expected.imag, abs=1e-4)

    def test_rotate_complex_helper(self):
        engine = Cordic()
        rotated = engine.rotate_complex(1.0 + 0j, math.pi / 2)
        assert rotated.real == pytest.approx(0.0, abs=1e-4)
        assert rotated.imag == pytest.approx(1.0, abs=1e-4)


class TestAccuracyScaling:
    def test_more_iterations_more_accuracy(self):
        errors = []
        for iterations in (6, 10, 16, 24):
            result = cordic_vector(0.3, 0.9, iterations=iterations)
            errors.append(abs(result.magnitude - math.hypot(0.3, 0.9)))
        assert errors[0] > errors[-1]
        assert errors[-1] < 1e-5

    def test_uncompensated_gain(self):
        engine = Cordic(iterations=16, compensate_gain=False)
        result = engine.vector(1.0, 0.0)
        assert result.magnitude == pytest.approx(cordic_gain(16), abs=1e-3)


class TestFixedPointDatapath:
    def test_quantised_engine_still_reasonable(self):
        fmt = FixedPointFormat(word_length=18, frac_bits=14)
        engine = Cordic(iterations=14, fixed_format=fmt)
        result = engine.vector(0.7, 0.2)
        assert result.magnitude == pytest.approx(math.hypot(0.7, 0.2), abs=5e-3)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            Cordic(iterations=0)
        with pytest.raises(ValueError):
            Cordic(latency_cycles=0)


class TestCordicMagnitudeArray:
    def test_matches_abs(self):
        rng = np.random.default_rng(2)
        values = rng.normal(size=20) + 1j * rng.normal(size=20)
        np.testing.assert_allclose(cordic_magnitude(values), np.abs(values), atol=1e-3)

    def test_preserves_shape(self):
        values = np.ones((3, 4), dtype=complex)
        assert cordic_magnitude(values).shape == (3, 4)
